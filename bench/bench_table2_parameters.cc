// Regenerates Table 2: the benchmark parameter grid and default values.
// This harness is the single source of truth for the scaled-down grid the
// other bench binaries sweep; it prints the paper's original values side by
// side with the scaled ones so the mapping is auditable.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Table 2: benchmark parameters (defaults in [..])",
                     "Table 2", config);

  auto join = [](const std::vector<Index>& values, Index bold) {
    std::string out;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += ", ";
      if (values[i] == bold) out += "[";
      out += Table::Int(values[i]);
      if (values[i] == bold) out += "]";
    }
    return out;
  };

  Table table({"parameter", "paper grid (defaults bold)", "this harness"});
  table.AddRow({"motif length (l_min)", "256 512 [1024] 2048 4096",
                join(config.motif_lengths, config.len_min)});
  table.AddRow({"motif range (l_max - l_min)", "100 150 [200] 400 600",
                join(config.motif_ranges, config.range)});
  table.AddRow({"data series size", "0.1M 0.2M [0.5M] 0.8M 1M",
                join(config.series_sizes, config.n)});
  table.AddRow({"p (entries stored)", "5 10 15 20 [50] 100 150",
                join(config.p_values, config.p)});
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Every dimension is scaled by ~1/16 for the single-core container;\n"
      "curve shapes, not absolute times, are the reproduction target.\n");
  return 0;
}
