// Ablation of VALMOD's design choices (the DESIGN.md callouts):
//   (a) the Eq. 2 lower bound itself         -> disable = STOMP per length
//   (b) retaining p > 1 entries per profile  -> p = 1
//   (c) the selective-recompute fallback     -> full STOMP pass on failure
//   (d) the ComputeSubMP shortcut            -> full profile every length
// Run on one easy dataset (ECG) and the hard one (EMG). Shape to verify:
// each removed ingredient costs time, with the shortcut (d) mattering most
// on easy data and the fallback (c) mattering most on hard data.

#include <cstdio>

#include "baselines/stomp_adapted.h"
#include "bench_common.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using valmod::Index;

struct Variant {
  const char* label;
  valmod::ValmodOptions (*configure)(const valmod::bench::BenchConfig&);
};

valmod::ValmodOptions Base(const valmod::bench::BenchConfig& config) {
  valmod::ValmodOptions options;
  options.len_min = config.len_min;
  options.len_max = config.len_min + config.range;
  options.p = config.p;
  return options;
}

}  // namespace

int main() {
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Ablation: VALMOD design choices", "DESIGN.md ablations",
                     config);

  const Variant variants[] = {
      {"VALMOD (full)", [](const bench::BenchConfig& c) { return Base(c); }},
      {"p = 1",
       [](const bench::BenchConfig& c) {
         ValmodOptions o = Base(c);
         o.p = 1;
         return o;
       }},
      {"no selective recompute",
       [](const bench::BenchConfig& c) {
         ValmodOptions o = Base(c);
         o.sub_mp.allow_selective_recompute = false;
         return o;
       }},
      {"full profile every length",
       [](const bench::BenchConfig& c) {
         ValmodOptions o = Base(c);
         o.emit_per_length_profiles = true;
         return o;
       }},
  };

  Table table({"dataset", "variant", "seconds", "full MP passes",
               "selective recomputes"});
  for (const char* name : {"ECG", "EMG"}) {
    Series series;
    if (!GenerateByName(name, config.n, &series).ok()) return 1;
    for (const Variant& variant : variants) {
      const ValmodOptions options = variant.configure(config);
      WallTimer timer;
      const ValmodResult result = RunValmod(series, options);
      Index selective = 0;
      for (const LengthStats& ls : result.length_stats) {
        selective += ls.selective_recomputes;
      }
      table.AddRow({name, variant.label, Table::Num(timer.Seconds(), 3),
                    Table::Int(result.full_mp_computations),
                    Table::Int(selective)});
    }
    // The no-lower-bound-at-all baseline.
    WallTimer timer;
    StompPerLength(series, config.len_min, config.len_min + config.range);
    table.AddRow({name, "no lower bound (STOMP/length)",
                  Table::Num(timer.Seconds(), 3),
                  Table::Int(config.range + 1), "0"});
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
