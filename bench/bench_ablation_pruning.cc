// Ablation of VALMOD's design choices (the DESIGN.md callouts):
//   (a) the Eq. 2 lower bound itself         -> disable = STOMP per length
//   (b) retaining p > 1 entries per profile  -> p = 1
//   (c) the selective-recompute fallback     -> full STOMP pass on failure
//   (d) the ComputeSubMP shortcut            -> full profile every length
// Run on one easy dataset (ECG) and the hard one (EMG). Shape to verify:
// each removed ingredient costs time, with the shortcut (d) mattering most
// on easy data and the fallback (c) mattering most on hard data.
//
// Each VALMOD run is also cross-checked against the process-wide
// obs::Counters: the per-length pruning ratios reported by the library
// structs must match the deltas the observability layer recorded for the
// same call. Any mismatch fails the bench (exit 1) — this is the live
// guard that the counters cannot drift from the algorithm.

#include <cstdio>

#include "baselines/stomp_adapted.h"
#include "bench_common.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "obs/counters.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using valmod::Index;

struct Variant {
  const char* label;
  valmod::ValmodOptions (*configure)(const valmod::bench::BenchConfig&);
};

valmod::ValmodOptions Base(const valmod::bench::BenchConfig& config) {
  valmod::ValmodOptions options;
  options.len_min = config.len_min;
  options.len_max = config.len_min + config.range;
  options.p = config.p;
  return options;
}

bool CheckEq(const char* what, long long actual, long long expected) {
  if (actual == expected) return true;
  std::fprintf(stderr,
               "counter mismatch: %s — counters saw %lld, library structs "
               "imply %lld\n",
               what, actual, expected);
  return false;
}

// Cross-checks the obs::Counters delta of one RunValmod call against the
// library-struct bookkeeping of the same call. Single-threaded, so the
// process-global deltas are exactly this run's contribution.
bool VerifyCountersAgainstStructs(const valmod::ValmodOptions& options,
                                  const valmod::ValmodResult& result,
                                  const valmod::obs::CountersSnapshot& before,
                                  const valmod::obs::CountersSnapshot& after) {
  using valmod::LengthStats;
  long long full_profiles = 0;  // rows of every full STOMP pass
  long long submp_valid = 0;    // certified subMP entries, non-fallback
  long long heap_updates = 0;
  long long fallbacks = 0;
  long long submp_lengths = 0;
  for (const LengthStats& ls : result.length_stats) {
    heap_updates += ls.heap_updates;
    if (ls.used_full_recompute) {
      full_profiles += ls.n_profiles;
      if (ls.length != options.len_min && !options.emit_per_length_profiles) {
        ++fallbacks;  // Algorithm 1 line 13: subMP attempted, then full
        ++submp_lengths;
      }
    } else {
      submp_valid += ls.valid_count;
      ++submp_lengths;
    }
  }
  if (options.emit_per_length_profiles) submp_lengths = 0;

  bool ok = true;
  ok &= CheckEq("mp_profiles_full_stomp",
                after.mp_profiles_full_stomp - before.mp_profiles_full_stomp,
                full_profiles);
  ok &= CheckEq("stomp_rows", after.stomp_rows - before.stomp_rows,
                full_profiles);
  ok &= CheckEq("listdp_heap_updates",
                after.listdp_heap_updates - before.listdp_heap_updates,
                heap_updates);
  ok &= CheckEq("valmod_full_fallbacks",
                after.valmod_full_fallbacks - before.valmod_full_fallbacks,
                fallbacks);
  ok &= CheckEq("submp_lengths_total",
                after.submp_lengths_total - before.submp_lengths_total,
                submp_lengths);
  const long long certified_plus_recomputed =
      (after.submp_profiles_certified - before.submp_profiles_certified) +
      (after.submp_profiles_recomputed - before.submp_profiles_recomputed);
  if (fallbacks == 0) {
    // The conservation law: certified-from-bounds + selectively-salvaged
    // profiles is exactly the valid_count the library reports per length.
    ok &= CheckEq("submp certified+recomputed", certified_plus_recomputed,
                  submp_valid);
  } else if (certified_plus_recomputed < submp_valid) {
    // Fallback lengths record their (discarded) subMP attempt too, so the
    // counter can only exceed the struct sum, never undershoot it.
    std::fprintf(stderr,
                 "counter mismatch: submp certified+recomputed %lld < "
                 "library-struct valid sum %lld despite %lld fallbacks\n",
                 certified_plus_recomputed, submp_valid, fallbacks);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Ablation: VALMOD design choices", "DESIGN.md ablations",
                     config);

  const Variant variants[] = {
      {"VALMOD (full)", [](const bench::BenchConfig& c) { return Base(c); }},
      {"p = 1",
       [](const bench::BenchConfig& c) {
         ValmodOptions o = Base(c);
         o.p = 1;
         return o;
       }},
      {"no selective recompute",
       [](const bench::BenchConfig& c) {
         ValmodOptions o = Base(c);
         o.sub_mp.allow_selective_recompute = false;
         return o;
       }},
      {"full profile every length",
       [](const bench::BenchConfig& c) {
         ValmodOptions o = Base(c);
         o.emit_per_length_profiles = true;
         return o;
       }},
  };

  bool counters_ok = true;
  Table table({"dataset", "variant", "seconds", "full MP passes",
               "selective recomputes"});
  for (const char* name : {"ECG", "EMG"}) {
    Series series;
    if (!GenerateByName(name, config.n, &series).ok()) return 1;
    for (const Variant& variant : variants) {
      const ValmodOptions options = variant.configure(config);
      const obs::CountersSnapshot before = obs::Counters::Snapshot();
      WallTimer timer;
      const ValmodResult result = RunValmod(series, options);
      const double seconds = timer.Seconds();
      const obs::CountersSnapshot after = obs::Counters::Snapshot();
      counters_ok &=
          VerifyCountersAgainstStructs(options, result, before, after);
      Index selective = 0;
      for (const LengthStats& ls : result.length_stats) {
        selective += ls.selective_recomputes;
      }
      table.AddRow({name, variant.label, Table::Num(seconds, 3),
                    Table::Int(result.full_mp_computations),
                    Table::Int(selective)});
    }
    // The no-lower-bound-at-all baseline.
    WallTimer timer;
    StompPerLength(series, config.len_min, config.len_min + config.range);
    table.AddRow({name, "no lower bound (STOMP/length)",
                  Table::Num(timer.Seconds(), 3),
                  Table::Int(config.range + 1), "0"});
  }
  std::printf("%s\n", table.Render().c_str());
  if (!counters_ok) {
    std::fprintf(stderr,
                 "bench_ablation_pruning: obs counter cross-check FAILED\n");
    return 1;
  }
  std::printf("obs counter cross-check: all variants consistent\n");
  return 0;
}
