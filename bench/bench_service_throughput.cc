// End-to-end throughput of the motif query service over loopback TCP:
// queries per second and p50/p99 latency, cold (every request computes)
// vs cached (every request hits the result cache), at 1/4/16 concurrent
// clients. The cached rows must sit orders of magnitude below the cold
// ones — that gap is the result cache's reason to exist — and QPS should
// rise with client count until the executor pool saturates the cores.
// Results are also written to BENCH_service.json for downstream tooling.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace valmod;

struct CellResult {
  int clients = 0;
  bool cached = false;
  Index requests = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

double Percentile(std::vector<double>& sorted_latencies, double q) {
  if (sorted_latencies.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_latencies.size() - 1));
  return sorted_latencies[rank];
}

/// Runs `per_client` queries from `clients` concurrent connections and
/// aggregates client-observed latencies. `cached` toggles the request's
/// no_cache flag: cold requests skip the cache lookup (each one computes),
/// cached ones repeat a warmed key.
CellResult RunCell(const Server& server, const Request& base, int clients,
                   Index per_client, bool cached) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<int> errors{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port(), 120.0).ok()) {
        errors.fetch_add(1);
        return;
      }
      Request request = base;
      request.no_cache = !cached;
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(per_client));
      for (Index i = 0; i < per_client; ++i) {
        request.id = c * 1000 + static_cast<int>(i);
        Response response;
        WallTimer timer;
        if (!client.Query(request, &response).ok() || !response.ok) {
          errors.fetch_add(1);
          return;
        }
        mine.push_back(timer.Seconds() * 1e6);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.Seconds();

  CellResult result;
  result.clients = clients;
  result.cached = cached;
  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  result.requests = static_cast<Index>(all.size());
  if (errors.load() > 0 || all.empty()) return result;
  std::sort(all.begin(), all.end());
  result.qps = static_cast<double>(all.size()) / elapsed;
  result.p50_us = Percentile(all, 0.50);
  result.p99_us = Percentile(all, 0.99);
  double sum = 0.0;
  for (const double v : all) sum += v;
  result.mean_us = sum / static_cast<double>(all.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader(
      "Query-service throughput: loopback QPS and latency, cold vs cached",
      "service subsystem (no paper artifact)", config);

  ServerOptions options;
  options.engine.workers = 2;
  options.engine.queue_capacity = 256;
  options.max_connections = 64;
  Server server(options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_service_throughput: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // One moderately expensive query shape: the server generates the series
  // (small request frames), five lengths per request.
  Request base;
  base.type = QueryType::kProfile;
  base.dataset = "PLANTED";
  base.n = config.n / 2;
  base.len_min = config.len_min / 2;
  base.len_max = base.len_min + 4;
  base.k = 3;

  // Warm the cache key the cached cells will repeat.
  {
    Client warm;
    if (!warm.Connect("127.0.0.1", server.port(), 120.0).ok()) return 1;
    Response response;
    Request request = base;
    if (!warm.Query(request, &response).ok() || !response.ok) {
      std::fprintf(stderr, "bench_service_throughput: warmup failed\n");
      return 1;
    }
  }

  Table table(
      {"clients", "mode", "requests", "qps", "p50-us", "p99-us", "mean-us"});
  std::vector<CellResult> results;
  for (const int clients : {1, 4, 16}) {
    for (const bool cached : {false, true}) {
      // Cold requests each recompute (~tens of ms); cached ones are
      // round-trip bound, so they can afford many more repetitions.
      const Index per_client =
          cached ? 200 : (clients == 1 ? 6 : (clients == 4 ? 3 : 2));
      const CellResult cell =
          RunCell(server, base, clients, per_client, cached);
      if (cell.qps == 0.0) {
        std::fprintf(stderr, "bench_service_throughput: cell failed "
                             "(clients=%d cached=%d)\n",
                     clients, cached ? 1 : 0);
        return 1;
      }
      table.AddRow({Table::Int(cell.clients),
                    std::string(cached ? "cached" : "cold"),
                    Table::Int(cell.requests), Table::Num(cell.qps, 1),
                    Table::Num(cell.p50_us, 1), Table::Num(cell.p99_us, 1),
                    Table::Num(cell.mean_us, 1)});
      results.push_back(cell);
    }
  }
  server.Shutdown();

  std::printf("%s\n", table.Render().c_str());

  // Machine-readable output, one object per cell, mirrored to the file the
  // CI and docs tooling read.
  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& cell = results[i];
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "  {\"bench\":\"service_throughput\",\"clients\":%d,"
        "\"mode\":\"%s\",\"requests\":%lld,\"qps\":%.2f,"
        "\"p50_us\":%.1f,\"p99_us\":%.1f,\"mean_us\":%.1f}%s\n",
        cell.clients, cell.cached ? "cached" : "cold",
        static_cast<long long>(cell.requests), cell.qps, cell.p50_us,
        cell.p99_us, cell.mean_us, i + 1 < results.size() ? "," : "");
    json += line;
    std::printf("%s", line);
  }
  json += "]\n";
  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_service.json\n");
  }

  // The whole point of the cache, stated as an invariant: for every client
  // count, warm-cache repeats must be measurably faster than cold runs.
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const CellResult& cold = results[i];
    const CellResult& cached = results[i + 1];
    if (cached.p50_us * 2.0 > cold.p50_us) {
      std::fprintf(stderr,
                   "bench_service_throughput: cached p50 (%.1f us) not "
                   "measurably below cold p50 (%.1f us) at %d clients\n",
                   cached.p50_us, cold.p50_us, cold.clients);
      return 1;
    }
  }
  std::printf("cached p50 is <1/2 of cold p50 at every client count.\n");
  return 0;
}
