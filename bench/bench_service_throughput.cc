// End-to-end throughput of the motif query service over loopback TCP:
// queries per second and p50/p99 latency in three modes — cold (every
// request recomputes: no_cache + no_catalog), catalog_warm (every request
// skips the result cache but serves from the persisted artifact catalog:
// no_cache only), and cached (every request hits the result cache) — at
// 1/4/16 concurrent clients, plus a series-size sweep at 4 clients. The
// catalog column is the tentpole's reason to exist: on the largest series
// the catalog-warm p50 must sit at least 10x below the cold p50 (hard
// gate), and the cached rows must stay below the cold ones at every client
// count. Results are also written to BENCH_service.json for downstream
// tooling.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace valmod;

/// The three serving paths the table compares. Cold pays the full STOMP,
/// catalog_warm pays an artifact load + projection, cached pays a
/// result-cache lookup.
enum class Mode { kCold, kCatalogWarm, kCached };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kCold:
      return "cold";
    case Mode::kCatalogWarm:
      return "catalog_warm";
    case Mode::kCached:
      return "cached";
  }
  return "?";
}

struct CellResult {
  Index n = 0;
  int clients = 0;
  Mode mode = Mode::kCold;
  Index requests = 0;
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

double Percentile(std::vector<double>& sorted_latencies, double q) {
  if (sorted_latencies.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_latencies.size() - 1));
  return sorted_latencies[rank];
}

Request BaseRequest(Index n) {
  Request request;
  request.type = QueryType::kProfile;
  request.dataset = "PLANTED";
  request.n = n;
  request.len_min = 64;
  request.len_max = 68;
  request.k = 3;
  return request;
}

/// Runs `per_client` queries from `clients` concurrent connections and
/// aggregates client-observed latencies. The mode sets the request's
/// no_cache/no_catalog flags: cold requests skip both shared answers (each
/// one computes), catalog_warm ones skip only the result cache (each one
/// serves from the persisted artifact), cached ones repeat a warmed key.
CellResult RunCell(const Server& server, Index n, int clients,
                   Index per_client, Mode mode) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::atomic<int> errors{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port(), 120.0).ok()) {
        errors.fetch_add(1);
        return;
      }
      Request request = BaseRequest(n);
      request.no_cache = mode != Mode::kCached;
      request.no_catalog = mode == Mode::kCold;
      auto& mine = latencies[static_cast<std::size_t>(c)];
      mine.reserve(static_cast<std::size_t>(per_client));
      for (Index i = 0; i < per_client; ++i) {
        request.id = c * 1000 + static_cast<int>(i);
        Response response;
        WallTimer timer;
        if (!client.Query(request, &response).ok() || !response.ok) {
          errors.fetch_add(1);
          return;
        }
        mine.push_back(timer.Seconds() * 1e6);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed = wall.Seconds();

  CellResult result;
  result.n = n;
  result.clients = clients;
  result.mode = mode;
  std::vector<double> all;
  for (const auto& mine : latencies) {
    all.insert(all.end(), mine.begin(), mine.end());
  }
  result.requests = static_cast<Index>(all.size());
  if (errors.load() > 0 || all.empty()) return result;
  std::sort(all.begin(), all.end());
  result.qps = static_cast<double>(all.size()) / elapsed;
  result.p50_us = Percentile(all, 0.50);
  result.p99_us = Percentile(all, 0.99);
  double sum = 0.0;
  for (const double v : all) sum += v;
  result.mean_us = sum / static_cast<double>(all.size());
  return result;
}

/// One plain request per size: computes the artifact, writes it through to
/// the catalog, and seeds the result-cache key the cached cells repeat.
bool Warm(const Server& server, Index n) {
  Client warm;
  if (!warm.Connect("127.0.0.1", server.port(), 120.0).ok()) return false;
  Response response;
  const Request request = BaseRequest(n);
  return warm.Query(request, &response).ok() && response.ok;
}

Index ColdPerClient(Index n, int clients) {
  // Cold requests cost O(n^2); keep the wall clock of a cell bounded.
  if (n >= 16384) return 1;
  if (n >= 8192) return 2;
  return clients >= 16 ? 2 : (clients >= 4 ? 3 : 6);
}

}  // namespace

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader(
      "Query-service throughput: loopback QPS and latency, cold vs "
      "catalog-warm vs cached",
      "service subsystem (no paper artifact)", config);

  ServerOptions options;
  options.engine.workers = 2;
  options.engine.queue_capacity = 256;
  options.max_connections = 64;
  // The artifact catalog under test: a scratch directory, populated by the
  // warmup's write-through, served by the catalog_warm cells.
  options.engine.catalog_dir = "bench_catalog_scratch";
  Server server(options);
  const Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "bench_service_throughput: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const Index base_n = config.n / 2;
  // The size sweep's largest series carries the hard catalog gate below.
  const std::vector<Index> sizes = {base_n, config.n, config.n * 4};

  Table table({"n", "clients", "mode", "requests", "qps", "p50-us", "p99-us",
               "mean-us"});
  std::vector<CellResult> results;
  auto run_cell = [&](Index n, int clients, Index per_client,
                      Mode mode) -> bool {
    const CellResult cell = RunCell(server, n, clients, per_client, mode);
    if (cell.qps == 0.0) {
      std::fprintf(stderr,
                   "bench_service_throughput: cell failed "
                   "(n=%lld clients=%d mode=%s)\n",
                   static_cast<long long>(n), clients, ModeName(mode));
      return false;
    }
    table.AddRow({Table::Int(cell.n), Table::Int(cell.clients),
                  std::string(ModeName(cell.mode)), Table::Int(cell.requests),
                  Table::Num(cell.qps, 1), Table::Num(cell.p50_us, 1),
                  Table::Num(cell.p99_us, 1), Table::Num(cell.mean_us, 1)});
    results.push_back(cell);
    return true;
  };

  // Sweep 1: client scaling at the base size, all three modes.
  if (!Warm(server, base_n)) return 1;
  for (const int clients : {1, 4, 16}) {
    for (const Mode mode :
         {Mode::kCold, Mode::kCatalogWarm, Mode::kCached}) {
      const Index per_client = mode == Mode::kCold
                                   ? ColdPerClient(base_n, clients)
                                   : (mode == Mode::kCatalogWarm ? 100 : 200);
      if (!run_cell(base_n, clients, per_client, mode)) return 1;
    }
  }

  // Sweep 2: series size at 4 clients, cold vs catalog_warm — the gap the
  // catalog exists to create, and it must widen with n (cold is O(n^2),
  // the artifact load is O(n)).
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    const Index n = sizes[i];
    if (!Warm(server, n)) return 1;
    for (const Mode mode : {Mode::kCold, Mode::kCatalogWarm}) {
      const Index per_client =
          mode == Mode::kCold ? ColdPerClient(n, 4) : 50;
      if (!run_cell(n, 4, per_client, mode)) return 1;
    }
  }
  server.Shutdown();

  std::printf("%s\n", table.Render().c_str());

  // Machine-readable output, one object per cell, mirrored to the file the
  // CI and docs tooling read.
  std::string json = "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CellResult& cell = results[i];
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "  {\"bench\":\"service_throughput\",\"n\":%lld,\"clients\":%d,"
        "\"mode\":\"%s\",\"requests\":%lld,\"qps\":%.2f,"
        "\"p50_us\":%.1f,\"p99_us\":%.1f,\"mean_us\":%.1f}%s\n",
        static_cast<long long>(cell.n), cell.clients, ModeName(cell.mode),
        static_cast<long long>(cell.requests), cell.qps, cell.p50_us,
        cell.p99_us, cell.mean_us, i + 1 < results.size() ? "," : "");
    json += line;
    std::printf("%s", line);
  }
  json += "]\n";
  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out != nullptr) {
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_service.json\n");
  }

  // Gate 1: for every client count at the base size, warm-cache repeats
  // must be measurably faster than cold runs (the result cache's reason to
  // exist).
  for (const CellResult& cold : results) {
    if (cold.mode != Mode::kCold || cold.n != base_n) continue;
    for (const CellResult& cached : results) {
      if (cached.mode != Mode::kCached || cached.n != base_n ||
          cached.clients != cold.clients) {
        continue;
      }
      if (cached.p50_us * 2.0 > cold.p50_us) {
        std::fprintf(stderr,
                     "bench_service_throughput: cached p50 (%.1f us) not "
                     "measurably below cold p50 (%.1f us) at %d clients\n",
                     cached.p50_us, cold.p50_us, cold.clients);
        return 1;
      }
    }
  }

  // Gate 2 (hard, the tentpole's acceptance): on the largest series,
  // catalog-warm serving must beat a cold recompute by at least 10x p50 —
  // otherwise the persisted artifact is not doing its job.
  const Index largest = sizes.back();
  const CellResult* cold_large = nullptr;
  const CellResult* warm_large = nullptr;
  for (const CellResult& cell : results) {
    if (cell.n != largest) continue;
    if (cell.mode == Mode::kCold) cold_large = &cell;
    if (cell.mode == Mode::kCatalogWarm) warm_large = &cell;
  }
  if (cold_large == nullptr || warm_large == nullptr) {
    std::fprintf(stderr,
                 "bench_service_throughput: missing largest-series cells\n");
    return 1;
  }
  if (warm_large->p50_us * 10.0 >= cold_large->p50_us) {
    std::fprintf(stderr,
                 "bench_service_throughput: catalog-warm p50 (%.1f us) is "
                 "not 10x below cold p50 (%.1f us) at n=%lld\n",
                 warm_large->p50_us, cold_large->p50_us,
                 static_cast<long long>(largest));
    return 1;
  }
  std::printf(
      "cached p50 is <1/2 of cold p50 at every client count; catalog-warm "
      "p50 is %.0fx below cold p50 at n=%lld.\n",
      cold_large->p50_us / warm_large->p50_us,
      static_cast<long long>(largest));
  return 0;
}
