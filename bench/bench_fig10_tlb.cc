// Regenerates Figure 10: average tightness of the lower bound (TLB) per
// distance profile, ECG vs EMG, short vs long lengths.
// TLB = LB / true distance in [0, 1]; the harness prints the distribution
// of per-profile average TLB. Shape to verify: ECG's TLB is similar at both
// lengths; EMG's TLB drops sharply at the long length (the cause of the
// Figure 9 margin collapse).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/diagnostics.h"
#include "datasets/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 10: tightness of the lower bound (TLB)",
                     "Figure 10", config);

  const std::vector<std::pair<Index, Index>> ranges = {
      {config.motif_lengths.front(),
       config.motif_lengths.front() + config.range},
      {config.motif_lengths.back(),
       config.motif_lengths.back() + config.range}};

  Table table({"dataset", "length", "mean TLB", "q10", "median", "q90"});
  for (const char* name : {"ECG", "EMG"}) {
    Series series;
    if (!GenerateByName(name, config.n, &series).ok()) return 1;
    for (const auto& [len_base, len_target] : ranges) {
      const LbDiagnostics diag =
          CollectLbDiagnostics(series, len_base, len_target, config.p);
      std::vector<double> tlb = diag.tlb;
      if (tlb.empty()) continue;
      std::sort(tlb.begin(), tlb.end());
      auto quantile = [&tlb](double q) {
        const std::size_t at =
            static_cast<std::size_t>(q * static_cast<double>(tlb.size() - 1));
        return tlb[at];
      };
      table.AddRow({name, Table::Int(len_target), Table::Num(diag.MeanTlb(), 3),
                    Table::Num(quantile(0.1), 3), Table::Num(quantile(0.5), 3),
                    Table::Num(quantile(0.9), 3)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
