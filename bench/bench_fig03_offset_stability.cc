// Regenerates Figure 3: the top motif of adjacent lengths often shares the
// same offsets (the observation that motivates reusing computations across
// lengths), but NOT always — which is why the rank-preserving lower bound
// of Figure 4 is needed. The harness reports, for each dataset, how often
// the motif offsets of length l+1 coincide with those of length l across a
// length sweep.

#include <cstdio>
#include <cstdlib>

#include "baselines/stomp_adapted.h"
#include "bench_common.h"
#include "datasets/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader(
      "Figure 3: motif-offset stability across adjacent lengths", "Figure 3",
      config);

  const Index len_min = config.len_min;
  const Index len_max = config.len_min + config.range * 2;
  Table table({"dataset", "lengths", "same offsets", "moved (<=2)",
               "jumped"});
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    const Series series = spec.generator(config.n / 2, spec.default_seed);
    const PerLengthMotifs sweep = StompPerLength(series, len_min, len_max);
    Index same = 0;
    Index moved = 0;
    Index jumped = 0;
    for (std::size_t k = 1; k < sweep.motifs.size(); ++k) {
      const MotifPair& prev = sweep.motifs[k - 1];
      const MotifPair& cur = sweep.motifs[k];
      if (!prev.valid() || !cur.valid()) continue;
      const long long da = std::llabs(static_cast<long long>(cur.a - prev.a));
      const long long db = std::llabs(static_cast<long long>(cur.b - prev.b));
      if (da == 0 && db == 0) {
        ++same;
      } else if (da <= 2 && db <= 2) {
        ++moved;
      } else {
        ++jumped;
      }
    }
    char lengths[32];
    std::snprintf(lengths, sizeof(lengths), "%lld..%lld",
                  static_cast<long long>(len_min),
                  static_cast<long long>(len_max));
    table.AddRow({spec.name, lengths, Table::Int(same), Table::Int(moved),
                  Table::Int(jumped)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "'jumped' rows are the Figure 4 motivation: the nearest neighbour can\n"
      "change as the length grows, so naive offset reuse is not exact.\n");
  return 0;
}
