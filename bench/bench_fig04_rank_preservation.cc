// Regenerates Figure 4: ranking a distance profile by true distances is NOT
// stable as the subsequence length grows, but ranking by the Eq. 2 lower
// bound is provably rank-preserving. The harness takes one distance
// profile, ranks its entries both ways at a base length, and counts the
// pairwise rank inversions after extending the length by k.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/lower_bound.h"
#include "datasets/registry.h"
#include "signal/distance.h"
#include "signal/znorm.h"
#include "util/prefix_stats.h"
#include "util/table.h"

namespace {

using valmod::Index;

/// Counts order inversions between two rankings of the same items:
/// fraction of item pairs whose relative order differs. 0 = same ranking.
double InversionFraction(const std::vector<double>& base,
                         const std::vector<double>& extended) {
  Index inversions = 0;
  Index pairs = 0;
  for (std::size_t x = 0; x < base.size(); ++x) {
    for (std::size_t y = x + 1; y < base.size(); ++y) {
      ++pairs;
      const bool base_less = base[x] < base[y];
      const bool ext_less = extended[x] < extended[y];
      if (base_less != ext_less) ++inversions;
    }
  }
  return pairs == 0 ? 0.0
                    : static_cast<double>(inversions) /
                          static_cast<double>(pairs);
}

}  // namespace

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader(
      "Figure 4: rank stability — true distances vs Eq. 2 lower bounds",
      "Figure 4", config);

  Table table({"dataset", "k", "true-dist inversions", "LB inversions"});
  const Index base_len = config.len_min;
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    Series raw = spec.generator(config.n / 2, spec.default_seed);
    const Series series = CenterSeries(raw);
    const PrefixStats stats(series);
    const Index owner = static_cast<Index>(series.size()) / 3;
    // Sample entries of the owner's distance profile (every 29th offset).
    std::vector<Index> entries;
    const Index max_len = base_len + config.range * 2;
    const Index n_sub_final =
        NumSubsequences(static_cast<Index>(series.size()), max_len);
    for (Index j = 0; j < n_sub_final; j += 29) {
      if (!IsTrivialMatch(owner, j, base_len)) entries.push_back(j);
    }
    // Base-length values.
    std::vector<double> base_dist;
    std::vector<double> base_lb;
    const MeanStd owner_stats = stats.Stats(owner, base_len);
    for (const Index j : entries) {
      const double qt = SubsequenceDotProduct(series, owner, j, base_len);
      const double q = CorrelationFromDotProduct(qt, base_len, owner_stats,
                                                 stats.Stats(j, base_len));
      base_dist.push_back(DistanceFromCorrelation(q, base_len));
      base_lb.push_back(LowerBoundBase(q, base_len));
    }
    for (const Index k : {config.range, config.range * 2}) {
      const Index len = base_len + k;
      std::vector<double> true_dist;
      std::vector<double> lb_now;
      const double sigma_base = stats.Std(owner, base_len);
      const double sigma_now = stats.Std(owner, len);
      for (std::size_t e = 0; e < entries.size(); ++e) {
        true_dist.push_back(
            SubsequenceDistance(series, stats, owner, entries[e], len));
        lb_now.push_back(
            LowerBoundAtLength(base_lb[e], sigma_base, sigma_now));
      }
      table.AddRow({spec.name, Table::Int(k),
                    Table::Num(InversionFraction(base_dist, true_dist), 4),
                    Table::Num(InversionFraction(base_lb, lb_now), 4)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "LB inversions are 0 by construction (Section 4.1's rank preservation);\n"
      "true-distance rankings drift, so they cannot be cached across lengths.\n");
  return 0;
}
