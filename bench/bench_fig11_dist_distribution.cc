// Regenerates Figure 11: distribution of pairwise subsequence distances
// (straight z-normalized Euclidean, no length normalization), ECG vs EMG,
// short vs long subsequence length. Shape to verify: ECG's distribution
// stays similarly shaped across lengths; EMG's shifts toward many large
// values at the long length, which degrades VALMOD's bound there.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datasets/registry.h"
#include "signal/distance.h"
#include "util/histogram.h"
#include "util/prefix_stats.h"
#include "util/random.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 11: pairwise subsequence distance distribution",
                     "Figure 11", config);

  const Index lengths[2] = {config.motif_lengths.front() + config.range,
                            config.motif_lengths.back() + config.range};
  const Index pairs_sampled = 20000;

  for (const char* name : {"ECG", "EMG"}) {
    Series series;
    if (!GenerateByName(name, config.n, &series).ok()) return 1;
    const PrefixStats stats(series);
    for (const Index len : lengths) {
      Rng rng(1234);
      std::vector<double> distances;
      distances.reserve(static_cast<std::size_t>(pairs_sampled));
      const Index n_sub = NumSubsequences(config.n, len);
      for (Index k = 0; k < pairs_sampled; ++k) {
        const Index i = rng.UniformIndex(0, n_sub - 1);
        const Index j = rng.UniformIndex(0, n_sub - 1);
        if (IsTrivialMatch(i, j, len)) continue;
        distances.push_back(SubsequenceDistance(series, stats, i, j, len));
      }
      const Histogram histogram = MakeHistogram(distances, 20);
      std::printf("--- %s, subsequence length %lld (%lld sampled pairs) ---\n",
                  name, static_cast<long long>(len),
                  static_cast<long long>(distances.size()));
      std::printf("%s\n", histogram.Render(48).c_str());
    }
  }
  return 0;
}
