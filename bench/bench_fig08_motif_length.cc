// Regenerates Figure 8: scalability for various motif lengths.
// For each dataset and each l_min of the (scaled) grid, all four algorithms
// search the range [l_min, l_min + range]. Shape to verify: VALMOD stays
// roughly flat across l_min; STOMP pays a full matrix profile per length;
// QUICK MOTIF is erratic (PAA quality depends on the length/data); MOEN
// degrades as its carried bound loosens. DNF marks a blown cell budget,
// exactly like the missing points of the paper's plots.

#include <cstdio>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_adapted.h"
#include "bench_common.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 8: runtime vs motif length (seconds per cell)",
                     "Figure 8", config);

  Table table({"dataset", "l_min", "VALMOD", "STOMP", "QUICK MOTIF", "MOEN"});
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    const Series series = spec.generator(config.n, spec.default_seed);
    for (const Index len_min : config.motif_lengths) {
      const Index len_max = len_min + config.range;

      WallTimer timer;
      ValmodOptions valmod_options;
      valmod_options.len_min = len_min;
      valmod_options.len_max = len_max;
      valmod_options.p = config.p;
      valmod_options.deadline =
          Deadline::After(config.cell_deadline_seconds);
      const ValmodResult valmod = RunValmod(series, valmod_options);
      const std::string valmod_time =
          bench::FormatSeconds(timer.Seconds(), valmod.dnf);

      timer.Reset();
      const PerLengthMotifs stomp =
          StompPerLength(series, len_min, len_max,
                         Deadline::After(config.cell_deadline_seconds));
      const std::string stomp_time =
          bench::FormatSeconds(timer.Seconds(), stomp.dnf);

      timer.Reset();
      QuickMotifOptions quick_options;
      quick_options.deadline = Deadline::After(config.cell_deadline_seconds);
      const PerLengthMotifs quick =
          QuickMotifPerLength(series, len_min, len_max, quick_options);
      const std::string quick_time =
          bench::FormatSeconds(timer.Seconds(), quick.dnf);

      timer.Reset();
      const MoenResult moen =
          MoenVariableLength(series, len_min, len_max,
                             Deadline::After(config.cell_deadline_seconds));
      const std::string moen_time =
          bench::FormatSeconds(timer.Seconds(), moen.dnf);

      table.AddRow({spec.name, Table::Int(len_min), valmod_time, stomp_time,
                    quick_time, moen_time});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
