// Substrate ablation: the anytime behaviour the paper leans on ("in just
// O(nc) steps the algorithm converges to what would be the final
// solution", Section 2). Compares three interruptible orders at equal
// work budgets — STAMP in sequential row order, STAMP in random row order,
// and SCRIMP in random diagonal order — by the mean profile excess after
// each budget slice. Shape to verify: every order converges to within a
// small excess after ~10% of the passes (the O(nc) claim); note SCRIMP's
// passes are O(n) while STAMP's are O(n log n), so at equal pass counts
// SCRIMP has done log(n)-fold less work.

#include <cstdio>

#include "bench_common.h"
#include "datasets/registry.h"
#include "mp/scrimp.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "signal/znorm.h"
#include "util/prefix_stats.h"
#include "util/table.h"

namespace {

using valmod::Index;
using valmod::kInf;
using valmod::MatrixProfile;

double MeanExcess(const MatrixProfile& approx, const MatrixProfile& full) {
  double acc = 0.0;
  for (Index i = 0; i < full.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (approx.distances[k] == kInf) {
      acc += 5.0;  // Untouched offset: flat penalty.
    } else {
      acc += approx.distances[k] - full.distances[k];
    }
  }
  return acc / static_cast<double>(full.size());
}

}  // namespace

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Anytime convergence: STAMP orders vs SCRIMP diagonals",
                     "Section 2 anytime claim (ablation)", config);

  const Index len = config.len_min;
  Table table({"dataset", "budget (O(n) passes)", "STAMP seq", "STAMP rand",
               "SCRIMP rand"});
  for (const char* name : {"ECG", "EEG"}) {
    Series raw;
    if (!GenerateByName(name, config.n / 2, &raw).ok()) return 1;
    const Series series = CenterSeries(raw);
    const PrefixStats stats(series);
    const MatrixProfile full = Stomp(series, stats, len);
    for (const Index budget : {20, 60, 180}) {
      StampOptions seq;
      seq.randomize_order = false;
      seq.max_rows = budget;
      StampOptions rnd;
      rnd.randomize_order = true;
      rnd.max_rows = budget;
      ScrimpOptions diag;
      diag.max_diagonals = budget;
      table.AddRow(
          {name, Table::Int(budget),
           Table::Num(MeanExcess(Stamp(series, stats, len, seq), full), 3),
           Table::Num(MeanExcess(Stamp(series, stats, len, rnd), full), 3),
           Table::Num(MeanExcess(Scrimp(series, stats, len, diag), full),
                      3)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Values are the mean per-offset excess over the exact profile after\n"
      "the given number of passes (0 = converged; ~1900 passes complete the\n"
      "profile). All interruptible orders land within a small excess after\n"
      "~10%% of the work — the paper's O(nc) anytime convergence — and a\n"
      "SCRIMP pass is O(n) vs STAMP's O(n log n).\n");
  return 0;
}
