// Quantifies the paper's Section 7 argument for exactness: approximate
// motif discovery (PROJECTION, the algorithm whose "seven parameters" and
// approximation the paper's introduction leads with) misses the true motif
// a measurable fraction of the time, with an unbounded error when it does —
// while VALMOD is exact at every length by construction. Not a paper
// artifact; an ablation supporting its narrative.

#include <cstdio>

#include "baselines/projection.h"
#include "bench_common.h"
#include "datasets/registry.h"
#include "mp/stomp.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader(
      "Exact vs approximate: PROJECTION's recall of the true motif",
      "Section 7 exactness argument (ablation)", config);

  const Index len = config.len_min;
  const Index trials = 10;
  Table table({"dataset", "recall", "mean rel. error when missed",
               "PROJECTION s/trial", "exact s/trial"});
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    Index hits = 0;
    double miss_err = 0.0;
    Index misses = 0;
    double approx_seconds = 0.0;
    double exact_seconds = 0.0;
    for (Index trial = 0; trial < trials; ++trial) {
      const Series series =
          spec.generator(config.n / 2, spec.default_seed + 1000 +
                                           static_cast<std::uint64_t>(trial));
      WallTimer timer;
      ProjectionOptions options;
      options.seed = static_cast<std::uint64_t>(trial) + 7;
      // A generous, tuned configuration (large alphabet so highly regular
      // data still differentiates words; many rounds and candidates).
      options.sax.alphabet = 6;
      options.mask_size = 5;
      options.iterations = 20;
      options.candidates_per_round = 64;
      const MotifPair approx = ProjectionMotif(series, len, options);
      approx_seconds += timer.Seconds();
      timer.Reset();
      const MotifPair exact = MotifFromProfile(Stomp(series, len));
      exact_seconds += timer.Seconds();
      if (approx.distance <= exact.distance * (1.0 + 1e-6)) {
        ++hits;
      } else {
        ++misses;
        miss_err += (approx.distance - exact.distance) / exact.distance;
      }
    }
    table.AddRow({spec.name,
                  Table::Num(static_cast<double>(hits) /
                                 static_cast<double>(trials),
                             2),
                  misses > 0
                      ? Table::Num(miss_err / static_cast<double>(misses), 3)
                      : "-",
                  Table::Num(approx_seconds / trials, 3),
                  Table::Num(exact_seconds / trials, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "PROJECTION is fast, but its exact-motif recall is poor and strongly\n"
      "data-dependent, and when it misses, the error is unbounded (tiny on\n"
      "near-periodic data, >50%% on smooth data whose SAX words all"
      " collide).\nThis is the paper's case for exact discovery (e.g. the"
      " seismology\nliability example).\n");
  return 0;
}
