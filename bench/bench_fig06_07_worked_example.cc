// Regenerates the worked example of Figures 6-7 (Examples 4.1-4.2): run
// Algorithm 3 on a small series, show one distance profile's p=5 retained
// entries ranked by lower bound, then run Algorithm 4 for the next length
// and show the minDist <= maxLB certification and the global
// minDistABS < minLbAbs test — the paper's exact narrative, with live
// numbers.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/compute_matrix_profile.h"
#include "core/compute_sub_mp.h"
#include "datasets/generators.h"
#include "signal/distance.h"
#include "signal/znorm.h"
#include "util/prefix_stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figures 6-7: worked example of Algorithms 3-4",
                     "Figures 6-7 / Examples 4.1-4.2", config);

  // A small series with a strong planted structure, like the paper's
  // 1800-point example (scaled lengths: 60 -> 61 instead of 600 -> 601).
  const Index n = 1800;
  const Index len = 60;
  const Index p = 5;
  Series raw = GenerateEcg(n, 4242);
  const Series series = CenterSeries(raw);
  const PrefixStats stats(series);

  MatrixProfileWithLb base = ComputeMatrixProfileWithLb(series, stats, len, p);
  const MotifPair motif = MotifFromProfile(base.profile);
  std::printf(
      "Algorithm 3 at l=%lld: motif pair {T_%lld, T_%lld}, distance %.3f\n\n",
      static_cast<long long>(len), static_cast<long long>(motif.a),
      static_cast<long long>(motif.b), motif.distance);

  // Figure 6(b): the retained entries of the motif subsequence's profile,
  // ranked by lower-bound distance.
  const ProfileLbState& state =
      base.list_dp[static_cast<std::size_t>(motif.a)];
  std::vector<LbEntry> entries = state.entries.SortedAscending();
  Table profile_table({"rank", "neighbor offset", "LB (next len)",
                       "true dist (next len)"});
  const double sigma_next = stats.Std(motif.a, len + 1);
  for (std::size_t r = 0; r < entries.size(); ++r) {
    const LbEntry& e = entries[r];
    const double lb = e.lb_base * (state.sigma_base / sigma_next);
    const double true_dist =
        SubsequenceDistance(series, stats, motif.a, e.neighbor, len + 1);
    profile_table.AddRow({Table::Int(static_cast<long long>(r + 1)),
                          Table::Int(e.neighbor), Table::Num(lb, 3),
                          Table::Num(true_dist, 3)});
  }
  std::printf(
      "Figure 6(b): distance profile of T_%lld, p=%lld entries with the\n"
      "smallest lower bounds (evaluated for length %lld):\n%s\n",
      static_cast<long long>(motif.a), static_cast<long long>(p),
      static_cast<long long>(len + 1), profile_table.Render().c_str());

  // Figure 7: ComputeSubMP at len+1; report the certification outcome for
  // the motif's profile and globally.
  ListDp list_dp = std::move(base.list_dp);
  const SubMpResult sub = ComputeSubMp(series, stats, list_dp, len + 1, p);
  const double max_lb =
      list_dp[static_cast<std::size_t>(motif.a)].MaxLowerBound(stats, len + 1);
  std::printf(
      "Figure 7 / Example 4.2, length %lld:\n"
      "  motif profile: minDist = %.3f, maxLB = %.3f -> %s\n"
      "  global: minDistABS = %.3f, certified motif %s "
      "({T_%lld, T_%lld})\n"
      "  certified profiles: %lld / %lld; selective recomputes: %lld\n",
      static_cast<long long>(len + 1),
      sub.sub_mp[static_cast<std::size_t>(motif.a)], max_lb,
      sub.known[static_cast<std::size_t>(motif.a)]
          ? "VALID (the local min is certainly the true min)"
          : "non-valid (would need recomputation)",
      sub.min_dist_abs,
      sub.best_motif_found ? "FOUND without a new matrix profile" : "NOT found",
      static_cast<long long>(std::min(sub.min_owner, sub.min_neighbor)),
      static_cast<long long>(std::max(sub.min_owner, sub.min_neighbor)),
      static_cast<long long>(sub.valid_count),
      static_cast<long long>(sub.sub_mp.size()),
      static_cast<long long>(sub.recomputed_count));
  return 0;
}
