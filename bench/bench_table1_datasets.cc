// Regenerates Table 1: characteristics of the five evaluation datasets.
// The paper reports min/max/mean/std-dev/points for ECG, GAP, ASTRO, EMG,
// EEG; this harness prints the same rows for the synthetic stand-ins
// (see DESIGN.md, "Substitutions"). The shape to verify: ASTRO is tiny in
// amplitude, EEG spans hundreds of units, GAP is positive, ECG/EMG are
// sub-unit biosignals.

#include <cstdio>

#include "bench_common.h"
#include "datasets/registry.h"
#include "datasets/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Table 1: dataset characteristics", "Table 1", config);
  // Dataset statistics are cheap; use a larger slice than the bench default
  // so the summary is stable.
  const Index n = 100000;
  Table table({"dataset", "MIN", "MAX", "MEAN", "STD-DEV", "points"});
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    const Series series = spec.generator(n, spec.default_seed);
    const SeriesSummary summary = Summarize(series);
    table.AddRow({spec.name, Table::Num(summary.min, 5),
                  Table::Num(summary.max, 5), Table::Num(summary.mean, 5),
                  Table::Num(summary.std, 5), Table::Int(summary.n)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Note: synthetic stand-ins for the paper's real datasets; the paper's\n"
      "scale relationships hold (ASTRO ~1e-3 amplitude, EEG ~1e2, GAP > 0).\n");
  return 0;
}
