// Regenerates Figure 15: time to extract variable-length motif sets,
// varying K (top pairs, default D=4) and the radius factor D (default
// K=40), next to the time to compute VALMP itself. Shape to verify: set
// extraction is orders of magnitude cheaper than the VALMP computation,
// because the retained partial profiles answer most range queries without
// recomputing distance profiles.

#include <cstdio>

#include "bench_common.h"
#include "core/motif_sets.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 15: variable-length motif set extraction time",
                     "Figure 15", config);

  const Index k_values[] = {10, 20, 40, 60, 80};
  const double d_values[] = {2.0, 3.0, 4.0, 5.0, 6.0};

  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    const Series series = spec.generator(config.n, spec.default_seed);
    ValmodOptions options;
    options.len_min = config.len_min;
    options.len_max = config.len_min + config.range;
    // The paper's Figure 15 runs at the Table 2 default p = 50: the deeper
    // retained profiles are what let radius queries answer from listDP.
    options.p = 50;
    WallTimer timer;
    const ValmodResult result = RunValmod(series, options);
    const double valmp_seconds = timer.Seconds();
    std::printf("--- %s: VALMP time %.3f s ---\n", spec.name.c_str(),
                valmp_seconds);

    Table k_table({"K (D=4)", "top-K sets (s)", "sets", "from partial",
                   "recomputed"});
    for (const Index k : k_values) {
      MotifSetOptions set_options;
      set_options.k = k;
      set_options.radius_factor = 4.0;
      MotifSetStats stats;
      timer.Reset();
      const auto sets = ComputeVariableLengthMotifSets(series, result,
                                                       set_options, &stats);
      k_table.AddRow({Table::Int(k), Table::Num(timer.Seconds(), 5),
                      Table::Int(static_cast<long long>(sets.size())),
                      Table::Int(stats.answered_from_partial),
                      Table::Int(stats.full_profile_recomputes)});
    }
    std::printf("%s", k_table.Render().c_str());

    Table d_table({"D (K=40)", "top-K sets (s)", "sets", "from partial",
                   "recomputed"});
    for (const double d : d_values) {
      MotifSetOptions set_options;
      set_options.k = 40;
      set_options.radius_factor = d;
      MotifSetStats stats;
      timer.Reset();
      const auto sets = ComputeVariableLengthMotifSets(series, result,
                                                       set_options, &stats);
      d_table.AddRow({Table::Num(d, 0), Table::Num(timer.Seconds(), 5),
                      Table::Int(static_cast<long long>(sets.size())),
                      Table::Int(stats.answered_from_partial),
                      Table::Int(stats.full_profile_recomputes)});
    }
    std::printf("%s\n", d_table.Render().c_str());
  }
  return 0;
}
