// Streaming-update cost: per-append incremental maintenance vs recomputing
// the batch matrix profile after every tick. The streaming update is
// O(window) per appended point while a batch recompute is O(window^2), so
// the speedup must grow linearly with the window — the asymptotic claim
// behind src/stream. Each row also reports the maintenance counters
// (MASS re-seeds, eviction repairs) so the cost drivers are visible.

#include <cstdio>

#include "bench_common.h"
#include "datasets/generators.h"
#include "mp/stomp.h"
#include "stream/streaming_profile.h"
#include "util/prefix_stats.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Streaming update: per-append cost vs batch recompute",
                     "streaming extension (no paper artifact)", config);

  const Index appends = 512;  // Timed appends per cell.
  Table table({"window", "len", "append-us", "batch-us", "speedup",
               "reseeds", "repairs"});
  for (const Index window : {Index{2048}, Index{4096}, Index{8192}}) {
    for (const Index len : {Index{64}, Index{128}}) {
      PlantedWalkSpec spec;
      spec.motif_length = len;
      spec.mean_period = window / 4;
      const Series data =
          GeneratePlantedWalk(window + appends, 1234, spec);

      // Fill the sliding window, then time the steady-state appends.
      StreamingMatrixProfile streaming(
          StreamingProfileOptions{len, window, 1 << 15});
      for (Index i = 0; i < window; ++i) {
        streaming.Append(data[static_cast<std::size_t>(i)]);
      }
      const Index reseeds_before = streaming.mass_reseeds();
      const Index repairs_before = streaming.stale_recomputes();
      WallTimer append_timer;
      for (Index i = window; i < window + appends; ++i) {
        streaming.Append(data[static_cast<std::size_t>(i)]);
      }
      const double per_append_us =
          append_timer.Seconds() * 1e6 / static_cast<double>(appends);

      // The alternative a stream consumer has without src/stream: a full
      // batch STOMP over the live window on every tick.
      const std::span<const double> live = streaming.series().Window();
      WallTimer batch_timer;
      const PrefixStats stats(live);
      const MatrixProfile batch = Stomp(live, stats, len);
      const double batch_us = batch_timer.Seconds() * 1e6;
      const double speedup = batch_us / per_append_us;
      (void)batch;

      table.AddRow({Table::Int(window), Table::Int(len),
                    Table::Num(per_append_us, 2), Table::Num(batch_us, 1),
                    Table::Num(speedup, 1),
                    Table::Int(streaming.mass_reseeds() - reseeds_before),
                    Table::Int(streaming.stale_recomputes() -
                               repairs_before)});
      std::printf(
          "{\"bench\":\"streaming_update\",\"window\":%lld,\"len\":%lld,"
          "\"appends\":%lld,\"per_append_us\":%.3f,\"batch_per_tick_us\":"
          "%.3f,\"speedup\":%.2f,\"mass_reseeds\":%lld,"
          "\"stale_recomputes\":%lld}\n",
          static_cast<long long>(window), static_cast<long long>(len),
          static_cast<long long>(appends), per_append_us, batch_us, speedup,
          static_cast<long long>(streaming.mass_reseeds() - reseeds_before),
          static_cast<long long>(streaming.stale_recomputes() -
                                 repairs_before));
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Per-append cost is O(window); a batch recompute is O(window^2), so\n"
      "the speedup column must roughly double with the window size.\n");
  return 0;
}
