#ifndef VALMOD_BENCH_BENCH_COMMON_H_
#define VALMOD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/timer.h"

namespace valmod {
namespace bench {

/// Scaled-down analogue of the paper's Table 2 benchmark grid. The paper
/// ran series of 0.1M-1M points with motif lengths 256-4096 on a 4-core
/// Xeon; this harness targets a single-core container, so every dimension
/// is scaled by ~1/16 while keeping the ratios (and hence the curve
/// *shapes*) intact. `VALMOD_BENCH_SCALE` multiplies the series sizes and
/// cell deadline for larger machines.
struct BenchConfig {
  /// Default series size (paper: 0.5M).
  Index n = 4096;
  /// Default smallest motif length (paper: 1024).
  Index len_min = 128;
  /// Default motif range l_max - l_min (paper: 200).
  Index range = 16;
  /// Default number of retained distance-profile entries (paper: 50).
  Index p = 10;
  /// Per-cell wall-clock budget before an algorithm is reported DNF
  /// (the paper: "failed to finish within a reasonable amount of time").
  double cell_deadline_seconds = 12.0;

  /// Grid values for the swept dimensions (paper values in parentheses).
  std::vector<Index> motif_lengths = {64, 96, 128, 192, 256};  // (256..4096)
  std::vector<Index> motif_ranges = {8, 16, 32, 64, 96};       // (100..600)
  std::vector<Index> series_sizes = {2048, 4096, 8192, 16384,
                                     24576};                   // (0.1M..1M)
  std::vector<Index> p_values = {5, 10, 15, 20, 50};           // (5..150)
};

/// Reads the config, applying the VALMOD_BENCH_SCALE environment variable.
BenchConfig LoadConfig();

/// One-line JSON object of the process-wide obs::Counters snapshot
/// (`{"obs_counters":{...}}`); the machine-readable side channel of the
/// human-oriented bench tables.
std::string ObsCountersJson();

/// Handles the shared `--obs-json` bench flag: when present it is removed
/// from argv (so downstream parsers like google-benchmark never see it) and
/// an atexit hook is installed that prints ObsCountersJson() to stdout
/// after the bench finishes. Every bench main calls this first.
void HandleObsJsonFlag(int* argc, char** argv);

/// Formats seconds, or "DNF" when the deadline was hit.
std::string FormatSeconds(double seconds, bool dnf);

/// Prints the standard bench header: what experiment this is, which paper
/// artifact it regenerates, and the active configuration.
void PrintHeader(const char* title, const char* paper_artifact,
                 const BenchConfig& config);

}  // namespace bench
}  // namespace valmod

#endif  // VALMOD_BENCH_BENCH_COMMON_H_
