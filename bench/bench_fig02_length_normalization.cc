// Regenerates Figure 2: comparing motifs of different lengths.
// Two TRACE-style washing-machine signatures act as "the same pattern at
// various speeds" (produced by downsampling, as in the paper). For each
// length the harness reports the plain z-normalized Euclidean distance, the
// length-normalized variant ED/len, and the paper's ED*sqrt(1/len); the
// second block divides each measure by its own maximum (the paper's right
// panel). Shape to verify: plain ED grows with length (bias to short),
// ED/len shrinks (bias to long), ED*sqrt(1/len) stays nearly flat.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datasets/generators.h"
#include "signal/resample.h"
#include "signal/znorm.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader(
      "Figure 2: length-invariance of candidate distance corrections",
      "Figure 2", config);

  // Two noisy variants of the signature, full length 1024.
  const Series sig_a = GenerateTraceSignature(1024, 1);
  const Series sig_b = GenerateTraceSignature(1024, 2);

  std::vector<Index> lengths;
  for (Index len = 128; len <= 1024; len += 128) lengths.push_back(len);

  std::vector<double> plain;
  std::vector<double> per_len;
  std::vector<double> sqrt_corr;
  for (const Index len : lengths) {
    const Series a = ResampleLinear(sig_a, len);
    const Series b = ResampleLinear(sig_b, len);
    const double d = ZNormalizedDistanceDirect(a, b);
    plain.push_back(d);
    per_len.push_back(d / static_cast<double>(len));
    sqrt_corr.push_back(LengthNormalize(d, len));
  }

  Table raw({"length", "ED", "ED/len", "ED*sqrt(1/len)"});
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    raw.AddRow({Table::Int(lengths[i]), Table::Num(plain[i], 4),
                Table::Num(per_len[i], 6), Table::Num(sqrt_corr[i], 4)});
  }
  std::printf("%s\n", raw.Render().c_str());

  auto max_of = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  const double m1 = max_of(plain);
  const double m2 = max_of(per_len);
  const double m3 = max_of(sqrt_corr);
  Table norm({"length", "ED/max", "(ED/len)/max", "(ED*sqrt(1/len))/max"});
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    norm.AddRow({Table::Int(lengths[i]), Table::Num(plain[i] / m1, 4),
                 Table::Num(per_len[i] / m2, 4),
                 Table::Num(sqrt_corr[i] / m3, 4)});
  }
  std::printf("Divide-by-max view (paper's right panel):\n%s\n",
              norm.Render().c_str());

  // The flatness verdict the figure conveys, quantified.
  auto spread = [&](const std::vector<double>& v, double m) {
    double lo = kInf;
    for (double x : v) lo = std::min(lo, x / m);
    return 1.0 - lo;  // 0 = perfectly flat.
  };
  std::printf(
      "Relative spread over lengths (lower = more length-invariant):\n"
      "  ED              : %.3f\n"
      "  ED/len          : %.3f\n"
      "  ED*sqrt(1/len)  : %.3f   <- the paper's correction\n",
      spread(plain, m1), spread(per_len, m2), spread(sqrt_corr, m3));
  return 0;
}
