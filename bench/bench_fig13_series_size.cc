// Regenerates Figure 13: scalability with increasing data series size.
// Fixed l_min and range, growing n. Shape to verify: every algorithm is
// super-linear in n, but VALMOD pays the quadratic cost once (at l_min)
// while STOMP/QUICK MOTIF pay it per length, so the gap widens with n and
// the baselines start hitting the cell budget (DNF) first.

#include <cstdio>
#include <string>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_adapted.h"
#include "bench_common.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "mp/simd/simd.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 13: runtime vs data series size (seconds)",
                     "Figure 13", config);

  // VALMOD runs twice per cell: once on the active kernel tier and once
  // pinned to the scalar table, so the figure doubles as the end-to-end
  // SIMD ablation. The per-cell speedups go to BENCH_fig13_simd.json.
  std::string simd_json = "[\n";
  char simd_line[256];
  bool first_simd_line = true;

  Table table({"dataset", "n", "VALMOD", "VALMOD(scalar)", "STOMP",
               "QUICK MOTIF", "MOEN"});
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    for (const Index n : config.series_sizes) {
      const Series series = spec.generator(n, spec.default_seed);
      const Index len_min = config.len_min;
      const Index len_max = len_min + config.range;

      WallTimer timer;
      ValmodOptions valmod_options;
      valmod_options.len_min = len_min;
      valmod_options.len_max = len_max;
      valmod_options.p = config.p;
      valmod_options.deadline =
          Deadline::After(config.cell_deadline_seconds);
      const ValmodResult valmod = RunValmod(series, valmod_options);
      const double valmod_seconds = timer.Seconds();
      const std::string valmod_time =
          bench::FormatSeconds(valmod_seconds, valmod.dnf);

      timer.Reset();
      double valmod_scalar_seconds;
      bool valmod_scalar_dnf;
      {
        simd::ScopedKernelOverride scalar_guard(simd::SimdLevel::kScalar);
        ValmodOptions scalar_options = valmod_options;
        scalar_options.deadline =
            Deadline::After(config.cell_deadline_seconds);
        const ValmodResult valmod_scalar = RunValmod(series, scalar_options);
        valmod_scalar_seconds = timer.Seconds();
        valmod_scalar_dnf = valmod_scalar.dnf;
      }
      const std::string valmod_scalar_time =
          bench::FormatSeconds(valmod_scalar_seconds, valmod_scalar_dnf);
      if (!valmod.dnf && !valmod_scalar_dnf) {
        std::snprintf(simd_line, sizeof(simd_line),
                      "%s  {\"dataset\":\"%s\",\"n\":%lld,"
                      "\"tier\":\"%s\",\"simd_s\":%.3f,\"scalar_s\":%.3f,"
                      "\"speedup\":%.2f}",
                      first_simd_line ? "" : ",\n", spec.name.c_str(),
                      static_cast<long long>(n),
                      simd::SimdLevelName(simd::ActiveSimdLevel()),
                      valmod_seconds, valmod_scalar_seconds,
                      valmod_scalar_seconds / valmod_seconds);
        simd_json += simd_line;
        first_simd_line = false;
      }

      timer.Reset();
      const PerLengthMotifs stomp =
          StompPerLength(series, len_min, len_max,
                         Deadline::After(config.cell_deadline_seconds));
      const std::string stomp_time =
          bench::FormatSeconds(timer.Seconds(), stomp.dnf);

      timer.Reset();
      QuickMotifOptions quick_options;
      quick_options.deadline = Deadline::After(config.cell_deadline_seconds);
      const PerLengthMotifs quick =
          QuickMotifPerLength(series, len_min, len_max, quick_options);
      const std::string quick_time =
          bench::FormatSeconds(timer.Seconds(), quick.dnf);

      timer.Reset();
      const MoenResult moen =
          MoenVariableLength(series, len_min, len_max,
                             Deadline::After(config.cell_deadline_seconds));
      const std::string moen_time =
          bench::FormatSeconds(timer.Seconds(), moen.dnf);

      table.AddRow({spec.name, Table::Int(n), valmod_time, valmod_scalar_time,
                    stomp_time, quick_time, moen_time});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  simd_json += "\n]\n";
  if (std::FILE* out = std::fopen("BENCH_fig13_simd.json", "w")) {
    std::fputs(simd_json.c_str(), out);
    std::fclose(out);
    std::printf("wrote BENCH_fig13_simd.json\n");
  }
  return 0;
}
