// Regenerates Figure 9: maxLB - minDist margins of the partial distance
// profiles, ECG vs EMG, short vs long subsequence lengths.
// For each dataset and each (l_min -> l_max) pair the harness reports the
// distribution of per-profile margins at l_max. A positive margin means the
// profile's minimum was certified from the p retained entries alone (the
// condition of Algorithm 4 line 16). Shape to verify: ECG keeps most
// margins positive at both lengths; EMG's margins collapse at the long
// length, which is why VALMOD's pruning degrades there (the Figure 8 EMG
// anomaly).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/diagnostics.h"
#include "datasets/registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 9: pruning margin (maxLB - minDist) per profile",
                     "Figure 9", config);

  // The paper contrasts the two ends of its length grid on ECG and EMG.
  const std::vector<std::pair<Index, Index>> ranges = {
      {config.motif_lengths.front(),
       config.motif_lengths.front() + config.range},
      {config.motif_lengths.back(),
       config.motif_lengths.back() + config.range}};

  Table table({"dataset", "length", "q10", "median", "q90",
               "frac margin>0"});
  for (const char* name : {"ECG", "EMG"}) {
    Series series;
    if (!GenerateByName(name, config.n, &series).ok()) return 1;
    for (const auto& [len_base, len_target] : ranges) {
      const LbDiagnostics diag =
          CollectLbDiagnostics(series, len_base, len_target, config.p);
      std::vector<double> margins = diag.margins;
      if (margins.empty()) continue;
      std::sort(margins.begin(), margins.end());
      auto quantile = [&margins](double q) {
        const std::size_t at = static_cast<std::size_t>(
            q * static_cast<double>(margins.size() - 1));
        return margins[at];
      };
      table.AddRow({name, Table::Int(len_target), Table::Num(quantile(0.1), 3),
                    Table::Num(quantile(0.5), 3), Table::Num(quantile(0.9), 3),
                    Table::Num(diag.PositiveMarginFraction(), 3)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Positive margin == profile certified without recomputation; the EMG\n"
      "fraction should drop sharply at the long length while ECG holds.\n");
  return 0;
}
