// Regenerates Figure 12: scalability with increasing motif length range.
// Fixed l_min, growing l_max - l_min. Shape to verify: VALMOD grows gently
// (one matrix profile + cheap ComputeSubMP per extra length); STOMP and
// QUICK MOTIF grow linearly in the range (one full search per length) and
// start missing the cell budget; MOEN sits in between but degrades as its
// carried bound loosens over many length steps.

#include <cstdio>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_adapted.h"
#include "bench_common.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 12: runtime vs motif length range (seconds)",
                     "Figure 12", config);

  Table table({"dataset", "range", "VALMOD", "STOMP", "QUICK MOTIF", "MOEN"});
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    const Series series = spec.generator(config.n, spec.default_seed);
    for (const Index range : config.motif_ranges) {
      const Index len_min = config.len_min;
      const Index len_max = len_min + range;

      WallTimer timer;
      ValmodOptions valmod_options;
      valmod_options.len_min = len_min;
      valmod_options.len_max = len_max;
      valmod_options.p = config.p;
      valmod_options.deadline =
          Deadline::After(config.cell_deadline_seconds);
      const ValmodResult valmod = RunValmod(series, valmod_options);
      const std::string valmod_time =
          bench::FormatSeconds(timer.Seconds(), valmod.dnf);

      timer.Reset();
      const PerLengthMotifs stomp =
          StompPerLength(series, len_min, len_max,
                         Deadline::After(config.cell_deadline_seconds));
      const std::string stomp_time =
          bench::FormatSeconds(timer.Seconds(), stomp.dnf);

      timer.Reset();
      QuickMotifOptions quick_options;
      quick_options.deadline = Deadline::After(config.cell_deadline_seconds);
      const PerLengthMotifs quick =
          QuickMotifPerLength(series, len_min, len_max, quick_options);
      const std::string quick_time =
          bench::FormatSeconds(timer.Seconds(), quick.dnf);

      timer.Reset();
      const MoenResult moen =
          MoenVariableLength(series, len_min, len_max,
                             Deadline::After(config.cell_deadline_seconds));
      const std::string moen_time =
          bench::FormatSeconds(timer.Seconds(), moen.dnf);

      table.AddRow({spec.name, Table::Int(range), valmod_time, stomp_time,
                    quick_time, moen_time});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  return 0;
}
