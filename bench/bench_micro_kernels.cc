// google-benchmark microbenchmarks for the hot kernels underneath every
// experiment: FFT, the MASS sliding dot product, the STOMP row update,
// Eq. 3 distances from cached statistics, the Eq. 2 lower bound, and the
// bounded heap that implements listDP. These are the ablation counterpart
// to the figure-level benches: they show where the O(1)-per-entry claims
// of Algorithm 4 come from.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/lower_bound.h"
#include "mp/matrix_profile.h"
#include "mp/simd/simd.h"
#include "mp/stomp.h"
#include "signal/distance.h"
#include "signal/fft.h"
#include "signal/sliding_dot.h"
#include "util/bounded_heap.h"
#include "util/prefix_stats.h"
#include "util/random.h"
#include "util/timer.h"

namespace valmod {
namespace {

Series RandomSeries(Index n, std::uint64_t seed) {
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), 0.0};
  for (auto _ : state) {
    auto copy = data;
    Fft(copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_SlidingDotProduct(benchmark::State& state) {
  const Index n = state.range(0);
  const Index m = 128;
  const Series series = RandomSeries(n, 2);
  const Series query(series.begin(), series.begin() + m);
  for (auto _ : state) {
    auto qt = SlidingDotProduct(query, series);
    benchmark::DoNotOptimize(qt.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SlidingDotProduct)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity();

void BM_StompFull(benchmark::State& state) {
  const Index n = state.range(0);
  const Series series = RandomSeries(n, 3);
  const PrefixStats stats(series);
  for (auto _ : state) {
    auto profile = Stomp(series, stats, 128);
    benchmark::DoNotOptimize(profile.distances.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StompFull)->RangeMultiplier(2)->Range(1024, 4096)->Complexity();

void BM_Eq3DistanceFromCachedStats(benchmark::State& state) {
  const Series series = RandomSeries(4096, 4);
  const PrefixStats stats(series);
  const MeanStd a = stats.Stats(10, 128);
  const MeanStd b = stats.Stats(900, 128);
  double qt = SubsequenceDotProduct(series, 10, 900, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ZNormalizedDistanceFromDotProduct(qt, 128, a, b));
    qt += 1e-9;  // Defeat constant folding.
  }
}
BENCHMARK(BM_Eq3DistanceFromCachedStats);

void BM_LowerBoundEvaluation(benchmark::State& state) {
  double q = 0.37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LowerBoundDistance(q, 128, 1.7, 2.1));
    q += 1e-9;
  }
}
BENCHMARK(BM_LowerBoundEvaluation);

void BM_PrefixStatsWindow(benchmark::State& state) {
  const Series series = RandomSeries(65536, 5);
  const PrefixStats stats(series);
  Index offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.Stats(offset, 256));
    offset = (offset + 97) % 60000;
  }
}
BENCHMARK(BM_PrefixStatsWindow);

// --- SIMD tier comparisons (src/mp/simd/) ----------------------------------
// The same kernel, dispatched to the scalar and (when the host has it) the
// AVX2 table; on a non-AVX2 host both registrations run the scalar table
// and the comparison degenerates to noise. The summary JSON below reports
// the measured speedup.

/// Shared input for the row-kernel tiers: one 16k series, len 128.
struct RowKernelInput {
  Series series;
  PrefixStats stats;
  std::vector<MeanStd> col_stats;
  std::vector<double> qt;
  Index len = 128;
  Index n_sub = 0;

  explicit RowKernelInput(Index n = 16384)
      : series(RandomSeries(n, 7)), stats(series) {
    n_sub = NumSubsequences(n, len);
    col_stats.resize(static_cast<std::size_t>(n_sub));
    for (Index j = 0; j < n_sub; ++j) {
      col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
    }
    const Series query(series.begin(), series.begin() + len);
    qt = SlidingDotProduct(query, series);
  }
};

const RowKernelInput& SharedRowInput() {
  static const RowKernelInput input;
  return input;
}

/// One STOMP row advance: qt recurrence + distance row with column-min
/// tracking — the O(n) body that dominates Algorithm 3.
void BM_StompRowUpdate(benchmark::State& state, simd::SimdLevel level) {
  const RowKernelInput& in = SharedRowInput();
  const simd::SimdKernels& kernels = simd::KernelsFor(level);
  std::vector<double> qt_row = in.qt;
  std::vector<double> profile(static_cast<std::size_t>(in.n_sub));
  Index row = 1;
  for (auto _ : state) {
    kernels.qt_update(in.series.data(), row, in.len, in.n_sub, qt_row.data(),
                      qt_row.data());
    double best = kInf;
    Index best_j = kNoNeighbor;
    kernels.dist_row_min(qt_row.data(), in.col_stats.data(),
                         in.col_stats[static_cast<std::size_t>(row)], in.len,
                         0, in.n_sub, profile.data(), &best, &best_j);
    benchmark::DoNotOptimize(best);
    row = row + 1 < in.n_sub ? row + 1 : 1;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.n_sub));
}
BENCHMARK_CAPTURE(BM_StompRowUpdate, scalar, simd::SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_StompRowUpdate, avx2, simd::SimdLevel::kAvx2);

/// Batch Eq. 2 base-term evaluation (HarvestProfile's inner loop).
void BM_LbBaseSqRow(benchmark::State& state, simd::SimdLevel level) {
  const RowKernelInput& in = SharedRowInput();
  const simd::SimdKernels& kernels = simd::KernelsFor(level);
  std::vector<double> dists(static_cast<std::size_t>(in.n_sub), 1.75);
  std::vector<double> base_sq(dists.size());
  for (auto _ : state) {
    kernels.lb_base_sq_row(dists.data(), in.n_sub, in.len, base_sq.data());
    benchmark::DoNotOptimize(base_sq.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(in.n_sub));
}
BENCHMARK_CAPTURE(BM_LbBaseSqRow, scalar, simd::SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_LbBaseSqRow, avx2, simd::SimdLevel::kAvx2);

/// Full STOMP per tier: the end-to-end effect of the row kernels.
void BM_StompFullTier(benchmark::State& state, simd::SimdLevel level) {
  const Series series = RandomSeries(4096, 3);
  const PrefixStats stats(series);
  simd::ScopedKernelOverride guard(level);
  for (auto _ : state) {
    auto profile = Stomp(series, stats, 128);
    benchmark::DoNotOptimize(profile.distances.data());
  }
}
BENCHMARK_CAPTURE(BM_StompFullTier, scalar, simd::SimdLevel::kScalar);
BENCHMARK_CAPTURE(BM_StompFullTier, avx2, simd::SimdLevel::kAvx2);

/// One timed STOMP row advance (qt recurrence + distance row with min
/// tracking) under the given kernel table.
double TimeRowKernelOnce(const simd::SimdKernels& kernels,
                         const RowKernelInput& in, std::vector<double>* qt_row,
                         std::vector<double>* profile, Index row) {
  WallTimer timer;
  kernels.qt_update(in.series.data(), row, in.len, in.n_sub, qt_row->data(),
                    qt_row->data());
  double best = kInf;
  Index best_j = kNoNeighbor;
  kernels.dist_row_min(qt_row->data(), in.col_stats.data(),
                       in.col_stats[static_cast<std::size_t>(row)], in.len, 0,
                       in.n_sub, profile->data(), &best, &best_j);
  benchmark::DoNotOptimize(best);
  return timer.Seconds() * 1e6;
}

double Median(std::vector<double>* v) {
  std::nth_element(v->begin(), v->begin() + v->size() / 2, v->end());
  return (*v)[v->size() / 2];
}

/// Hand-timed median speedup summary, written to BENCH_simd.json so CI can
/// ratchet the tentpole claim (>= 2x median on the STOMP row kernel on an
/// AVX2 host) without parsing google-benchmark output. The two tiers are
/// measured in alternation so frequency/contention drift cancels out of the
/// ratio instead of biasing whichever tier ran second.
void MedianRowKernelMicros(double* scalar_us, double* simd_us) {
  const RowKernelInput& in = SharedRowInput();
  const simd::SimdKernels& scalar =
      simd::KernelsFor(simd::SimdLevel::kScalar);
  const simd::SimdKernels& vectored =
      simd::KernelsFor(simd::SimdLevel::kAvx2);
  std::vector<double> qt_row = in.qt;
  std::vector<double> profile(static_cast<std::size_t>(in.n_sub));
  std::vector<double> scalar_micros, simd_micros;
  Index row = 1;
  for (int rep = 0; rep < 401; ++rep) {
    const double s =
        TimeRowKernelOnce(scalar, in, &qt_row, &profile, row);
    const double v =
        TimeRowKernelOnce(vectored, in, &qt_row, &profile, row);
    if (rep >= 5) {  // discard warm-up reps
      scalar_micros.push_back(s);
      simd_micros.push_back(v);
    }
    row = row + 1 < in.n_sub ? row + 1 : 1;
  }
  *scalar_us = Median(&scalar_micros);
  *simd_us = Median(&simd_micros);
}

void WriteSimdSpeedupJson() {
  double scalar_us = 0.0;
  double simd_us = 0.0;
  MedianRowKernelMicros(&scalar_us, &simd_us);
  const bool has_avx2 =
      simd::DetectedSimdLevel() == simd::SimdLevel::kAvx2;
  char line[256];
  std::snprintf(line, sizeof(line),
                "[\n  {\"bench\":\"micro_kernels\",\"kernel\":\"stomp_row\","
                "\"n_sub\":%lld,\"len\":128,\"detected\":\"%s\","
                "\"scalar_us\":%.3f,\"simd_us\":%.3f,\"speedup\":%.2f}\n]\n",
                static_cast<long long>(SharedRowInput().n_sub),
                simd::SimdLevelName(simd::DetectedSimdLevel()), scalar_us,
                simd_us, has_avx2 ? scalar_us / simd_us : 1.0);
  std::printf("%s", line);
  std::FILE* out = std::fopen("BENCH_simd.json", "w");
  if (out != nullptr) {
    std::fputs(line, out);
    std::fclose(out);
    std::printf("wrote BENCH_simd.json\n");
  }
}

void BM_BoundedHeapInsert(benchmark::State& state) {
  const Index capacity = state.range(0);
  Rng rng(6);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.Gaussian();
  std::size_t at = 0;
  BoundedMaxHeap<double> heap(capacity);
  for (auto _ : state) {
    heap.Insert(values[at]);
    at = (at + 1) % values.size();
  }
}
BENCHMARK(BM_BoundedHeapInsert)->Arg(5)->Arg(50)->Arg(150);

}  // namespace
}  // namespace valmod

// Hand-rolled main (instead of benchmark_main) so the shared --obs-json
// flag is stripped before google-benchmark's own flag parsing runs.
int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  valmod::WriteSimdSpeedupJson();
  return 0;
}
