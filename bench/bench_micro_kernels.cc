// google-benchmark microbenchmarks for the hot kernels underneath every
// experiment: FFT, the MASS sliding dot product, the STOMP row update,
// Eq. 3 distances from cached statistics, the Eq. 2 lower bound, and the
// bounded heap that implements listDP. These are the ablation counterpart
// to the figure-level benches: they show where the O(1)-per-entry claims
// of Algorithm 4 come from.

#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "bench_common.h"
#include "core/lower_bound.h"
#include "mp/stomp.h"
#include "signal/distance.h"
#include "signal/fft.h"
#include "signal/sliding_dot.h"
#include "util/bounded_heap.h"
#include "util/prefix_stats.h"
#include "util/random.h"

namespace valmod {
namespace {

Series RandomSeries(Index n, std::uint64_t seed) {
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> data(n);
  for (auto& x : data) x = {rng.Gaussian(), 0.0};
  for (auto _ : state) {
    auto copy = data;
    Fft(copy, false);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_SlidingDotProduct(benchmark::State& state) {
  const Index n = state.range(0);
  const Index m = 128;
  const Series series = RandomSeries(n, 2);
  const Series query(series.begin(), series.begin() + m);
  for (auto _ : state) {
    auto qt = SlidingDotProduct(query, series);
    benchmark::DoNotOptimize(qt.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SlidingDotProduct)
    ->RangeMultiplier(4)
    ->Range(1024, 16384)
    ->Complexity();

void BM_StompFull(benchmark::State& state) {
  const Index n = state.range(0);
  const Series series = RandomSeries(n, 3);
  const PrefixStats stats(series);
  for (auto _ : state) {
    auto profile = Stomp(series, stats, 128);
    benchmark::DoNotOptimize(profile.distances.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StompFull)->RangeMultiplier(2)->Range(1024, 4096)->Complexity();

void BM_Eq3DistanceFromCachedStats(benchmark::State& state) {
  const Series series = RandomSeries(4096, 4);
  const PrefixStats stats(series);
  const MeanStd a = stats.Stats(10, 128);
  const MeanStd b = stats.Stats(900, 128);
  double qt = SubsequenceDotProduct(series, 10, 900, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ZNormalizedDistanceFromDotProduct(qt, 128, a, b));
    qt += 1e-9;  // Defeat constant folding.
  }
}
BENCHMARK(BM_Eq3DistanceFromCachedStats);

void BM_LowerBoundEvaluation(benchmark::State& state) {
  double q = 0.37;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LowerBoundDistance(q, 128, 1.7, 2.1));
    q += 1e-9;
  }
}
BENCHMARK(BM_LowerBoundEvaluation);

void BM_PrefixStatsWindow(benchmark::State& state) {
  const Series series = RandomSeries(65536, 5);
  const PrefixStats stats(series);
  Index offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.Stats(offset, 256));
    offset = (offset + 97) % 60000;
  }
}
BENCHMARK(BM_PrefixStatsWindow);

void BM_BoundedHeapInsert(benchmark::State& state) {
  const Index capacity = state.range(0);
  Rng rng(6);
  std::vector<double> values(4096);
  for (auto& v : values) v = rng.Gaussian();
  std::size_t at = 0;
  BoundedMaxHeap<double> heap(capacity);
  for (auto _ : state) {
    heap.Insert(values[at]);
    at = (at + 1) % values.size();
  }
}
BENCHMARK(BM_BoundedHeapInsert)->Arg(5)->Arg(50)->Arg(150);

}  // namespace
}  // namespace valmod

// Hand-rolled main (instead of benchmark_main) so the shared --obs-json
// flag is stripped before google-benchmark's own flag parsing runs.
int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
