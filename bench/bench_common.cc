#include "bench_common.h"

#include <cstdlib>

namespace valmod {
namespace bench {

BenchConfig LoadConfig() {
  BenchConfig config;
  double scale = 1.0;
  if (const char* env = std::getenv("VALMOD_BENCH_SCALE")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) scale = parsed;
  }
  if (scale != 1.0) {
    auto scaled = [scale](Index v) {
      return static_cast<Index>(static_cast<double>(v) * scale);
    };
    config.n = scaled(config.n);
    for (auto& v : config.series_sizes) v = scaled(v);
    config.cell_deadline_seconds *= scale;
  }
  return config;
}

std::string FormatSeconds(double seconds, bool dnf) {
  if (dnf) return "DNF";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

void PrintHeader(const char* title, const char* paper_artifact,
                 const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s (VALMOD, SIGMOD'18)\n", paper_artifact);
  std::printf(
      "Scaled config: n=%lld len_min=%lld range=%lld p=%lld "
      "cell-deadline=%.1fs (set VALMOD_BENCH_SCALE to grow)\n",
      static_cast<long long>(config.n),
      static_cast<long long>(config.len_min),
      static_cast<long long>(config.range), static_cast<long long>(config.p),
      config.cell_deadline_seconds);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace valmod
