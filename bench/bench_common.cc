#include "bench_common.h"

#include <cstdlib>
#include <cstring>

#include "obs/counters.h"

namespace valmod {
namespace bench {

namespace {

void PrintObsCountersAtExit() {
  std::printf("%s\n", ObsCountersJson().c_str());
  std::fflush(stdout);
}

}  // namespace

std::string ObsCountersJson() {
  const obs::CountersSnapshot s = obs::Counters::Snapshot();
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"obs_counters\":{"
      "\"mp_profiles_full_stomp\":%lld,"
      "\"submp_profiles_certified\":%lld,"
      "\"submp_profiles_recomputed\":%lld,"
      "\"submp_profiles_uncertified\":%lld,"
      "\"submp_lengths_certified\":%lld,"
      "\"submp_lengths_total\":%lld,"
      "\"valmod_full_fallbacks\":%lld,"
      "\"listdp_heap_updates\":%lld,"
      "\"stomp_rows\":%lld,"
      "\"stomp_chunks\":%lld,"
      "\"lb_tightness_samples\":%lld,"
      "\"lb_tightness_mean\":%.6f}}",
      static_cast<long long>(s.mp_profiles_full_stomp),
      static_cast<long long>(s.submp_profiles_certified),
      static_cast<long long>(s.submp_profiles_recomputed),
      static_cast<long long>(s.submp_profiles_uncertified),
      static_cast<long long>(s.submp_lengths_certified),
      static_cast<long long>(s.submp_lengths_total),
      static_cast<long long>(s.valmod_full_fallbacks),
      static_cast<long long>(s.listdp_heap_updates),
      static_cast<long long>(s.stomp_rows),
      static_cast<long long>(s.stomp_chunks),
      static_cast<long long>(s.lb_tightness_samples), s.MeanLbTightness());
  return buf;
}

void HandleObsJsonFlag(int* argc, char** argv) {
  bool found = false;
  int write = 1;
  for (int read = 1; read < *argc; ++read) {
    if (std::strcmp(argv[read], "--obs-json") == 0) {
      found = true;
      continue;  // strip: downstream flag parsers must not see it
    }
    argv[write++] = argv[read];
  }
  if (!found) return;
  *argc = write;
  argv[write] = nullptr;
  std::atexit(PrintObsCountersAtExit);
}

BenchConfig LoadConfig() {
  BenchConfig config;
  double scale = 1.0;
  if (const char* env = std::getenv("VALMOD_BENCH_SCALE")) {
    const double parsed = std::atof(env);
    if (parsed > 0.0) scale = parsed;
  }
  if (scale != 1.0) {
    auto scaled = [scale](Index v) {
      return static_cast<Index>(static_cast<double>(v) * scale);
    };
    config.n = scaled(config.n);
    for (auto& v : config.series_sizes) v = scaled(v);
    config.cell_deadline_seconds *= scale;
  }
  return config;
}

std::string FormatSeconds(double seconds, bool dnf) {
  if (dnf) return "DNF";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds);
  return buf;
}

void PrintHeader(const char* title, const char* paper_artifact,
                 const BenchConfig& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s (VALMOD, SIGMOD'18)\n", paper_artifact);
  std::printf(
      "Scaled config: n=%lld len_min=%lld range=%lld p=%lld "
      "cell-deadline=%.1fs (set VALMOD_BENCH_SCALE to grow)\n",
      static_cast<long long>(config.n),
      static_cast<long long>(config.len_min),
      static_cast<long long>(config.range), static_cast<long long>(config.p),
      config.cell_deadline_seconds);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace valmod
