// Regenerates Figure 14: the effect of parameter p (retained distance-
// profile entries) on VALMOD's runtime, plus the per-iteration size of the
// certified subMP. Shape to verify: runtime is largely insensitive to p
// (left panels of the figure), and |subMP| decreases with the iteration
// number in the same way for every p (right panels) — while always
// containing the motif.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/valmod.h"
#include "datasets/registry.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  valmod::bench::HandleObsJsonFlag(&argc, argv);
  using namespace valmod;
  const bench::BenchConfig config = bench::LoadConfig();
  bench::PrintHeader("Figure 14: effect of parameter p", "Figure 14", config);

  Table time_table({"dataset", "p", "VALMOD time (s)", "full recomputes"});
  std::string submp_block;
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    const Series series = spec.generator(config.n, spec.default_seed);
    for (const Index p : config.p_values) {
      ValmodOptions options;
      options.len_min = config.len_min;
      options.len_max = config.len_min + config.range;
      options.p = p;
      WallTimer timer;
      const ValmodResult result = RunValmod(series, options);
      time_table.AddRow({spec.name, Table::Int(p),
                         Table::Num(timer.Seconds(), 3),
                         Table::Int(result.full_mp_computations - 1)});
      // |subMP| per iteration (right-hand panels), first dataset only to
      // keep the output readable.
      if (spec.name == "ECG") {
        submp_block += "p=";
        submp_block += std::to_string(p);
        submp_block += " |subMP|:";
        for (std::size_t k = 1; k < result.length_stats.size(); ++k) {
          submp_block += ' ';
          submp_block += std::to_string(result.length_stats[k].valid_count);
        }
        submp_block += "\n";
      }
    }
  }
  std::printf("%s\n", time_table.Render().c_str());
  std::printf(
      "ECG, certified |subMP| per iteration (length l_min+1 .. l_max):\n%s\n",
      submp_block.c_str());
  return 0;
}
