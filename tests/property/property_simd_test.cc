// Property-based differential tests: the AVX2 kernel tier must be
// bit-identical to the scalar tier on every generated case — profiles,
// indices, and every primitive in the dispatch table. Bitwise equality
// subsumes the 1e-9 deviation budget of the acceptance criteria.
//
// On mismatch the failing seed is printed and the case is shrunk to the
// smallest still-failing input; reproduce with
//   VALMOD_PROPERTY_SEED=<seed> ctest -R property_simd

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mp/simd/simd.h"
#include "mp/stomp.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

using testing_util::MakePropertyCase;
using testing_util::PropertyCase;
using testing_util::PropertySeedOverride;
using testing_util::ShrinkPropertyCase;

/// First index where the two buffers differ bitwise, or -1. Bitwise (==)
/// comparison is intentional: the two tiers promise identical doubles, not
/// merely close ones.
Index FirstMismatch(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return static_cast<Index>(i);
  }
  return -1;
}

Index FirstMismatch(const std::vector<Index>& a, const std::vector<Index>& b) {
  if (a.size() != b.size()) return 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return static_cast<Index>(i);
  }
  return -1;
}

/// Runs every comparison for one case; returns "" on success or a
/// human-readable description of the first divergence. Pure (no gtest
/// machinery) so the shrinker can re-invoke it.
std::string CompareSimdVsScalar(const PropertyCase& c) {
  std::ostringstream err;
  const simd::SimdKernels& sk = simd::KernelsFor(simd::SimdLevel::kScalar);
  const simd::SimdKernels& vk = simd::KernelsFor(simd::SimdLevel::kAvx2);

  // End-to-end: STOMP under each tier.
  MatrixProfile scalar_mp;
  MatrixProfile simd_mp;
  {
    simd::ScopedKernelOverride guard(simd::SimdLevel::kScalar);
    scalar_mp = Stomp(c.series, c.len);
  }
  {
    simd::ScopedKernelOverride guard(simd::SimdLevel::kAvx2);
    simd_mp = Stomp(c.series, c.len);
  }
  if (Index at = FirstMismatch(scalar_mp.distances, simd_mp.distances);
      at >= 0) {
    err << "Stomp distances differ at " << at << ": scalar="
        << scalar_mp.distances[static_cast<std::size_t>(at)] << " simd="
        << simd_mp.distances[static_cast<std::size_t>(at)];
    return err.str();
  }
  if (Index at = FirstMismatch(scalar_mp.indices, simd_mp.indices); at >= 0) {
    err << "Stomp indices differ at " << at;
    return err.str();
  }

  // Primitive-by-primitive, on buffers derived from the case.
  const Series centered = CenterSeries(c.series);
  const PrefixStats stats(centered);
  const Index n = static_cast<Index>(centered.size());
  const Index len = c.len;
  const Index n_sub = NumSubsequences(n, len);
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }
  std::vector<double> qt0(static_cast<std::size_t>(n_sub));
  sk.sliding_dot(centered.data(), len, centered.data(), n, qt0.data());
  {
    std::vector<double> got(static_cast<std::size_t>(n_sub));
    vk.sliding_dot(centered.data(), len, centered.data(), n, got.data());
    if (Index at = FirstMismatch(qt0, got); at >= 0) {
      err << "sliding_dot differs at " << at;
      return err.str();
    }
  }

  // qt_update for row 1 (out-of-place so both tiers read the same input).
  {
    std::vector<double> out_s(static_cast<std::size_t>(n_sub), -7.0);
    std::vector<double> out_v(static_cast<std::size_t>(n_sub), -7.0);
    sk.qt_update(centered.data(), 1, len, n_sub, qt0.data(), out_s.data());
    vk.qt_update(centered.data(), 1, len, n_sub, qt0.data(), out_v.data());
    if (Index at = FirstMismatch(out_s, out_v); at >= 0) {
      err << "qt_update differs at " << at;
      return err.str();
    }
  }

  // dist_row_min over the full row (the kernel is exclusion-zone agnostic).
  std::vector<double> prof_s(static_cast<std::size_t>(n_sub), 0.0);
  {
    std::vector<double> prof_v(static_cast<std::size_t>(n_sub), 0.0);
    double best_s = kInf, best_v = kInf;
    Index bj_s = kNoNeighbor, bj_v = kNoNeighbor;
    sk.dist_row_min(qt0.data(), col_stats.data(), col_stats[0], len, 0, n_sub,
                    prof_s.data(), &best_s, &bj_s);
    vk.dist_row_min(qt0.data(), col_stats.data(), col_stats[0], len, 0, n_sub,
                    prof_v.data(), &best_v, &bj_v);
    if (Index at = FirstMismatch(prof_s, prof_v); at >= 0) {
      err << "dist_row_min profile differs at " << at << ": scalar="
          << prof_s[static_cast<std::size_t>(at)] << " simd="
          << prof_v[static_cast<std::size_t>(at)];
      return err.str();
    }
    if (best_s != best_v || bj_s != bj_v) {
      err << "dist_row_min best differs: scalar=(" << best_s << "," << bj_s
          << ") simd=(" << best_v << "," << bj_v << ")";
      return err.str();
    }
  }

  // dist_row_min_update against a pre-seeded stored profile.
  {
    std::vector<double> dist_s = prof_s;
    std::vector<double> dist_v = prof_s;
    std::vector<Index> idx_s(static_cast<std::size_t>(n_sub), 3);
    std::vector<Index> idx_v(static_cast<std::size_t>(n_sub), 3);
    const MeanStd row_stats = col_stats[static_cast<std::size_t>(n_sub / 2)];
    double best_s = kInf, best_v = kInf;
    Index bj_s = kNoNeighbor, bj_v = kNoNeighbor;
    sk.dist_row_min_update(qt0.data(), col_stats.data(), row_stats, len, 9, 0,
                           n_sub, dist_s.data(), idx_s.data(), &best_s, &bj_s);
    vk.dist_row_min_update(qt0.data(), col_stats.data(), row_stats, len, 9, 0,
                           n_sub, dist_v.data(), idx_v.data(), &best_v, &bj_v);
    if (Index at = FirstMismatch(dist_s, dist_v); at >= 0) {
      err << "dist_row_min_update distances differ at " << at;
      return err.str();
    }
    if (Index at = FirstMismatch(idx_s, idx_v); at >= 0) {
      err << "dist_row_min_update indices differ at " << at;
      return err.str();
    }
    if (best_s != best_v || bj_s != bj_v) {
      err << "dist_row_min_update best differs";
      return err.str();
    }
  }

  // Lower-bound batch kernels, fed the STOMP row (contains kInf entries).
  {
    std::vector<double> bsq_s(scalar_mp.distances.size());
    std::vector<double> bsq_v(scalar_mp.distances.size());
    sk.lb_base_sq_row(scalar_mp.distances.data(),
                      static_cast<Index>(scalar_mp.distances.size()), len,
                      bsq_s.data());
    vk.lb_base_sq_row(scalar_mp.distances.data(),
                      static_cast<Index>(scalar_mp.distances.size()), len,
                      bsq_v.data());
    if (Index at = FirstMismatch(bsq_s, bsq_v); at >= 0) {
      err << "lb_base_sq_row differs at " << at;
      return err.str();
    }
    std::vector<double> lb_s(bsq_s.size());
    std::vector<double> lb_v(bsq_s.size());
    const double sigma_base = col_stats[0].std;
    for (const double sigma_now : {col_stats[1].std, 0.0}) {
      sk.lb_at_length(bsq_s.data(), static_cast<Index>(bsq_s.size()),
                      sigma_base, sigma_now, lb_s.data());
      vk.lb_at_length(bsq_s.data(), static_cast<Index>(bsq_s.size()),
                      sigma_base, sigma_now, lb_v.data());
      if (Index at = FirstMismatch(lb_s, lb_v); at >= 0) {
        err << "lb_at_length(sigma_now=" << sigma_now << ") differs at " << at;
        return err.str();
      }
    }
  }

  // znormalize with the first window's moments.
  {
    const MeanStd ms = stats.Stats(0, len);
    if (ms.std > 0.0) {
      std::vector<double> zn_s(static_cast<std::size_t>(len));
      std::vector<double> zn_v(static_cast<std::size_t>(len));
      sk.znormalize(centered.data(), len, ms.mean, ms.std, zn_s.data());
      vk.znormalize(centered.data(), len, ms.mean, ms.std, zn_v.data());
      if (Index at = FirstMismatch(zn_s, zn_v); at >= 0) {
        err << "znormalize differs at " << at;
        return err.str();
      }
    }
  }
  return "";
}

class SimdScalarPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimdScalarPropertyTest, KernelsBitIdentical) {
  if (simd::DetectedSimdLevel() != simd::SimdLevel::kAvx2) {
    GTEST_SKIP() << "host has no AVX2+FMA; nothing to differentiate";
  }
  const std::uint64_t seed = PropertySeedOverride(GetParam());
  const PropertyCase c = MakePropertyCase(seed, 360);
  const std::string mismatch = CompareSimdVsScalar(c);
  if (!mismatch.empty()) {
    const PropertyCase minimal =
        ShrinkPropertyCase(c, [](const PropertyCase& cand) {
          return !CompareSimdVsScalar(cand).empty();
        });
    FAIL() << "SIMD-vs-scalar divergence: " << mismatch
           << "\n  case:      " << c.Describe()
           << "\n  shrunk to: " << minimal.Describe()
           << "\n  reproduce: VALMOD_PROPERTY_SEED=" << seed
           << " ctest -R property_simd";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimdScalarPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 100));

}  // namespace
}  // namespace valmod
