// Property-based oracle tests: VALMOD against the O(n^2 * len) brute-force
// variable-length search on generated inputs. Distances must agree to
// 1e-6 relative (two different arithmetic routes to the same motif), and
// both pairs must be non-trivial at their length.
//
// Reproduce a failure with
//   VALMOD_PROPERTY_SEED=<seed> ctest -R property_valmod

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

using testing_util::MakePropertyCase;
using testing_util::PropertyCase;
using testing_util::PropertySeedOverride;
using testing_util::ShrinkPropertyCase;

/// Lengths searched per case; kept small so the brute-force oracle stays
/// cheap on the ~60-case grid.
constexpr Index kLengthSpan = 4;

/// Pure comparison: "" on success, description of the first divergence
/// otherwise (shrinker-compatible).
std::string CompareValmodVsBrute(const PropertyCase& c) {
  std::ostringstream err;
  const Index len_min = c.len;
  const Index len_max = c.len + kLengthSpan;
  const Index n = static_cast<Index>(c.series.size());
  if (n < len_max + ExclusionZone(len_max) + 1) {
    return "";  // Shrunk below the smallest valid VALMOD input; vacuous.
  }
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = 5;
  const ValmodResult result = RunValmod(c.series, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(c.series, len_min, len_max);
  if (result.per_length_motifs.size() != truth.size()) {
    err << "motif count mismatch: valmod=" << result.per_length_motifs.size()
        << " brute=" << truth.size();
    return err.str();
  }
  for (std::size_t k = 0; k < truth.size(); ++k) {
    const Index length = len_min + static_cast<Index>(k);
    const MotifPair& got = result.per_length_motifs[k];
    const MotifPair& want = truth[k];
    if (!want.valid()) continue;  // No non-trivial pair at this length.
    if (!got.valid()) {
      err << "len=" << length << ": valmod found no motif, brute did";
      return err.str();
    }
    if (IsTrivialMatch(got.a, got.b, length)) {
      err << "len=" << length << ": valmod pair (" << got.a << "," << got.b
          << ") is a trivial match";
      return err.str();
    }
    // 1e-6 absolute-ish floor plus a 1e-3 relative conditioning allowance:
    // VALMOD's distance comes through the O(1) dot-product recurrence, the
    // oracle's through O(len) exact sums, and on wide-dynamic-range inputs
    // the recurrence's relative error grows with (scale ratio)^2 * eps.
    const double tol = 1e-6 * (1.0 + want.distance) + 1e-3 * want.distance;
    if (std::abs(got.distance - want.distance) > tol) {
      err << "len=" << length << ": distance mismatch valmod=" << got.distance
          << " brute=" << want.distance;
      return err.str();
    }
  }
  return "";
}

class ValmodBrutePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValmodBrutePropertyTest, MatchesBruteForceOracle) {
  const std::uint64_t seed = PropertySeedOverride(GetParam());
  // extreme_scale 1e3: cross-algorithm oracle, so the extreme-magnitudes
  // family must stay inside the qt-recurrence's numeric envelope (see
  // MakePropertyCase).
  const PropertyCase c = MakePropertyCase(seed, 160, 1e3);
  const std::string mismatch = CompareValmodVsBrute(c);
  if (!mismatch.empty()) {
    const PropertyCase minimal =
        ShrinkPropertyCase(c, [](const PropertyCase& cand) {
          return !CompareValmodVsBrute(cand).empty();
        });
    FAIL() << "VALMOD-vs-brute divergence: " << mismatch
           << "\n  case:      " << c.Describe()
           << "\n  shrunk to: " << minimal.Describe()
           << "\n  reproduce: VALMOD_PROPERTY_SEED=" << seed
           << " ctest -R property_valmod";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValmodBrutePropertyTest,
                         ::testing::Range<std::uint64_t>(0, 60));

}  // namespace
}  // namespace valmod
