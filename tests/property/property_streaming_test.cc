// Property-based differential tests: the streaming (STAMPI-style) profile
// against a batch STOMP recompute over the same (live) window, on generated
// inputs. Even seeds grow an unbounded stream; odd seeds slide a bounded
// window so eviction repair is exercised too.
//
// Reproduce a failure with
//   VALMOD_PROPERTY_SEED=<seed> ctest -R property_streaming

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mp/stomp.h"
#include "stream/streaming_profile.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

using testing_util::MakePropertyCase;
using testing_util::PropertyCase;
using testing_util::PropertySeedOverride;
using testing_util::ShrinkPropertyCase;

/// Pure comparison: "" on success, description of the first divergence
/// otherwise (shrinker-compatible). Distances compare to 1e-7 relative —
/// the streaming recurrence reseeds on the batch chunk grid, so drift is
/// bounded but not bitwise zero between reseeds.
std::string CompareStreamingVsBatch(const PropertyCase& c) {
  std::ostringstream err;
  const Index len = c.len;
  const Index n = static_cast<Index>(c.series.size());
  const bool sliding = (c.seed % 2) == 1;
  // Bounded window on odd seeds: small enough to evict, >= 2*len as the
  // streaming engine requires.
  const Index capacity = sliding ? std::max<Index>(2 * len, (2 * n) / 3) : 0;
  StreamingMatrixProfile streaming(
      StreamingProfileOptions{len, capacity, 1 << 12});
  streaming.AppendBlock(c.series);
  if (!streaming.initialized()) return "";  // Shrunk below warm-up; vacuous.
  const std::span<const double> window = streaming.series().Window();
  // Batch STOMP over exactly the live window, without the input centering of
  // the convenience overload: the streaming path consumes the window as-is.
  const PrefixStats stats(window);
  const MatrixProfile got = streaming.Profile();
  const MatrixProfile want = Stomp(window, stats, len);
  if (got.size() != want.size()) {
    err << "profile size mismatch: streaming=" << got.size()
        << " batch=" << want.size();
    return err.str();
  }
  for (Index i = 0; i < got.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (want.distances[k] == kInf || got.distances[k] == kInf) {
      if (want.distances[k] != got.distances[k]) {
        err << "distance mismatch at " << i << ": streaming="
            << got.distances[k] << " batch=" << want.distances[k];
        return err.str();
      }
      continue;
    }
    // 1e-7 floor plus a 1e-3 relative conditioning allowance: the two sides
    // reseed their dot-product recurrences on different cadences, so on
    // wide-dynamic-range inputs the bounded drift is relative, not absolute.
    const double tol =
        1e-7 * (1.0 + want.distances[k]) + 1e-3 * want.distances[k];
    if (!(std::abs(got.distances[k] - want.distances[k]) <= tol)) {
      err << "distance mismatch at " << i << ": streaming="
          << got.distances[k] << " batch=" << want.distances[k];
      return err.str();
    }
    const Index j = got.indices[k];
    if (j != kNoNeighbor && IsTrivialMatch(i, j, len)) {
      err << "streaming neighbor " << j << " of " << i
          << " is inside the exclusion zone";
      return err.str();
    }
  }
  return "";
}

class StreamingBatchPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingBatchPropertyTest, MatchesBatchOnLiveWindow) {
  const std::uint64_t seed = PropertySeedOverride(GetParam());
  // extreme_scale 1e3: streaming's incrementally maintained stats and the
  // batch prefix sums are different summation orders, so the comparison must
  // stay inside the qt-recurrence's numeric envelope (see MakePropertyCase).
  const PropertyCase c = MakePropertyCase(seed, 300, 1e3);
  const std::string mismatch = CompareStreamingVsBatch(c);
  if (!mismatch.empty()) {
    const PropertyCase minimal =
        ShrinkPropertyCase(c, [](const PropertyCase& cand) {
          return !CompareStreamingVsBatch(cand).empty();
        });
    FAIL() << "streaming-vs-batch divergence: " << mismatch
           << "\n  case:      " << c.Describe()
           << "\n  shrunk to: " << minimal.Describe()
           << "\n  reproduce: VALMOD_PROPERTY_SEED=" << seed
           << " ctest -R property_streaming";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingBatchPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 48));

}  // namespace
}  // namespace valmod
