#include "mp/scrimp.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "mp/stamp.h"
#include "mp/stomp.h"
#include "test_util.h"

namespace valmod {
namespace {

// Property: full SCRIMP equals the brute-force matrix profile across
// datasets, lengths, and traversal orders.
struct ScrimpCase {
  int len;
  bool randomize;
  int seed;
};

class ScrimpPropertyTest : public ::testing::TestWithParam<ScrimpCase> {};

TEST_P(ScrimpPropertyTest, MatchesBruteForce) {
  const ScrimpCase c = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(
      350, c.len, 50, 250, static_cast<std::uint64_t>(c.seed));
  const PrefixStats stats(s);
  ScrimpOptions options;
  options.randomize_order = c.randomize;
  const MatrixProfile fast = Scrimp(s, stats, c.len, options);
  const MatrixProfile truth = BruteForceMatrixProfile(s, c.len);
  ASSERT_EQ(fast.size(), truth.size());
  for (Index i = 0; i < fast.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (truth.distances[k] == kInf) {
      EXPECT_EQ(fast.distances[k], kInf) << "i=" << i;
    } else {
      EXPECT_NEAR(fast.distances[k], truth.distances[k],
                  1e-6 * (1.0 + truth.distances[k]))
          << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScrimpPropertyTest,
    ::testing::Values(ScrimpCase{8, true, 1}, ScrimpCase{24, true, 2},
                      ScrimpCase{24, false, 3}, ScrimpCase{64, true, 4},
                      ScrimpCase{33, false, 5}));

TEST(ScrimpTest, AgreesWithStompAndStamp) {
  const Series s = testing_util::WhiteNoise(400, 6);
  const PrefixStats stats(s);
  const MatrixProfile scrimp = Scrimp(s, stats, 30);
  const MatrixProfile stomp = Stomp(s, stats, 30);
  const MatrixProfile stamp = Stamp(s, stats, 30);
  for (Index i = 0; i < scrimp.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_NEAR(scrimp.distances[k], stomp.distances[k], 1e-6);
    EXPECT_NEAR(scrimp.distances[k], stamp.distances[k], 1e-6);
  }
}

TEST(ScrimpTest, PartialRunOverestimatesFinalProfile) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 7);
  const PrefixStats stats(s);
  ScrimpOptions options;
  options.max_diagonals = 40;
  const MatrixProfile partial = Scrimp(s, stats, 30, options);
  const MatrixProfile full = Scrimp(s, stats, 30);
  for (Index i = 0; i < partial.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_GE(partial.distances[k] + 1e-9, full.distances[k]);
  }
}

TEST(ScrimpTest, AnytimeConvergesFasterThanRowOrderStamp) {
  // The SCRIMP claim: after an equal slice of work, random-diagonal order
  // approximates the profile better than STAMP's sequential row order,
  // because each diagonal touches every offset once.
  const Series s = testing_util::WalkWithPlantedMotif(500, 40, 80, 360, 8);
  const PrefixStats stats(s);

  ScrimpOptions scrimp_options;
  scrimp_options.max_diagonals = 40;  // ~9% of diagonals.
  const MatrixProfile scrimp_partial = Scrimp(s, stats, 40, scrimp_options);

  StampOptions stamp_options;
  stamp_options.randomize_order = false;  // Sequential rows.
  stamp_options.max_rows = 40;            // Same number of O(n) passes.
  const MatrixProfile stamp_partial = Stamp(s, stats, 40, stamp_options);

  const MatrixProfile full = Stomp(s, stats, 40);
  auto mean_excess = [&full](const MatrixProfile& approx) {
    double acc = 0.0;
    Index count = 0;
    for (Index i = 0; i < full.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      if (approx.distances[k] == kInf) {
        acc += 10.0;  // Untouched offsets penalized uniformly.
      } else {
        acc += approx.distances[k] - full.distances[k];
      }
      ++count;
    }
    return acc / static_cast<double>(count);
  };
  EXPECT_LT(mean_excess(scrimp_partial), mean_excess(stamp_partial));
}

TEST(ScrimpTest, SnapshotsAreInvoked) {
  const Series s = testing_util::WhiteNoise(250, 9);
  const PrefixStats stats(s);
  ScrimpOptions options;
  options.snapshot_every = 50;
  Index snapshots = 0;
  options.snapshot = [&snapshots](Index done, const MatrixProfile&) {
    EXPECT_EQ(done % 50, 0);
    ++snapshots;
  };
  Scrimp(s, stats, 20, options);
  EXPECT_GT(snapshots, 0);
}

TEST(ScrimpTest, ConvenienceOverloadCentersInput) {
  Series s = testing_util::WhiteNoise(200, 10);
  Series shifted = s;
  for (auto& v : shifted) v += 1e9;
  const MatrixProfile a = Scrimp(s, 16);
  const MatrixProfile b = Scrimp(shifted, 16);
  for (Index i = 0; i < a.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_NEAR(a.distances[k], b.distances[k], 1e-3);
  }
}

}  // namespace
}  // namespace valmod
