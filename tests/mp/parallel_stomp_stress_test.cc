// TSan-targeted stress test for the parallel STOMP kernel.
//
// ParallelStomp's contract is strict determinism: because serial Stomp and
// the parallel driver run the *same* fixed chunk grid (stomp_kernel.h), the
// parallel result must be bit-identical to the serial one — not merely
// within a tolerance — for every thread count and every awkward series
// length. This file sweeps thread counts (including primes larger than the
// machine) and lengths that leave ragged final chunks, repeating each run
// so ThreadSanitizer sees many distinct interleavings of the chunk queue.
//
// Run under the `tsan` preset (cmake --preset tsan) to prove race-freedom;
// under a plain build it still proves determinism.

#include "mp/parallel_stomp.h"

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mp/stomp.h"
#include "mp/stomp_kernel.h"
#include "test_util.h"

namespace valmod {
namespace {

void ExpectBitIdentical(const MatrixProfile& got, const MatrixProfile& want) {
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(got.subsequence_length, want.subsequence_length);
  // memcmp compares the raw bit patterns: NaN-safe, -0.0 != +0.0, and any
  // mismatch is then reported per-index for debuggability.
  if (std::memcmp(got.distances.data(), want.distances.data(),
                  sizeof(double) * got.distances.size()) == 0 &&
      std::memcmp(got.indices.data(), want.indices.data(),
                  sizeof(Index) * got.indices.size()) == 0) {
    return;
  }
  for (Index i = 0; i < got.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(got.distances[k], want.distances[k]) << "distance i=" << i;
    EXPECT_EQ(got.indices[k], want.indices[k]) << "index i=" << i;
  }
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

// Series lengths chosen so n_sub is never a multiple of kStompChunkRows:
// every run ends in a ragged final chunk, and the first two are also small
// enough that some requested thread counts exceed the chunk count.
std::vector<Index> StressLengths(Index len) {
  const Index chunk = internal::kStompChunkRows;
  return {
      len + chunk - 1 + 17,       // 2 chunks, second one tiny
      3 * chunk + len - 1 + 101,  // 4 chunks, last ~40% full
      7 * chunk + len - 1 + 73,   // 8 chunks: all sweep threads get work
  };
}

class ParallelStompStressTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelStompStressTest, BitIdenticalToSerialStomp) {
  const int threads = GetParam();
  for (const Index len : {Index{8}, Index{37}}) {
    for (const Index n : StressLengths(len)) {
      const Series s = testing_util::WalkWithPlantedMotif(
          n, len, n / 7, (5 * n) / 7, static_cast<std::uint64_t>(1234 + len));
      const PrefixStats stats(s);
      const MatrixProfile serial = Stomp(s, stats, len);
      // Repeat the parallel run: each repetition reshuffles which worker
      // claims which chunk, which is exactly what TSan needs to observe.
      for (int rep = 0; rep < 3; ++rep) {
        const MatrixProfile parallel = ParallelStomp(s, stats, len, threads);
        ExpectBitIdentical(parallel, serial);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelStompStressTest,
                         ::testing::Values(1, 2, 3, 7));

TEST(ParallelStompStressTest, HardwareConcurrencyRepeatedRuns) {
  const int threads = HardwareThreads();
  const Index len = 64;  // FFT seeding path (len >= naive cutoff).
  const Index n = 5 * internal::kStompChunkRows + len - 1 + 191;
  const Series s = testing_util::NoiseWithPlantedMotif(n, len, n / 5,
                                                       (3 * n) / 5, 99);
  const PrefixStats stats(s);
  const MatrixProfile serial = Stomp(s, stats, len);
  for (int rep = 0; rep < 5; ++rep) {
    ExpectBitIdentical(ParallelStomp(s, stats, len, threads), serial);
  }
}

TEST(ParallelStompStressTest, OversubscribedThreadsClampToChunks) {
  // Far more threads than chunks: the driver must clamp instead of spawning
  // idle workers, and the result must still be exact.
  const Series s = testing_util::WhiteNoise(400, 7);
  const PrefixStats stats(s);
  ExpectBitIdentical(ParallelStomp(s, stats, 16, 64), Stomp(s, stats, 16));
}

TEST(ParallelStompStressTest, ConvenienceOverloadIsDeterministic) {
  Series s = testing_util::WhiteNoise(900, 8);
  for (auto& v : s) v += 1e7;  // Large offset exercises the centering path.
  const MatrixProfile serial = Stomp(s, 48);
  for (const int threads : {2, 3, HardwareThreads()}) {
    ExpectBitIdentical(ParallelStomp(s, 48, threads), serial);
  }
}

}  // namespace
}  // namespace valmod
