// Unit tests for the SIMD dispatch layer (mp/simd/): tier selection,
// scoped overrides, and the semantic contract of every kernel in the
// dispatch table, checked against the O(len) reference implementations in
// signal/. The SIMD-vs-scalar bitwise equivalence is covered separately by
// tests/property/property_simd_test.cc.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mp/matrix_profile.h"
#include "mp/simd/simd.h"
#include "signal/distance.h"
#include "signal/znorm.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

using testing_util::WhiteNoise;

TEST(SimdDispatchTest, LevelNamesAreStable) {
  EXPECT_STREQ(simd::SimdLevelName(simd::SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdLevelName(simd::SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatchTest, ScalarTableIsAlwaysScalar) {
  const simd::SimdKernels& table = simd::KernelsFor(simd::SimdLevel::kScalar);
  EXPECT_EQ(table.level, simd::SimdLevel::kScalar);
  EXPECT_NE(table.qt_update, nullptr);
  EXPECT_NE(table.dist_row_min, nullptr);
  EXPECT_NE(table.dist_row_min_update, nullptr);
  EXPECT_NE(table.lb_base_sq_row, nullptr);
  EXPECT_NE(table.lb_at_length, nullptr);
  EXPECT_NE(table.sliding_dot, nullptr);
  EXPECT_NE(table.znormalize, nullptr);
}

TEST(SimdDispatchTest, Avx2RequestMatchesDetection) {
  const simd::SimdKernels& table = simd::KernelsFor(simd::SimdLevel::kAvx2);
  // On an AVX2+FMA host with VALMOD_SIMD=ON this is the vector table; on any
  // other host/build the request degrades to the scalar table, never null.
  EXPECT_EQ(table.level, simd::DetectedSimdLevel());
}

TEST(SimdDispatchTest, ActiveLevelNeverExceedsDetected) {
  // Active is detected unless VALMOD_FORCE_SCALAR pinned it down; it can
  // never be a tier the hardware lacks.
  const simd::SimdLevel active = simd::ActiveSimdLevel();
  const simd::SimdLevel detected = simd::DetectedSimdLevel();
  EXPECT_TRUE(active == detected || active == simd::SimdLevel::kScalar);
}

TEST(SimdDispatchTest, ScopedOverridePinsAndRestores) {
  const simd::SimdLevel before = simd::CurrentKernels().level;
  {
    simd::ScopedKernelOverride pin_scalar(simd::SimdLevel::kScalar);
    EXPECT_EQ(simd::CurrentKernels().level, simd::SimdLevel::kScalar);
    {
      simd::ScopedKernelOverride pin_avx2(simd::SimdLevel::kAvx2);
      EXPECT_EQ(simd::CurrentKernels().level, simd::DetectedSimdLevel());
    }
    EXPECT_EQ(simd::CurrentKernels().level, simd::SimdLevel::kScalar);
  }
  EXPECT_EQ(simd::CurrentKernels().level, before);
}

/// Fixture running every kernel-contract test against both tiers; on a host
/// without AVX2 both parameters resolve to the scalar table and the suite
/// degenerates to testing it twice.
class SimdKernelContractTest
    : public ::testing::TestWithParam<simd::SimdLevel> {
 protected:
  const simd::SimdKernels& kernels() const {
    return simd::KernelsFor(GetParam());
  }
};

TEST_P(SimdKernelContractTest, SlidingDotMatchesDirectDot) {
  const Series series = WhiteNoise(97, 101);
  const Index len = 9;
  const Index n = static_cast<Index>(series.size());
  const Index n_sub = NumSubsequences(n, len);
  std::vector<double> out(static_cast<std::size_t>(n_sub), -1.0);
  kernels().sliding_dot(series.data(), len, series.data(), n, out.data());
  for (Index j = 0; j < n_sub; ++j) {
    EXPECT_NEAR(out[static_cast<std::size_t>(j)],
                SubsequenceDotProduct(series, 0, j, len), 1e-9)
        << "j=" << j;
  }
}

TEST_P(SimdKernelContractTest, QtUpdateMatchesDirectDotAndAliasesSafely) {
  const Series series = WhiteNoise(83, 7);
  const Index len = 8;
  const Index n = static_cast<Index>(series.size());
  const Index n_sub = NumSubsequences(n, len);
  std::vector<double> qt0(static_cast<std::size_t>(n_sub));
  kernels().sliding_dot(series.data(), len, series.data(), n, qt0.data());

  // Out-of-place: row 1 from row 0.
  std::vector<double> out(static_cast<std::size_t>(n_sub), -7.0);
  kernels().qt_update(series.data(), 1, len, n_sub, qt0.data(), out.data());
  EXPECT_EQ(out[0], -7.0) << "qt_out[0] must be left untouched";
  for (Index j = 1; j < n_sub; ++j) {
    EXPECT_NEAR(out[static_cast<std::size_t>(j)],
                SubsequenceDotProduct(series, 1, j, len), 1e-8)
        << "j=" << j;
  }

  // In-place (qt_out == qt_prev) must produce the identical row.
  std::vector<double> in_place = qt0;
  kernels().qt_update(series.data(), 1, len, n_sub, in_place.data(),
                      in_place.data());
  for (Index j = 1; j < n_sub; ++j) {
    EXPECT_EQ(in_place[static_cast<std::size_t>(j)],
              out[static_cast<std::size_t>(j)])
        << "aliased update diverged at j=" << j;
  }
}

TEST_P(SimdKernelContractTest, DistRowMinMatchesReferenceDistance) {
  const Series series = WhiteNoise(71, 13);
  const Index len = 11;
  const Index n = static_cast<Index>(series.size());
  const Index n_sub = NumSubsequences(n, len);
  const PrefixStats stats(series);
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }
  std::vector<double> qt(static_cast<std::size_t>(n_sub));
  kernels().sliding_dot(series.data() + 2, len, series.data(), n - 2,
                        qt.data());
  // Row 2 against every column in [0, n_sub - 2).
  const Index end = n_sub - 2;
  std::vector<double> profile(static_cast<std::size_t>(n_sub), -1.0);
  double best = kInf;
  Index best_j = kNoNeighbor;
  kernels().dist_row_min(qt.data(), col_stats.data(), col_stats[2], len, 0,
                         end, profile.data(), &best, &best_j);
  double want_best = kInf;
  Index want_j = kNoNeighbor;
  for (Index j = 0; j < end; ++j) {
    const double want = ZNormalizedDistanceFromDotProduct(
        qt[static_cast<std::size_t>(j)], len, col_stats[2],
        col_stats[static_cast<std::size_t>(j)]);
    EXPECT_EQ(profile[static_cast<std::size_t>(j)], want) << "j=" << j;
    if (want < want_best) {
      want_best = want;
      want_j = j;
    }
  }
  EXPECT_EQ(best, want_best);
  EXPECT_EQ(best_j, want_j);
  // The [end, n_sub) suffix was outside the range and must be untouched.
  EXPECT_EQ(profile[static_cast<std::size_t>(end)], -1.0);
}

TEST_P(SimdKernelContractTest, DistRowMinTiesGoToLowestIndex) {
  // Synthetic row where several columns produce bitwise-equal distances: all
  // windows share unit stats, so the distance is a pure function of qt and
  // equal qt values tie exactly. The scan must keep the first minimum
  // (strict less-than update), whatever lane it lands in.
  const Index len = 8;
  const Index n_sub = 23;
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub),
                                 MeanStd{0.0, 1.0});
  std::vector<double> qt(static_cast<std::size_t>(n_sub), 2.0);
  // Two exactly-equal global minima at 6 and 13 (different mod-4 lanes).
  qt[6] = 7.5;
  qt[13] = 7.5;
  double best = kInf;
  Index best_j = kNoNeighbor;
  kernels().dist_row_min(qt.data(), col_stats.data(), MeanStd{0.0, 1.0}, len,
                         0, n_sub, nullptr, &best, &best_j);
  EXPECT_EQ(best_j, 6);
  // And with every column tied, the very first column wins.
  std::vector<double> flat_qt(static_cast<std::size_t>(n_sub), 2.0);
  best = kInf;
  best_j = kNoNeighbor;
  kernels().dist_row_min(flat_qt.data(), col_stats.data(), MeanStd{0.0, 1.0},
                         len, 0, n_sub, nullptr, &best, &best_j);
  EXPECT_EQ(best_j, 0);
}

TEST_P(SimdKernelContractTest, DistRowMinUpdateImprovesStrictly) {
  const Series series = WhiteNoise(61, 29);
  const Index len = 7;
  const Index n = static_cast<Index>(series.size());
  const Index n_sub = NumSubsequences(n, len);
  const PrefixStats stats(series);
  std::vector<MeanStd> col_stats(static_cast<std::size_t>(n_sub));
  for (Index j = 0; j < n_sub; ++j) {
    col_stats[static_cast<std::size_t>(j)] = stats.Stats(j, len);
  }
  std::vector<double> qt(static_cast<std::size_t>(n_sub));
  kernels().sliding_dot(series.data(), len, series.data(), n, qt.data());

  // Exact current distances stored: strict < means nothing may change.
  std::vector<double> exact(static_cast<std::size_t>(n_sub));
  {
    double b = kInf;
    Index bj = kNoNeighbor;
    kernels().dist_row_min(qt.data(), col_stats.data(), col_stats[0], len, 0,
                           n_sub, exact.data(), &b, &bj);
  }
  std::vector<double> stored = exact;
  std::vector<Index> indices(static_cast<std::size_t>(n_sub), 42);
  double best = kInf;
  Index best_j = kNoNeighbor;
  kernels().dist_row_min_update(qt.data(), col_stats.data(), col_stats[0],
                                len, /*row=*/5, 0, n_sub, stored.data(),
                                indices.data(), &best, &best_j);
  for (Index j = 0; j < n_sub; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    EXPECT_EQ(stored[k], exact[k]) << "equal distance overwrote slot " << j;
    EXPECT_EQ(indices[k], 42) << "equal distance re-attributed slot " << j;
  }

  // Worse stored values: every slot must improve and point at the row.
  std::vector<double> worse(static_cast<std::size_t>(n_sub), kInf);
  std::vector<Index> worse_idx(static_cast<std::size_t>(n_sub), kNoNeighbor);
  best = kInf;
  best_j = kNoNeighbor;
  kernels().dist_row_min_update(qt.data(), col_stats.data(), col_stats[0],
                                len, /*row=*/5, 0, n_sub, worse.data(),
                                worse_idx.data(), &best, &best_j);
  for (Index j = 0; j < n_sub; ++j) {
    const std::size_t k = static_cast<std::size_t>(j);
    EXPECT_EQ(worse[k], exact[k]);
    EXPECT_EQ(worse_idx[k], 5);
  }
}

TEST_P(SimdKernelContractTest, LbBaseSqRowMatchesEq2) {
  const Index len = 10;
  const double l = 10.0;
  const std::vector<double> dists = {0.0, 1.5, std::sqrt(2.0 * l), 25.0,
                                     kInf};
  std::vector<double> base_sq(dists.size());
  kernels().lb_base_sq_row(dists.data(), static_cast<Index>(dists.size()),
                           len, base_sq.data());
  // d = 0 -> q = 1 -> base 0; q <= 0 (d >= sqrt(2l), incl. inf) -> base l.
  EXPECT_EQ(base_sq[0], 0.0);
  const double q1 = 1.0 - 1.5 * 1.5 / (2.0 * l);
  EXPECT_DOUBLE_EQ(base_sq[1], l * (1.0 - q1 * q1));
  EXPECT_EQ(base_sq[2], l);
  EXPECT_EQ(base_sq[3], l);
  EXPECT_EQ(base_sq[4], l);
}

TEST_P(SimdKernelContractTest, LbAtLengthScalesOrFlushesToZero) {
  const std::vector<double> base = {0.0, 2.0, 5.0, 7.25};
  std::vector<double> out(base.size(), -1.0);
  kernels().lb_at_length(base.data(), static_cast<Index>(base.size()), 3.0,
                         1.5, out.data());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], base[i] * 2.0);
  }
  // A flat target window (sigma below the floor) bounds nothing: all zeros.
  kernels().lb_at_length(base.data(), static_cast<Index>(base.size()), 3.0,
                         0.0, out.data());
  for (double v : out) EXPECT_EQ(v, 0.0);
}

TEST_P(SimdKernelContractTest, ZNormalizeMatchesFormula) {
  const Series values = WhiteNoise(37, 5);
  const Index n = static_cast<Index>(values.size());
  const double mean = 0.25;
  const double std_dev = 1.75;
  std::vector<double> out(values.size());
  kernels().znormalize(values.data(), n, mean, std_dev, out.data());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(out[i], (values[i] - mean) / std_dev);
  }
}

INSTANTIATE_TEST_SUITE_P(Tiers, SimdKernelContractTest,
                         ::testing::Values(simd::SimdLevel::kScalar,
                                           simd::SimdLevel::kAvx2),
                         [](const auto& tier) {
                           return std::string(simd::SimdLevelName(tier.param));
                         });

}  // namespace
}  // namespace valmod
