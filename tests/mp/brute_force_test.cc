#include "mp/brute_force.h"

#include <gtest/gtest.h>

#include "signal/znorm.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(BruteForceTest, FindsPlantedMotif) {
  const Series s = testing_util::NoiseWithPlantedMotif(300, 24, 40, 200, 61);
  const MotifPair motif = BruteForceMotif(s, 24);
  ASSERT_TRUE(motif.valid());
  EXPECT_NEAR(static_cast<double>(motif.a), 40.0, 3.0);
  EXPECT_NEAR(static_cast<double>(motif.b), 200.0, 3.0);
}

TEST(BruteForceTest, MotifDistanceMatchesDirectRecomputation) {
  const Series s = testing_util::WhiteNoise(200, 62);
  const MotifPair motif = BruteForceMotif(s, 16);
  ASSERT_TRUE(motif.valid());
  const double direct = ZNormalizedDistanceDirect(
      std::span<const double>(s).subspan(static_cast<std::size_t>(motif.a), 16),
      std::span<const double>(s).subspan(static_cast<std::size_t>(motif.b),
                                         16));
  EXPECT_NEAR(motif.distance, direct, 1e-9);
}

TEST(BruteForceTest, MotifPairIsNonTrivial) {
  const Series s = testing_util::WhiteNoise(200, 63);
  const MotifPair motif = BruteForceMotif(s, 20);
  ASSERT_TRUE(motif.valid());
  EXPECT_FALSE(IsTrivialMatch(motif.a, motif.b, 20));
}

TEST(BruteForceTest, MotifIsActuallyTheClosestPair) {
  const Series s = testing_util::WhiteNoise(120, 64);
  const Index len = 12;
  const MotifPair motif = BruteForceMotif(s, len);
  const Index n_sub = NumSubsequences(120, len);
  for (Index i = 0; i < n_sub; ++i) {
    for (Index j = i + 1; j < n_sub; ++j) {
      if (IsTrivialMatch(i, j, len)) continue;
      const double d = ZNormalizedDistanceDirect(
          std::span<const double>(s).subspan(static_cast<std::size_t>(i),
                                             static_cast<std::size_t>(len)),
          std::span<const double>(s).subspan(static_cast<std::size_t>(j),
                                             static_cast<std::size_t>(len)));
      EXPECT_GE(d + 1e-9, motif.distance) << "i=" << i << " j=" << j;
    }
  }
}

TEST(BruteForceVariableLengthTest, OneMotifPerLength) {
  const Series s = testing_util::WalkWithPlantedMotif(300, 24, 40, 200, 65);
  const std::vector<MotifPair> motifs =
      BruteForceVariableLengthMotifs(s, 20, 28);
  ASSERT_EQ(motifs.size(), 9u);
  for (std::size_t k = 0; k < motifs.size(); ++k) {
    EXPECT_EQ(motifs[k].length, 20 + static_cast<Index>(k));
    EXPECT_TRUE(motifs[k].valid());
  }
}

TEST(BruteForceMatrixProfileTest, SelfConsistentIndices) {
  const Series s = testing_util::WhiteNoise(150, 66);
  const MatrixProfile mp = BruteForceMatrixProfile(s, 14);
  for (Index i = 0; i < mp.size(); ++i) {
    const Index j = mp.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    EXPECT_FALSE(IsTrivialMatch(i, j, 14));
    EXPECT_GE(j, 0);
    EXPECT_LT(j, mp.size());
  }
}

}  // namespace
}  // namespace valmod
