#include "mp/distance_profile.h"

#include <gtest/gtest.h>

#include "mp/matrix_profile.h"
#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(DistanceProfileTest, ExclusionZoneEntriesAreInfinite) {
  const Series s = testing_util::WhiteNoise(200, 1);
  const PrefixStats stats(s);
  const Index len = 20;
  const Index query = 50;
  const std::vector<double> profile =
      ComputeDistanceProfile(s, stats, query, len);
  const Index excl = ExclusionZone(len);
  for (Index j = query - excl + 1; j < query + excl; ++j) {
    if (j < 0 || j >= static_cast<Index>(profile.size())) continue;
    EXPECT_EQ(profile[static_cast<std::size_t>(j)], kInf) << "j=" << j;
  }
  // Just outside the zone must be finite.
  EXPECT_NE(profile[static_cast<std::size_t>(query - excl)], kInf);
  EXPECT_NE(profile[static_cast<std::size_t>(query + excl)], kInf);
}

TEST(DistanceProfileTest, SizeIsNumSubsequences) {
  const Series s = testing_util::WhiteNoise(150, 2);
  const PrefixStats stats(s);
  EXPECT_EQ(ComputeDistanceProfile(s, stats, 0, 30).size(), 121u);
}

// Property: MASS-based profile equals the naive profile across query
// positions and lengths.
class DistanceProfilePropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DistanceProfilePropertyTest, FastMatchesNaive) {
  const auto [len, query] = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(500, 40, 60, 350, 21);
  const PrefixStats stats(s);
  const std::vector<double> fast =
      ComputeDistanceProfile(s, stats, query, len);
  const std::vector<double> slow =
      ComputeDistanceProfileNaive(s, query, len);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t j = 0; j < fast.size(); ++j) {
    if (slow[j] == kInf) {
      EXPECT_EQ(fast[j], kInf) << "j=" << j;
    } else {
      EXPECT_NEAR(fast[j], slow[j], 1e-6 * (1.0 + slow[j])) << "j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DistanceProfilePropertyTest,
    ::testing::Values(std::pair{8, 0}, std::pair{16, 100}, std::pair{40, 60},
                      std::pair{64, 436}, std::pair{100, 250}));

TEST(ArgMinTest, FindsMinimumIndex) {
  const std::vector<double> profile = {3.0, kInf, 1.0, 2.0};
  EXPECT_EQ(ArgMin(profile), 2);
}

TEST(ArgMinTest, AllInfiniteReturnsNoNeighbor) {
  const std::vector<double> profile = {kInf, kInf};
  EXPECT_EQ(ArgMin(profile), kNoNeighbor);
}

TEST(ArgMinTest, EmptyReturnsNoNeighbor) {
  EXPECT_EQ(ArgMin(std::vector<double>{}), kNoNeighbor);
}

TEST(DistanceProfileTest, PlantedMotifIsNearestNeighbor) {
  // Query at the first planted occurrence: the nearest neighbour must be at
  // (or within a couple of samples of) the second occurrence.
  const Series s = testing_util::WalkWithPlantedMotif(600, 50, 80, 400, 33);
  const PrefixStats stats(s);
  const std::vector<double> profile = ComputeDistanceProfile(s, stats, 80, 50);
  const Index arg = ArgMin(profile);
  EXPECT_NEAR(static_cast<double>(arg), 400.0, 3.0);
}

}  // namespace
}  // namespace valmod
