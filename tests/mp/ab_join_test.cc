#include "mp/ab_join.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

// Property: the STOMP-kernel AB-join equals the naive oracle across length
// and size combinations, including unequal series lengths.
struct AbJoinCase {
  int na;
  int nb;
  int len;
  int seed;
};

class AbJoinPropertyTest : public ::testing::TestWithParam<AbJoinCase> {};

TEST_P(AbJoinPropertyTest, MatchesNaiveOracle) {
  const AbJoinCase c = GetParam();
  const Series a =
      testing_util::WhiteNoise(c.na, static_cast<std::uint64_t>(c.seed));
  const Series b = testing_util::WhiteNoise(
      c.nb, static_cast<std::uint64_t>(c.seed) + 1000);
  const AbJoinProfile fast = AbJoin(a, b, c.len);
  const AbJoinProfile slow = AbJoinNaive(a, b, c.len);
  ASSERT_EQ(fast.size(), slow.size());
  for (Index i = 0; i < fast.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_NEAR(fast.distances[k], slow.distances[k],
                1e-6 * (1.0 + slow.distances[k]))
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbJoinPropertyTest,
    ::testing::Values(AbJoinCase{120, 120, 16, 1}, AbJoinCase{200, 80, 20, 2},
                      AbJoinCase{80, 200, 20, 3}, AbJoinCase{150, 150, 33, 4},
                      AbJoinCase{64, 300, 8, 5}));

TEST(AbJoinTest, FindsSharedPatternAcrossSeries) {
  // The same pattern planted in two otherwise unrelated noise series: the
  // join motif must link the two plantings.
  Series a = testing_util::WhiteNoise(300, 11);
  Series b = testing_util::WhiteNoise(300, 12);
  Series pattern(40);
  for (Index i = 0; i < 40; ++i) {
    pattern[static_cast<std::size_t>(i)] =
        5.0 * std::sin(0.5 * static_cast<double>(i));
  }
  for (Index i = 0; i < 40; ++i) {
    a[static_cast<std::size_t>(100 + i)] = pattern[static_cast<std::size_t>(i)];
    b[static_cast<std::size_t>(220 + i)] = pattern[static_cast<std::size_t>(i)];
  }
  const AbJoinProfile profile = AbJoin(a, b, 40);
  const MotifPair motif = AbJoinMotif(profile);
  ASSERT_TRUE(motif.valid());
  EXPECT_NEAR(static_cast<double>(motif.a), 100.0, 2.0);
  EXPECT_NEAR(static_cast<double>(motif.b), 220.0, 2.0);
}

TEST(AbJoinTest, NoExclusionZoneAcrossSeries) {
  // Joining a series with a copy of itself: every subsequence finds itself
  // at distance 0 (there is no trivial-match suppression in an AB-join).
  const Series a = testing_util::WhiteNoise(200, 13);
  const AbJoinProfile profile = AbJoin(a, a, 24);
  for (Index i = 0; i < profile.size(); ++i) {
    EXPECT_NEAR(profile.distances[static_cast<std::size_t>(i)], 0.0, 1e-6);
    EXPECT_EQ(profile.indices[static_cast<std::size_t>(i)], i);
  }
}

TEST(AbJoinTest, ProfileSizeIsSubsequencesOfA) {
  const Series a = testing_util::WhiteNoise(100, 14);
  const Series b = testing_util::WhiteNoise(500, 15);
  EXPECT_EQ(AbJoin(a, b, 20).size(), NumSubsequences(100, 20));
}

TEST(AbJoinTest, DeadlineFlagsDnf) {
  const Series a = testing_util::WhiteNoise(2000, 16);
  const Series b = testing_util::WhiteNoise(2000, 17);
  bool dnf = false;
  AbJoin(a, b, 64, Deadline::After(0.0), &dnf);
  EXPECT_TRUE(dnf);
}

TEST(AbJoinTest, RobustToLargeOffsets) {
  Series a = testing_util::WhiteNoise(150, 18);
  Series b = testing_util::WhiteNoise(150, 19);
  for (auto& v : a) v += 1e9;
  for (auto& v : b) v -= 1e9;
  const AbJoinProfile fast = AbJoin(a, b, 16);
  const AbJoinProfile slow = AbJoinNaive(a, b, 16);
  for (Index i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast.distances[static_cast<std::size_t>(i)],
                slow.distances[static_cast<std::size_t>(i)], 1e-3);
  }
}

}  // namespace
}  // namespace valmod
