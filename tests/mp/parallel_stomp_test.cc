#include "mp/parallel_stomp.h"

#include <gtest/gtest.h>

#include "mp/stomp.h"
#include "test_util.h"

namespace valmod {
namespace {

void ExpectEqualProfiles(const MatrixProfile& a, const MatrixProfile& b) {
  ASSERT_EQ(a.size(), b.size());
  for (Index i = 0; i < a.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (b.distances[k] == kInf) {
      EXPECT_EQ(a.distances[k], kInf) << "i=" << i;
    } else {
      EXPECT_NEAR(a.distances[k], b.distances[k],
                  1e-6 * (1.0 + b.distances[k]))
          << "i=" << i;
    }
  }
}

// Property: parallel result is identical to the serial kernel for any
// thread count, including counts that do not divide the row count.
class ParallelStompTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelStompTest, MatchesSerialStomp) {
  const int threads = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(700, 40, 100, 500, 71);
  const PrefixStats stats(s);
  const MatrixProfile parallel = ParallelStomp(s, stats, 40, threads);
  const MatrixProfile serial = Stomp(s, stats, 40);
  ExpectEqualProfiles(parallel, serial);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelStompTest,
                         ::testing::Values(1, 2, 3, 7, 16));

TEST(ParallelStompTest, DefaultThreadCountWorks) {
  const Series s = testing_util::WhiteNoise(500, 72);
  const PrefixStats stats(s);
  ExpectEqualProfiles(ParallelStomp(s, stats, 32, 0), Stomp(s, stats, 32));
}

TEST(ParallelStompTest, TinyInputFallsBackToOneChunk) {
  // n_sub < 64 per thread forces the thread count down to 1 internally.
  const Series s = testing_util::WhiteNoise(80, 73);
  const PrefixStats stats(s);
  ExpectEqualProfiles(ParallelStomp(s, stats, 8, 8), Stomp(s, stats, 8));
}

TEST(ParallelStompTest, ConvenienceOverloadCentersInput) {
  Series s = testing_util::WhiteNoise(300, 74);
  Series shifted = s;
  for (auto& v : shifted) v += 1e9;
  ExpectEqualProfiles(ParallelStomp(shifted, 20, 4), ParallelStomp(s, 20, 4));
}

TEST(ParallelStompTest, MotifMatchesAcrossThreadCounts) {
  const Series s = testing_util::NoiseWithPlantedMotif(600, 36, 90, 420, 75);
  MotifPair reference;
  for (const int threads : {1, 2, 5}) {
    const MotifPair motif =
        MotifFromProfile(ParallelStomp(s, 36, threads));
    if (threads == 1) {
      reference = motif;
    } else {
      EXPECT_EQ(motif.a, reference.a);
      EXPECT_EQ(motif.b, reference.b);
    }
  }
}

}  // namespace
}  // namespace valmod
