#include "mp/matrix_profile.h"

#include <gtest/gtest.h>

#include "mp/stomp.h"
#include "test_util.h"

namespace valmod {
namespace {

MatrixProfile MakeProfile(std::vector<double> distances,
                          std::vector<Index> indices, Index len) {
  MatrixProfile mp;
  mp.subsequence_length = len;
  mp.distances = std::move(distances);
  mp.indices = std::move(indices);
  return mp;
}

TEST(MotifFromProfileTest, PicksGlobalMinimum) {
  const MatrixProfile mp =
      MakeProfile({5.0, 1.0, 3.0}, {1, 2, 0}, 10);
  const MotifPair motif = MotifFromProfile(mp);
  EXPECT_TRUE(motif.valid());
  EXPECT_EQ(motif.a, 1);
  EXPECT_EQ(motif.b, 2);
  EXPECT_DOUBLE_EQ(motif.distance, 1.0);
  EXPECT_EQ(motif.length, 10);
}

TEST(MotifFromProfileTest, EmptyProfileIsInvalid) {
  MatrixProfile mp;
  mp.subsequence_length = 5;
  EXPECT_FALSE(MotifFromProfile(mp).valid());
}

TEST(MotifFromProfileTest, AllNoNeighborIsInvalid) {
  const MatrixProfile mp =
      MakeProfile({kInf, kInf}, {kNoNeighbor, kNoNeighbor}, 8);
  EXPECT_FALSE(MotifFromProfile(mp).valid());
}

TEST(MotifFromProfileTest, CanonicalOrderingAless) {
  const MatrixProfile mp = MakeProfile({2.0, 9.0, 9.0}, {2, 0, 0}, 4);
  const MotifPair motif = MotifFromProfile(mp);
  EXPECT_LT(motif.a, motif.b);
}

TEST(TopMotifsTest, ReturnsDisjointRankedPairs) {
  const Series s = testing_util::WalkWithPlantedMotif(800, 40, 100, 600, 50);
  const MatrixProfile mp = Stomp(s, 40);
  const std::vector<MotifPair> top = TopMotifsFromProfile(mp, 3);
  ASSERT_GE(top.size(), 1u);
  // Ranked ascending by distance.
  for (std::size_t k = 1; k < top.size(); ++k) {
    EXPECT_GE(top[k].distance, top[k - 1].distance);
  }
  // Pairwise disjoint occurrences (no offsets within the exclusion zone).
  const Index excl = ExclusionZone(40);
  std::vector<Index> offsets;
  for (const MotifPair& m : top) {
    offsets.push_back(m.a);
    offsets.push_back(m.b);
  }
  for (std::size_t x = 0; x < offsets.size(); ++x) {
    for (std::size_t y = x + 1; y < offsets.size(); ++y) {
      EXPECT_GE(std::abs(static_cast<long long>(offsets[x] - offsets[y])),
                excl);
    }
  }
}

TEST(TopMotifsTest, FirstPairIsTheMotif) {
  const Series s = testing_util::WalkWithPlantedMotif(500, 30, 60, 350, 51);
  const MatrixProfile mp = Stomp(s, 30);
  const MotifPair best = MotifFromProfile(mp);
  const std::vector<MotifPair> top = TopMotifsFromProfile(mp, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].a, best.a);
  EXPECT_EQ(top[0].b, best.b);
}

TEST(DiscordFromProfileTest, PicksMaximumFiniteEntry) {
  const MatrixProfile mp = MakeProfile({2.0, 8.0, 3.0}, {1, 2, 0}, 6);
  const Discord discord = DiscordFromProfile(mp);
  EXPECT_TRUE(discord.valid());
  EXPECT_EQ(discord.offset, 1);
  EXPECT_DOUBLE_EQ(discord.distance, 8.0);
}

TEST(DiscordFromProfileTest, IgnoresInfiniteAndUnsetEntries) {
  const MatrixProfile mp =
      MakeProfile({kInf, 1.0, 5.0}, {kNoNeighbor, 2, 1}, 6);
  const Discord discord = DiscordFromProfile(mp);
  EXPECT_EQ(discord.offset, 2);
}

TEST(ExclusionZoneTest, HalfLengthHeuristic) {
  EXPECT_EQ(ExclusionZone(100), 50);
  EXPECT_EQ(ExclusionZone(3), 1);
  EXPECT_EQ(ExclusionZone(2), 1);
}

TEST(TrivialMatchTest, SelfAndNearbyAreTrivial) {
  EXPECT_TRUE(IsTrivialMatch(10, 10, 20));
  EXPECT_TRUE(IsTrivialMatch(10, 15, 20));
  EXPECT_FALSE(IsTrivialMatch(10, 20, 20));
  EXPECT_FALSE(IsTrivialMatch(20, 10, 20));
}

}  // namespace
}  // namespace valmod
