#include "mp/stamp.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "mp/stomp.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(StampTest, FullRunMatchesStomp) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 41);
  const PrefixStats stats(s);
  const MatrixProfile stamp = Stamp(s, stats, 30);
  const MatrixProfile stomp = Stomp(s, stats, 30);
  ASSERT_EQ(stamp.size(), stomp.size());
  for (Index i = 0; i < stamp.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (stomp.distances[k] == kInf) {
      EXPECT_EQ(stamp.distances[k], kInf);
    } else {
      EXPECT_NEAR(stamp.distances[k], stomp.distances[k],
                  1e-6 * (1.0 + stomp.distances[k]));
    }
  }
}

TEST(StampTest, SequentialOrderAlsoExact) {
  const Series s = testing_util::WhiteNoise(250, 42);
  const PrefixStats stats(s);
  StampOptions options;
  options.randomize_order = false;
  const MatrixProfile stamp = Stamp(s, stats, 20, options);
  const MatrixProfile truth = BruteForceMatrixProfile(s, 20);
  for (Index i = 0; i < stamp.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (truth.distances[k] == kInf) continue;
    EXPECT_NEAR(stamp.distances[k], truth.distances[k], 1e-6);
  }
}

TEST(StampTest, AnytimePrefixOverestimatesFinalProfile) {
  // After a random prefix of rows, every entry is an upper bound of the
  // final profile value (the anytime invariant).
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 43);
  const PrefixStats stats(s);
  StampOptions options;
  options.max_rows = 60;
  const MatrixProfile partial = Stamp(s, stats, 30, options);
  const MatrixProfile full = Stamp(s, stats, 30);
  for (Index i = 0; i < partial.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_GE(partial.distances[k] + 1e-9, full.distances[k]);
  }
}

TEST(StampTest, AnytimeConvergesOnEasyData) {
  // On a series with a strong planted motif, a modest random prefix should
  // already locate the motif pair (the paper's O(nc) convergence claim).
  const Series s = testing_util::NoiseWithPlantedMotif(600, 40, 100, 450, 44);
  const PrefixStats stats(s);
  StampOptions options;
  options.max_rows = 150;
  const MotifPair approx = MotifFromProfile(Stamp(s, stats, 40, options));
  const MotifPair exact = MotifFromProfile(Stamp(s, stats, 40));
  EXPECT_NEAR(approx.distance, exact.distance, 1e-6);
}

TEST(StampTest, SnapshotsAreInvoked) {
  const Series s = testing_util::WhiteNoise(200, 45);
  const PrefixStats stats(s);
  StampOptions options;
  options.snapshot_every = 50;
  Index snapshots = 0;
  options.snapshot = [&snapshots](Index rows_done, const MatrixProfile&) {
    EXPECT_EQ(rows_done % 50, 0);
    ++snapshots;
  };
  Stamp(s, stats, 20, options);
  EXPECT_EQ(snapshots, NumSubsequences(200, 20) / 50);
}

}  // namespace
}  // namespace valmod
