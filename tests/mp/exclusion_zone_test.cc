// Regression tests for the trivial-match exclusion-zone boundary at l / 2.
//
// The zone half-width is len / 2 (integer division), so for odd lengths the
// boundary does not sit symmetrically around the window midpoint — an
// off-by-one in any of the three scan implementations (brute-force predicate,
// scalar STOMP ranges, SIMD column-min ranges) silently admits trivial
// matches or rejects the legal pair sitting exactly on the boundary. All
// paths share NonTrivialColumnRanges / IsTrivialMatch (util/common.h); these
// tests pin the boundary down from every side.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "mp/simd/simd.h"
#include "mp/stomp.h"
#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

using testing_util::WhiteNoise;

TEST(ExclusionZoneTest, HalfWidthIsFlooredHalfLength) {
  EXPECT_EQ(ExclusionZone(2), 1);
  EXPECT_EQ(ExclusionZone(3), 1);
  EXPECT_EQ(ExclusionZone(4), 2);
  EXPECT_EQ(ExclusionZone(5), 2);  // odd: floor(5/2), not round-up
  EXPECT_EQ(ExclusionZone(7), 3);
  EXPECT_EQ(ExclusionZone(9), 4);
  EXPECT_EQ(ExclusionZone(16), 8);
  EXPECT_EQ(ExclusionZone(17), 8);
}

TEST(ExclusionZoneTest, RangesAgreeWithPredicateExhaustively) {
  // The column ranges are the single source of truth for the scan kernels;
  // the predicate is what brute force uses. They must partition every (i, j)
  // identically, for odd and even lengths and for rows near both edges.
  for (const Index len : {4, 5, 7, 8, 9, 16, 17}) {
    for (const Index n_sub : {1, 2, 5, 13, 40}) {
      for (Index i = 0; i < n_sub; ++i) {
        const ColumnRanges ranges = NonTrivialColumnRanges(i, len, n_sub);
        ASSERT_LE(0, ranges.left_end);
        ASSERT_LE(ranges.left_end, ranges.right_begin);
        ASSERT_LE(ranges.right_begin, n_sub);
        for (Index j = 0; j < n_sub; ++j) {
          const bool in_zone =
              j >= ranges.left_end && j < ranges.right_begin;
          EXPECT_EQ(in_zone, IsTrivialMatch(i, j, len))
              << "len=" << len << " n_sub=" << n_sub << " i=" << i
              << " j=" << j;
        }
      }
    }
  }
}

/// Plants a zone-periodic tile of length `len + zone` at offset `at`, so the
/// subsequences at `at` and `at + zone` are bitwise identical — the unique
/// near-zero pair of the series, sitting exactly ON the zone boundary
/// (|a - b| == zone, legal by the strict `<` in IsTrivialMatch).
Series SeriesWithBoundaryPair(Index n, Index len, Index at,
                              std::uint64_t seed) {
  Series series = WhiteNoise(n, seed);
  const Index zone = ExclusionZone(len);
  Rng rng(seed + 1);
  std::vector<double> tile(static_cast<std::size_t>(zone));
  for (auto& v : tile) v = rng.Gaussian(0.0, 2.0);
  for (Index i = 0; i < len + zone; ++i) {
    series[static_cast<std::size_t>(at + i)] =
        tile[static_cast<std::size_t>(i % zone)];
  }
  return series;
}

class ExclusionZoneBoundaryTest : public ::testing::TestWithParam<Index> {};

TEST_P(ExclusionZoneBoundaryTest, BruteForceAdmitsPairExactlyOnBoundary) {
  const Index len = GetParam();
  const Index zone = ExclusionZone(len);
  const Index at = 20;
  const Series series = SeriesWithBoundaryPair(64, len, at, 77);
  const std::vector<MotifPair> motifs =
      BruteForceVariableLengthMotifs(series, len, len);
  ASSERT_EQ(motifs.size(), 1u);
  ASSERT_TRUE(motifs[0].valid());
  EXPECT_EQ(motifs[0].a, at);
  EXPECT_EQ(motifs[0].b, at + zone);
  EXPECT_NEAR(motifs[0].distance, 0.0, 1e-6);
}

TEST_P(ExclusionZoneBoundaryTest, StompAgreesWithBruteForceOnBoundary) {
  const Index len = GetParam();
  const Index zone = ExclusionZone(len);
  const Index at = 20;
  const Series series = SeriesWithBoundaryPair(64, len, at, 77);
  const MatrixProfile profile = Stomp(series, len);
  // The boundary pair witnesses each other: STOMP's range scan must include
  // column at+zone for row at (first column of the right range) and column
  // at for row at+zone (last column of the left range).
  EXPECT_EQ(profile.indices[static_cast<std::size_t>(at)], at + zone);
  EXPECT_EQ(profile.indices[static_cast<std::size_t>(at + zone)], at);
  EXPECT_NEAR(profile.distances[static_cast<std::size_t>(at)], 0.0, 1e-6);
  const MotifPair motif = MotifFromProfile(profile);
  EXPECT_EQ(motif.a, at);
  EXPECT_EQ(motif.b, at + zone);
  // And no row anywhere picked a neighbor inside the zone.
  for (Index i = 0; i < profile.size(); ++i) {
    const Index j = profile.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    EXPECT_FALSE(IsTrivialMatch(i, j, len))
        << "row " << i << " matched " << j << " inside the zone";
  }
}

TEST_P(ExclusionZoneBoundaryTest, SimdColumnMinAgreesWithScalarOnBoundary) {
  const Index len = GetParam();
  const Index zone = ExclusionZone(len);
  const Index at = 20;
  const Series series = SeriesWithBoundaryPair(64, len, at, 77);
  MatrixProfile scalar_mp;
  MatrixProfile simd_mp;
  {
    simd::ScopedKernelOverride guard(simd::SimdLevel::kScalar);
    scalar_mp = Stomp(series, len);
  }
  {
    simd::ScopedKernelOverride guard(simd::SimdLevel::kAvx2);
    simd_mp = Stomp(series, len);
  }
  ASSERT_EQ(scalar_mp.size(), simd_mp.size());
  for (Index i = 0; i < scalar_mp.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(scalar_mp.indices[k], simd_mp.indices[k]) << "row " << i;
    EXPECT_EQ(scalar_mp.distances[k], simd_mp.distances[k]) << "row " << i;
  }
  EXPECT_EQ(simd_mp.indices[static_cast<std::size_t>(at)], at + zone);
}

// Odd lengths are where the floor(l/2) rounding bites; keep one even length
// as the control.
INSTANTIATE_TEST_SUITE_P(Lengths, ExclusionZoneBoundaryTest,
                         ::testing::Values<Index>(7, 9, 13, 8));

}  // namespace
}  // namespace valmod
