#include "mp/stomp.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

void ExpectProfilesEqual(const MatrixProfile& fast, const MatrixProfile& slow,
                         double tol = 1e-6) {
  ASSERT_EQ(fast.size(), slow.size());
  for (Index i = 0; i < fast.size(); ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    if (slow.distances[s] == kInf) {
      EXPECT_EQ(fast.distances[s], kInf) << "i=" << i;
    } else {
      EXPECT_NEAR(fast.distances[s], slow.distances[s],
                  tol * (1.0 + slow.distances[s]))
          << "i=" << i;
    }
  }
}

// Property: STOMP equals the brute-force matrix profile across datasets and
// subsequence lengths.
struct StompCase {
  const char* name;
  int len;
  int seed;
};

class StompPropertyTest : public ::testing::TestWithParam<StompCase> {};

TEST_P(StompPropertyTest, MatchesBruteForce) {
  const StompCase c = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(
      400, c.len, 50, 280, static_cast<std::uint64_t>(c.seed));
  const MatrixProfile fast = Stomp(s, c.len);
  const MatrixProfile slow = BruteForceMatrixProfile(s, c.len);
  ExpectProfilesEqual(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StompPropertyTest,
    ::testing::Values(StompCase{"short", 8, 1}, StompCase{"mid", 24, 2},
                      StompCase{"long", 64, 3}, StompCase{"odd", 33, 4},
                      StompCase{"big", 120, 5}));

TEST(StompTest, MotifPairMatchesBruteForce) {
  const Series s = testing_util::WalkWithPlantedMotif(500, 40, 70, 390, 77);
  const MotifPair fast = MotifFromProfile(Stomp(s, 40));
  const MotifPair slow = BruteForceMotif(s, 40);
  EXPECT_EQ(fast.a, slow.a);
  EXPECT_EQ(fast.b, slow.b);
  EXPECT_NEAR(fast.distance, slow.distance, 1e-7);
}

TEST(StompTest, FindsPlantedMotifLocations) {
  const Series s = testing_util::NoiseWithPlantedMotif(500, 40, 70, 390, 78);
  const MotifPair motif = MotifFromProfile(Stomp(s, 40));
  EXPECT_NEAR(static_cast<double>(motif.a), 70.0, 3.0);
  EXPECT_NEAR(static_cast<double>(motif.b), 390.0, 3.0);
}

TEST(StompTest, WhiteNoiseStillExact) {
  const Series s = testing_util::WhiteNoise(300, 9);
  ExpectProfilesEqual(Stomp(s, 16), BruteForceMatrixProfile(s, 16));
}

TEST(StompTest, ObserverSeesEveryRow) {
  const Series s = testing_util::WhiteNoise(200, 10);
  const PrefixStats stats(s);
  Index rows = 0;
  const StompRowObserver observer =
      [&rows](Index row, std::span<const double> qt,
              std::span<const double> profile) {
        EXPECT_EQ(qt.size(), profile.size());
        EXPECT_EQ(row, rows);
        ++rows;
      };
  Stomp(s, stats, 25, observer);
  EXPECT_EQ(rows, NumSubsequences(200, 25));
}

TEST(StompTest, DeadlineAbortsAndFlagsDnf) {
  const Series s = testing_util::WhiteNoise(2000, 11);
  const PrefixStats stats(s);
  bool dnf = false;
  Stomp(s, stats, 64, nullptr, Deadline::After(0.0), &dnf);
  EXPECT_TRUE(dnf);
}

TEST(StompTest, ProfileIsSymmetricallyConsistent) {
  // Every profile entry must point at a neighbour whose own entry is at
  // most the same distance (nearest-neighbour consistency).
  const Series s = testing_util::WhiteNoise(300, 12);
  const MatrixProfile mp = Stomp(s, 20);
  for (Index i = 0; i < mp.size(); ++i) {
    const Index j = mp.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    EXPECT_LE(mp.distances[static_cast<std::size_t>(j)],
              mp.distances[static_cast<std::size_t>(i)] + 1e-9);
  }
}

}  // namespace
}  // namespace valmod
