#include "util/timer.h"

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double t1 = timer.Seconds();
  const double t2 = timer.Seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(WallTimerTest, ResetRestartsFromZero) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), 0.5);
}

TEST(WallTimerTest, MillisMatchesSecondsScale) {
  WallTimer timer;
  const double s = timer.Seconds();
  const double ms = timer.Millis();
  EXPECT_GE(ms, s * 1e3 * 0.5);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::After(0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, GenerousBudgetNotExpired) {
  const Deadline d = Deadline::After(3600.0);
  EXPECT_FALSE(d.Expired());
}

}  // namespace
}  // namespace valmod
