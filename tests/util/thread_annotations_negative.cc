// Negative-compile cases for the thread-safety analysis: each macro gate
// below seeds one deliberate locking bug, and tools/check_thread_safety.sh
// compiles this TU once per gate with clang -Wthread-safety
// -Werror=thread-safety, asserting that every case FAILS to compile. If a
// case starts compiling, the analysis (or our annotation layer) has gone
// blind — that is the regression this file exists to catch.
//
// With no gate defined the file must compile cleanly; the script checks
// that too, so a broken include can't masquerade as "all bugs rejected".

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace valmod {
namespace {

class Account {
 public:
  void Deposit(int amount) {
    const MutexLock lock(&mu_);
    balance_ += amount;
  }

  int UnsafeRead() {
#if defined(NEGATIVE_CASE_GUARDED_READ)
    return balance_;  // reads a GUARDED_BY member with no lock held
#else
    const MutexLock lock(&mu_);
    return balance_;
#endif
  }

  void CallLockedHelperUnlocked() {
#if defined(NEGATIVE_CASE_REQUIRES_UNHELD)
    AddLocked(1);  // calls a REQUIRES(mu_) method with no lock held
#else
    const MutexLock lock(&mu_);
    AddLocked(1);
#endif
  }

  void DoubleAcquire() {
    const MutexLock lock(&mu_);
#if defined(NEGATIVE_CASE_DOUBLE_LOCK)
    mu_.Lock();  // acquires a capability this thread already holds
#endif
    balance_ += 1;
  }

  void ForgottenUnlock() {
#if defined(NEGATIVE_CASE_MISSING_RELEASE)
    mu_.Lock();
    balance_ += 1;
    // returns still holding mu_: a leak the analysis must reject
#endif
  }

 private:
  void AddLocked(int amount) REQUIRES(mu_) { balance_ += amount; }

  Mutex mu_;
  int balance_ GUARDED_BY(mu_) = 0;
};

class ReadMostly {
 public:
  int Read() const {
#if defined(NEGATIVE_CASE_READER_WRITES)
    return value_;  // reads a GUARDED_BY member with no lock at all
#else
    const ReaderMutexLock lock(&mu_);
    return value_;
#endif
  }

  void Write(int value) {
    const WriterMutexLock lock(&mu_);
    value_ = value;
  }

 private:
  mutable SharedMutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

// Anchors the classes so the TU has something to emit even when every gate
// is off; the script only runs -fsyntax-only, but keep -Wunused quiet.
int ThreadAnnotationsNegativeAnchor() {
  Account account;
  account.Deposit(1);
  account.CallLockedHelperUnlocked();
  account.DoubleAcquire();
  account.ForgottenUnlock();
  ReadMostly read_mostly;
  read_mostly.Write(2);
  return account.UnsafeRead() + read_mostly.Read();
}

}  // namespace valmod
