#include "util/thread_annotations.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/mutex.h"

namespace valmod {
namespace {

// Runtime behavior of the annotated wrappers. The static side — that a
// GUARDED_BY violation fails to compile — is proven by
// tools/check_thread_safety.sh over thread_annotations_negative.cc; these
// tests pin down that the wrappers actually lock, unlock, wake, and share.

// Probes TryLock from a second thread: TryLock on a mutex the same thread
// already holds is both undefined behavior and a thread-safety-analysis
// error, so the contention must be real.
bool TryLockFromOtherThread(Mutex* mu) {
  bool acquired = false;
  std::thread prober([&] {
    acquired = mu->TryLock();
    if (acquired) mu->Unlock();
  });
  prober.join();
  return acquired;
}

TEST(ThreadAnnotationsTest, MutexLockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(TryLockFromOtherThread(&mu));
  mu.Unlock();
  EXPECT_TRUE(TryLockFromOtherThread(&mu));
}

TEST(ThreadAnnotationsTest, MutexLockGuardsCriticalSection) {
  Mutex mu;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 2000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        const MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(ThreadAnnotationsTest, CondVarHandshakeAcrossThreads) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool consumed = false;

  std::thread consumer([&] {
    const MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    consumed = true;
    cv.NotifyAll();
  });

  {
    const MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  {
    const MutexLock lock(&mu);
    while (!consumed) cv.Wait(mu);
  }
  consumer.join();
  EXPECT_TRUE(consumed);
}

TEST(ThreadAnnotationsTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu;
  int value = 42;

  // Two threads hold the shared side simultaneously: each waits for the
  // other while still inside its read lock, which would deadlock if
  // readers excluded each other.
  std::atomic<int> inside{0};
  auto reader = [&] {
    const ReaderMutexLock lock(&mu);
    EXPECT_EQ(value, 42);
    inside.fetch_add(1, std::memory_order_acq_rel);
    while (inside.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
  };
  std::thread a(reader);
  std::thread b(reader);
  a.join();
  b.join();

  {
    const WriterMutexLock lock(&mu);
    value = 43;
  }
  const ReaderMutexLock lock(&mu);
  EXPECT_EQ(value, 43);
}

TEST(ThreadAnnotationsTest, WriterExcludesReaders) {
  SharedMutex mu;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        const WriterMutexLock lock(&mu);
        ++counter;
      }
    });
  }
  std::int64_t observed_max = 0;
  for (int i = 0; i < 1000; ++i) {
    const ReaderMutexLock lock(&mu);
    EXPECT_GE(counter, observed_max);
    observed_max = counter;
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

}  // namespace
}  // namespace valmod
