#include "util/random.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIndexCoversInclusiveRange) {
  Rng rng(11);
  std::set<Index> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformIndex(2, 5));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 2);
  EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(RngTest, UniformIndexSingleValue) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformIndex(4, 4), 4);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyTracksProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace valmod
