#include "util/cli.h"

#include <gtest/gtest.h>

namespace valmod {
namespace {

CommandLine Parse(std::vector<const char*> argv) {
  return CommandLine(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLineTest, ParsesKeyEqualsValue) {
  const CommandLine cli = Parse({"prog", "--n=100", "--name=ecg"});
  EXPECT_EQ(cli.GetIndex("n", 0), 100);
  EXPECT_EQ(cli.GetString("name", ""), "ecg");
}

TEST(CommandLineTest, ParsesKeySpaceValue) {
  const CommandLine cli = Parse({"prog", "--n", "42"});
  EXPECT_EQ(cli.GetIndex("n", 0), 42);
}

TEST(CommandLineTest, BareFlagIsTrue) {
  const CommandLine cli = Parse({"prog", "--verbose"});
  EXPECT_TRUE(cli.GetBool("verbose", false));
  EXPECT_TRUE(cli.Has("verbose"));
}

TEST(CommandLineTest, MissingKeyUsesDefault) {
  const CommandLine cli = Parse({"prog"});
  EXPECT_EQ(cli.GetIndex("n", 7), 7);
  EXPECT_EQ(cli.GetString("x", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(cli.GetDouble("d", 2.5), 2.5);
  EXPECT_FALSE(cli.GetBool("b", false));
  EXPECT_FALSE(cli.Has("n"));
}

TEST(CommandLineTest, DoubleParsing) {
  const CommandLine cli = Parse({"prog", "--radius=3.75"});
  EXPECT_DOUBLE_EQ(cli.GetDouble("radius", 0.0), 3.75);
}

TEST(CommandLineTest, MalformedNumberFallsBackToDefault) {
  const CommandLine cli = Parse({"prog", "--n=abc"});
  EXPECT_EQ(cli.GetIndex("n", 5), 5);
}

TEST(CommandLineTest, PositionalArgumentsPreserved) {
  const CommandLine cli = Parse({"prog", "input.txt", "--n=3", "out.txt"});
  ASSERT_EQ(cli.Positional().size(), 2u);
  EXPECT_EQ(cli.Positional()[0], "input.txt");
  EXPECT_EQ(cli.Positional()[1], "out.txt");
}

TEST(CommandLineTest, BoolSpellings) {
  const CommandLine cli =
      Parse({"prog", "--a=true", "--b=1", "--c=yes", "--d=no"});
  EXPECT_TRUE(cli.GetBool("a", false));
  EXPECT_TRUE(cli.GetBool("b", false));
  EXPECT_TRUE(cli.GetBool("c", false));
  EXPECT_FALSE(cli.GetBool("d", true));
}

TEST(CommandLineTest, ProgramName) {
  const CommandLine cli = Parse({"my_bench"});
  EXPECT_EQ(cli.ProgramName(), "my_bench");
}

}  // namespace
}  // namespace valmod
