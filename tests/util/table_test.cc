#include "util/table.h"

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(TableTest, RendersHeadersAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NO_FATAL_FAILURE(t.Render());
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, IntFormats) {
  EXPECT_EQ(Table::Int(-42), "-42");
  EXPECT_EQ(Table::Int(1234567890123LL), "1234567890123");
}

TEST(TableTest, ColumnsAlignAcrossRows) {
  Table t({"x", "y"});
  t.AddRow({"short", "1"});
  t.AddRow({"a-much-longer-cell", "2"});
  const std::string out = t.Render();
  // All lines must have equal length (aligned columns).
  std::size_t first_len = out.find('\n');
  std::size_t pos = first_len + 1;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

}  // namespace
}  // namespace valmod
