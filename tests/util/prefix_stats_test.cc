#include "util/prefix_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(PrefixStatsTest, SumsOfSmallWindow) {
  const Series s = {1.0, 2.0, 3.0, 4.0};
  const PrefixStats stats(s);
  EXPECT_DOUBLE_EQ(stats.Sum(0, 4), 10.0);
  EXPECT_DOUBLE_EQ(stats.Sum(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(stats.SquaredSum(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(stats.Mean(0, 4), 2.5);
}

TEST(PrefixStatsTest, StdOfConstantWindowIsZero) {
  const Series s(64, 3.25);
  const PrefixStats stats(s);
  EXPECT_DOUBLE_EQ(stats.Std(0, 64), 0.0);
  EXPECT_DOUBLE_EQ(stats.Std(10, 20), 0.0);
}

TEST(PrefixStatsTest, SizeMatchesInput) {
  const Series s(17, 1.0);
  const PrefixStats stats(s);
  EXPECT_EQ(stats.size(), 17);
}

TEST(PrefixStatsTest, ExactMeanStdKnownValues) {
  const Series s = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const MeanStd ms = ExactMeanStd(s, 0, 8);
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);
}

// Property: prefix-sum statistics agree with the two-pass reference on
// random windows of random data, across magnitudes.
class PrefixStatsPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(PrefixStatsPropertyTest, MatchesExactComputationOnRandomWindows) {
  const double magnitude = GetParam();
  Rng rng(31337);
  Series s(4096);
  for (auto& v : s) v = magnitude * rng.Gaussian();
  const PrefixStats stats(s);
  for (int trial = 0; trial < 200; ++trial) {
    const Index len = rng.UniformIndex(2, 512);
    const Index offset = rng.UniformIndex(0, 4096 - len);
    const MeanStd fast = stats.Stats(offset, len);
    const MeanStd slow = ExactMeanStd(s, offset, len);
    EXPECT_NEAR(fast.mean, slow.mean, 1e-9 * magnitude)
        << "offset=" << offset << " len=" << len;
    EXPECT_NEAR(fast.std, slow.std, 1e-7 * magnitude)
        << "offset=" << offset << " len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, PrefixStatsPropertyTest,
                         ::testing::Values(1e-3, 1.0, 1e3));

TEST(PrefixStatsTest, HandlesRandomWalkOffsets) {
  const Series s = testing_util::WalkWithPlantedMotif(1000, 50, 100, 700, 5);
  const PrefixStats stats(s);
  const MeanStd fast = stats.Stats(123, 77);
  const MeanStd slow = ExactMeanStd(s, 123, 77);
  EXPECT_NEAR(fast.mean, slow.mean, 1e-8);
  EXPECT_NEAR(fast.std, slow.std, 1e-8);
}

}  // namespace
}  // namespace valmod
