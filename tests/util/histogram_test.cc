#include "util/histogram.h"

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(HistogramTest, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 5);  // Bins: [0,2) [2,4) [4,6) [6,8) [8,10)
  h.Add(1.0);
  h.Add(3.0);
  h.Add(3.5);
  h.Add(9.9);
  EXPECT_EQ(h.Count(0), 1);
  EXPECT_EQ(h.Count(1), 2);
  EXPECT_EQ(h.Count(2), 0);
  EXPECT_EQ(h.Count(4), 1);
  EXPECT_EQ(h.total(), 4);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(42.0);
  EXPECT_EQ(h.Count(0), 1);
  EXPECT_EQ(h.Count(3), 1);
}

TEST(HistogramTest, BinLeftEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BinLeft(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(4), 8.0);
}

TEST(HistogramTest, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) / 100.0);
  double total = 0.0;
  for (Index b = 0; b < h.bins(); ++b) total += h.Fraction(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, FractionOfEmptyHistogramIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.0);
}

TEST(HistogramTest, AddAllMatchesIndividualAdds) {
  const std::vector<double> values = {0.1, 0.4, 0.9, 0.4};
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.AddAll(values);
  for (double v : values) b.Add(v);
  for (Index bin = 0; bin < 4; ++bin) EXPECT_EQ(a.Count(bin), b.Count(bin));
}

TEST(MakeHistogramTest, AutoRangeSpansData) {
  const std::vector<double> values = {-2.0, 0.0, 5.0};
  const Histogram h = MakeHistogram(values, 7);
  EXPECT_DOUBLE_EQ(h.lo(), -2.0);
  EXPECT_GE(h.hi(), 5.0);
  EXPECT_EQ(h.total(), 3);
}

TEST(MakeHistogramTest, ConstantDataDoesNotCrash) {
  const std::vector<double> values(10, 4.0);
  const Histogram h = MakeHistogram(values, 3);
  EXPECT_EQ(h.total(), 10);
}

TEST(HistogramTest, RenderContainsOneLinePerBin) {
  Histogram h(0.0, 1.0, 3);
  h.Add(0.5);
  const std::string render = h.Render();
  int lines = 0;
  for (char c : render) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 3);
}

}  // namespace
}  // namespace valmod
