#include "util/bounded_heap.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace valmod {
namespace {

TEST(BoundedMaxHeapTest, StartsEmpty) {
  BoundedMaxHeap<int> heap(3);
  EXPECT_TRUE(heap.Empty());
  EXPECT_FALSE(heap.Full());
  EXPECT_EQ(heap.Size(), 0);
  EXPECT_EQ(heap.Capacity(), 3);
}

TEST(BoundedMaxHeapTest, InsertBelowCapacityAlwaysRetains) {
  BoundedMaxHeap<int> heap(3);
  EXPECT_TRUE(heap.Insert(5));
  EXPECT_TRUE(heap.Insert(1));
  EXPECT_TRUE(heap.Insert(9));
  EXPECT_TRUE(heap.Full());
  EXPECT_EQ(heap.Max(), 9);
}

TEST(BoundedMaxHeapTest, RejectsValuesNotSmallerThanMaxWhenFull) {
  BoundedMaxHeap<int> heap(2);
  heap.Insert(3);
  heap.Insert(7);
  EXPECT_FALSE(heap.Insert(7));   // Equal to max: rejected.
  EXPECT_FALSE(heap.Insert(10));  // Larger: rejected.
  EXPECT_EQ(heap.Max(), 7);
}

TEST(BoundedMaxHeapTest, EvictsMaxWhenSmallerValueArrives) {
  BoundedMaxHeap<int> heap(2);
  heap.Insert(3);
  heap.Insert(7);
  EXPECT_TRUE(heap.Insert(1));
  EXPECT_EQ(heap.Max(), 3);
  EXPECT_EQ(heap.Size(), 2);
}

TEST(BoundedMaxHeapTest, PopMaxReturnsDescending) {
  BoundedMaxHeap<int> heap(4);
  for (int v : {8, 3, 5, 1}) heap.Insert(v);
  EXPECT_EQ(heap.PopMax(), 8);
  EXPECT_EQ(heap.PopMax(), 5);
  EXPECT_EQ(heap.PopMax(), 3);
  EXPECT_EQ(heap.PopMax(), 1);
  EXPECT_TRUE(heap.Empty());
}

TEST(BoundedMaxHeapTest, SortedAscendingMatchesStdSort) {
  BoundedMaxHeap<int> heap(5);
  for (int v : {9, 2, 7, 4, 6, 1, 8}) heap.Insert(v);
  const std::vector<int> sorted = heap.SortedAscending();
  const std::vector<int> expected = {1, 2, 4, 6, 7};
  EXPECT_EQ(sorted, expected);
}

TEST(BoundedMaxHeapTest, ClearResets) {
  BoundedMaxHeap<int> heap(2);
  heap.Insert(1);
  heap.Clear();
  EXPECT_TRUE(heap.Empty());
  EXPECT_TRUE(heap.Insert(100));
}

// Property: against a stream of random values, the heap retains exactly the
// k smallest, for any k.
class BoundedHeapPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundedHeapPropertyTest, RetainsKSmallestOfRandomStream) {
  const int k = GetParam();
  Rng rng(static_cast<std::uint64_t>(k) * 977);
  BoundedMaxHeap<double> heap(k);
  std::vector<double> all;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Gaussian();
    all.push_back(v);
    heap.Insert(v);
  }
  std::sort(all.begin(), all.end());
  std::vector<double> retained = heap.SortedAscending();
  ASSERT_EQ(static_cast<int>(retained.size()), k);
  for (int i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(retained[static_cast<std::size_t>(i)],
                     all[static_cast<std::size_t>(i)]);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, BoundedHeapPropertyTest,
                         ::testing::Values(1, 2, 5, 16, 50, 150));

TEST(BoundedMaxHeapTest, CustomComparatorOrdersByAbsoluteValue) {
  auto abs_less = [](int a, int b) { return std::abs(a) < std::abs(b); };
  BoundedMaxHeap<int, decltype(abs_less)> heap(2, abs_less);
  heap.Insert(-9);
  heap.Insert(1);
  heap.Insert(-2);
  EXPECT_EQ(std::abs(heap.Max()), 2);
}

}  // namespace
}  // namespace valmod
