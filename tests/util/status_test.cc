#include "util/status.h"

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::IoError("disk gone").message(), "disk gone");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::InvalidArgument("bad length");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad length");
}

TEST(StatusTest, ToStringWithoutMessageIsJustCode) {
  const Status s(StatusCode::kNotFound, "");
  EXPECT_EQ(s.ToString(), "NOT_FOUND");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IO_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

}  // namespace
}  // namespace valmod
