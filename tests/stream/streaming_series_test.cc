#include "stream/streaming_series.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

TEST(StreamingSeriesTest, AppendOnlyStatsMatchPrefixStatsBitwise) {
  // Without eviction the rolling sums accumulate in the same order with the
  // same long-double arithmetic as PrefixStats, so the statistics are
  // bit-identical, which is what keeps streaming distances comparable to
  // batch ones.
  const Series data = testing_util::WhiteNoise(500, 1);
  StreamingSeries series;
  for (double v : data) series.Append(v);
  const PrefixStats batch(data);
  for (Index offset : {Index{0}, Index{3}, Index{250}, Index{460}}) {
    for (Index len : {Index{2}, Index{16}, Index{40}}) {
      const MeanStd streaming = series.Stats(offset, len);
      const MeanStd expected = batch.Stats(offset, len);
      EXPECT_EQ(streaming.mean, expected.mean) << offset << "," << len;
      EXPECT_EQ(streaming.std, expected.std) << offset << "," << len;
    }
  }
}

TEST(StreamingSeriesTest, WindowSlidesAndReportsDropped) {
  StreamingSeries series(StreamingSeriesOptions{8, 1 << 15});
  for (int i = 0; i < 20; ++i) series.Append(static_cast<double>(i));
  EXPECT_EQ(series.size(), 8);
  EXPECT_EQ(series.total_appended(), 20);
  EXPECT_EQ(series.dropped(), 12);
  const std::span<const double> window = series.Window();
  ASSERT_EQ(window.size(), 8u);
  for (int k = 0; k < 8; ++k) {
    EXPECT_EQ(window[static_cast<std::size_t>(k)],
              static_cast<double>(12 + k));
    EXPECT_EQ(series.At(k), static_cast<double>(12 + k));
  }
}

TEST(StreamingSeriesTest, StatsStayExactAcrossEvictionAndRebuilds) {
  const Series data = testing_util::WhiteNoise(5000, 2);
  StreamingSeries series(StreamingSeriesOptions{64, 32});
  for (double v : data) series.Append(v);
  EXPECT_GT(series.rebuild_count(), 0);
  const std::span<const double> window = series.Window();
  for (Index offset : {Index{0}, Index{10}, Index{48}}) {
    const MeanStd rolling = series.Stats(offset, 16);
    const MeanStd exact = ExactMeanStd(window, offset, 16);
    EXPECT_NEAR(rolling.mean, exact.mean, 1e-9);
    EXPECT_NEAR(rolling.std, exact.std, 1e-9);
  }
}

TEST(StreamingSeriesTest, CompactionBoundsMemory) {
  StreamingSeries series(StreamingSeriesOptions{16, 1 << 15});
  for (int i = 0; i < 100000; ++i) series.Append(static_cast<double>(i % 7));
  // The dead prefix is compacted geometrically, so a long stream cannot
  // accumulate unbounded storage in front of a small window.
  EXPECT_EQ(series.size(), 16);
  EXPECT_GT(series.rebuild_count(), 1000);
}

TEST(StreamingSeriesTest, AppendBlockMatchesAppendLoop) {
  const Series data = testing_util::WhiteNoise(300, 3);
  StreamingSeries loop(StreamingSeriesOptions{50, 64});
  StreamingSeries block(StreamingSeriesOptions{50, 64});
  for (double v : data) loop.Append(v);
  block.AppendBlock(data);
  ASSERT_EQ(loop.size(), block.size());
  EXPECT_EQ(loop.total_appended(), block.total_appended());
  for (Index i = 0; i < loop.size(); ++i) {
    EXPECT_EQ(loop.At(i), block.At(i)) << i;
  }
  const MeanStd a = loop.Stats(5, 20);
  const MeanStd b = block.Stats(5, 20);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.std, b.std);
}

TEST(StreamingSeriesTest, RestoreConstructorReproducesWindow) {
  const Series data = testing_util::WhiteNoise(400, 4);
  StreamingSeries original(StreamingSeriesOptions{128, 1 << 15});
  original.AppendBlock(data);
  const StreamingSeries restored(StreamingSeriesOptions{128, 1 << 15},
                                 original.Window(),
                                 original.total_appended());
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.total_appended(), original.total_appended());
  EXPECT_EQ(restored.dropped(), original.dropped());
  for (Index i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored.At(i), original.At(i)) << i;
  }
  // Restored statistics are exact (rebuilt from the window), so they agree
  // with a two-pass computation over the same window.
  const MeanStd rolling = restored.Stats(7, 32);
  const MeanStd exact = ExactMeanStd(restored.Window(), 7, 32);
  EXPECT_NEAR(rolling.mean, exact.mean, 1e-12);
  EXPECT_NEAR(rolling.std, exact.std, 1e-12);
}

}  // namespace
}  // namespace valmod
