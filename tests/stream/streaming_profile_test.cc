#include "stream/streaming_profile.h"

#include <gtest/gtest.h>

#include "mp/stomp.h"
#include "signal/distance.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

/// Batch STOMP over exactly the given window, without the input centering
/// of the convenience overload, so results are comparable bit-for-bit with
/// the streaming path that consumes the window as-is.
MatrixProfile BatchProfile(std::span<const double> window, Index len) {
  const PrefixStats stats(window);
  return Stomp(window, stats, len);
}

void ExpectProfilesNear(const MatrixProfile& streaming,
                        const MatrixProfile& batch, double tol) {
  ASSERT_EQ(streaming.size(), batch.size());
  for (Index i = 0; i < streaming.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (batch.distances[k] == kInf) {
      EXPECT_EQ(streaming.distances[k], kInf) << "i=" << i;
    } else {
      EXPECT_NEAR(streaming.distances[k], batch.distances[k],
                  tol * (1.0 + batch.distances[k]))
          << "i=" << i;
    }
  }
}

/// Every profile entry must be witnessed: the stored distance equals the
/// exact distance to the stored neighbor.
void ExpectProfileSelfConsistent(const MatrixProfile& profile,
                                 std::span<const double> window) {
  const PrefixStats stats(window);
  for (Index i = 0; i < profile.size(); ++i) {
    const Index j = profile.indices[static_cast<std::size_t>(i)];
    if (j == kNoNeighbor) continue;
    EXPECT_FALSE(IsTrivialMatch(i, j, profile.subsequence_length));
    const double exact =
        SubsequenceDistance(window, stats, i, j, profile.subsequence_length);
    EXPECT_NEAR(profile.distances[static_cast<std::size_t>(i)], exact,
                1e-6 * (1.0 + exact))
        << "i=" << i;
  }
}

TEST(StreamingDifferentialTest, ExactAtInitialization) {
  // The first time two subsequences exist the profile is produced by the
  // batch kernel itself, so it must be bit-identical to batch STOMP.
  const Index len = 16;
  const Series data = testing_util::WhiteNoise(17, 5);
  StreamingMatrixProfile streaming(
      StreamingProfileOptions{len, 0, 1 << 15});
  streaming.AppendBlock(data);
  ASSERT_TRUE(streaming.initialized());
  const MatrixProfile got = streaming.Profile();
  const MatrixProfile want = BatchProfile(data, len);
  ASSERT_EQ(got.size(), want.size());
  for (Index i = 0; i < got.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(got.distances[k], want.distances[k]) << i;
    EXPECT_EQ(got.indices[k], want.indices[k]) << i;
  }
}

TEST(StreamingDifferentialTest, GrowingStreamMatchesBatch) {
  // Enough appends to cross several kStompChunkRows re-seed boundaries
  // (n_sub = 669 > 2 * 256), so both the recurrence path and the MASS
  // re-seed path are exercised and compared against a full batch recompute.
  const Index len = 32;
  const Series data =
      testing_util::WalkWithPlantedMotif(700, len, 100, 480, 6);
  StreamingMatrixProfile streaming(
      StreamingProfileOptions{len, 0, 1 << 15});
  streaming.AppendBlock(data);
  EXPECT_GT(streaming.mass_reseeds(), 2);
  const MatrixProfile got = streaming.Profile();
  ExpectProfilesNear(got, BatchProfile(data, len), 1e-7);
  ExpectProfileSelfConsistent(got, data);
}

TEST(StreamingDifferentialTest, SlidingWindowMatchesBatchOnLiveWindow) {
  // With a bounded window the profile must equal a batch recompute over
  // exactly the live window, including rows repaired after their nearest
  // neighbor was evicted.
  const Index len = 16;
  const Index capacity = 256;
  const Series data = testing_util::WhiteNoise(2000, 7);
  StreamingMatrixProfile streaming(
      StreamingProfileOptions{len, capacity, 1 << 10});
  streaming.AppendBlock(data);
  EXPECT_EQ(streaming.size(), capacity);
  EXPECT_GT(streaming.stale_recomputes(), 0);
  const std::span<const double> window = streaming.series().Window();
  const MatrixProfile got = streaming.Profile();
  ExpectProfilesNear(got, BatchProfile(window, len), 1e-7);
  ExpectProfileSelfConsistent(got, window);
}

TEST(StreamingDifferentialTest, PlantedPairSurvivesSliding) {
  // Plant a motif pair inside what will be the final window and check the
  // streaming profile's best pair lands on it.
  const Index len = 24;
  const Index n = 1500;
  Series data = testing_util::WhiteNoise(n, 8);
  const Series planted = testing_util::NoiseWithPlantedMotif(
      400, len, 120, 310, 9);
  for (Index i = 0; i < 400; ++i) {
    data[static_cast<std::size_t>(n - 400 + i)] =
        planted[static_cast<std::size_t>(i)];
  }
  StreamingMatrixProfile streaming(
      StreamingProfileOptions{len, 400, 1 << 15});
  streaming.AppendBlock(data);
  const MotifPair best = streaming.BestMotif();
  ASSERT_TRUE(best.valid());
  EXPECT_NEAR(static_cast<double>(best.a), 120.0, 3.0);
  EXPECT_NEAR(static_cast<double>(best.b), 310.0, 3.0);
}

TEST(StreamingProfileTest, WarmupProfileIsEmpty) {
  StreamingMatrixProfile streaming(
      StreamingProfileOptions{32, 0, 1 << 15});
  const Series data = testing_util::WhiteNoise(32, 10);
  streaming.AppendBlock(data);  // Exactly len points: one subsequence only.
  EXPECT_FALSE(streaming.initialized());
  EXPECT_EQ(streaming.Profile().size(), 0);
  EXPECT_FALSE(streaming.BestMotif().valid());
}

TEST(StreamingDifferentialTest, SnapshotRestoreContinuesBitIdentically) {
  const Index len = 16;
  const Series head = testing_util::WhiteNoise(600, 11);
  const Series tail = testing_util::WhiteNoise(200, 12);
  StreamingMatrixProfile original(
      StreamingProfileOptions{len, 0, 1 << 15});
  original.AppendBlock(head);
  StreamingMatrixProfile restored(
      StreamingProfileOptions{len, 0, 1 << 15});
  ASSERT_TRUE(StreamingMatrixProfile::FromSnapshot(original.TakeSnapshot(),
                                                   &restored)
                  .ok());
  original.AppendBlock(tail);
  restored.AppendBlock(tail);
  const MatrixProfile a = original.Profile();
  const MatrixProfile b = restored.Profile();
  ASSERT_EQ(a.size(), b.size());
  for (Index i = 0; i < a.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(a.distances[k], b.distances[k]) << i;
    EXPECT_EQ(a.indices[k], b.indices[k]) << i;
  }
}

TEST(StreamingProfileTest, InvalidSnapshotsAreRejected) {
  const Index len = 16;
  StreamingMatrixProfile source(StreamingProfileOptions{len, 0, 1 << 15});
  source.AppendBlock(testing_util::WhiteNoise(100, 13));
  StreamingMatrixProfile out(StreamingProfileOptions{len, 0, 1 << 15});

  StreamingProfileSnapshot truncated = source.TakeSnapshot();
  truncated.distances.pop_back();
  EXPECT_EQ(StreamingMatrixProfile::FromSnapshot(truncated, &out).code(),
            StatusCode::kInvalidArgument);

  StreamingProfileSnapshot bad_index = source.TakeSnapshot();
  bad_index.indices[3] = 10000;
  EXPECT_EQ(StreamingMatrixProfile::FromSnapshot(bad_index, &out).code(),
            StatusCode::kOutOfRange);

  StreamingProfileSnapshot bad_reseed = source.TakeSnapshot();
  bad_reseed.rows_since_reseed = -5;
  EXPECT_EQ(StreamingMatrixProfile::FromSnapshot(bad_reseed, &out).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace valmod
