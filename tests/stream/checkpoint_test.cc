#include "stream/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "test_util.h"

namespace valmod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

OnlineMotifTracker MakeTracker(Index capacity) {
  OnlineTrackerOptions options;
  options.length_min = 12;
  options.length_max = 20;
  options.length_step = 4;
  options.capacity = capacity;
  return OnlineMotifTracker(options);
}

void ExpectTrackersEqual(const OnlineMotifTracker& a,
                         const OnlineMotifTracker& b) {
  ASSERT_EQ(a.lengths(), b.lengths());
  EXPECT_EQ(a.total_appended(), b.total_appended());
  EXPECT_EQ(a.size(), b.size());
  for (Index len : a.lengths()) {
    const MatrixProfile pa = a.ProfileForLength(len).Profile();
    const MatrixProfile pb = b.ProfileForLength(len).Profile();
    ASSERT_EQ(pa.size(), pb.size()) << "len=" << len;
    for (Index i = 0; i < pa.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      EXPECT_EQ(pa.distances[k], pb.distances[k]) << len << "," << i;
      EXPECT_EQ(pa.indices[k], pb.indices[k]) << len << "," << i;
    }
  }
}

TEST(CheckpointTest, RoundTripRestoresExactState) {
  OnlineMotifTracker tracker = MakeTracker(300);
  tracker.AppendBlock(GeneratePlantedWalk(1000, 30));
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(WriteCheckpoint(tracker, path).ok());
  OnlineMotifTracker restored = MakeTracker(300);
  ASSERT_TRUE(ReadCheckpoint(path, &restored).ok());
  ExpectTrackersEqual(tracker, restored);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RestoredTrackerContinuesIdentically) {
  // With an unbounded window the restored prefix statistics are rebuilt in
  // the same accumulation order as the original's, so post-restore appends
  // produce bit-identical profiles.
  const Series head = testing_util::WhiteNoise(400, 31);
  const Series tail = testing_util::WhiteNoise(150, 32);
  OnlineMotifTracker original = MakeTracker(0);
  original.AppendBlock(head);
  const std::string path = TempPath("continue.ckpt");
  ASSERT_TRUE(WriteCheckpoint(original, path).ok());
  OnlineMotifTracker restored = MakeTracker(0);
  ASSERT_TRUE(ReadCheckpoint(path, &restored).ok());
  original.AppendBlock(tail);
  restored.AppendBlock(tail);
  ExpectTrackersEqual(original, restored);
  std::remove(path.c_str());
}

TEST(CheckpointTest, WarmupTrackerRoundTrips) {
  // A checkpoint taken before any profile initialized (window shorter than
  // length + 1) must still restore.
  OnlineMotifTracker tracker = MakeTracker(0);
  tracker.AppendBlock(testing_util::WhiteNoise(8, 33));
  const std::string path = TempPath("warmup.ckpt");
  ASSERT_TRUE(WriteCheckpoint(tracker, path).ok());
  OnlineMotifTracker restored = MakeTracker(0);
  ASSERT_TRUE(ReadCheckpoint(path, &restored).ok());
  EXPECT_EQ(restored.total_appended(), 8);
  EXPECT_FALSE(restored.ready());
  std::remove(path.c_str());
}

TEST(CheckpointTest, FlippedByteFailsChecksum) {
  OnlineMotifTracker tracker = MakeTracker(0);
  tracker.AppendBlock(testing_util::WhiteNoise(120, 34));
  const std::string path = TempPath("corrupt.ckpt");
  ASSERT_TRUE(WriteCheckpoint(tracker, path).ok());
  std::string content = ReadFile(path);
  // Flip one digit in the middle of the body (past the magic line).
  const std::size_t at = content.size() / 2;
  content[at] = content[at] == '7' ? '3' : '7';
  WriteFile(path, content);
  OnlineMotifTracker restored = MakeTracker(0);
  const Status s = ReadCheckpoint(path, &restored);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncationIsRejected) {
  OnlineMotifTracker tracker = MakeTracker(0);
  tracker.AppendBlock(testing_util::WhiteNoise(120, 35));
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(WriteCheckpoint(tracker, path).ok());
  const std::string content = ReadFile(path);
  WriteFile(path, content.substr(0, content.size() - 40));
  OnlineMotifTracker restored = MakeTracker(0);
  EXPECT_EQ(ReadCheckpoint(path, &restored).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, VersionMismatchIsReportedClearly) {
  OnlineMotifTracker tracker = MakeTracker(0);
  tracker.AppendBlock(testing_util::WhiteNoise(60, 36));
  const std::string path = TempPath("version.ckpt");
  ASSERT_TRUE(WriteCheckpoint(tracker, path).ok());
  std::string content = ReadFile(path);
  const std::size_t eol = content.find('\n');
  ASSERT_NE(eol, std::string::npos);
  content.replace(0, eol, "valmod-stream-checkpoint 99");
  WriteFile(path, content);
  OnlineMotifTracker restored = MakeTracker(0);
  const Status s = ReadCheckpoint(path, &restored);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The version error must win over the (also broken) checksum.
  EXPECT_NE(s.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ForeignFileIsRejected) {
  const std::string path = TempPath("foreign.ckpt");
  WriteFile(path, "just some text\nnot a checkpoint\n");
  OnlineMotifTracker restored = MakeTracker(0);
  EXPECT_EQ(ReadCheckpoint(path, &restored).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  OnlineMotifTracker restored = MakeTracker(0);
  EXPECT_EQ(ReadCheckpoint("/nonexistent/stream.ckpt", &restored).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace valmod
