#include "stream/online_motif_tracker.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "mp/stomp.h"
#include "signal/znorm.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

OnlineTrackerOptions SmallTracker(Index len_min, Index len_max, Index step,
                                  Index capacity) {
  OnlineTrackerOptions options;
  options.length_min = len_min;
  options.length_max = len_max;
  options.length_step = step;
  options.capacity = capacity;
  return options;
}

TEST(OnlineMotifTrackerTest, LengthRangeIsMaterialized) {
  const OnlineMotifTracker tracker(SmallTracker(8, 16, 4, 0));
  ASSERT_EQ(tracker.lengths().size(), 3u);
  EXPECT_EQ(tracker.lengths()[0], 8);
  EXPECT_EQ(tracker.lengths()[1], 12);
  EXPECT_EQ(tracker.lengths()[2], 16);
  EXPECT_EQ(tracker.ProfileForLength(12).options().subsequence_length, 12);
}

TEST(OnlineMotifTrackerTest, PerLengthProfileMatchesBatchStomp) {
  const Series data = testing_util::WhiteNoise(300, 20);
  OnlineMotifTracker tracker(SmallTracker(8, 16, 8, 0));
  tracker.AppendBlock(data);
  for (Index len : tracker.lengths()) {
    const PrefixStats stats(data);
    const MatrixProfile batch = Stomp(data, stats, len);
    const MatrixProfile streaming = tracker.ProfileForLength(len).Profile();
    ASSERT_EQ(streaming.size(), batch.size());
    for (Index i = 0; i < batch.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      EXPECT_NEAR(streaming.distances[k], batch.distances[k],
                  1e-7 * (1.0 + batch.distances[k]))
          << "len=" << len << " i=" << i;
    }
  }
}

TEST(OnlineMotifTrackerTest, TracksPlantedMotifInSlidingWindow) {
  PlantedWalkSpec spec;
  spec.motif_length = 32;
  spec.mean_period = 200;
  spec.amplitude = 6.0;
  spec.walk_step = 0.25;
  std::vector<Index> offsets;
  const Series data = GeneratePlantedWalk(2000, 42, spec, &offsets);
  ASSERT_GE(offsets.size(), 4u);

  OnlineMotifTracker tracker(SmallTracker(28, 36, 4, 600));
  tracker.AppendBlock(data);
  ASSERT_TRUE(tracker.ready());
  const RankedPair best = tracker.BestPair();
  ASSERT_NE(best.off1, kNoNeighbor);

  // Both halves of the best pair must sit on planted occurrences (compared
  // in absolute stream offsets, window offset + dropped count).
  const Index base = tracker.dropped();
  for (Index window_offset : {best.off1, best.off2}) {
    const Index absolute = base + window_offset;
    bool near_occurrence = false;
    for (Index planted : offsets) {
      if (std::llabs(static_cast<long long>(absolute - planted)) <=
          spec.motif_length) {
        near_occurrence = true;
      }
    }
    EXPECT_TRUE(near_occurrence) << "absolute offset " << absolute;
  }
}

TEST(OnlineMotifTrackerTest, EvictionForgetsOldMotif) {
  // A strong pair early in the stream must stop dominating once both of
  // its occurrences slid out of the window.
  const Index len = 24;
  Series data = testing_util::WhiteNoise(1200, 21);
  const Series with_pair =
      testing_util::NoiseWithPlantedMotif(200, len, 30, 130, 22);
  for (Index i = 0; i < 200; ++i) {
    data[static_cast<std::size_t>(i)] = with_pair[static_cast<std::size_t>(i)];
  }
  OnlineMotifTracker tracker(SmallTracker(len, len, 1, 256));
  Index fed = 0;
  for (; fed < 200; ++fed) tracker.Append(data[static_cast<std::size_t>(fed)]);
  const RankedPair with_motif = tracker.BestPair();
  ASSERT_NE(with_motif.off1, kNoNeighbor);
  for (; fed < 1200; ++fed) {
    tracker.Append(data[static_cast<std::size_t>(fed)]);
  }
  const RankedPair after = tracker.BestPair();
  ASSERT_NE(after.off1, kNoNeighbor);
  EXPECT_GT(after.norm_distance, 2.0 * with_motif.norm_distance);
}

TEST(OnlineMotifTrackerTest, TopKPairsAreSortedAndDisjoint) {
  const Series data = testing_util::WhiteNoise(500, 23);
  OnlineMotifTracker tracker(SmallTracker(8, 16, 4, 0));
  tracker.AppendBlock(data);
  const std::vector<RankedPair> top = tracker.TopKPairs(3);
  ASSERT_GE(top.size(), 2u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].norm_distance, top[i].norm_distance);
  }
  for (std::size_t i = 0; i < top.size(); ++i) {
    for (std::size_t j = i + 1; j < top.size(); ++j) {
      const Index excl =
          ExclusionZone(std::min(top[i].length, top[j].length));
      for (Index a : {top[i].off1, top[i].off2}) {
        for (Index b : {top[j].off1, top[j].off2}) {
          EXPECT_GE(std::llabs(static_cast<long long>(a - b)), excl)
              << "pairs " << i << " and " << j << " overlap";
        }
      }
    }
  }
}

TEST(OnlineMotifTrackerTest, TopDiscordsSortedWithOnePerLength) {
  const Series data = testing_util::WhiteNoise(400, 24);
  OnlineMotifTracker tracker(SmallTracker(8, 24, 8, 0));
  tracker.AppendBlock(data);
  const std::vector<Discord> discords = tracker.TopDiscords(3);
  ASSERT_GE(discords.size(), 1u);
  for (std::size_t i = 0; i < discords.size(); ++i) {
    EXPECT_TRUE(discords[i].valid());
    if (i > 0) {
      EXPECT_GE(
          LengthNormalize(discords[i - 1].distance, discords[i - 1].length),
          LengthNormalize(discords[i].distance, discords[i].length));
    }
    for (std::size_t j = i + 1; j < discords.size(); ++j) {
      EXPECT_NE(discords[i].length, discords[j].length);
    }
  }
}

TEST(OnlineMotifTrackerTest, FromSnapshotsRejectsWrongCount) {
  OnlineMotifTracker source(SmallTracker(8, 16, 4, 0));
  source.AppendBlock(testing_util::WhiteNoise(100, 25));
  std::vector<StreamingProfileSnapshot> snapshots;
  for (Index len : source.lengths()) {
    snapshots.push_back(source.ProfileForLength(len).TakeSnapshot());
  }
  snapshots.pop_back();
  OnlineMotifTracker out(SmallTracker(8, 16, 4, 0));
  EXPECT_EQ(OnlineMotifTracker::FromSnapshots(source.options(), snapshots,
                                              &out)
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace valmod
