#include "stream/shared_tracker.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "stream/online_motif_tracker.h"
#include "test_util.h"
#include "util/common.h"

namespace valmod {
namespace {

OnlineTrackerOptions SmallTracker(Index len_min, Index len_max, Index step,
                                  Index capacity) {
  OnlineTrackerOptions options;
  options.length_min = len_min;
  options.length_max = len_max;
  options.length_step = step;
  options.capacity = capacity;
  return options;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(SharedTrackerTest, MatchesUnsharedTrackerSerially) {
  const Series data = testing_util::WhiteNoise(400, 11);
  OnlineMotifTracker plain(SmallTracker(8, 16, 4, 0));
  SharedTracker shared(SmallTracker(8, 16, 4, 0));
  plain.AppendBlock(data);
  shared.AppendBlock(data);
  EXPECT_EQ(shared.size(), plain.size());
  EXPECT_EQ(shared.total_appended(), plain.total_appended());
  ASSERT_EQ(shared.ready(), plain.ready());
  const RankedPair a = shared.BestPair();
  const RankedPair b = plain.BestPair();
  EXPECT_EQ(a.off1, b.off1);
  EXPECT_EQ(a.off2, b.off2);
  EXPECT_EQ(a.length, b.length);
  EXPECT_DOUBLE_EQ(a.norm_distance, b.norm_distance);
  EXPECT_EQ(shared.TopKPairs(3).size(), plain.TopKPairs(3).size());
  EXPECT_EQ(shared.TopDiscords(2).size(), plain.TopDiscords(2).size());
}

TEST(SharedTrackerTest, CheckpointRestoreRoundtrip) {
  const Series data = testing_util::WhiteNoise(300, 5);
  SharedTracker tracker(SmallTracker(10, 14, 4, 0));
  tracker.AppendBlock(data);
  const std::string path = TempPath("shared_tracker.ckpt");
  ASSERT_TRUE(tracker.Checkpoint(path).ok());

  SharedTracker restored(SmallTracker(10, 14, 4, 0));
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.total_appended(), tracker.total_appended());
  EXPECT_EQ(restored.size(), tracker.size());
  const RankedPair a = restored.BestPair();
  const RankedPair b = tracker.BestPair();
  EXPECT_EQ(a.off1, b.off1);
  EXPECT_EQ(a.off2, b.off2);
  EXPECT_DOUBLE_EQ(a.norm_distance, b.norm_distance);
  std::remove(path.c_str());
}

TEST(SharedTrackerTest, RestoreFailureLeavesTrackerUntouched) {
  const Series data = testing_util::WhiteNoise(200, 9);
  SharedTracker tracker(SmallTracker(8, 12, 4, 0));
  tracker.AppendBlock(data);
  const Index appended_before = tracker.total_appended();
  EXPECT_FALSE(tracker.Restore("/nonexistent/checkpoint.ckpt").ok());
  EXPECT_EQ(tracker.total_appended(), appended_before);
}

// One ingest thread races query threads; under TSan (tsan-parallel preset
// runs Stress-named suites) this proves the reader/writer locking protocol,
// and everywhere it proves queries observe only complete states. Readers
// run a fixed quota with yields rather than spinning until the writer
// finishes: glibc's shared_mutex admits readers greedily, so free-spinning
// readers can starve the writer without bound.
TEST(SharedTrackerStressTest, ConcurrentAppendAndQuery) {
  const Series data = testing_util::WhiteNoise(1500, 3);
  SharedTracker tracker(SmallTracker(16, 24, 8, 400));

  std::thread writer([&] {
    for (double v : data) tracker.Append(v);
  });

  std::vector<std::thread> readers;
  std::atomic<std::int64_t> queries{0};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        // size first, then total: each accessor takes the lock on its
        // own, and total_appended is monotone, so this order makes the
        // size <= total invariant race-free to observe (the reverse
        // order can see appends land between the two reads).
        const Index size = tracker.size();
        EXPECT_GE(tracker.total_appended(), size);
        if (tracker.ready()) {
          const RankedPair best = tracker.BestPair();
          EXPECT_NE(best.off1, kNoNeighbor);
          EXPECT_FALSE(tracker.TopKPairs(2).empty());
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(queries.load(), 3 * 200);
  EXPECT_EQ(tracker.total_appended(), static_cast<Index>(data.size()));
  EXPECT_TRUE(tracker.ready());
}

}  // namespace
}  // namespace valmod
