// Unit tests for the on-disk artifact format (catalog/format.h): byte-exact
// round-trips, geometry/size validation, and checksum tamper detection.

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "catalog/builder.h"
#include "catalog/format.h"
#include "datasets/generators.h"
#include "service/fingerprint.h"
#include "util/common.h"

namespace valmod {
namespace catalog {
namespace {

MotifArtifact MakeArtifact(Index n = 256, Index len_min = 8,
                           Index len_max = 12, Index stored_k = 3) {
  const Series series = GeneratePlantedWalk(n, 1234);
  BuildOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = 10;
  options.stored_k = stored_k;
  MotifArtifact artifact;
  const Status status = BuildArtifact(series, SeriesFingerprint(series),
                                      options, Deadline(), &artifact);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return artifact;
}

TEST(ArtifactFormatTest, RoundTripIsByteExact) {
  const MotifArtifact artifact = MakeArtifact();
  const std::string bytes = SerializeArtifact(artifact);
  ASSERT_EQ(bytes.size(),
            SerializedArtifactBytes(
                static_cast<std::int64_t>(artifact.valmp.size()),
                static_cast<std::int64_t>(artifact.lengths.size()),
                artifact.stored_k));

  MotifArtifact parsed;
  const Status status = ParseArtifact(bytes, "test", &parsed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The strongest property: re-serializing the parse reproduces the exact
  // bytes, so every field (doubles included) survived bit-for-bit.
  EXPECT_EQ(SerializeArtifact(parsed), bytes);

  EXPECT_EQ(parsed.key, artifact.key);
  EXPECT_EQ(parsed.n, artifact.n);
  EXPECT_EQ(parsed.stored_k, artifact.stored_k);
  ASSERT_EQ(parsed.lengths.size(), artifact.lengths.size());
  for (std::size_t i = 0; i < artifact.lengths.size(); ++i) {
    const ArtifactLength& want = artifact.lengths[i];
    const ArtifactLength& got = parsed.lengths[i];
    EXPECT_EQ(got.length, want.length);
    EXPECT_EQ(got.motif.a, want.motif.a);
    EXPECT_EQ(got.motif.b, want.motif.b);
    EXPECT_EQ(got.motif.distance, want.motif.distance);
    ASSERT_EQ(got.top_k.size(), want.top_k.size());
    for (std::size_t j = 0; j < want.top_k.size(); ++j) {
      EXPECT_EQ(got.top_k[j].a, want.top_k[j].a);
      EXPECT_EQ(got.top_k[j].b, want.top_k[j].b);
      EXPECT_EQ(got.top_k[j].distance, want.top_k[j].distance);
    }
    EXPECT_EQ(got.discord.offset, want.discord.offset);
    EXPECT_EQ(got.discord.distance, want.discord.distance);
    EXPECT_EQ(got.profile_min, want.profile_min);
    EXPECT_EQ(got.profile_mean, want.profile_mean);
    EXPECT_EQ(got.profile_max, want.profile_max);
  }
  ASSERT_EQ(parsed.valmp.size(), artifact.valmp.size());
  for (Index i = 0; i < artifact.valmp.size(); ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    EXPECT_EQ(parsed.valmp.distances[s], artifact.valmp.distances[s]);
    EXPECT_EQ(parsed.valmp.norm_distances[s],
              artifact.valmp.norm_distances[s]);
    EXPECT_EQ(parsed.valmp.lengths[s], artifact.valmp.lengths[s]);
    EXPECT_EQ(parsed.valmp.indices[s], artifact.valmp.indices[s]);
  }
  EXPECT_EQ(parsed.has_best_motif, artifact.has_best_motif);
  EXPECT_EQ(parsed.best_motif.norm_distance, artifact.best_motif.norm_distance);
  EXPECT_EQ(parsed.has_best_discord, artifact.has_best_discord);
  EXPECT_EQ(parsed.best_discord_norm, artifact.best_discord_norm);
}

TEST(ArtifactFormatTest, ShortTopKListsPadAndRestore) {
  // stored_k deeper than the profile can fill: unused slots pad with the
  // canonical invalid pair and parse back to the original short list.
  const MotifArtifact artifact =
      MakeArtifact(/*n=*/128, /*len_min=*/8, /*len_max=*/9, /*stored_k=*/32);
  const std::string bytes = SerializeArtifact(artifact);
  MotifArtifact parsed;
  ASSERT_TRUE(ParseArtifact(bytes, "test", &parsed).ok());
  EXPECT_EQ(SerializeArtifact(parsed), bytes);
  for (std::size_t i = 0; i < artifact.lengths.size(); ++i) {
    EXPECT_EQ(parsed.lengths[i].top_k.size(),
              artifact.lengths[i].top_k.size());
  }
}

TEST(ArtifactFormatTest, RejectsForeignMagicAndVersion) {
  const std::string bytes = SerializeArtifact(MakeArtifact());
  MotifArtifact parsed;

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  Status status = ParseArtifact(bad_magic, "test", &parsed);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("magic"), std::string::npos);

  std::string bad_version = bytes;
  bad_version[8] = 99;  // version byte (little-endian u64 at offset 8)
  status = ParseArtifact(bad_version, "test", &parsed);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(ArtifactFormatTest, RejectsTruncationAndTrailingGarbage) {
  const std::string bytes = SerializeArtifact(MakeArtifact());
  MotifArtifact parsed;
  EXPECT_FALSE(
      ParseArtifact(std::string_view(bytes).substr(0, bytes.size() - 1),
                    "test", &parsed)
          .ok());
  EXPECT_FALSE(ParseArtifact(bytes + "x", "test", &parsed).ok());
  EXPECT_FALSE(ParseArtifact(std::string_view(bytes).substr(0, 16), "test",
                             &parsed)
                   .ok());
  EXPECT_FALSE(ParseArtifact(std::string_view(), "test", &parsed).ok());
}

TEST(ArtifactFormatTest, DetectsEveryFlippedRegion) {
  const std::string bytes = SerializeArtifact(MakeArtifact());
  MotifArtifact parsed;
  // Flip one bit in each region (header, VALMP, length records, trailer);
  // the checksum (or a field validator) must reject every one of them.
  const std::size_t offsets[] = {kArtifactHeaderBytes / 2,
                                 kArtifactHeaderBytes + 5,
                                 bytes.size() - 9, bytes.size() - 1};
  for (const std::size_t at : offsets) {
    std::string corrupt = bytes;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x20);
    EXPECT_FALSE(ParseArtifact(corrupt, "test", &parsed).ok())
        << "corruption at byte " << at << " went undetected";
  }
}

TEST(ArtifactFormatTest, SizeHelperMatchesLayoutConstants) {
  EXPECT_EQ(SerializedArtifactBytes(0, 0, 0), kArtifactHeaderBytes + 8);
  EXPECT_EQ(SerializedArtifactBytes(3, 2, 4),
            kArtifactHeaderBytes + 3 * kValmpSlotBytes +
                2 * (kLengthRecordFixedBytes + 4 * kTopKSlotBytes) + 8);
}

}  // namespace
}  // namespace catalog
}  // namespace valmod
