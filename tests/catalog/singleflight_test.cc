// Unit tests for the request coalescer (catalog/singleflight.h): leader
// election, follower parking, join-order delivery, and counters.

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/singleflight.h"
#include "util/status.h"

namespace valmod {
namespace catalog {
namespace {

ArtifactKey Key(std::uint64_t fingerprint) {
  ArtifactKey key;
  key.fingerprint = fingerprint;
  key.len_min = 8;
  key.len_max = 16;
  key.p = 10;
  return key;
}

TEST(SingleflightTest, FirstLeadsLaterCallersFollow) {
  Singleflight flight;
  int delivered = 0;
  auto waiter = [&delivered](const std::shared_ptr<const MotifArtifact>&,
                             const Status&) { ++delivered; };
  EXPECT_TRUE(flight.JoinOrLead(Key(1), waiter));
  EXPECT_FALSE(flight.JoinOrLead(Key(1), waiter));
  EXPECT_FALSE(flight.JoinOrLead(Key(1), waiter));
  EXPECT_EQ(flight.flights_led(), 1);
  EXPECT_EQ(flight.coalesced(), 2);
  EXPECT_EQ(flight.in_flight(), 1);
  EXPECT_EQ(delivered, 0) << "waiters must not fire before Complete";

  auto artifact = std::make_shared<MotifArtifact>();
  flight.Complete(Key(1), artifact, Status::Ok());
  EXPECT_EQ(delivered, 3) << "leader and both followers get the artifact";
  EXPECT_EQ(flight.in_flight(), 0);
}

TEST(SingleflightTest, DistinctKeysAreIndependentFlights) {
  Singleflight flight;
  auto noop = [](const std::shared_ptr<const MotifArtifact>&,
                 const Status&) {};
  EXPECT_TRUE(flight.JoinOrLead(Key(1), noop));
  EXPECT_TRUE(flight.JoinOrLead(Key(2), noop));
  EXPECT_EQ(flight.flights_led(), 2);
  EXPECT_EQ(flight.coalesced(), 0);
  EXPECT_EQ(flight.in_flight(), 2);
  flight.Complete(Key(1), nullptr, Status::DeadlineExceeded("x"));
  EXPECT_EQ(flight.in_flight(), 1);
  flight.Complete(Key(2), nullptr, Status::DeadlineExceeded("x"));
  EXPECT_EQ(flight.in_flight(), 0);
}

TEST(SingleflightTest, DeliversInJoinOrderWithSharedArtifact) {
  Singleflight flight;
  std::vector<int> order;
  std::vector<const MotifArtifact*> seen;
  for (int i = 0; i < 4; ++i) {
    flight.JoinOrLead(
        Key(9), [i, &order, &seen](
                    const std::shared_ptr<const MotifArtifact>& artifact,
                    const Status& status) {
          EXPECT_TRUE(status.ok());
          order.push_back(i);
          seen.push_back(artifact.get());
        });
  }
  auto artifact = std::make_shared<MotifArtifact>();
  flight.Complete(Key(9), artifact, Status::Ok());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  for (const MotifArtifact* p : seen) {
    EXPECT_EQ(p, artifact.get()) << "every waiter shares the one artifact";
  }
}

TEST(SingleflightTest, ErrorPropagatesToEveryWaiter) {
  Singleflight flight;
  int errors = 0;
  for (int i = 0; i < 3; ++i) {
    flight.JoinOrLead(
        Key(5), [&errors](const std::shared_ptr<const MotifArtifact>& artifact,
                          const Status& status) {
          EXPECT_EQ(artifact, nullptr);
          EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
          ++errors;
        });
  }
  flight.Complete(Key(5), nullptr, Status::ResourceExhausted("queue full"));
  EXPECT_EQ(errors, 3);
}

TEST(SingleflightTest, CompleteOfUnknownKeyIsANoOp) {
  Singleflight flight;
  flight.Complete(Key(404), nullptr, Status::Ok());  // must not crash
  EXPECT_EQ(flight.in_flight(), 0);
}

TEST(SingleflightTest, KeyReusableAfterComplete) {
  Singleflight flight;
  auto noop = [](const std::shared_ptr<const MotifArtifact>&,
                 const Status&) {};
  EXPECT_TRUE(flight.JoinOrLead(Key(3), noop));
  flight.Complete(Key(3), nullptr, Status::Ok());
  EXPECT_TRUE(flight.JoinOrLead(Key(3), noop))
      << "a completed key opens a fresh flight";
  flight.Complete(Key(3), nullptr, Status::Ok());
}

TEST(SingleflightTest, WaiterMayReenterJoinOrLeadDuringDelivery) {
  // The engine's retry-once path re-enters JoinOrLead from inside a waiter
  // callback; the coalescer must deliver outside its lock to allow it.
  Singleflight flight;
  bool retried = false;
  flight.JoinOrLead(
      Key(8), [&flight, &retried](const std::shared_ptr<const MotifArtifact>&,
                                  const Status& status) {
        if (!status.ok()) {
          retried = flight.JoinOrLead(
              Key(8), [](const std::shared_ptr<const MotifArtifact>&,
                         const Status&) {});
        }
      });
  flight.Complete(Key(8), nullptr, Status::DeadlineExceeded("x"));
  EXPECT_TRUE(retried) << "re-entry after Complete leads a fresh flight";
  flight.Complete(Key(8), nullptr, Status::Ok());
}

TEST(SingleflightTest, ConcurrentJoinersElectExactlyOneLeader) {
  Singleflight flight;
  std::atomic<int> leaders{0};
  std::atomic<int> delivered{0};
  std::vector<std::thread> threads;
  threads.reserve(16);
  for (int i = 0; i < 16; ++i) {
    threads.emplace_back([&flight, &leaders, &delivered] {
      if (flight.JoinOrLead(
              Key(77), [&delivered](
                           const std::shared_ptr<const MotifArtifact>&,
                           const Status&) { ++delivered; })) {
        leaders.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(flight.coalesced(), 15);
  flight.Complete(Key(77), nullptr, Status::Ok());
  EXPECT_EQ(delivered.load(), 16);
}

}  // namespace
}  // namespace catalog
}  // namespace valmod
