// Unit tests for the sharded artifact catalog (catalog/catalog.h):
// persistence across instances, resident-LRU accounting and eviction,
// corrupt-file handling, and stat counters.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "catalog/builder.h"
#include "catalog/catalog.h"
#include "catalog/format.h"
#include "datasets/generators.h"
#include "service/fingerprint.h"
#include "util/common.h"

namespace valmod {
namespace catalog {
namespace {

MotifArtifact MakeArtifact(std::uint32_t seed, Index n = 200) {
  const Series series = GeneratePlantedWalk(n, seed);
  BuildOptions options;
  options.len_min = 8;
  options.len_max = 10;
  options.p = 10;
  options.stored_k = 3;
  MotifArtifact artifact;
  const Status status = BuildArtifact(series, SeriesFingerprint(series),
                                      options, Deadline(), &artifact);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return artifact;
}

std::string FreshRoot(const char* name) {
  static int counter = 0;
  std::string root = ::testing::TempDir() + "/catalog_" + name + "_" +
                     std::to_string(counter++);
  // TempDir() survives across runs; stale artifacts from a previous run
  // would skew the hit/miss/disk-load counts these tests pin down.
  std::filesystem::remove_all(root);
  return root;
}

TEST(CatalogTest, PutThenGetServesResident) {
  CatalogOptions options;
  options.root = FreshRoot("basic");
  Catalog catalog(options);
  ASSERT_TRUE(catalog.Open().ok());

  const MotifArtifact artifact = MakeArtifact(7);
  ASSERT_TRUE(catalog.Put(artifact).ok());
  EXPECT_EQ(catalog.puts(), 1);
  EXPECT_EQ(catalog.resident_entries(), 1);
  EXPECT_GT(catalog.resident_bytes(), 0u);

  std::shared_ptr<const MotifArtifact> got;
  ASSERT_TRUE(catalog.Get(artifact.key, &got).ok());
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->key, artifact.key);
  EXPECT_EQ(SerializeArtifact(*got), SerializeArtifact(artifact));
  EXPECT_EQ(catalog.hits(), 1);
  EXPECT_EQ(catalog.disk_loads(), 0) << "resident hit must not touch disk";
}

TEST(CatalogTest, UnknownKeyIsNotFound) {
  CatalogOptions options;
  options.root = FreshRoot("miss");
  Catalog catalog(options);
  ASSERT_TRUE(catalog.Open().ok());
  std::shared_ptr<const MotifArtifact> got;
  ArtifactKey key;
  key.fingerprint = 0xdeadbeef;
  key.len_min = 8;
  key.len_max = 10;
  key.p = 10;
  const Status status = catalog.Get(key, &got);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.misses(), 1);
}

TEST(CatalogTest, SurvivesProcessBoundary) {
  // A second Catalog instance over the same root (a "new process") must
  // serve the first instance's artifact from disk, byte-identically.
  CatalogOptions options;
  options.root = FreshRoot("persist");
  const MotifArtifact artifact = MakeArtifact(11);
  {
    Catalog writer(options);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.Put(artifact).ok());
  }
  Catalog reader(options);
  ASSERT_TRUE(reader.Open().ok());
  std::shared_ptr<const MotifArtifact> got;
  ASSERT_TRUE(reader.Get(artifact.key, &got).ok());
  EXPECT_EQ(SerializeArtifact(*got), SerializeArtifact(artifact));
  EXPECT_EQ(reader.disk_loads(), 1);
  // And the loaded artifact is now resident: the next Get skips disk.
  std::shared_ptr<const MotifArtifact> again;
  ASSERT_TRUE(reader.Get(artifact.key, &again).ok());
  EXPECT_EQ(reader.disk_loads(), 1);
  EXPECT_EQ(reader.hits(), 2);
}

TEST(CatalogTest, DropResidentKeepsDisk) {
  CatalogOptions options;
  options.root = FreshRoot("drop");
  Catalog catalog(options);
  ASSERT_TRUE(catalog.Open().ok());
  const MotifArtifact artifact = MakeArtifact(13);
  ASSERT_TRUE(catalog.Put(artifact).ok());
  catalog.DropResident();
  EXPECT_EQ(catalog.resident_entries(), 0);
  EXPECT_EQ(catalog.resident_bytes(), 0u);
  std::shared_ptr<const MotifArtifact> got;
  ASSERT_TRUE(catalog.Get(artifact.key, &got).ok());
  EXPECT_EQ(catalog.disk_loads(), 1);
  EXPECT_EQ(SerializeArtifact(*got), SerializeArtifact(artifact));
}

TEST(CatalogTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  const MotifArtifact a = MakeArtifact(21);
  const MotifArtifact b = MakeArtifact(22);
  const MotifArtifact c = MakeArtifact(23);
  CatalogOptions options;
  options.root = FreshRoot("lru");
  options.shards = 1;  // one shard so all three compete for one budget
  options.resident_bytes = a.ApproxBytes() + b.ApproxBytes() +
                           c.ApproxBytes() / 2;  // room for ~two
  Catalog catalog(options);
  ASSERT_TRUE(catalog.Open().ok());
  ASSERT_TRUE(catalog.Put(a).ok());
  ASSERT_TRUE(catalog.Put(b).ok());
  // Touch `a` so `b` is the LRU victim when `c` arrives.
  std::shared_ptr<const MotifArtifact> got;
  ASSERT_TRUE(catalog.Get(a.key, &got).ok());
  ASSERT_TRUE(catalog.Put(c).ok());
  EXPECT_GE(catalog.evictions(), 1);
  EXPECT_LE(catalog.resident_bytes(), options.resident_bytes);
  // `b` fell out of residence but is still on disk.
  const std::int64_t disk_loads_before = catalog.disk_loads();
  ASSERT_TRUE(catalog.Get(b.key, &got).ok());
  EXPECT_EQ(catalog.disk_loads(), disk_loads_before + 1);
}

TEST(CatalogTest, CorruptFileIsAnErrorAndPutHeals) {
  CatalogOptions options;
  options.root = FreshRoot("corrupt");
  Catalog catalog(options);
  ASSERT_TRUE(catalog.Open().ok());
  const MotifArtifact artifact = MakeArtifact(31);
  ASSERT_TRUE(catalog.Put(artifact).ok());
  catalog.DropResident();

  // Flip a byte in the on-disk file.
  const std::string path = catalog.ArtifactPath(artifact.key);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x1);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  std::shared_ptr<const MotifArtifact> got;
  const Status status = catalog.Get(artifact.key, &got);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.code(), StatusCode::kNotFound)
      << "corruption must be distinguishable from absence";
  // Recompute-and-Put heals the file; the next Get serves it again.
  ASSERT_TRUE(catalog.Put(artifact).ok());
  catalog.DropResident();
  ASSERT_TRUE(catalog.Get(artifact.key, &got).ok());
  EXPECT_EQ(SerializeArtifact(*got), SerializeArtifact(artifact));
}

TEST(CatalogTest, ArtifactPathIsDeterministicAcrossInstances) {
  CatalogOptions options;
  options.root = FreshRoot("path");
  const Catalog one(options);
  const Catalog two(options);
  ArtifactKey key;
  key.fingerprint = 0x1234567890abcdefULL;
  key.len_min = 64;
  key.len_max = 96;
  key.p = 10;
  EXPECT_EQ(one.ArtifactPath(key), two.ArtifactPath(key));
  EXPECT_NE(one.ArtifactPath(key).find("shard-"), std::string::npos);
  EXPECT_NE(one.ArtifactPath(key).find("1234567890abcdef"),
            std::string::npos);
}

}  // namespace
}  // namespace catalog
}  // namespace valmod
