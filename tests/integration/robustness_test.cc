// Robustness tests: degenerate and adversarial inputs that stress the
// z-normalization edge cases (flat windows), the numerical guards
// (correlation clamping), and the fallback paths of Algorithm 4 — inputs a
// downstream user will eventually feed the library.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "core/motif_sets.h"
#include "core/valmod.h"
#include "mp/brute_force.h"
#include "mp/stomp.h"
#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

/// Noise with several hard-constant plateaus (sensor saturation).
Series SeriesWithFlatRegions(Index n, std::uint64_t seed) {
  Rng rng(seed);
  Series s(static_cast<std::size_t>(n));
  for (auto& v : s) v = rng.Gaussian();
  for (Index start : {n / 8, n / 2, (n * 3) / 4}) {
    const Index len = n / 10;
    const double level = rng.Uniform(-2.0, 2.0);
    for (Index k = 0; k < len && start + k < n; ++k) {
      s[static_cast<std::size_t>(start + k)] = level;
    }
  }
  return s;
}

/// A step series: two constant halves (every window near the edge has a
/// near-degenerate std on one side).
Series StepSeries(Index n) {
  Series s(static_cast<std::size_t>(n), 0.0);
  for (Index i = n / 2; i < n; ++i) s[static_cast<std::size_t>(i)] = 5.0;
  return s;
}

TEST(RobustnessTest, FlatRegionsProduceFiniteProfilesEverywhere) {
  const Series s = SeriesWithFlatRegions(600, 1);
  const MatrixProfile mp = Stomp(s, 24);
  for (Index i = 0; i < mp.size(); ++i) {
    const double d = mp.distances[static_cast<std::size_t>(i)];
    EXPECT_FALSE(std::isnan(d)) << "i=" << i;
  }
}

TEST(RobustnessTest, ValmodExactOnFlatRegionSeries) {
  const Series s = SeriesWithFlatRegions(400, 2);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 28;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 16, 28);
  ASSERT_EQ(result.per_length_motifs.size(), truth.size());
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-6 * (1.0 + truth[k].distance))
        << "len=" << (16 + static_cast<Index>(k));
  }
}

TEST(RobustnessTest, StepSeriesDoesNotCrashAnyAlgorithm) {
  const Series s = StepSeries(300);
  EXPECT_NO_FATAL_FAILURE({
    ValmodOptions options;
    options.len_min = 16;
    options.len_max = 20;
    options.p = 3;
    RunValmod(s, options);
  });
  EXPECT_NO_FATAL_FAILURE(MoenVariableLength(s, 16, 20));
  EXPECT_NO_FATAL_FAILURE(QuickMotif(s, 16));
}

TEST(RobustnessTest, StepSeriesValmodMatchesBruteForce) {
  const Series s = StepSeries(300);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 20;
  options.p = 3;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 16, 20);
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-6)
        << "len=" << (16 + static_cast<Index>(k));
  }
}

TEST(RobustnessTest, HugeAmplitudeOffsetsStayExact) {
  // Values around 1e9 with unit-scale structure: exercises the prefix-sum
  // variance cancellation.
  Series s = testing_util::WalkWithPlantedMotif(300, 24, 40, 200, 3);
  for (auto& v : s) v += 1e9;
  ValmodOptions options;
  options.len_min = 20;
  options.len_max = 26;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 20, 26);
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-3)
        << "len=" << (20 + static_cast<Index>(k));
  }
}

TEST(RobustnessTest, TinyAmplitudeSeriesStaysExact) {
  Series s = testing_util::WhiteNoise(300, 4, /*sigma=*/1e-8);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 20;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 16, 20);
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-5)
        << "len=" << (16 + static_cast<Index>(k));
  }
}

TEST(RobustnessTest, MinimumViableSeriesLength) {
  // The smallest configuration the driver accepts: n = len_max + excl.
  const Index len = 8;
  const Index n = len + ExclusionZone(len) + len;  // A little headroom.
  const Series s = testing_util::WhiteNoise(n, 5);
  ValmodOptions options;
  options.len_min = len;
  options.len_max = len;
  options.p = 2;
  const ValmodResult result = RunValmod(s, options);
  EXPECT_EQ(result.per_length_motifs.size(), 1u);
}

TEST(RobustnessTest, SawtoothPeriodicSeriesAllLengthsExact) {
  // Strong periodicity: many ties in the distance profile, a stress test
  // for tie handling in the certification logic.
  Series s(500);
  for (Index i = 0; i < 500; ++i) {
    s[static_cast<std::size_t>(i)] =
        static_cast<double>(i % 25) + 0.01 * std::sin(static_cast<double>(i));
  }
  ValmodOptions options;
  options.len_min = 20;
  options.len_max = 30;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 20, 30);
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-6 * (1.0 + truth[k].distance))
        << "len=" << (20 + static_cast<Index>(k));
  }
}

TEST(RobustnessTest, ExactPlateauMotifHasDistanceZero) {
  // Regression (found by tools/fuzz_differential): an exactly-constant
  // plateau contains non-trivially-matching window pairs at distance 0.
  // The prefix-sum path used to compute garbage correlations from the
  // cancellation noise of var = ss/l - mu^2 and miss them; the relative
  // flatness test (IsFlatWindow) fixes this. Both brute force and VALMOD
  // must report the zero-distance motif.
  Rng rng(777);
  Series s(260);
  for (auto& v : s) v = rng.Gaussian();
  const double level = 1.37;
  for (Index i = 100; i < 140; ++i) {
    s[static_cast<std::size_t>(i)] = level;  // Exactly constant plateau.
  }
  ValmodOptions options;
  options.len_min = 8;
  options.len_max = 12;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  for (const MotifPair& motif : result.per_length_motifs) {
    ASSERT_TRUE(motif.valid());
    EXPECT_NEAR(motif.distance, 0.0, 1e-9) << "len=" << motif.length;
    const MotifPair truth = BruteForceMotif(s, motif.length);
    EXPECT_NEAR(truth.distance, 0.0, 1e-9);
  }
}

TEST(RobustnessTest, MotifSetsOnDegenerateSeriesDoNotCrash) {
  const Series s = SeriesWithFlatRegions(400, 6);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 24;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  MotifSetOptions set_options;
  set_options.k = 5;
  set_options.radius_factor = 10.0;  // Absurdly wide radius.
  EXPECT_NO_FATAL_FAILURE(
      ComputeVariableLengthMotifSets(s, result, set_options));
}

}  // namespace
}  // namespace valmod
