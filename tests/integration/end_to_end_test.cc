#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "baselines/moen.h"
#include "baselines/quick_motif.h"
#include "baselines/stomp_adapted.h"
#include "core/motif_sets.h"
#include "core/ranking.h"
#include "core/valmod.h"
#include "datasets/epg.h"
#include "datasets/registry.h"
#include "signal/znorm.h"

namespace valmod {
namespace {

/// All four algorithms of the paper's benchmark must agree on the motif
/// distance at every length of the range, on every dataset of Table 1.
class CrossAlgorithmTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossAlgorithmTest, AllAlgorithmsAgreeOnEveryLength) {
  Series series;
  ASSERT_TRUE(GenerateByName(GetParam(), 700, &series).ok());
  const Index len_min = 24;
  const Index len_max = 36;

  ValmodOptions valmod_options;
  valmod_options.len_min = len_min;
  valmod_options.len_max = len_max;
  valmod_options.p = 5;
  const ValmodResult valmod = RunValmod(series, valmod_options);

  const MoenResult moen = MoenVariableLength(series, len_min, len_max);
  const PerLengthMotifs stomp = StompPerLength(series, len_min, len_max);
  const PerLengthMotifs quick = QuickMotifPerLength(series, len_min, len_max);

  const std::size_t n_lengths =
      static_cast<std::size_t>(len_max - len_min + 1);
  ASSERT_EQ(valmod.per_length_motifs.size(), n_lengths);
  ASSERT_EQ(moen.motifs.size(), n_lengths);
  ASSERT_EQ(stomp.motifs.size(), n_lengths);
  ASSERT_EQ(quick.motifs.size(), n_lengths);
  for (std::size_t k = 0; k < n_lengths; ++k) {
    const double reference = stomp.motifs[k].distance;
    const double tol = 1e-5 * (1.0 + reference);
    EXPECT_NEAR(valmod.per_length_motifs[k].distance, reference, tol)
        << GetParam() << " VALMOD len=" << (len_min + static_cast<Index>(k));
    EXPECT_NEAR(moen.motifs[k].distance, reference, tol)
        << GetParam() << " MOEN len=" << (len_min + static_cast<Index>(k));
    EXPECT_NEAR(quick.motifs[k].distance, reference, tol)
        << GetParam() << " QUICK len=" << (len_min + static_cast<Index>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, CrossAlgorithmTest,
                         ::testing::Values("ECG", "GAP", "ASTRO", "EMG",
                                           "EEG"));

TEST(EpgCaseStudyTest, VariableLengthSearchSurfacesBothBehaviours) {
  // The Figure 1 scenario: probing (~100 samples) and ingestion
  // (~120 samples) coexist; a variable-length search over [90, 130] must
  // report motif pairs at both behaviour scales, each anchored at embedded
  // event locations.
  EpgOptions options;
  options.n = 6000;
  options.probing_instances = 3;
  options.ingestion_instances = 3;
  options.seed = 77;
  const EpgSeries epg = GenerateEpg(options);

  ValmodOptions valmod_options;
  valmod_options.len_min = 90;
  valmod_options.len_max = 130;
  valmod_options.p = 10;
  const ValmodResult result = RunValmod(epg.values, valmod_options);

  auto overlaps_event_of_kind = [&epg](Index offset, Index len,
                                       EpgEvent::Kind kind) {
    for (const EpgEvent& e : epg.events) {
      if (e.kind != kind) continue;
      const Index lo = std::max(offset, e.offset);
      const Index hi = std::min(offset + len, e.offset + e.length);
      if (hi - lo > len / 2) return true;
    }
    return false;
  };

  // The paper's claim is that a *variable-length* search surfaces both
  // behaviours while any single length can only show one. The top disjoint
  // ranked pairs across the whole range must therefore cover both event
  // kinds.
  const std::vector<RankedPair> top = SelectTopKPairs(result.valmp, 3);
  ASSERT_GE(top.size(), 2u);
  bool probing_covered = false;
  bool ingestion_covered = false;
  for (const RankedPair& pair : top) {
    if (overlaps_event_of_kind(pair.off1, pair.length,
                               EpgEvent::Kind::kProbing) &&
        overlaps_event_of_kind(pair.off2, pair.length,
                               EpgEvent::Kind::kProbing)) {
      probing_covered = true;
    }
    if (overlaps_event_of_kind(pair.off1, pair.length,
                               EpgEvent::Kind::kIngestion) &&
        overlaps_event_of_kind(pair.off2, pair.length,
                               EpgEvent::Kind::kIngestion)) {
      ingestion_covered = true;
    }
  }
  EXPECT_TRUE(probing_covered);
  EXPECT_TRUE(ingestion_covered);
}

TEST(EndToEndTest, MotifSetsRecoverPlantedOccurrences) {
  // Motif sets on the EPG data should collect several occurrences of the
  // repeated behaviours, not just the seed pairs.
  EpgOptions options;
  options.n = 6000;
  options.probing_instances = 5;
  options.ingestion_instances = 5;
  options.seed = 78;
  const EpgSeries epg = GenerateEpg(options);

  ValmodOptions valmod_options;
  valmod_options.len_min = 95;
  valmod_options.len_max = 125;
  valmod_options.p = 10;
  const ValmodResult result = RunValmod(epg.values, valmod_options);

  MotifSetOptions set_options;
  set_options.k = 2;
  set_options.radius_factor = 3.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(epg.values, result, set_options);
  ASSERT_FALSE(sets.empty());
  EXPECT_GE(sets[0].frequency(), 3);
}

TEST(EndToEndTest, ValmpAgreesWithPerLengthNormalizedMinimum) {
  Series series;
  ASSERT_TRUE(GenerateByName("ECG", 600, &series).ok());
  ValmodOptions options;
  options.len_min = 20;
  options.len_max = 32;
  options.p = 5;
  const ValmodResult result = RunValmod(series, options);
  // The global VALMP minimum must equal the best length-normalized motif
  // distance across the per-length answers.
  double valmp_min = kInf;
  for (Index i = 0; i < result.valmp.size(); ++i) {
    if (result.valmp.IsSet(i)) {
      valmp_min = std::min(
          valmp_min, result.valmp.norm_distances[static_cast<std::size_t>(i)]);
    }
  }
  double motif_min = kInf;
  for (const MotifPair& m : result.per_length_motifs) {
    if (m.valid()) {
      motif_min = std::min(motif_min, LengthNormalize(m.distance, m.length));
    }
  }
  EXPECT_NEAR(valmp_min, motif_min, 1e-9);
}

TEST(EndToEndTest, RankedPairsHeadTheValmpOrder) {
  Series series;
  ASSERT_TRUE(GenerateByName("EEG", 600, &series).ok());
  ValmodOptions options;
  options.len_min = 20;
  options.len_max = 30;
  options.p = 5;
  const ValmodResult result = RunValmod(series, options);
  const std::vector<RankedPair> top = SelectTopKPairs(result.valmp, 3);
  ASSERT_FALSE(top.empty());
  for (std::size_t k = 1; k < top.size(); ++k) {
    EXPECT_GE(top[k].norm_distance, top[k - 1].norm_distance);
  }
  // The first ranked pair is the global VALMP minimum.
  double valmp_min = kInf;
  for (Index i = 0; i < result.valmp.size(); ++i) {
    if (result.valmp.IsSet(i)) {
      valmp_min = std::min(
          valmp_min, result.valmp.norm_distances[static_cast<std::size_t>(i)]);
    }
  }
  EXPECT_NEAR(top[0].norm_distance, valmp_min, 1e-9);
}

}  // namespace
}  // namespace valmod
