// Contract tests: the library is exception-free (Google style); violated
// preconditions abort via VALMOD_CHECK with a source location. These death
// tests pin the contracts of the public entry points so an accidental
// silent-acceptance regression is caught.

#include <gtest/gtest.h>

#include "baselines/quick_motif.h"
#include "core/motif_sets.h"
#include "core/valmod.h"
#include "datasets/generators.h"
#include "signal/paa.h"
#include "signal/resample.h"
#include "signal/sax.h"
#include "test_util.h"
#include "util/bounded_heap.h"
#include "util/histogram.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

TEST(PreconditionDeathTest, ValmodRejectsTinyLenMin) {
  const Series s = testing_util::WhiteNoise(200, 1);
  ValmodOptions options;
  options.len_min = 2;  // < 4.
  options.len_max = 8;
  EXPECT_DEATH(RunValmod(s, options), "len_min");
}

TEST(PreconditionDeathTest, ValmodRejectsInvertedRange) {
  const Series s = testing_util::WhiteNoise(200, 2);
  ValmodOptions options;
  options.len_min = 32;
  options.len_max = 16;
  EXPECT_DEATH(RunValmod(s, options), "len_max");
}

TEST(PreconditionDeathTest, ValmodRejectsTooShortSeries) {
  const Series s = testing_util::WhiteNoise(40, 3);
  ValmodOptions options;
  options.len_min = 30;
  options.len_max = 36;
  EXPECT_DEATH(RunValmod(s, options), "series too short");
}

TEST(PreconditionDeathTest, ValmodRejectsNonPositiveP) {
  const Series s = testing_util::WhiteNoise(200, 4);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 20;
  options.p = 0;
  EXPECT_DEATH(RunValmod(s, options), "p");
}

TEST(PreconditionDeathTest, MotifSetsRejectNegativeRadiusFactor) {
  const Series s = testing_util::WhiteNoise(200, 5);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 20;
  const ValmodResult result = RunValmod(s, options);
  MotifSetOptions set_options;
  set_options.radius_factor = -1.0;
  EXPECT_DEATH(ComputeVariableLengthMotifSets(s, result, set_options),
               "radius_factor");
}

TEST(PreconditionDeathTest, QuickMotifRejectsOversizedPaa) {
  const Series s = testing_util::WhiteNoise(200, 6);
  QuickMotifOptions options;
  options.paa_segments = 100;  // > len.
  EXPECT_DEATH(QuickMotif(s, 16, options), "w");
}

TEST(PreconditionDeathTest, BoundedHeapRejectsZeroCapacity) {
  EXPECT_DEATH(BoundedMaxHeap<int>(0), "capacity");
}

TEST(PreconditionDeathTest, HistogramRejectsEmptyRange) {
  EXPECT_DEATH(Histogram(1.0, 1.0, 4), "lo < hi");
}

TEST(PreconditionDeathTest, PaaRejectsZeroSegments) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DEATH(Paa(v, 0), "segments");
}

TEST(PreconditionDeathTest, ResampleRejectsSinglePointTarget) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DEATH(ResampleLinear(v, 1), "target_len");
}

TEST(PreconditionDeathTest, SaxRejectsUnsupportedAlphabet) {
  EXPECT_DEATH(SaxBreakpoints(11), "alphabet");
}

TEST(PreconditionDeathTest, PrefixStatsRejectsOutOfRangeWindow) {
  const Series s = testing_util::WhiteNoise(50, 7);
  const PrefixStats stats(s);
  EXPECT_DEATH(ExactMeanStd(s, 40, 20), "offset");
}

}  // namespace
}  // namespace valmod
