#ifndef VALMOD_TESTS_TEST_UTIL_H_
#define VALMOD_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>

#include "datasets/generators.h"
#include "util/common.h"
#include "util/random.h"

namespace valmod {
namespace testing_util {

/// A small series with planted structure: random walk with two injected
/// sine-burst motifs, so motif searches have a crisp, known answer region.
inline Series WalkWithPlantedMotif(Index n, Index motif_len, Index at_a,
                                   Index at_b, std::uint64_t seed) {
  Series series = GenerateRandomWalk(n, seed, 0.5);
  Series pattern(static_cast<std::size_t>(motif_len));
  for (Index i = 0; i < motif_len; ++i) {
    pattern[static_cast<std::size_t>(i)] =
        4.0 * std::sin(6.283185307179586 * static_cast<double>(i) /
                       (static_cast<double>(motif_len) / 3.0));
  }
  InjectPattern(series, pattern, at_a);
  InjectPattern(series, pattern, at_b);
  return series;
}

/// White noise with two planted sine bursts. Unlike the random-walk
/// variant, the background has no smooth segments that z-normalize into
/// near-duplicates, so the planted pair is unambiguously the motif and
/// location assertions are deterministic.
inline Series NoiseWithPlantedMotif(Index n, Index motif_len, Index at_a,
                                    Index at_b, std::uint64_t seed) {
  Rng rng(seed);
  Series series(static_cast<std::size_t>(n));
  for (auto& v : series) v = rng.Gaussian();
  Series pattern(static_cast<std::size_t>(motif_len));
  for (Index i = 0; i < motif_len; ++i) {
    pattern[static_cast<std::size_t>(i)] =
        5.0 * std::sin(6.283185307179586 * static_cast<double>(i) /
                       (static_cast<double>(motif_len) / 3.0));
  }
  // Overwrite (rather than add) so the two occurrences differ only by a
  // little residual noise.
  for (Index i = 0; i < motif_len; ++i) {
    series[static_cast<std::size_t>(at_a + i)] =
        pattern[static_cast<std::size_t>(i)] + 0.05 * rng.Gaussian();
    series[static_cast<std::size_t>(at_b + i)] =
        pattern[static_cast<std::size_t>(i)] + 0.05 * rng.Gaussian();
  }
  return series;
}

/// White-noise series: the adversarial input for pruning-based algorithms
/// (no real motifs, distances concentrated).
inline Series WhiteNoise(Index n, std::uint64_t seed, double sigma = 1.0) {
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  for (auto& v : out) v = rng.Gaussian(0.0, sigma);
  return out;
}

}  // namespace testing_util
}  // namespace valmod

#endif  // VALMOD_TESTS_TEST_UTIL_H_
