#ifndef VALMOD_TESTS_TEST_UTIL_H_
#define VALMOD_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "datasets/generators.h"
#include "util/common.h"
#include "util/random.h"

namespace valmod {
namespace testing_util {

/// A small series with planted structure: random walk with two injected
/// sine-burst motifs, so motif searches have a crisp, known answer region.
inline Series WalkWithPlantedMotif(Index n, Index motif_len, Index at_a,
                                   Index at_b, std::uint64_t seed) {
  Series series = GenerateRandomWalk(n, seed, 0.5);
  Series pattern(static_cast<std::size_t>(motif_len));
  for (Index i = 0; i < motif_len; ++i) {
    pattern[static_cast<std::size_t>(i)] =
        4.0 * std::sin(6.283185307179586 * static_cast<double>(i) /
                       (static_cast<double>(motif_len) / 3.0));
  }
  InjectPattern(series, pattern, at_a);
  InjectPattern(series, pattern, at_b);
  return series;
}

/// White noise with two planted sine bursts. Unlike the random-walk
/// variant, the background has no smooth segments that z-normalize into
/// near-duplicates, so the planted pair is unambiguously the motif and
/// location assertions are deterministic.
inline Series NoiseWithPlantedMotif(Index n, Index motif_len, Index at_a,
                                    Index at_b, std::uint64_t seed) {
  Rng rng(seed);
  Series series(static_cast<std::size_t>(n));
  for (auto& v : series) v = rng.Gaussian();
  Series pattern(static_cast<std::size_t>(motif_len));
  for (Index i = 0; i < motif_len; ++i) {
    pattern[static_cast<std::size_t>(i)] =
        5.0 * std::sin(6.283185307179586 * static_cast<double>(i) /
                       (static_cast<double>(motif_len) / 3.0));
  }
  // Overwrite (rather than add) so the two occurrences differ only by a
  // little residual noise.
  for (Index i = 0; i < motif_len; ++i) {
    series[static_cast<std::size_t>(at_a + i)] =
        pattern[static_cast<std::size_t>(i)] + 0.05 * rng.Gaussian();
    series[static_cast<std::size_t>(at_b + i)] =
        pattern[static_cast<std::size_t>(i)] + 0.05 * rng.Gaussian();
  }
  return series;
}

/// White-noise series: the adversarial input for pruning-based algorithms
/// (no real motifs, distances concentrated).
inline Series WhiteNoise(Index n, std::uint64_t seed, double sigma = 1.0) {
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  for (auto& v : out) v = rng.Gaussian(0.0, sigma);
  return out;
}

// --- Property-based differential harness -----------------------------------
//
// A PropertyCase is one generated (series, subsequence length) input; the
// generator is a pure function of the seed, so every failure is reproducible
// from the single integer printed in the failure message (see
// docs/TESTING.md, "Reproducing a property-test failure").

/// One generated differential-test case.
struct PropertyCase {
  std::uint64_t seed = 0;
  /// Generator family, for failure messages.
  const char* family = "";
  Series series;
  /// Subsequence length; always >= 4 with series.size() >= 3 * len + 2, so
  /// the case is valid for every property (batch, streaming, VALMOD).
  Index len = 0;

  std::string Describe() const {
    std::ostringstream os;
    os << "PropertyCase{seed=" << seed << ", family=" << family
       << ", n=" << series.size() << ", len=" << len << "}";
    return os.str();
  }
};

/// Deterministically builds case `seed`. The families cover the inputs the
/// kernels historically get wrong: random walks (smooth near-duplicates),
/// white noise with a planted motif (crisp answers), flat/constant plateaus
/// (flat-window special cases), extreme magnitudes (cancellation,
/// NaN-adjacent overflow in naive formulas), and near-constant data with a
/// ramp (tiny variance, denormal-adjacent stds). Lengths mix odd and even
/// so the l/2 exclusion-zone rounding is exercised on every run.
///
/// `extreme_scale` sets the dynamic range of the extreme_magnitudes family.
/// The default (1e12) drives the O(1) dot-product recurrence of Eq. 3 into
/// catastrophic cancellation — correct for same-formula differential suites
/// (SIMD vs scalar is bit-identical regardless of conditioning), but
/// cross-algorithm oracles (VALMOD vs brute force, streaming vs batch)
/// compare the recurrence against O(len) exact arithmetic and must stay
/// inside the recurrence's numeric envelope: pass ~1e4 there. This is the
/// documented conditioning limit of STOMP-style updates, not a defect in
/// either implementation.
inline PropertyCase MakePropertyCase(std::uint64_t seed, Index max_n = 420,
                                     double extreme_scale = 1e12) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  PropertyCase c;
  c.seed = seed;
  const Index family = static_cast<Index>(seed % 5);
  // len in [4, 24], both parities; n in [3*len + 2, max_n].
  c.len = rng.UniformIndex(4, 24);
  const Index min_n = 3 * c.len + 2;
  const Index n = rng.UniformIndex(min_n, std::max(min_n, max_n));
  switch (family) {
    case 0: {
      c.family = "random_walk";
      c.series = GenerateRandomWalk(n, seed + 11, 0.5);
      break;
    }
    case 1: {
      c.family = "planted_motif";
      const Index at_a = c.len / 2;
      const Index at_b = n - 2 * c.len;
      c.series = NoiseWithPlantedMotif(n, c.len, at_a, at_b, seed + 13);
      break;
    }
    case 2: {
      c.family = "flat_plateau";
      c.series = GenerateRandomWalk(n, seed + 17, 0.5);
      // Constant plateau longer than one window, plus an exactly-zero run.
      const Index p0 = n / 5;
      for (Index i = p0; i < std::min(n, p0 + 2 * c.len); ++i) {
        c.series[static_cast<std::size_t>(i)] = 2.5;
      }
      const Index z0 = (3 * n) / 5;
      for (Index i = z0; i < std::min(n, z0 + c.len + 1); ++i) {
        c.series[static_cast<std::size_t>(i)] = 0.0;
      }
      break;
    }
    case 3: {
      c.family = "extreme_magnitudes";
      c.series = WhiteNoise(n, seed + 19);
      // A burst of huge values next to a burst of tiny ones: the naive
      // correlation formula overflows toward inf/NaN without the guards.
      const Index h0 = n / 4;
      for (Index i = h0; i < std::min(n, h0 + c.len); ++i) {
        c.series[static_cast<std::size_t>(i)] *= extreme_scale;
      }
      const Index t0 = n / 2;
      for (Index i = t0; i < std::min(n, t0 + c.len); ++i) {
        c.series[static_cast<std::size_t>(i)] /= extreme_scale;
      }
      break;
    }
    default: {
      c.family = "near_constant_ramp";
      Rng noise(seed + 23);
      c.series.assign(static_cast<std::size_t>(n), 1.0);
      for (Index i = 0; i < n; ++i) {
        c.series[static_cast<std::size_t>(i)] +=
            1e-8 * static_cast<double>(i) + 1e-10 * noise.Gaussian();
      }
      break;
    }
  }
  return c;
}

/// Greedy shrinker: repeatedly applies the first size reduction that keeps
/// `fails(case)` true — drop the back half, drop the front half, halve the
/// subsequence length — and returns the smallest still-failing case.
/// `fails` must be a pure predicate (no gtest assertions).
template <typename FailsFn>
PropertyCase ShrinkPropertyCase(PropertyCase c, const FailsFn& fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    const Index n = static_cast<Index>(c.series.size());
    const Index min_n = 3 * c.len + 2;
    // Candidate 1/2: keep one half of the series (front, then back).
    for (int which = 0; which < 2 && !progress; ++which) {
      const Index half = n / 2;
      if (half < min_n) continue;
      PropertyCase cand = c;
      if (which == 0) {
        cand.series.assign(c.series.begin(),
                           c.series.begin() + static_cast<std::ptrdiff_t>(half));
      } else {
        cand.series.assign(c.series.end() - static_cast<std::ptrdiff_t>(half),
                           c.series.end());
      }
      if (fails(cand)) {
        c = cand;
        progress = true;
      }
    }
    // Candidate 3: halve the window length.
    if (!progress && c.len / 2 >= 4) {
      PropertyCase cand = c;
      cand.len = c.len / 2;
      if (fails(cand)) {
        c = cand;
        progress = true;
      }
    }
  }
  return c;
}

/// Seed override for reproducing one failing case: when the
/// VALMOD_PROPERTY_SEED environment variable is set, returns that seed and
/// sets *overridden; otherwise returns `seed` unchanged. Every property test
/// routes its seed through this, so
///   VALMOD_PROPERTY_SEED=42 ctest -R property
/// re-runs every property against the single failing case.
inline std::uint64_t PropertySeedOverride(std::uint64_t seed,
                                          bool* overridden = nullptr) {
  if (overridden != nullptr) *overridden = false;
  const char* env = std::getenv("VALMOD_PROPERTY_SEED");
  if (env == nullptr || *env == '\0') return seed;
  if (overridden != nullptr) *overridden = true;
  return std::strtoull(env, nullptr, 10);
}

}  // namespace testing_util
}  // namespace valmod

#endif  // VALMOD_TESTS_TEST_UTIL_H_
