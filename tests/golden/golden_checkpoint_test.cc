// Golden-file regression tests for the stream checkpoint format
// (stream/checkpoint.h, format spec in docs/STREAMING.md). The corpus under
// tests/golden/ is committed; these tests pin two independent properties:
//
//  * Byte-exactness: serializing today's deterministic tracker reproduces
//    the committed bytes exactly — any formatting, ordering, or numeric
//    change to the writer is caught as a diff, not discovered by a customer
//    whose old checkpoints stopped loading.
//  * Backward compatibility: the committed version-1 corpus still parses,
//    and restores the exact tracker state it was written from.
//
// To regenerate after an INTENTIONAL format change (requires a version
// bump), run the test once with VALMOD_REGEN_GOLDEN=1 and commit the diff;
// see docs/TESTING.md.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "mp/matrix_profile.h"
#include "stream/checkpoint.h"
#include "stream/online_motif_tracker.h"
#include "test_util.h"

namespace valmod {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(VALMOD_GOLDEN_DIR) + "/" + name;
}

bool RegenRequested() {
  const char* env = std::getenv("VALMOD_REGEN_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

/// The corpus generator: fixed options, fixed seeded input, long enough to
/// exercise eviction so the checkpoint carries a non-trivial reseed counter
/// and repaired profile slots. Never change this without bumping the corpus
/// file name and kStreamCheckpointVersion.
OnlineMotifTracker MakeGoldenTracker() {
  OnlineTrackerOptions options;
  options.length_min = 8;
  options.length_max = 16;
  options.length_step = 4;
  options.capacity = 96;
  OnlineMotifTracker tracker(options);
  tracker.AppendBlock(GeneratePlantedWalk(150, 42));
  return tracker;
}

const char kCheckpointCorpus[] = "checkpoint_v1.golden";

TEST(GoldenCheckpointTest, WriterIsByteExactAgainstCommittedCorpus) {
  const OnlineMotifTracker tracker = MakeGoldenTracker();
  const std::string tmp = ::testing::TempDir() + "/checkpoint_now.golden";
  ASSERT_TRUE(WriteCheckpoint(tracker, tmp).ok());
  const std::string now = ReadFileOrEmpty(tmp);
  ASSERT_FALSE(now.empty());
  const std::string golden_path = GoldenPath(kCheckpointCorpus);
  if (RegenRequested()) {
    WriteFile(golden_path, now);
    GTEST_SKIP() << "regenerated " << golden_path << " (" << now.size()
                 << " bytes); commit the diff";
  }
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing corpus " << golden_path
                               << "; run with VALMOD_REGEN_GOLDEN=1";
  if (now != golden) {
    // Locate the first differing byte for a actionable failure message.
    std::size_t at = 0;
    while (at < now.size() && at < golden.size() && now[at] == golden[at]) {
      ++at;
    }
    FAIL() << "checkpoint bytes diverge from " << golden_path
           << " at offset " << at << " (now " << now.size() << " bytes, "
           << "golden " << golden.size() << " bytes). If the format change "
           << "is intentional, bump kStreamCheckpointVersion and regen with "
           << "VALMOD_REGEN_GOLDEN=1.";
  }
}

TEST(GoldenCheckpointTest, CommittedCorpusStillRestoresExactState) {
  const std::string golden_path = GoldenPath(kCheckpointCorpus);
  if (RegenRequested()) GTEST_SKIP() << "regen run";
  ASSERT_FALSE(ReadFileOrEmpty(golden_path).empty())
      << "missing corpus " << golden_path;
  OnlineMotifTracker restored(OnlineTrackerOptions{2, 2, 1, 0, 1});
  ASSERT_TRUE(ReadCheckpoint(golden_path, &restored).ok());
  const OnlineMotifTracker want = MakeGoldenTracker();
  ASSERT_EQ(restored.lengths(), want.lengths());
  EXPECT_EQ(restored.total_appended(), want.total_appended());
  EXPECT_EQ(restored.size(), want.size());
  for (Index len : want.lengths()) {
    const MatrixProfile pr = restored.ProfileForLength(len).Profile();
    const MatrixProfile pw = want.ProfileForLength(len).Profile();
    ASSERT_EQ(pr.size(), pw.size()) << "len=" << len;
    for (Index i = 0; i < pw.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      EXPECT_EQ(pr.distances[k], pw.distances[k]) << len << "," << i;
      EXPECT_EQ(pr.indices[k], pw.indices[k]) << len << "," << i;
    }
  }
  // The restored tracker must keep streaming usefully: append more data to
  // both and compare profiles. Not bitwise — the live tracker's running
  // window statistics carry summation history from already-evicted points,
  // which a restore (recomputing fresh sums over the stored window) cannot
  // reproduce; the drift is last-ulp and bounded by the stats drift policy.
  OnlineMotifTracker continued = MakeGoldenTracker();
  OnlineMotifTracker from_disk(OnlineTrackerOptions{2, 2, 1, 0, 1});
  ASSERT_TRUE(ReadCheckpoint(golden_path, &from_disk).ok());
  const Series more = GeneratePlantedWalk(60, 43);
  continued.AppendBlock(more);
  from_disk.AppendBlock(more);
  for (Index len : continued.lengths()) {
    const MatrixProfile pa = continued.ProfileForLength(len).Profile();
    const MatrixProfile pb = from_disk.ProfileForLength(len).Profile();
    for (Index i = 0; i < pa.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      EXPECT_NEAR(pa.distances[k], pb.distances[k],
                  1e-9 * (1.0 + pa.distances[k]))
          << len << "," << i;
    }
  }
}

}  // namespace
}  // namespace valmod
