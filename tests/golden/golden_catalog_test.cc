// Golden-file regression tests for the artifact-catalog binary format
// (catalog/format.h, spec in docs/CATALOG.md). The corpus under
// tests/golden/ is committed; these tests pin two independent properties:
//
//  * Byte-exactness: serializing today's deterministic artifact reproduces
//    the committed bytes exactly — any layout, padding, checksum, or
//    numeric change to the writer is caught as a diff, not discovered when
//    a server restart fails to load its persisted catalog.
//  * Backward compatibility: the committed version-1 corpus still parses,
//    and restores the exact artifact it was written from.
//
// To regenerate after an INTENTIONAL format change (requires a
// kArtifactVersion bump), run the test once with VALMOD_REGEN_GOLDEN=1 and
// commit the diff; see docs/TESTING.md.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "catalog/builder.h"
#include "catalog/format.h"
#include "datasets/generators.h"
#include "service/fingerprint.h"
#include "util/common.h"

namespace valmod {
namespace catalog {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(VALMOD_GOLDEN_DIR) + "/" + name;
}

bool RegenRequested() {
  const char* env = std::getenv("VALMOD_REGEN_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

/// The corpus generator: a fixed seeded series and fixed VALMOD parameters,
/// deep enough stored_k that some per-length top-K lists run short and
/// exercise slot padding. Never change this without bumping the corpus file
/// name and kArtifactVersion.
MotifArtifact MakeGoldenArtifact() {
  const Series series = GeneratePlantedWalk(220, 42);
  BuildOptions options;
  options.len_min = 8;
  options.len_max = 12;
  options.p = 10;
  options.stored_k = 5;
  MotifArtifact artifact;
  const Status status = BuildArtifact(series, SeriesFingerprint(series),
                                      options, Deadline(), &artifact);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return artifact;
}

const char kArtifactCorpus[] = "catalog_artifact_v1.golden";

TEST(GoldenCatalogTest, WriterIsByteExactAgainstCommittedCorpus) {
  const std::string now = SerializeArtifact(MakeGoldenArtifact());
  ASSERT_FALSE(now.empty());
  const std::string golden_path = GoldenPath(kArtifactCorpus);
  if (RegenRequested()) {
    WriteFile(golden_path, now);
    GTEST_SKIP() << "regenerated " << golden_path << " (" << now.size()
                 << " bytes); commit the diff";
  }
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing corpus " << golden_path
                               << "; run with VALMOD_REGEN_GOLDEN=1";
  if (now != golden) {
    std::size_t at = 0;
    while (at < now.size() && at < golden.size() && now[at] == golden[at]) {
      ++at;
    }
    FAIL() << "artifact bytes diverge from " << golden_path << " at offset "
           << at << " (now " << now.size() << " bytes, golden "
           << golden.size() << " bytes). If the format change is "
           << "intentional, bump kArtifactVersion and regen with "
           << "VALMOD_REGEN_GOLDEN=1.";
  }
}

TEST(GoldenCatalogTest, CommittedCorpusStillParsesToExactArtifact) {
  const std::string golden_path = GoldenPath(kArtifactCorpus);
  if (RegenRequested()) GTEST_SKIP() << "regen run";
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing corpus " << golden_path;

  MotifArtifact parsed;
  const Status status = ParseArtifact(golden, golden_path, &parsed);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // Re-serializing the parse reproduces the committed bytes, so every
  // stored field (bit patterns of doubles included) survived the round
  // trip through the version-1 layout.
  EXPECT_EQ(SerializeArtifact(parsed), golden);

  const MotifArtifact want = MakeGoldenArtifact();
  EXPECT_EQ(parsed.key, want.key);
  EXPECT_EQ(parsed.n, want.n);
  EXPECT_EQ(parsed.stored_k, want.stored_k);
  ASSERT_EQ(parsed.lengths.size(), want.lengths.size());
  for (std::size_t i = 0; i < want.lengths.size(); ++i) {
    EXPECT_EQ(parsed.lengths[i].length, want.lengths[i].length);
    EXPECT_EQ(parsed.lengths[i].motif.distance,
              want.lengths[i].motif.distance);
    EXPECT_EQ(parsed.lengths[i].top_k.size(), want.lengths[i].top_k.size());
  }
  EXPECT_EQ(parsed.has_best_motif, want.has_best_motif);
  EXPECT_EQ(parsed.best_motif.norm_distance, want.best_motif.norm_distance);
  EXPECT_EQ(parsed.best_discord_norm, want.best_discord_norm);
}

}  // namespace
}  // namespace catalog
}  // namespace valmod
