// Golden-file regression tests for the VALMOD/1 wire protocol
// (service/protocol.h, spec in docs/SERVICE.md). The committed corpus is a
// concatenation of frames — a request with an inline series, a successful
// motif response, and an error response — exactly as they would cross a
// socket. Two properties are pinned:
//
//  * Byte-exactness: re-encoding the same logical messages today must
//    reproduce the committed bytes (canonical sorted-key JSON, shortest
//    round-trip doubles, frame header byte counts). Any serializer change
//    shows up as a corpus diff, not as an interop break with old clients.
//  * Backward compatibility: the committed frames still parse into the
//    original field values through today's ParseFrameHeader / FromJson.
//
// Regenerate after an INTENTIONAL protocol change (version bump!) with
// VALMOD_REGEN_GOLDEN=1; see docs/TESTING.md.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "service/json.h"
#include "service/protocol.h"
#include "util/status.h"

namespace valmod {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(VALMOD_GOLDEN_DIR) + "/" + name;
}

bool RegenRequested() {
  const char* env = std::getenv("VALMOD_REGEN_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

const char kFramesCorpus[] = "frames_v1.golden";

/// The corpus request: every field off its default, series values chosen to
/// exercise the double formatter (integers, negatives, fractions exact and
/// inexact in binary, large magnitudes).
Request MakeGoldenRequest() {
  Request request;
  request.type = QueryType::kMotif;
  request.id = 7;
  request.series = {0.0,  1.5,   -2.25, 0.1,    3.0,
                    -4.5, 1e6,   0.125, -0.001, 42.0};
  request.len_min = 3;
  request.len_max = 4;
  request.p = 5;
  request.k = 2;
  request.deadline_ms = 1500.0;
  request.priority = 0;
  request.no_cache = true;
  return request;
}

/// The corpus success response, fully deterministic (no timing fields left
/// to the clock).
Response MakeGoldenResponse() {
  Response response;
  response.id = 7;
  response.type = QueryType::kMotif;
  response.ok = true;
  response.cached = false;
  response.elapsed_us = 1234.5;
  response.fingerprint = "00c0ffee";
  LengthResult lr;
  lr.length = 3;
  lr.has_motif = true;
  lr.motif = MotifPair{2, 7, 3, 0.25};
  response.lengths.push_back(lr);
  response.has_best_motif = true;
  response.best_motif = RankedPair{2, 7, 3, 0.25, 0.14433756729740643};
  return response;
}

/// The corpus error response (the backpressure shape clients must handle).
Response MakeGoldenErrorResponse() {
  Request request = MakeGoldenRequest();
  request.id = 8;
  return Response::Error(request,
                         Status::ResourceExhausted("queue is full"));
}

std::string EncodeCorpus() {
  std::string bytes;
  bytes += EncodeFrame(MakeGoldenRequest().ToJson().Serialize());
  bytes += EncodeFrame(MakeGoldenResponse().ToJson().Serialize());
  bytes += EncodeFrame(MakeGoldenErrorResponse().ToJson().Serialize());
  return bytes;
}

/// Splits one frame off the front of `bytes` at `*pos`, returning its JSON
/// payload (without the trailing newline) and advancing *pos.
std::string NextFramePayload(const std::string& bytes, std::size_t* pos) {
  const std::size_t eol = bytes.find('\n', *pos);
  EXPECT_NE(eol, std::string::npos);
  std::size_t payload_bytes = 0;
  const Status status = ParseFrameHeader(
      std::string_view(bytes).substr(*pos, eol - *pos), &payload_bytes);
  EXPECT_TRUE(status.ok()) << status.message();
  const std::string payload = bytes.substr(eol + 1, payload_bytes);
  *pos = eol + 1 + payload_bytes;
  EXPECT_FALSE(payload.empty());
  EXPECT_EQ(payload.back(), '\n');
  return payload.substr(0, payload.size() - 1);
}

TEST(GoldenProtocolTest, EncoderIsByteExactAgainstCommittedCorpus) {
  const std::string now = EncodeCorpus();
  const std::string golden_path = GoldenPath(kFramesCorpus);
  if (RegenRequested()) {
    WriteFile(golden_path, now);
    GTEST_SKIP() << "regenerated " << golden_path << " (" << now.size()
                 << " bytes); commit the diff";
  }
  const std::string golden = ReadFileOrEmpty(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing corpus " << golden_path
                               << "; run with VALMOD_REGEN_GOLDEN=1";
  if (now != golden) {
    std::size_t at = 0;
    while (at < now.size() && at < golden.size() && now[at] == golden[at]) {
      ++at;
    }
    FAIL() << "wire bytes diverge from " << golden_path << " at offset "
           << at << ". If the protocol change is intentional, bump "
           << "kProtocolVersion and regen with VALMOD_REGEN_GOLDEN=1.";
  }
}

TEST(GoldenProtocolTest, CommittedCorpusStillParses) {
  if (RegenRequested()) GTEST_SKIP() << "regen run";
  const std::string golden = ReadFileOrEmpty(GoldenPath(kFramesCorpus));
  ASSERT_FALSE(golden.empty()) << "missing corpus; regen first";
  std::size_t pos = 0;

  // Frame 1: the request, every field surviving the round trip.
  {
    JsonValue json;
    ASSERT_TRUE(JsonValue::Parse(NextFramePayload(golden, &pos), &json).ok());
    Request request;
    ASSERT_TRUE(request.FromJson(json).ok());
    const Request want = MakeGoldenRequest();
    EXPECT_EQ(request.type, want.type);
    EXPECT_EQ(request.id, want.id);
    ASSERT_EQ(request.series.size(), want.series.size());
    for (std::size_t i = 0; i < want.series.size(); ++i) {
      EXPECT_EQ(request.series[i], want.series[i]) << "series[" << i << "]";
    }
    EXPECT_EQ(request.len_min, want.len_min);
    EXPECT_EQ(request.len_max, want.len_max);
    EXPECT_EQ(request.p, want.p);
    EXPECT_EQ(request.k, want.k);
    EXPECT_EQ(request.deadline_ms, want.deadline_ms);
    EXPECT_EQ(request.priority, want.priority);
    EXPECT_EQ(request.no_cache, want.no_cache);
  }

  // Frame 2: the success response.
  {
    JsonValue json;
    ASSERT_TRUE(JsonValue::Parse(NextFramePayload(golden, &pos), &json).ok());
    Response response;
    ASSERT_TRUE(response.FromJson(json).ok());
    EXPECT_EQ(response.id, 7);
    EXPECT_TRUE(response.ok);
    EXPECT_EQ(response.type, QueryType::kMotif);
    EXPECT_EQ(response.elapsed_us, 1234.5);
    EXPECT_EQ(response.fingerprint, "00c0ffee");
    ASSERT_EQ(response.lengths.size(), 1u);
    EXPECT_TRUE(response.lengths[0].has_motif);
    EXPECT_EQ(response.lengths[0].motif.a, 2);
    EXPECT_EQ(response.lengths[0].motif.b, 7);
    EXPECT_EQ(response.lengths[0].motif.distance, 0.25);
    EXPECT_TRUE(response.has_best_motif);
    EXPECT_EQ(response.best_motif.off1, 2);
    EXPECT_EQ(response.best_motif.off2, 7);
  }

  // Frame 3: the error response fails closed with the original code.
  {
    JsonValue json;
    ASSERT_TRUE(JsonValue::Parse(NextFramePayload(golden, &pos), &json).ok());
    Response response;
    ASSERT_TRUE(response.FromJson(json).ok());
    EXPECT_EQ(response.id, 8);
    EXPECT_FALSE(response.ok);
    const Status status = response.ToStatus();
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(response.error_message, "queue is full");
  }
  EXPECT_EQ(pos, golden.size()) << "trailing bytes after the last frame";
}

}  // namespace
}  // namespace valmod
