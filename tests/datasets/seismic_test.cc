#include <cmath>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "mp/stomp.h"

namespace valmod {
namespace {

TEST(SeismicTest, GeneratesRequestedLengthDeterministically) {
  std::vector<Index> offsets_a;
  std::vector<int> families_a;
  const Series a = GenerateSeismic(10000, 5, &offsets_a, &families_a);
  const Series b = GenerateSeismic(10000, 5);
  EXPECT_EQ(a.size(), 10000u);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(offsets_a.empty());
  EXPECT_EQ(offsets_a.size(), families_a.size());
}

TEST(SeismicTest, EventsAlternateFamilies) {
  std::vector<Index> offsets;
  std::vector<int> families;
  GenerateSeismic(15000, 6, &offsets, &families);
  Index count_a = 0;
  Index count_b = 0;
  for (int f : families) {
    (f == 0 ? count_a : count_b)++;
  }
  EXPECT_GE(count_a, 2);
  EXPECT_GE(count_b, 2);
}

TEST(SeismicTest, EventsInBoundsAndSpaced) {
  std::vector<Index> offsets;
  std::vector<int> families;
  const Series s = GenerateSeismic(12000, 7, &offsets, &families);
  for (std::size_t e = 0; e < offsets.size(); ++e) {
    const Index len = families[e] == 0 ? kSeismicFamilyALength
                                       : kSeismicFamilyBLength;
    EXPECT_GE(offsets[e], 0);
    EXPECT_LE(offsets[e] + len, static_cast<Index>(s.size()));
    if (e > 0) {
      EXPECT_GT(offsets[e], offsets[e - 1] + kSeismicFamilyALength);
    }
  }
}

TEST(SeismicTest, AllValuesFinite) {
  const Series s = GenerateSeismic(8000, 8);
  for (double v : s) EXPECT_TRUE(std::isfinite(v));
}

TEST(SeismicTest, RepeatersFormStrongMotifs) {
  // The matrix profile at the family-A duration must have a deep minimum
  // (two family-A events) well below the noise-pair level sqrt(2*len).
  std::vector<Index> offsets;
  std::vector<int> families;
  const Series s = GenerateSeismic(12000, 9, &offsets, &families);
  const MatrixProfile mp = Stomp(s, kSeismicFamilyALength);
  double min = kInf;
  Index arg = kNoNeighbor;
  for (Index i = 0; i < mp.size(); ++i) {
    if (mp.distances[static_cast<std::size_t>(i)] < min) {
      min = mp.distances[static_cast<std::size_t>(i)];
      arg = i;
    }
  }
  EXPECT_LT(min, 0.35 * std::sqrt(2.0 * kSeismicFamilyALength));
  // The motif window must overlap an embedded event.
  bool overlaps = false;
  for (std::size_t e = 0; e < offsets.size(); ++e) {
    if (arg + kSeismicFamilyALength > offsets[e] &&
        arg < offsets[e] + kSeismicFamilyBLength) {
      overlaps = true;
    }
  }
  EXPECT_TRUE(overlaps);
}

}  // namespace
}  // namespace valmod
