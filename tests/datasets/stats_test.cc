#include "datasets/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace valmod {
namespace {

TEST(SummarizeTest, KnownSmallSeries) {
  const Series s = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const SeriesSummary summary = Summarize(s);
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 9.0);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.std, 2.0);
  EXPECT_EQ(summary.n, 8);
}

TEST(SummarizeTest, SingleValue) {
  const Series s = {3.0};
  const SeriesSummary summary = Summarize(s);
  EXPECT_DOUBLE_EQ(summary.min, 3.0);
  EXPECT_DOUBLE_EQ(summary.max, 3.0);
  EXPECT_DOUBLE_EQ(summary.std, 0.0);
}

TEST(SummarizeTest, StableUnderLargeOffset) {
  // Welford must not lose the variance when the mean dwarfs it.
  Rng rng(1);
  Series s(100000);
  for (auto& v : s) v = 1e9 + rng.Gaussian();
  const SeriesSummary summary = Summarize(s);
  EXPECT_NEAR(summary.std, 1.0, 0.02);
}

TEST(SummarizeTest, GaussianMoments) {
  Rng rng(2);
  Series s(200000);
  for (auto& v : s) v = rng.Gaussian(5.0, 3.0);
  const SeriesSummary summary = Summarize(s);
  EXPECT_NEAR(summary.mean, 5.0, 0.05);
  EXPECT_NEAR(summary.std, 3.0, 0.05);
}

}  // namespace
}  // namespace valmod
