#include "datasets/registry.h"

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(RegistryTest, FiveBenchmarkDatasetsInTableOrder) {
  const auto& specs = BenchmarkDatasets();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "ECG");
  EXPECT_EQ(specs[1].name, "GAP");
  EXPECT_EQ(specs[2].name, "ASTRO");
  EXPECT_EQ(specs[3].name, "EMG");
  EXPECT_EQ(specs[4].name, "EEG");
}

TEST(RegistryTest, GenerateByNameHonoursLength) {
  Series s;
  ASSERT_TRUE(GenerateByName("ECG", 1000, &s).ok());
  EXPECT_EQ(s.size(), 1000u);
}

TEST(RegistryTest, NamesAreCaseInsensitive) {
  Series a;
  Series b;
  ASSERT_TRUE(GenerateByName("emg", 500, &a).ok());
  ASSERT_TRUE(GenerateByName("EMG", 500, &b).ok());
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  Series s;
  EXPECT_EQ(GenerateByName("TAXI", 100, &s).code(), StatusCode::kNotFound);
}

TEST(RegistryTest, GeneratorsMatchDirectCalls) {
  Series via_registry;
  ASSERT_TRUE(GenerateByName("GAP", 300, &via_registry).ok());
  const auto& specs = BenchmarkDatasets();
  const Series direct = specs[1].generator(300, specs[1].default_seed);
  EXPECT_EQ(via_registry, direct);
}

TEST(RegistryTest, EverySpecHasDescriptionAndGenerator) {
  for (const auto* list : {&BenchmarkDatasets(), &ExtraDatasets()}) {
    for (const DatasetSpec& spec : *list) {
      EXPECT_FALSE(spec.description.empty());
      EXPECT_NE(spec.generator, nullptr);
    }
  }
}

TEST(RegistryTest, ExtraDatasetsStayOutOfTheBenchmarkFive) {
  // The batch benchmark suites iterate BenchmarkDatasets(); PLANTED exists
  // for the streaming subsystem and must not silently grow that set.
  ASSERT_EQ(ExtraDatasets().size(), 1u);
  EXPECT_EQ(ExtraDatasets()[0].name, "PLANTED");
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    EXPECT_NE(spec.name, "PLANTED");
  }
}

TEST(RegistryTest, PlantedIsReachableByName) {
  Series s;
  ASSERT_TRUE(GenerateByName("planted", 2000, &s).ok());
  EXPECT_EQ(s.size(), 2000u);
}

}  // namespace
}  // namespace valmod
