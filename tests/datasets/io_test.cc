#include "datasets/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/random.h"

namespace valmod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Series RandomSeries(Index n, std::uint64_t seed) {
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

TEST(IoTest, TextRoundTripPreservesValues) {
  const Series original = RandomSeries(200, 1);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteSeriesText(original, path).ok());
  Series loaded;
  ASSERT_TRUE(ReadSeriesText(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], original[i]);
  }
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRoundTripIsBitExact) {
  const Series original = RandomSeries(500, 2);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteSeriesBinary(original, path).ok());
  Series loaded;
  ASSERT_TRUE(ReadSeriesBinary(path, &loaded).ok());
  EXPECT_EQ(loaded, original);
  std::remove(path.c_str());
}

TEST(IoTest, ReadTextAcceptsCommaSeparated) {
  const std::string path = TempPath("csv.txt");
  {
    std::ofstream f(path);
    f << "1.5, 2.5\n3.5\n";
  }
  Series loaded;
  ASSERT_TRUE(ReadSeriesText(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0], 1.5);
  EXPECT_DOUBLE_EQ(loaded[2], 3.5);
  std::remove(path.c_str());
}

TEST(IoTest, ReadTextSkipsBlankLines) {
  const std::string path = TempPath("blank.txt");
  {
    std::ofstream f(path);
    f << "1.0\n\n2.0\n\n";
  }
  Series loaded;
  ASSERT_TRUE(ReadSeriesText(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, ReadTextRejectsMalformedToken) {
  const std::string path = TempPath("bad.txt");
  {
    std::ofstream f(path);
    f << "1.0\nnot-a-number\n";
  }
  Series loaded;
  const Status status = ReadSeriesText(path, &loaded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIoError) {
  Series loaded;
  EXPECT_EQ(ReadSeriesText("/nonexistent/nope.txt", &loaded).code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadSeriesBinary("/nonexistent/nope.bin", &loaded).code(),
            StatusCode::kIoError);
}

TEST(IoTest, TruncatedBinaryIsIoError) {
  const std::string path = TempPath("trunc.bin");
  {
    std::ofstream f(path, std::ios::binary);
    const std::uint64_t count = 100;  // Claims 100 doubles, writes none.
    f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  }
  Series loaded;
  EXPECT_EQ(ReadSeriesBinary(path, &loaded).code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(IoTest, EmptySeriesRoundTrips) {
  const Series empty;
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteSeriesBinary(empty, path).ok());
  Series loaded = {1.0, 2.0};
  ASSERT_TRUE(ReadSeriesBinary(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace valmod
