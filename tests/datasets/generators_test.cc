#include "datasets/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datasets/stats.h"
#include "mp/stomp.h"
#include "signal/znorm.h"

namespace valmod {
namespace {

TEST(GeneratorsTest, RequestedLengthIsHonoured) {
  EXPECT_EQ(GenerateEcg(1234, 1).size(), 1234u);
  EXPECT_EQ(GenerateEmg(777, 1).size(), 777u);
  EXPECT_EQ(GenerateGap(2000, 1).size(), 2000u);
  EXPECT_EQ(GenerateAstro(999, 1).size(), 999u);
  EXPECT_EQ(GenerateEeg(555, 1).size(), 555u);
  EXPECT_EQ(GenerateRandomWalk(100, 1).size(), 100u);
}

TEST(GeneratorsTest, DeterministicForSameSeed) {
  const Series a = GenerateEcg(500, 9);
  const Series b = GenerateEcg(500, 9);
  EXPECT_EQ(a, b);
}

TEST(GeneratorsTest, DifferentSeedsProduceDifferentSeries) {
  const Series a = GenerateEmg(500, 1);
  const Series b = GenerateEmg(500, 2);
  EXPECT_NE(a, b);
}

TEST(GeneratorsTest, AllValuesFinite) {
  for (const Series& s :
       {GenerateEcg(2000, 3), GenerateEmg(2000, 3), GenerateGap(2000, 3),
        GenerateAstro(2000, 3), GenerateEeg(2000, 3)}) {
    for (double v : s) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(GeneratorsTest, GapIsPositive) {
  const Series s = GenerateGap(5000, 4);
  for (double v : s) EXPECT_GT(v, 0.0);
}

TEST(GeneratorsTest, AstroHasTinyAmplitude) {
  const SeriesSummary summary = Summarize(GenerateAstro(10000, 5));
  EXPECT_LT(summary.std, 0.05);  // Table 1: std-dev 0.00031 scale.
}

TEST(GeneratorsTest, EegSpansLargeRange) {
  const SeriesSummary summary = Summarize(GenerateEeg(20000, 6));
  EXPECT_GT(summary.max - summary.min, 100.0);  // Table 1: -966..920 scale.
}

TEST(GeneratorsTest, EcgIsQuasiPeriodic) {
  // A strong motif must exist: the matrix profile minimum over heartbeats
  // must sit far below sqrt(2*len), the concentration level of unrelated
  // windows.
  const Series s = GenerateEcg(2000, 7);
  const MatrixProfile mp = Stomp(s, 80);
  double min = kInf;
  for (double d : mp.distances) min = std::min(min, d);
  EXPECT_LT(min, 0.15 * std::sqrt(2.0 * 80.0));
}

TEST(GeneratorsTest, EmgLacksLongCoherentMotifs) {
  // The property Figures 9-11 rely on: at long subsequence lengths ECG
  // still contains very close pairs (repeated beats) while EMG's best pair
  // stays near the white-noise concentration level, so EMG's pruning
  // margins collapse.
  const Series emg = GenerateEmg(6000, 8);
  const Series ecg = GenerateEcg(6000, 8);
  auto profile_min = [](const Series& s, Index len) {
    const MatrixProfile mp = Stomp(s, len);
    double lo = kInf;
    for (double d : mp.distances) lo = std::min(lo, d);
    return lo;
  };
  // Weak sanity proxy; the load-bearing Figure 9/10 contrast (pruning
  // margins and TLB) is asserted in diagnostics_test.cc.
  EXPECT_LT(profile_min(ecg, 256), 0.85 * profile_min(emg, 256));
}

TEST(TraceSignatureTest, HasRampPlateauAndDecay) {
  const Series sig = GenerateTraceSignature(200, 9);
  EXPECT_EQ(sig.size(), 200u);
  // Lead-in is near zero, plateau is near one.
  EXPECT_LT(std::abs(sig[5]), 0.2);
  double plateau_mean = 0.0;
  for (Index i = 80; i < 120; ++i) {
    plateau_mean += sig[static_cast<std::size_t>(i)];
  }
  plateau_mean /= 40.0;
  EXPECT_NEAR(plateau_mean, 1.0, 0.3);
  EXPECT_LT(sig.back(), 0.3);
}

TEST(PlantedWalkTest, OccurrencesAreWhereReported) {
  PlantedWalkSpec spec;
  spec.motif_length = 48;
  spec.mean_period = 300;
  std::vector<Index> offsets;
  const Series s = GeneratePlantedWalk(4000, 7, spec, &offsets);
  EXPECT_EQ(s.size(), 4000u);
  // Occurrences keep arriving through the whole stream, never overlap, and
  // always fit.
  ASSERT_GE(offsets.size(), 8u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_LE(offsets[i] + spec.motif_length, 4000);
    if (i > 0) {
      EXPECT_GT(offsets[i], offsets[i - 1] + spec.motif_length);
    }
  }
  EXPECT_GT(offsets.back(), 4000 - 2 * spec.mean_period);
}

TEST(PlantedWalkTest, PlantedPairBeatsBackgroundDistance) {
  // Any two occurrences are near-duplicates up to the small per-occurrence
  // noise, so their z-normalized distance is far below the expected
  // distance between random background windows.
  PlantedWalkSpec spec;
  std::vector<Index> offsets;
  const Series s = GeneratePlantedWalk(5000, 8, spec, &offsets);
  ASSERT_GE(offsets.size(), 2u);
  const double planted = ZNormalizedDistanceDirect(
      std::span<const double>(s).subspan(
          static_cast<std::size_t>(offsets[0]),
          static_cast<std::size_t>(spec.motif_length)),
      std::span<const double>(s).subspan(
          static_cast<std::size_t>(offsets[1]),
          static_cast<std::size_t>(spec.motif_length)));
  const double background = ZNormalizedDistanceDirect(
      std::span<const double>(s).subspan(
          static_cast<std::size_t>(offsets[0] + spec.motif_length + 5),
          static_cast<std::size_t>(spec.motif_length)),
      std::span<const double>(s).subspan(
          static_cast<std::size_t>(offsets[1] + spec.motif_length + 5),
          static_cast<std::size_t>(spec.motif_length)));
  EXPECT_LT(planted, 0.5 * background);
}

TEST(PlantedWalkTest, DefaultOverloadMatchesDefaultSpec) {
  const Series a = GeneratePlantedWalk(1500, 9);
  const Series b = GeneratePlantedWalk(1500, 9, PlantedWalkSpec{});
  EXPECT_EQ(a, b);
}

TEST(InjectPatternTest, AddsScaledPattern) {
  Series s(10, 1.0);
  const Series pattern = {1.0, 2.0};
  InjectPattern(s, pattern, 3, 2.0);
  EXPECT_DOUBLE_EQ(s[3], 3.0);
  EXPECT_DOUBLE_EQ(s[4], 5.0);
  EXPECT_DOUBLE_EQ(s[5], 1.0);
}

}  // namespace
}  // namespace valmod
