#include "datasets/epg.h"

#include <cmath>

#include <gtest/gtest.h>

namespace valmod {
namespace {

EpgOptions SmallOptions() {
  EpgOptions options;
  options.n = 8000;
  options.probing_instances = 4;
  options.ingestion_instances = 4;
  options.seed = 5;
  return options;
}

TEST(EpgTest, GeneratesRequestedLength) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  EXPECT_EQ(epg.values.size(), 8000u);
}

TEST(EpgTest, EventLogCoversAllInstances) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  Index probing = 0;
  Index ingestion = 0;
  for (const EpgEvent& e : epg.events) {
    if (e.kind == EpgEvent::Kind::kProbing) {
      ++probing;
      EXPECT_EQ(e.length, epg.probing_length);
    } else {
      ++ingestion;
      EXPECT_EQ(e.length, epg.ingestion_length);
    }
  }
  EXPECT_EQ(probing, 4);
  EXPECT_EQ(ingestion, 4);
}

TEST(EpgTest, BehaviourLengthsDiffer) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  EXPECT_EQ(epg.probing_length, 100);     // 10 s at 10 Hz.
  EXPECT_EQ(epg.ingestion_length, 120);   // 12 s at 10 Hz.
}

TEST(EpgTest, EventsDoNotOverlap) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  for (std::size_t x = 0; x < epg.events.size(); ++x) {
    for (std::size_t y = x + 1; y < epg.events.size(); ++y) {
      const EpgEvent& a = epg.events[x];
      const EpgEvent& b = epg.events[y];
      const bool disjoint = a.offset + a.length <= b.offset ||
                            b.offset + b.length <= a.offset;
      EXPECT_TRUE(disjoint);
    }
  }
}

TEST(EpgTest, EventsStayInBounds) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  for (const EpgEvent& e : epg.events) {
    EXPECT_GE(e.offset, 0);
    EXPECT_LE(e.offset + e.length, 8000);
  }
}

TEST(EpgTest, DeterministicForSameSeed) {
  const EpgSeries a = GenerateEpg(SmallOptions());
  const EpgSeries b = GenerateEpg(SmallOptions());
  EXPECT_EQ(a.values, b.values);
}

TEST(EpgTest, AllValuesFinite) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  for (double v : epg.values) EXPECT_TRUE(std::isfinite(v));
}

TEST(EpgTest, EventRegionsCarryMoreEnergyThanBaseline) {
  const EpgSeries epg = GenerateEpg(SmallOptions());
  // Mean absolute deviation inside events vs a baseline window.
  double event_energy = 0.0;
  Index event_samples = 0;
  for (const EpgEvent& e : epg.events) {
    for (Index k = 0; k < e.length; ++k) {
      event_energy += std::abs(epg.values[static_cast<std::size_t>(
          e.offset + k)]);
      ++event_samples;
    }
  }
  event_energy /= static_cast<double>(event_samples);
  // Baseline: last 500 samples (the schedule leaves the tail empty).
  double base_energy = 0.0;
  for (std::size_t i = epg.values.size() - 500; i < epg.values.size(); ++i) {
    base_energy += std::abs(epg.values[i]);
  }
  base_energy /= 500.0;
  EXPECT_GT(event_energy, base_energy);
}

}  // namespace
}  // namespace valmod
