#include "index/rtree.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace valmod {
namespace {

std::vector<double> RandomPoints(Index count, Index dims, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(static_cast<std::size_t>(count * dims));
  for (auto& v : out) v = rng.Uniform(-10.0, 10.0);
  return out;
}

TEST(PackedRTreeTest, SinglePointTree) {
  const std::vector<double> pts = {1.0, 2.0};
  const PackedRTree tree(pts, 1, 2);
  EXPECT_EQ(tree.num_points(), 1);
  const RTreeNode& root = tree.node(tree.root());
  EXPECT_TRUE(root.is_leaf);
  ASSERT_EQ(root.points.size(), 1u);
  EXPECT_EQ(root.points[0], 0);
}

TEST(PackedRTreeTest, EveryPointAppearsInExactlyOneLeaf) {
  const Index count = 500;
  const std::vector<double> pts = RandomPoints(count, 4, 3);
  const PackedRTree tree(pts, count, 4, /*leaf_capacity=*/16, /*fanout=*/4);
  std::set<Index> seen;
  for (Index id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    if (!node.is_leaf) continue;
    for (Index p : node.points) {
      EXPECT_TRUE(seen.insert(p).second) << "duplicate point " << p;
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), count);
}

TEST(PackedRTreeTest, LeafMbrsContainTheirPoints) {
  const Index count = 300;
  const std::vector<double> pts = RandomPoints(count, 3, 4);
  const PackedRTree tree(pts, count, 3);
  for (Index id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    if (!node.is_leaf) continue;
    for (Index p : node.points) {
      EXPECT_DOUBLE_EQ(node.mbr.MinDistToPoint(tree.point(p)), 0.0);
    }
  }
}

TEST(PackedRTreeTest, ParentMbrsContainChildMbrs) {
  const Index count = 400;
  const std::vector<double> pts = RandomPoints(count, 2, 5);
  const PackedRTree tree(pts, count, 2, 8, 4);
  for (Index id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    if (node.is_leaf) continue;
    for (Index child : node.children) {
      const RTreeNode& c = tree.node(child);
      for (Index d = 0; d < 2; ++d) {
        EXPECT_LE(node.mbr.lo()[static_cast<std::size_t>(d)],
                  c.mbr.lo()[static_cast<std::size_t>(d)]);
        EXPECT_GE(node.mbr.hi()[static_cast<std::size_t>(d)],
                  c.mbr.hi()[static_cast<std::size_t>(d)]);
      }
    }
  }
}

TEST(PackedRTreeTest, RootReachesEveryLeaf) {
  const Index count = 200;
  const std::vector<double> pts = RandomPoints(count, 2, 6);
  const PackedRTree tree(pts, count, 2, 4, 3);
  // BFS from the root must visit every node exactly once.
  std::set<Index> visited;
  std::vector<Index> frontier = {tree.root()};
  while (!frontier.empty()) {
    const Index id = frontier.back();
    frontier.pop_back();
    EXPECT_TRUE(visited.insert(id).second);
    const RTreeNode& node = tree.node(id);
    for (Index child : node.children) frontier.push_back(child);
  }
  EXPECT_EQ(static_cast<Index>(visited.size()), tree.num_nodes());
}

TEST(PackedRTreeTest, LeafCapacityIsRespected) {
  const Index count = 100;
  const std::vector<double> pts = RandomPoints(count, 2, 7);
  const PackedRTree tree(pts, count, 2, /*leaf_capacity=*/10, 4);
  for (Index id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    if (node.is_leaf) {
      EXPECT_LE(static_cast<Index>(node.points.size()), 10);
      EXPECT_GE(node.points.size(), 1u);
    }
  }
}

TEST(PackedRTreeTest, HighDimensionalPointsSupported) {
  // 16-D PAA summaries: Hilbert bits shrink internally to fit 64-bit keys.
  const Index count = 128;
  const std::vector<double> pts = RandomPoints(count, 16, 8);
  const PackedRTree tree(pts, count, 16);
  EXPECT_EQ(tree.num_points(), count);
  EXPECT_GE(tree.num_nodes(), count / 16);
}

TEST(PackedRTreeTest, HilbertPackingKeepsNeighborsTogether) {
  // Points drawn from two well-separated clusters: no leaf should mix the
  // clusters (Hilbert order visits one cluster before the other).
  Rng rng(9);
  const Index count = 200;
  std::vector<double> pts;
  for (Index i = 0; i < count; ++i) {
    const double base = i < count / 2 ? 0.0 : 100.0;
    pts.push_back(base + rng.Uniform(0.0, 1.0));
    pts.push_back(base + rng.Uniform(0.0, 1.0));
  }
  const PackedRTree tree(pts, count, 2, 8, 4);
  // At most one leaf (the one straddling the curve's transition between
  // the clusters) may contain points of both.
  Index mixed_leaves = 0;
  for (Index id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    if (!node.is_leaf) continue;
    int low = 0;
    int high = 0;
    for (Index p : node.points) {
      (tree.point(p)[0] < 50.0 ? low : high)++;
    }
    if (low > 0 && high > 0) ++mixed_leaves;
  }
  EXPECT_LE(mixed_leaves, 1);
}

}  // namespace
}  // namespace valmod
