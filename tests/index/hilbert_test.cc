#include "index/hilbert.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(HilbertTest, OneDimensionIsIdentityOrder) {
  // In 1-D the curve is the line itself: index order == coordinate order.
  std::vector<std::uint64_t> keys;
  for (std::uint32_t x = 0; x < 16; ++x) {
    const std::uint32_t coords[] = {x};
    keys.push_back(HilbertIndex(coords, 4));
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(HilbertTest, TwoDimBijectionOverFullGrid) {
  // All 2^(2*bits) cells map to distinct keys in [0, 2^(2*bits)).
  const int bits = 4;
  std::set<std::uint64_t> keys;
  for (std::uint32_t x = 0; x < 16; ++x) {
    for (std::uint32_t y = 0; y < 16; ++y) {
      const std::uint32_t coords[] = {x, y};
      const std::uint64_t k = HilbertIndex(coords, bits);
      EXPECT_LT(k, 256u);
      keys.insert(k);
    }
  }
  EXPECT_EQ(keys.size(), 256u);
}

TEST(HilbertTest, CurveIsContinuousIn2D) {
  // Consecutive keys correspond to grid cells at Manhattan distance 1: the
  // defining locality property of the Hilbert curve.
  const int bits = 3;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> by_key(64);
  for (std::uint32_t x = 0; x < 8; ++x) {
    for (std::uint32_t y = 0; y < 8; ++y) {
      const std::uint32_t coords[] = {x, y};
      by_key[HilbertIndex(coords, bits)] = {x, y};
    }
  }
  for (std::size_t k = 1; k < by_key.size(); ++k) {
    const int dx = std::abs(static_cast<int>(by_key[k].first) -
                            static_cast<int>(by_key[k - 1].first));
    const int dy = std::abs(static_cast<int>(by_key[k].second) -
                            static_cast<int>(by_key[k - 1].second));
    EXPECT_EQ(dx + dy, 1) << "key=" << k;
  }
}

TEST(HilbertTest, ThreeDimBijection) {
  const int bits = 2;
  std::set<std::uint64_t> keys;
  for (std::uint32_t x = 0; x < 4; ++x) {
    for (std::uint32_t y = 0; y < 4; ++y) {
      for (std::uint32_t z = 0; z < 4; ++z) {
        const std::uint32_t coords[] = {x, y, z};
        keys.insert(HilbertIndex(coords, bits));
      }
    }
  }
  EXPECT_EQ(keys.size(), 64u);
}

TEST(HilbertIndexOfPointTest, ClampsOutOfBoxPoints) {
  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  const std::vector<double> below = {-5.0, -5.0};
  const std::vector<double> above = {9.0, 9.0};
  const std::vector<double> corner_lo = {0.0, 0.0};
  const std::vector<double> corner_hi = {1.0, 1.0};
  EXPECT_EQ(HilbertIndexOfPoint(below, lo, hi, 4),
            HilbertIndexOfPoint(corner_lo, lo, hi, 4));
  EXPECT_EQ(HilbertIndexOfPoint(above, lo, hi, 4),
            HilbertIndexOfPoint(corner_hi, lo, hi, 4));
}

TEST(HilbertIndexOfPointTest, NearbyPointsGetNearbyKeysOnAverage) {
  // Locality smoke test: pairs of close points should have a much smaller
  // mean key distance than pairs of far points.
  const std::vector<double> lo = {0.0, 0.0};
  const std::vector<double> hi = {1.0, 1.0};
  double close_acc = 0.0;
  double far_acc = 0.0;
  int count = 0;
  for (double x = 0.05; x < 0.9; x += 0.07) {
    for (double y = 0.05; y < 0.9; y += 0.07) {
      const std::vector<double> p = {x, y};
      const std::vector<double> near = {x + 0.01, y};
      const std::vector<double> far = {1.0 - x, 1.0 - y};
      const auto kp = HilbertIndexOfPoint(p, lo, hi, 8);
      close_acc += std::abs(static_cast<double>(kp) -
                            static_cast<double>(
                                HilbertIndexOfPoint(near, lo, hi, 8)));
      far_acc += std::abs(static_cast<double>(kp) -
                          static_cast<double>(
                              HilbertIndexOfPoint(far, lo, hi, 8)));
      ++count;
    }
  }
  EXPECT_LT(close_acc / count, far_acc / count / 4.0);
}

TEST(HilbertIndexOfPointTest, DegenerateBoxDoesNotCrash) {
  const std::vector<double> lo = {1.0};
  const std::vector<double> hi = {1.0};
  const std::vector<double> p = {1.0};
  EXPECT_EQ(HilbertIndexOfPoint(p, lo, hi, 4), 0u);
}

}  // namespace
}  // namespace valmod
