#include "index/mbr.h"

#include <cmath>

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(MbrTest, StartsEmpty) {
  const Mbr mbr(3);
  EXPECT_TRUE(mbr.empty());
  EXPECT_EQ(mbr.dims(), 3);
}

TEST(MbrTest, ExtendWithPointsGrowsBox) {
  Mbr mbr(2);
  mbr.Extend(std::vector<double>{1.0, 5.0});
  mbr.Extend(std::vector<double>{3.0, 2.0});
  EXPECT_FALSE(mbr.empty());
  EXPECT_DOUBLE_EQ(mbr.lo()[0], 1.0);
  EXPECT_DOUBLE_EQ(mbr.hi()[0], 3.0);
  EXPECT_DOUBLE_EQ(mbr.lo()[1], 2.0);
  EXPECT_DOUBLE_EQ(mbr.hi()[1], 5.0);
}

TEST(MbrTest, ExtendWithMbrMergesBoxes) {
  Mbr a(1);
  a.Extend(std::vector<double>{0.0});
  Mbr b(1);
  b.Extend(std::vector<double>{10.0});
  a.Extend(b);
  EXPECT_DOUBLE_EQ(a.lo()[0], 0.0);
  EXPECT_DOUBLE_EQ(a.hi()[0], 10.0);
}

TEST(MbrTest, ExtendWithEmptyMbrIsNoop) {
  Mbr a(1);
  a.Extend(std::vector<double>{2.0});
  const Mbr empty(1);
  a.Extend(empty);
  EXPECT_DOUBLE_EQ(a.lo()[0], 2.0);
  EXPECT_DOUBLE_EQ(a.hi()[0], 2.0);
}

TEST(MbrMinDistTest, IntersectingBoxesHaveZeroDistance) {
  Mbr a(2);
  a.Extend(std::vector<double>{0.0, 0.0});
  a.Extend(std::vector<double>{2.0, 2.0});
  Mbr b(2);
  b.Extend(std::vector<double>{1.0, 1.0});
  b.Extend(std::vector<double>{3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.MinDist(b), 0.0);
}

TEST(MbrMinDistTest, AxisAlignedGap) {
  Mbr a(2);
  a.Extend(std::vector<double>{0.0, 0.0});
  a.Extend(std::vector<double>{1.0, 1.0});
  Mbr b(2);
  b.Extend(std::vector<double>{4.0, 0.0});
  b.Extend(std::vector<double>{5.0, 1.0});
  EXPECT_DOUBLE_EQ(a.MinDist(b), 3.0);
}

TEST(MbrMinDistTest, DiagonalGapIsPythagorean) {
  Mbr a(2);
  a.Extend(std::vector<double>{0.0, 0.0});
  Mbr b(2);
  b.Extend(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(a.MinDist(b), 5.0);
}

TEST(MbrMinDistTest, SymmetricInArguments) {
  Mbr a(2);
  a.Extend(std::vector<double>{0.0, 0.0});
  a.Extend(std::vector<double>{1.0, 2.0});
  Mbr b(2);
  b.Extend(std::vector<double>{5.0, -3.0});
  EXPECT_DOUBLE_EQ(a.MinDist(b), b.MinDist(a));
}

TEST(MbrMinDistTest, LowerBoundsPointPairs) {
  // MINDIST between two boxes never exceeds the distance between any two
  // contained points.
  Mbr a(2);
  a.Extend(std::vector<double>{0.0, 0.0});
  a.Extend(std::vector<double>{1.0, 1.0});
  Mbr b(2);
  b.Extend(std::vector<double>{2.0, 2.0});
  b.Extend(std::vector<double>{4.0, 3.0});
  const double mindist = a.MinDist(b);
  const std::vector<std::vector<double>> in_a = {{0.0, 0.0}, {1.0, 1.0},
                                                 {0.5, 0.7}};
  const std::vector<std::vector<double>> in_b = {{2.0, 2.0}, {4.0, 3.0},
                                                 {3.0, 2.5}};
  for (const auto& pa : in_a) {
    for (const auto& pb : in_b) {
      const double d = std::hypot(pa[0] - pb[0], pa[1] - pb[1]);
      EXPECT_LE(mindist, d + 1e-12);
    }
  }
}

TEST(MbrMinDistToPointTest, InsidePointHasZeroDistance) {
  Mbr a(2);
  a.Extend(std::vector<double>{0.0, 0.0});
  a.Extend(std::vector<double>{2.0, 2.0});
  EXPECT_DOUBLE_EQ(a.MinDistToPoint(std::vector<double>{1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(a.MinDistToPoint(std::vector<double>{5.0, 2.0}), 3.0);
}

}  // namespace
}  // namespace valmod
