#include "core/compute_sub_mp.h"

#include <gtest/gtest.h>

#include "core/compute_matrix_profile.h"
#include "mp/brute_force.h"
#include "mp/stomp.h"
#include "test_util.h"

namespace valmod {
namespace {

struct Fixture {
  Series series;
  PrefixStats stats;
  ListDp list_dp;
  MatrixProfile base_profile;
};

Fixture MakeFixture(const Series& series, Index len_base, Index p) {
  PrefixStats stats(series);
  MatrixProfileWithLb base =
      ComputeMatrixProfileWithLb(series, stats, len_base, p);
  return Fixture{series, std::move(stats), std::move(base.list_dp),
                 std::move(base.profile)};
}

TEST(ComputeSubMpTest, CertifiedEntriesAreExactRowMinima) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 81);
  Fixture f = MakeFixture(s, 20, 8);
  const SubMpResult sub = ComputeSubMp(s, f.stats, f.list_dp, 21, 8);
  const MatrixProfile truth = Stomp(s, f.stats, 21);
  for (Index i = 0; i < static_cast<Index>(sub.sub_mp.size()); ++i) {
    if (!sub.known[static_cast<std::size_t>(i)]) continue;
    if (truth.distances[static_cast<std::size_t>(i)] == kInf) continue;
    EXPECT_NEAR(sub.sub_mp[static_cast<std::size_t>(i)],
                truth.distances[static_cast<std::size_t>(i)],
                1e-6 * (1.0 + truth.distances[static_cast<std::size_t>(i)]))
        << "i=" << i;
  }
}

// Property: when the motif is certified (best_motif_found), it matches the
// brute-force motif of the new length — across p values and step counts.
struct SubMpCase {
  int p;
  int steps;
  int seed;
};

class SubMpPropertyTest : public ::testing::TestWithParam<SubMpCase> {};

TEST_P(SubMpPropertyTest, CertifiedMotifIsExact) {
  const SubMpCase c = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(
      400, 30, 60, 280, static_cast<std::uint64_t>(c.seed));
  const Index len_base = 20;
  Fixture f = MakeFixture(s, len_base, c.p);
  for (int step = 1; step <= c.steps; ++step) {
    const Index len = len_base + step;
    const SubMpResult sub = ComputeSubMp(s, f.stats, f.list_dp, len, c.p);
    const MotifPair truth = BruteForceMotif(s, len);
    if (sub.best_motif_found) {
      ASSERT_TRUE(truth.valid());
      EXPECT_NEAR(sub.min_dist_abs, truth.distance,
                  1e-6 * (1.0 + truth.distance))
          << "len=" << len << " p=" << c.p;
    } else {
      // Fallback needed for this length: re-base as the driver would.
      MatrixProfileWithLb full =
          ComputeMatrixProfileWithLb(s, f.stats, len, c.p);
      f.list_dp = std::move(full.list_dp);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SubMpPropertyTest,
    ::testing::Values(SubMpCase{1, 6, 1}, SubMpCase{3, 6, 2},
                      SubMpCase{5, 10, 3}, SubMpCase{10, 10, 4},
                      SubMpCase{20, 15, 5}));

TEST(ComputeSubMpTest, NoiseSeriesStillExactWhenCertified) {
  const Series s = testing_util::WhiteNoise(300, 83);
  Fixture f = MakeFixture(s, 16, 5);
  const SubMpResult sub = ComputeSubMp(s, f.stats, f.list_dp, 17, 5);
  if (sub.best_motif_found) {
    const MotifPair truth = BruteForceMotif(s, 17);
    EXPECT_NEAR(sub.min_dist_abs, truth.distance, 1e-6);
  }
}

TEST(ComputeSubMpTest, ValidCountNeverExceedsProfiles) {
  const Series s = testing_util::WhiteNoise(300, 84);
  Fixture f = MakeFixture(s, 16, 5);
  const SubMpResult sub = ComputeSubMp(s, f.stats, f.list_dp, 17, 5);
  EXPECT_LE(sub.valid_count, NumSubsequences(300, 17));
  EXPECT_GE(sub.valid_count, 0);
}

TEST(ComputeSubMpTest, SelectiveRecomputeCanBeDisabled) {
  const Series s = testing_util::WhiteNoise(300, 85);
  Fixture f = MakeFixture(s, 16, 2);
  SubMpOptions options;
  options.allow_selective_recompute = false;
  const SubMpResult sub =
      ComputeSubMp(s, f.stats, f.list_dp, 17, 2, options);
  EXPECT_EQ(sub.recomputed_count, 0);
}

TEST(ComputeSubMpTest, DiagnosticsSinkIsFilled) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 86);
  Fixture f = MakeFixture(s, 20, 5);
  SubMpDiagnostics diag;
  ComputeSubMp(s, f.stats, f.list_dp, 21, 5, SubMpOptions(), Deadline(),
               &diag);
  EXPECT_FALSE(diag.margins.empty());
  EXPECT_FALSE(diag.tlb.empty());
  for (double t : diag.tlb) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(ComputeSubMpTest, SelectiveRecomputePathIsExercisedAndExact) {
  // Hunt across noise seeds for a configuration where certification fails
  // but the selective fallback succeeds (lines 27-38 of Algorithm 4), then
  // verify the recovered motif against brute force. Small p makes
  // certification fragile, so the path triggers quickly.
  bool exercised = false;
  for (std::uint64_t seed = 200; seed < 230 && !exercised; ++seed) {
    const Series s = testing_util::WhiteNoise(250, seed);
    Fixture f = MakeFixture(s, 16, 2);
    SubMpOptions options;
    options.selective_fraction = 1.0;  // Always allow the selective path.
    for (Index len = 17; len <= 22; ++len) {
      const SubMpResult sub =
          ComputeSubMp(s, f.stats, f.list_dp, len, 2, options);
      if (sub.recomputed_count > 0) {
        exercised = true;
        ASSERT_TRUE(sub.best_motif_found);
        const MotifPair truth = BruteForceMotif(s, len);
        EXPECT_NEAR(sub.min_dist_abs, truth.distance, 1e-6)
            << "seed=" << seed << " len=" << len;
        break;
      }
      if (!sub.best_motif_found) {
        MatrixProfileWithLb full =
            ComputeMatrixProfileWithLb(s, f.stats, len, 2);
        f.list_dp = std::move(full.list_dp);
      }
    }
  }
  EXPECT_TRUE(exercised) << "selective path never triggered across seeds";
}

TEST(ComputeSubMpTest, DeadlineFlagsDnf) {
  const Series s = testing_util::WhiteNoise(3000, 87);
  Fixture f = MakeFixture(s, 16, 5);
  const SubMpResult sub = ComputeSubMp(s, f.stats, f.list_dp, 17, 5,
                                       SubMpOptions(), Deadline::After(0.0));
  EXPECT_TRUE(sub.dnf);
}

TEST(ComputeSubMpTest, ConsecutiveStepsStayConsistent) {
  // Running consecutive length steps must keep the cached dot products in
  // sync with direct recomputation (caught by exact motif comparison).
  // When certification fails, the driver's fallback (full re-base) is
  // emulated; certification must succeed at least once across the range.
  const Series s = testing_util::WalkWithPlantedMotif(350, 24, 50, 250, 88);
  Fixture f = MakeFixture(s, 18, 6);
  Index certified = 0;
  for (Index len = 19; len <= 23; ++len) {
    const SubMpResult sub = ComputeSubMp(s, f.stats, f.list_dp, len, 6);
    const MotifPair truth = BruteForceMotif(s, len);
    if (sub.best_motif_found) {
      ++certified;
      EXPECT_NEAR(sub.min_dist_abs, truth.distance, 1e-6) << "len=" << len;
    } else {
      MatrixProfileWithLb full = ComputeMatrixProfileWithLb(s, f.stats, len, 6);
      EXPECT_NEAR(MotifFromProfile(full.profile).distance, truth.distance,
                  1e-6)
          << "len=" << len;
      f.list_dp = std::move(full.list_dp);
    }
  }
  EXPECT_GE(certified, 1);
}

}  // namespace
}  // namespace valmod
