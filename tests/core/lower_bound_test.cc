#include "core/lower_bound.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "signal/distance.h"
#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(LowerBoundBaseTest, NonPositiveCorrelationGivesSqrtLen) {
  EXPECT_DOUBLE_EQ(LowerBoundBase(0.0, 64), 8.0);
  EXPECT_DOUBLE_EQ(LowerBoundBase(-0.7, 64), 8.0);
  EXPECT_DOUBLE_EQ(LowerBoundBase(-1.0, 100), 10.0);
}

TEST(LowerBoundBaseTest, PositiveCorrelationShrinksBound) {
  const double at_zero = LowerBoundBase(0.0, 64);
  const double at_half = LowerBoundBase(0.5, 64);
  const double at_one = LowerBoundBase(1.0, 64);
  EXPECT_LT(at_half, at_zero);
  EXPECT_NEAR(at_one, 0.0, 1e-12);
  EXPECT_NEAR(at_half, std::sqrt(64.0 * 0.75), 1e-12);
}

TEST(LowerBoundBaseTest, MonotoneDecreasingInCorrelation) {
  double prev = kInf;
  for (double q = -1.0; q <= 1.0; q += 0.05) {
    const double b = LowerBoundBase(q, 128);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
}

TEST(LowerBoundAtLengthTest, ScalesBySigmaRatio) {
  EXPECT_DOUBLE_EQ(LowerBoundAtLength(10.0, 2.0, 4.0), 5.0);
  EXPECT_DOUBLE_EQ(LowerBoundAtLength(10.0, 4.0, 2.0), 20.0);
}

TEST(LowerBoundAtLengthTest, FlatTargetWindowTruncatesToZero) {
  EXPECT_DOUBLE_EQ(LowerBoundAtLength(10.0, 2.0, 0.0), 0.0);
}

// The paper's key claim (Section 4.1): Eq. 2 lower-bounds the true
// z-normalized distance at every extended length. Property-tested over
// random pairs, datasets, and extension amounts.
class LowerBoundValidityTest : public ::testing::TestWithParam<int> {};

TEST_P(LowerBoundValidityTest, BoundNeverExceedsTrueDistance) {
  const int seed = GetParam();
  const Series s = seed % 2 == 0
                       ? testing_util::WalkWithPlantedMotif(
                             600, 40, 80, 420, static_cast<std::uint64_t>(seed))
                       : testing_util::WhiteNoise(
                             600, static_cast<std::uint64_t>(seed));
  const PrefixStats stats(s);
  Rng rng(static_cast<std::uint64_t>(seed) * 7919);
  const Index base_len = 24;
  for (int trial = 0; trial < 200; ++trial) {
    const Index max_k = 48;
    const Index limit = 600 - base_len - max_k;
    const Index i = rng.UniformIndex(0, limit);
    const Index j = rng.UniformIndex(0, limit);
    if (i == j) continue;
    // Base statistics at base_len; j is the owner (known side).
    const double qt = SubsequenceDotProduct(s, i, j, base_len);
    const double q = CorrelationFromDotProduct(
        qt, base_len, stats.Stats(i, base_len), stats.Stats(j, base_len));
    const double lb_base = LowerBoundBase(q, base_len);
    const double sigma_base = stats.Std(j, base_len);
    for (Index k : {1, 2, 8, 24, 48}) {
      const Index len = base_len + k;
      const double lb =
          LowerBoundAtLength(lb_base, sigma_base, stats.Std(j, len));
      const double truth = SubsequenceDistance(s, stats, i, j, len);
      EXPECT_LE(lb, truth + 1e-7 * (1.0 + truth))
          << "i=" << i << " j=" << j << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowerBoundValidityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(LowerBoundRankPreservationTest, OrderingStableAcrossExtensions) {
  // Within the distance profile of a fixed owner j, the lower-bound order
  // of entries must not change with k (only the common sigma ratio moves).
  const Series s = testing_util::WalkWithPlantedMotif(500, 30, 60, 350, 17);
  const PrefixStats stats(s);
  const Index base_len = 20;
  const Index owner = 100;
  std::vector<std::pair<double, Index>> base_bounds;
  for (Index i = 0; i < 400; i += 7) {
    if (IsTrivialMatch(owner, i, base_len)) continue;
    const double qt = SubsequenceDotProduct(s, i, owner, base_len);
    const double q =
        CorrelationFromDotProduct(qt, base_len, stats.Stats(i, base_len),
                                  stats.Stats(owner, base_len));
    base_bounds.emplace_back(LowerBoundBase(q, base_len), i);
  }
  std::sort(base_bounds.begin(), base_bounds.end());
  // At any extended length, bounds evaluated via the sigma ratio must be in
  // the same (non-decreasing) order.
  const double sigma_base = stats.Std(owner, base_len);
  for (Index k : {1, 5, 20, 60}) {
    const double sigma_now = stats.Std(owner, base_len + k);
    double prev = -1.0;
    for (const auto& [lb_base, i] : base_bounds) {
      const double lb = LowerBoundAtLength(lb_base, sigma_base, sigma_now);
      EXPECT_GE(lb, prev - 1e-12) << "k=" << k << " entry at i=" << i;
      prev = lb;
    }
  }
}

TEST(LowerBoundDistanceTest, EndToEndWrapperMatchesSplitForm) {
  const double q = 0.42;
  const Index len = 50;
  EXPECT_DOUBLE_EQ(
      LowerBoundDistance(q, len, 2.0, 3.0),
      LowerBoundAtLength(LowerBoundBase(q, len), 2.0, 3.0));
}

}  // namespace
}  // namespace valmod
