#include "core/compute_matrix_profile.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(ComputeMatrixProfileWithLbTest, ProfileMatchesBruteForce) {
  const Series s = testing_util::WalkWithPlantedMotif(350, 24, 50, 250, 11);
  const PrefixStats stats(s);
  const MatrixProfileWithLb result =
      ComputeMatrixProfileWithLb(s, stats, 24, 5);
  const MatrixProfile truth = BruteForceMatrixProfile(s, 24);
  ASSERT_EQ(result.profile.size(), truth.size());
  for (Index i = 0; i < truth.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (truth.distances[k] == kInf) continue;
    EXPECT_NEAR(result.profile.distances[k], truth.distances[k], 1e-6);
  }
}

TEST(ComputeMatrixProfileWithLbTest, OneListDpStatePerProfile) {
  const Series s = testing_util::WhiteNoise(300, 12);
  const PrefixStats stats(s);
  const MatrixProfileWithLb result =
      ComputeMatrixProfileWithLb(s, stats, 20, 5);
  ASSERT_EQ(static_cast<Index>(result.list_dp.size()),
            NumSubsequences(300, 20));
  for (Index o = 0; o < static_cast<Index>(result.list_dp.size()); ++o) {
    const ProfileLbState& state = result.list_dp[static_cast<std::size_t>(o)];
    EXPECT_EQ(state.owner, o);
    EXPECT_EQ(state.base_len, 20);
    EXPECT_EQ(state.entries.Size(), 5);
  }
}

TEST(ComputeMatrixProfileWithLbTest, LargePKeepsWholeProfiles) {
  const Series s = testing_util::WhiteNoise(120, 13);
  const PrefixStats stats(s);
  const MatrixProfileWithLb result =
      ComputeMatrixProfileWithLb(s, stats, 16, 100000);
  for (const ProfileLbState& state : result.list_dp) {
    EXPECT_TRUE(state.Complete());
  }
}

TEST(ComputeMatrixProfileWithLbTest, EntriesHoldValidNeighbors) {
  const Series s = testing_util::WhiteNoise(250, 14);
  const PrefixStats stats(s);
  const MatrixProfileWithLb result =
      ComputeMatrixProfileWithLb(s, stats, 18, 4);
  const Index n_sub = NumSubsequences(250, 18);
  for (const ProfileLbState& state : result.list_dp) {
    for (const LbEntry& entry : state.entries.Items()) {
      EXPECT_GE(entry.neighbor, 0);
      EXPECT_LT(entry.neighbor, n_sub);
      EXPECT_FALSE(IsTrivialMatch(state.owner, entry.neighbor, 18));
      EXPECT_FALSE(entry.dead);
      EXPECT_GE(entry.lb_base, 0.0);
    }
  }
}

TEST(ComputeMatrixProfileWithLbTest, DeadlineSetsDnf) {
  const Series s = testing_util::WhiteNoise(3000, 15);
  const PrefixStats stats(s);
  const MatrixProfileWithLb result = ComputeMatrixProfileWithLb(
      s, stats, 64, 5, Deadline::After(0.0));
  EXPECT_TRUE(result.dnf);
}

}  // namespace
}  // namespace valmod
