// When p exceeds the number of non-trivial entries per profile, every
// profile is "complete": the retained entries ARE the whole distance
// profile, certification can never fail, and VALMOD degenerates into an
// incremental all-lengths scan with exactly one matrix-profile pass.

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(CompleteProfilesTest, HugePMeansSingleMatrixProfilePass) {
  const Series s = testing_util::WhiteNoise(260, 41);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 30;
  options.p = 1 << 20;  // Far above any profile size.
  const ValmodResult result = RunValmod(s, options);
  EXPECT_EQ(result.full_mp_computations, 1);
  for (std::size_t k = 1; k < result.length_stats.size(); ++k) {
    EXPECT_FALSE(result.length_stats[k].used_full_recompute);
    EXPECT_EQ(result.length_stats[k].selective_recomputes, 0);
    // Every live profile certifies.
    EXPECT_EQ(result.length_stats[k].valid_count,
              result.length_stats[k].n_profiles);
  }
}

TEST(CompleteProfilesTest, HugePStillExact) {
  const Series s = testing_util::WalkWithPlantedMotif(260, 20, 40, 180, 42);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 24;
  options.p = 1 << 20;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 16, 24);
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-6)
        << "len=" << (16 + static_cast<Index>(k));
  }
}

TEST(CompleteProfilesTest, HugePAndTinyPAgreeOnEveryMotif) {
  const Series s = testing_util::WhiteNoise(300, 43);
  ValmodOptions tiny;
  tiny.len_min = 16;
  tiny.len_max = 28;
  tiny.p = 1;
  ValmodOptions huge = tiny;
  huge.p = 1 << 20;
  const ValmodResult a = RunValmod(s, tiny);
  const ValmodResult b = RunValmod(s, huge);
  ASSERT_EQ(a.per_length_motifs.size(), b.per_length_motifs.size());
  for (std::size_t k = 0; k < a.per_length_motifs.size(); ++k) {
    EXPECT_NEAR(a.per_length_motifs[k].distance,
                b.per_length_motifs[k].distance, 1e-6);
  }
}

}  // namespace
}  // namespace valmod
