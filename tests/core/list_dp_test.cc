#include "core/list_dp.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/lower_bound.h"
#include "mp/distance_profile.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "test_util.h"

namespace valmod {
namespace {

struct Harvested {
  Series series;
  PrefixStats stats;
  ProfileLbState state;
  std::vector<double> qt_row;
  std::vector<double> dist_row;
};

Harvested HarvestFixture(Index owner, Index len, Index p) {
  Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 71);
  PrefixStats stats(s);
  std::vector<double> qt = SlidingDotProduct(
      std::span<const double>(s).subspan(static_cast<std::size_t>(owner),
                                         static_cast<std::size_t>(len)),
      s);
  std::vector<double> dist =
      DistanceProfileFromDotProducts(qt, stats, owner, len);
  ProfileLbState state = HarvestProfile(owner, len, p, qt, dist, stats);
  return Harvested{std::move(s), std::move(stats), std::move(state),
                   std::move(qt), std::move(dist)};
}

TEST(HarvestProfileTest, RecordsOwnerAndBase) {
  const Harvested h = HarvestFixture(50, 20, 5);
  EXPECT_EQ(h.state.owner, 50);
  EXPECT_EQ(h.state.base_len, 20);
  EXPECT_NEAR(h.state.sigma_base, h.stats.Std(50, 20), 1e-12);
}

TEST(HarvestProfileTest, RetainsExactlyPEntries) {
  const Harvested h = HarvestFixture(50, 20, 5);
  EXPECT_EQ(h.state.entries.Size(), 5);
  EXPECT_TRUE(h.state.entries.Full());
  EXPECT_FALSE(h.state.Complete());
}

TEST(HarvestProfileTest, SmallProfileIsComplete) {
  // p larger than the number of non-trivial entries: the heap never fills.
  const Harvested h = HarvestFixture(50, 20, 100000);
  EXPECT_FALSE(h.state.entries.Full());
  EXPECT_TRUE(h.state.Complete());
  EXPECT_EQ(h.state.MaxLowerBound(h.stats, 21), kInf);
}

TEST(HarvestProfileTest, SkipsTrivialMatches) {
  const Harvested h = HarvestFixture(50, 20, 100000);
  for (const LbEntry& e : h.state.entries.Items()) {
    EXPECT_FALSE(IsTrivialMatch(50, e.neighbor, 20));
  }
}

TEST(HarvestProfileTest, RetainsTheSmallestBaseBounds) {
  const Index owner = 50;
  const Index len = 20;
  const Index p = 7;
  const Harvested h = HarvestFixture(owner, len, p);
  // Recompute every base bound and compare the p smallest with the heap.
  std::vector<double> all_bounds;
  const MeanStd owner_stats = h.stats.Stats(owner, len);
  for (Index j = 0; j < static_cast<Index>(h.qt_row.size()); ++j) {
    if (h.dist_row[static_cast<std::size_t>(j)] == kInf) continue;
    const double q = CorrelationFromDotProduct(
        h.qt_row[static_cast<std::size_t>(j)], len, owner_stats,
        h.stats.Stats(j, len));
    all_bounds.push_back(LowerBoundBase(q, len));
  }
  std::sort(all_bounds.begin(), all_bounds.end());
  std::vector<double> kept;
  for (const LbEntry& e : h.state.entries.Items()) kept.push_back(e.lb_base);
  std::sort(kept.begin(), kept.end());
  ASSERT_EQ(kept.size(), static_cast<std::size_t>(p));
  for (Index k = 0; k < p; ++k) {
    EXPECT_NEAR(kept[static_cast<std::size_t>(k)],
                all_bounds[static_cast<std::size_t>(k)], 1e-12);
  }
}

TEST(HarvestProfileTest, EntriesStoreCurrentDotProducts) {
  const Harvested h = HarvestFixture(50, 20, 5);
  for (const LbEntry& e : h.state.entries.Items()) {
    const double direct = SubsequenceDotProduct(h.series, 50, e.neighbor, 20);
    EXPECT_NEAR(e.qt, direct, 1e-6 * (1.0 + std::abs(direct)));
  }
}

TEST(ProfileLbStateTest, MaxLowerBoundScalesWithSigmaRatio) {
  const Harvested h = HarvestFixture(50, 20, 5);
  const double at_base_plus_1 = h.state.MaxLowerBound(h.stats, 21);
  const double expected =
      h.state.entries.Max().lb_base *
      (h.state.sigma_base / h.stats.Std(50, 21));
  EXPECT_NEAR(at_base_plus_1, expected, 1e-12);
}

TEST(ProfileLbStateTest, MaxLowerBoundIsThresholdForUnstoredEntries) {
  // Pruning-correctness invariant: every entry NOT retained has a base
  // bound >= the heap max, hence at any length its true distance is >= the
  // scaled maxLB.
  const Index owner = 50;
  const Index len = 20;
  const Harvested h = HarvestFixture(owner, len, 5);
  const double max_base = h.state.entries.Max().lb_base;
  std::vector<bool> retained(h.qt_row.size(), false);
  for (const LbEntry& e : h.state.entries.Items()) {
    retained[static_cast<std::size_t>(e.neighbor)] = true;
  }
  const MeanStd owner_stats = h.stats.Stats(owner, len);
  for (Index j = 0; j < static_cast<Index>(h.qt_row.size()); ++j) {
    if (h.dist_row[static_cast<std::size_t>(j)] == kInf) continue;
    if (retained[static_cast<std::size_t>(j)]) continue;
    const double q = CorrelationFromDotProduct(
        h.qt_row[static_cast<std::size_t>(j)], len, owner_stats,
        h.stats.Stats(j, len));
    EXPECT_GE(LowerBoundBase(q, len), max_base - 1e-12);
  }
}

}  // namespace
}  // namespace valmod
