#include "core/discords.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

Series SeriesWithAnomaly(Index n, Index at, Index anomaly_len,
                         std::uint64_t seed) {
  // Smooth periodic background with one violent glitch: the classic discord
  // setup.
  Series s(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    s[static_cast<std::size_t>(i)] =
        std::sin(2.0 * M_PI * static_cast<double>(i) / 40.0);
  }
  Rng rng(seed);
  for (Index k = 0; k < anomaly_len; ++k) {
    s[static_cast<std::size_t>(at + k)] += rng.Uniform(-3.0, 3.0);
  }
  return s;
}

TEST(DiscordsTest, FindsPlantedAnomaly) {
  const Series s = SeriesWithAnomaly(600, 300, 30, 111);
  const VariableLengthDiscords discords =
      FindVariableLengthDiscords(s, 24, 32);
  ASSERT_TRUE(discords.best.valid());
  // The discord window must overlap the glitch.
  EXPECT_GT(discords.best.offset + discords.best.length, 295);
  EXPECT_LT(discords.best.offset, 335);
}

TEST(DiscordsTest, OneDiscordPerLength) {
  const Series s = SeriesWithAnomaly(500, 250, 20, 112);
  const VariableLengthDiscords discords =
      FindVariableLengthDiscords(s, 16, 22);
  EXPECT_EQ(discords.per_length.size(), 7u);
  for (std::size_t k = 0; k < discords.per_length.size(); ++k) {
    EXPECT_EQ(discords.per_length[k].length, 16 + static_cast<Index>(k));
  }
}

TEST(DiscordsTest, PerLengthDiscordMatchesBruteForceProfileMax) {
  const Series s = SeriesWithAnomaly(300, 150, 16, 113);
  const VariableLengthDiscords discords =
      FindVariableLengthDiscords(s, 20, 20);
  const Discord truth = DiscordFromProfile(BruteForceMatrixProfile(s, 20));
  ASSERT_EQ(discords.per_length.size(), 1u);
  EXPECT_NEAR(discords.per_length[0].distance, truth.distance, 1e-6);
}

TEST(DiscordsTest, DeadlineFlagsDnf) {
  const Series s = testing_util::WhiteNoise(3000, 114);
  const VariableLengthDiscords discords =
      FindVariableLengthDiscords(s, 64, 80, Deadline::After(0.0));
  EXPECT_TRUE(discords.dnf);
}

}  // namespace
}  // namespace valmod
