#include "core/pan_profile.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

PanMatrixProfile SmallPan(const Series& s, Index len_min, Index len_max) {
  return ComputePanMatrixProfile(s, len_min, len_max);
}

TEST(PanProfileTest, CoversRequestedLengthRange) {
  const Series s = testing_util::WhiteNoise(260, 1);
  const PanMatrixProfile pan = SmallPan(s, 16, 22);
  EXPECT_EQ(pan.len_min(), 16);
  EXPECT_EQ(pan.len_max(), 22);
  EXPECT_EQ(pan.num_lengths(), 7);
}

TEST(PanProfileTest, EveryLayerIsTheExactMatrixProfile) {
  const Series s = testing_util::WalkWithPlantedMotif(260, 20, 40, 180, 2);
  const PanMatrixProfile pan = SmallPan(s, 18, 22);
  for (Index len = 18; len <= 22; ++len) {
    const MatrixProfile truth = BruteForceMatrixProfile(s, len);
    const MatrixProfile& layer = pan.ProfileAt(len);
    ASSERT_EQ(layer.size(), truth.size());
    for (Index i = 0; i < truth.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      if (truth.distances[k] == kInf) continue;
      EXPECT_NEAR(layer.distances[k], truth.distances[k], 1e-6)
          << "len=" << len << " i=" << i;
    }
  }
}

TEST(PanProfileTest, NormalizedValuesInUnitInterval) {
  const Series s = testing_util::WhiteNoise(260, 3);
  const PanMatrixProfile pan = SmallPan(s, 16, 20);
  for (Index len = 16; len <= 20; ++len) {
    for (Index o = 0; o < pan.ProfileAt(len).size(); o += 7) {
      const double v = pan.NormalizedValueAt(len, o);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(PanProfileTest, BestLengthPerOffsetPicksThePlantedScale) {
  // A strong motif of length ~32 planted twice: for offsets inside the
  // plantings, the best (most repetitive) length should sit near 32 rather
  // than at the extremes of [16, 48].
  const Series s = testing_util::NoiseWithPlantedMotif(500, 32, 80, 350, 4);
  const PanMatrixProfile pan = SmallPan(s, 16, 48);
  const std::vector<Index> best = pan.BestLengthPerOffset();
  // Offset exactly at the first planting.
  const Index chosen = best[80];
  EXPECT_GE(chosen, 24);
  EXPECT_LE(chosen, 48);
}

TEST(PanProfileTest, AsciiRenderHasRequestedShape) {
  const Series s = testing_util::WhiteNoise(300, 5);
  const PanMatrixProfile pan = SmallPan(s, 16, 24);
  const std::string art = pan.RenderAscii(5, 40);
  Index lines = 0;
  for (char c : art) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
  // Each row: "len " + 5-char length + " |" (11 chars) + 40 cells + "|".
  const std::size_t first_line = art.find('\n');
  EXPECT_EQ(first_line, 11u + 40u + 1u);
}

TEST(PanProfileTest, MotifRegionsRenderDarker) {
  const Series s = testing_util::NoiseWithPlantedMotif(600, 40, 100, 400, 6);
  const PanMatrixProfile pan = SmallPan(s, 36, 44);
  // The planted offsets must have much smaller normalized values than the
  // median offset.
  const double planted = pan.NormalizedValueAt(40, 100);
  double acc = 0.0;
  Index count = 0;
  for (Index o = 0; o < pan.ProfileAt(40).size(); o += 11) {
    acc += pan.NormalizedValueAt(40, o);
    ++count;
  }
  EXPECT_LT(planted, 0.5 * acc / static_cast<double>(count));
}

}  // namespace
}  // namespace valmod
