#include "core/motif_sets.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "signal/distance.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

struct SetsFixture {
  Series series;
  ValmodResult result;
};

SetsFixture RunOnPlantedSeries(std::uint64_t seed, Index p = 10) {
  SetsFixture run;
  run.series = testing_util::WalkWithPlantedMotif(600, 40, 80, 400, seed);
  ValmodOptions options;
  options.len_min = 24;
  options.len_max = 44;
  options.p = p;
  run.result = RunValmod(run.series, options);
  return run;
}

TEST(MotifSetsTest, SetsContainTheirSeeds) {
  const SetsFixture run = RunOnPlantedSeries(91);
  MotifSetOptions options;
  options.k = 4;
  options.radius_factor = 3.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(run.series, run.result, options);
  ASSERT_FALSE(sets.empty());
  for (const MotifSet& set : sets) {
    ASSERT_GE(set.frequency(), 2);
    EXPECT_EQ(set.occurrences[0], set.seed.off1);
    EXPECT_EQ(set.occurrences[1], set.seed.off2);
    EXPECT_DOUBLE_EQ(set.distances[0], 0.0);
    EXPECT_DOUBLE_EQ(set.distances[1], 0.0);
  }
}

TEST(MotifSetsTest, MembersAreWithinRadiusOfASeed) {
  const SetsFixture run = RunOnPlantedSeries(92);
  MotifSetOptions options;
  options.k = 3;
  options.radius_factor = 4.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(run.series, run.result, options);
  const PrefixStats stats(run.series);
  for (const MotifSet& set : sets) {
    const Index len = set.seed.length;
    for (std::size_t m = 2; m < set.occurrences.size(); ++m) {
      const Index off = set.occurrences[m];
      const double d1 =
          SubsequenceDistance(run.series, stats, off, set.seed.off1, len);
      const double d2 =
          SubsequenceDistance(run.series, stats, off, set.seed.off2, len);
      EXPECT_LE(std::min(d1, d2), set.radius + 1e-6);
      EXPECT_NEAR(set.distances[m], std::min(d1, d2), 1e-6);
    }
  }
}

TEST(MotifSetsTest, SetsArePairwiseDisjoint) {
  const SetsFixture run = RunOnPlantedSeries(93);
  MotifSetOptions options;
  options.k = 5;
  options.radius_factor = 5.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(run.series, run.result, options);
  std::vector<std::pair<Index, Index>> all;  // (offset, length)
  for (const MotifSet& set : sets) {
    for (Index off : set.occurrences) all.emplace_back(off, set.seed.length);
  }
  for (std::size_t x = 0; x < all.size(); ++x) {
    for (std::size_t y = x + 1; y < all.size(); ++y) {
      const Index excl = ExclusionZone(std::min(all[x].second, all[y].second));
      EXPECT_GE(std::llabs(static_cast<long long>(all[x].first -
                                                  all[y].first)),
                excl)
          << "offsets " << all[x].first << " and " << all[y].first;
    }
  }
}

TEST(MotifSetsTest, OccurrencesSortedByDistance) {
  const SetsFixture run = RunOnPlantedSeries(94);
  MotifSetOptions options;
  options.k = 3;
  options.radius_factor = 6.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(run.series, run.result, options);
  for (const MotifSet& set : sets) {
    for (std::size_t m = 3; m < set.distances.size(); ++m) {
      EXPECT_GE(set.distances[m], set.distances[m - 1] - 1e-12);
    }
  }
}

TEST(MotifSetsTest, ZeroRadiusFactorYieldsSeedOnlySets) {
  const SetsFixture run = RunOnPlantedSeries(95);
  MotifSetOptions options;
  options.k = 2;
  options.radius_factor = 0.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(run.series, run.result, options);
  for (const MotifSet& set : sets) {
    EXPECT_EQ(set.frequency(), 2);
  }
}

TEST(MotifSetsTest, LargerRadiusNeverShrinksFirstSet) {
  const SetsFixture run = RunOnPlantedSeries(96);
  MotifSetOptions small;
  small.k = 1;
  small.radius_factor = 2.0;
  MotifSetOptions large;
  large.k = 1;
  large.radius_factor = 6.0;
  const std::vector<MotifSet> small_sets =
      ComputeVariableLengthMotifSets(run.series, run.result, small);
  const std::vector<MotifSet> large_sets =
      ComputeVariableLengthMotifSets(run.series, run.result, large);
  ASSERT_EQ(small_sets.size(), 1u);
  ASSERT_EQ(large_sets.size(), 1u);
  EXPECT_GE(large_sets[0].frequency(), small_sets[0].frequency());
}

TEST(MotifSetsTest, StatsReportPruningActivity) {
  const SetsFixture run = RunOnPlantedSeries(97, /*p=*/20);
  MotifSetOptions options;
  options.k = 4;
  options.radius_factor = 2.0;
  MotifSetStats stats;
  ComputeVariableLengthMotifSets(run.series, run.result, options, &stats);
  EXPECT_GE(stats.answered_from_partial + stats.full_profile_recomputes, 1);
  EXPECT_GE(stats.seconds, 0.0);
}

TEST(MotifSetsTest, RespectsK) {
  const SetsFixture run = RunOnPlantedSeries(98);
  MotifSetOptions options;
  options.k = 2;
  options.radius_factor = 2.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(run.series, run.result, options);
  EXPECT_LE(sets.size(), 2u);
}

}  // namespace
}  // namespace valmod
