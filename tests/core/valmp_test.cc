#include "core/valmp.h"

#include <gtest/gtest.h>

#include "signal/znorm.h"

namespace valmod {
namespace {

TEST(ValmpTest, ConstructedEmptyAndUnset) {
  const Valmp v(5);
  EXPECT_EQ(v.size(), 5);
  for (Index i = 0; i < 5; ++i) {
    EXPECT_FALSE(v.IsSet(i));
    EXPECT_EQ(v.distances[static_cast<std::size_t>(i)], kInf);
  }
}

TEST(UpdateValmpTest, FirstUpdateSetsAllFields) {
  Valmp v(3);
  const std::vector<double> mp = {2.0, 4.0, 6.0};
  const std::vector<Index> ip = {1, 2, 0};
  UpdateValmp(v, mp, ip, 16);
  for (Index i = 0; i < 3; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    EXPECT_TRUE(v.IsSet(i));
    EXPECT_DOUBLE_EQ(v.distances[s], mp[s]);
    EXPECT_DOUBLE_EQ(v.norm_distances[s], LengthNormalize(mp[s], 16));
    EXPECT_EQ(v.lengths[s], 16);
    EXPECT_EQ(v.indices[s], ip[s]);
  }
}

TEST(UpdateValmpTest, ImprovementOnlyOnSmallerNormalizedDistance) {
  Valmp v(1);
  UpdateValmp(v, std::vector<double>{4.0}, std::vector<Index>{5}, 16);
  // Same straight distance at four times the length: normalized distance is
  // halved -> must replace.
  UpdateValmp(v, std::vector<double>{4.0}, std::vector<Index>{9}, 64);
  EXPECT_EQ(v.lengths[0], 64);
  EXPECT_EQ(v.indices[0], 9);
  // Worse normalized distance must not replace.
  UpdateValmp(v, std::vector<double>{100.0}, std::vector<Index>{3}, 65);
  EXPECT_EQ(v.lengths[0], 64);
}

TEST(UpdateValmpTest, SkipsUnknownSlots) {
  Valmp v(2);
  UpdateValmp(v, std::vector<double>{kInf, 1.0}, std::vector<Index>{0, 0}, 8);
  EXPECT_FALSE(v.IsSet(0));
  EXPECT_TRUE(v.IsSet(1));
}

TEST(UpdateValmpTest, SkipsNoNeighborSlots) {
  Valmp v(1);
  UpdateValmp(v, std::vector<double>{1.0}, std::vector<Index>{kNoNeighbor}, 8);
  EXPECT_FALSE(v.IsSet(0));
}

TEST(UpdateValmpTest, ShorterProfileUpdatesPrefixOnly) {
  Valmp v(4);
  UpdateValmp(v, std::vector<double>{1.0, 2.0}, std::vector<Index>{1, 0}, 8);
  EXPECT_TRUE(v.IsSet(0));
  EXPECT_TRUE(v.IsSet(1));
  EXPECT_FALSE(v.IsSet(2));
  EXPECT_FALSE(v.IsSet(3));
}

TEST(UpdateValmpTest, HookFiresOnImprovementsOnly) {
  Valmp v(2);
  Index fires = 0;
  const ValmpImprovementHook hook = [&fires](Index, Index, Index, double,
                                             double) { ++fires; };
  UpdateValmp(v, std::vector<double>{2.0, 3.0}, std::vector<Index>{1, 0}, 8,
              hook);
  EXPECT_EQ(fires, 2);
  // No improvement: same values at the same length.
  UpdateValmp(v, std::vector<double>{2.0, 3.0}, std::vector<Index>{1, 0}, 8,
              hook);
  EXPECT_EQ(fires, 2);
}

TEST(UpdateValmpTest, HookReceivesNormalizedDistance) {
  Valmp v(1);
  double seen_norm = -1.0;
  const ValmpImprovementHook hook =
      [&seen_norm](Index, Index, Index, double, double norm) {
        seen_norm = norm;
      };
  UpdateValmp(v, std::vector<double>{6.0}, std::vector<Index>{2}, 9, hook);
  EXPECT_DOUBLE_EQ(seen_norm, 2.0);  // 6 * sqrt(1/9).
}

}  // namespace
}  // namespace valmod
