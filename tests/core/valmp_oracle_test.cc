// Slot-level oracle for the VALMP: with the per-length-profiles mode as
// ground truth, the VALMP produced by the *pruned* run must hold, for every
// offset, exactly the minimum length-normalized distance over all lengths
// whose certified subMP covered that offset — and the global minimum must
// match the unpruned ground truth exactly.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "signal/znorm.h"
#include "test_util.h"

namespace valmod {
namespace {

class ValmpOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ValmpOracleTest, GlobalMinimumMatchesUnprunedRun) {
  const int seed = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(
      400, 28, 60, 280, static_cast<std::uint64_t>(seed));
  ValmodOptions pruned;
  pruned.len_min = 18;
  pruned.len_max = 30;
  pruned.p = 5;
  ValmodOptions full = pruned;
  full.emit_per_length_profiles = true;

  const ValmodResult fast = RunValmod(s, pruned);
  const ValmodResult truth = RunValmod(s, full);

  auto global_min = [](const Valmp& v) {
    double best = kInf;
    for (Index i = 0; i < v.size(); ++i) {
      if (v.IsSet(i)) {
        best = std::min(best, v.norm_distances[static_cast<std::size_t>(i)]);
      }
    }
    return best;
  };
  EXPECT_NEAR(global_min(fast.valmp), global_min(truth.valmp), 1e-9);
}

TEST_P(ValmpOracleTest, SlotValuesNeverBeatGroundTruth) {
  // The pruned VALMP sees a subset of the per-length profile values, so
  // each of its slots must be >= the unpruned slot (never better), and
  // where set, must correspond to a real pair distance.
  const int seed = GetParam();
  const Series s = testing_util::WhiteNoise(
      350, static_cast<std::uint64_t>(seed) + 100);
  ValmodOptions pruned;
  pruned.len_min = 16;
  pruned.len_max = 24;
  pruned.p = 5;
  ValmodOptions full = pruned;
  full.emit_per_length_profiles = true;

  const ValmodResult fast = RunValmod(s, pruned);
  const ValmodResult truth = RunValmod(s, full);
  ASSERT_EQ(fast.valmp.size(), truth.valmp.size());
  for (Index i = 0; i < fast.valmp.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (!fast.valmp.IsSet(i)) continue;
    ASSERT_TRUE(truth.valmp.IsSet(i));
    EXPECT_GE(fast.valmp.norm_distances[k] + 1e-9,
              truth.valmp.norm_distances[k])
        << "offset " << i;
    // The recorded (distance, length) must be consistent.
    EXPECT_NEAR(fast.valmp.norm_distances[k],
                LengthNormalize(fast.valmp.distances[k],
                                fast.valmp.lengths[k]),
                1e-12);
  }
}

TEST_P(ValmpOracleTest, SlotValuesAppearInGroundTruthProfiles) {
  // Every set slot of the pruned VALMP must equal the ground-truth profile
  // value of (offset, recorded length) — the pruned run never invents
  // distances.
  const int seed = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(
      380, 24, 50, 260, static_cast<std::uint64_t>(seed) + 200);
  ValmodOptions pruned;
  pruned.len_min = 16;
  pruned.len_max = 26;
  pruned.p = 8;
  ValmodOptions full = pruned;
  full.emit_per_length_profiles = true;

  const ValmodResult fast = RunValmod(s, pruned);
  const ValmodResult truth = RunValmod(s, full);
  for (Index i = 0; i < fast.valmp.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (!fast.valmp.IsSet(i)) continue;
    const Index len = fast.valmp.lengths[k];
    const std::size_t profile_idx = static_cast<std::size_t>(len - 16);
    ASSERT_LT(profile_idx, truth.per_length_profiles.size());
    const MatrixProfile& profile = truth.per_length_profiles[profile_idx];
    ASSERT_LT(i, profile.size());
    EXPECT_NEAR(fast.valmp.distances[k],
                profile.distances[static_cast<std::size_t>(i)],
                1e-6 * (1.0 + fast.valmp.distances[k]))
        << "offset " << i << " length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValmpOracleTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace valmod
