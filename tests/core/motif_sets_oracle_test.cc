// Oracle test for Algorithm 6: the members of each motif set must be
// exactly the subsequences a brute-force range query would return, minus
// those removed by the trivial-match / disjointness rules — checked by
// verifying (a) soundness: every member is within the radius, and (b)
// completeness: every brute-force in-range subsequence is either a member
// or excluded for a *provable* reason (overlaps an accepted occurrence).

#include <algorithm>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/motif_sets.h"
#include "core/valmod.h"
#include "signal/distance.h"
#include "signal/znorm.h"
#include "test_util.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

class MotifSetOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(MotifSetOracleTest, MembersMatchBruteForceRangeQuery) {
  const int seed = GetParam();
  const Series series = testing_util::WalkWithPlantedMotif(
      500, 32, 60, 350, static_cast<std::uint64_t>(seed));
  ValmodOptions options;
  options.len_min = 24;
  options.len_max = 40;
  options.p = 10;
  const ValmodResult result = RunValmod(series, options);

  MotifSetOptions set_options;
  set_options.k = 3;
  set_options.radius_factor = 4.0;
  const std::vector<MotifSet> sets =
      ComputeVariableLengthMotifSets(series, result, set_options);
  ASSERT_FALSE(sets.empty());

  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);

  // Collect every accepted occurrence (offset, length) across all sets to
  // evaluate the disjointness excuse.
  std::vector<std::pair<Index, Index>> accepted;
  for (const MotifSet& set : sets) {
    for (Index off : set.occurrences) {
      accepted.emplace_back(off, set.seed.length);
    }
  }
  auto overlaps_accepted = [&accepted](Index off, Index len) {
    for (const auto& [a_off, a_len] : accepted) {
      const Index excl = ExclusionZone(std::min(len, a_len));
      if (std::llabs(static_cast<long long>(a_off - off)) < excl) return true;
    }
    return false;
  };

  for (const MotifSet& set : sets) {
    const Index len = set.seed.length;
    const Index n_sub =
        NumSubsequences(static_cast<Index>(series.size()), len);
    // (a) soundness.
    for (std::size_t m = 2; m < set.occurrences.size(); ++m) {
      const Index off = set.occurrences[m];
      const double d1 =
          SubsequenceDistance(centered, stats, off, set.seed.off1, len);
      const double d2 =
          SubsequenceDistance(centered, stats, off, set.seed.off2, len);
      EXPECT_LE(std::min(d1, d2), set.radius + 1e-6);
    }
    // (b) completeness: brute-force range query around both seeds.
    for (Index j = 0; j < n_sub; ++j) {
      if (IsTrivialMatch(j, set.seed.off1, len) ||
          IsTrivialMatch(j, set.seed.off2, len)) {
        continue;
      }
      const double d1 =
          SubsequenceDistance(centered, stats, j, set.seed.off1, len);
      const double d2 =
          SubsequenceDistance(centered, stats, j, set.seed.off2, len);
      if (std::min(d1, d2) > set.radius) continue;  // Out of range.
      const bool is_member =
          std::find(set.occurrences.begin(), set.occurrences.end(), j) !=
          set.occurrences.end();
      EXPECT_TRUE(is_member || overlaps_accepted(j, len))
          << "in-range offset " << j << " (dist "
          << std::min(d1, d2) << " <= " << set.radius
          << ") missing from set at length " << len
          << " without a disjointness excuse";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MotifSetOracleTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace valmod
