#include "core/ab_valmod.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mp/ab_join.h"
#include "test_util.h"

namespace valmod {
namespace {

// Exactness property: per-length join motifs equal an independent AB-join
// per length, across p values and data characters.
struct AbValmodCase {
  int p;
  int seed;
  bool planted;
};

class AbValmodExactnessTest : public ::testing::TestWithParam<AbValmodCase> {
};

TEST_P(AbValmodExactnessTest, PerLengthJoinMotifsMatchPerLengthAbJoin) {
  const AbValmodCase c = GetParam();
  Series a = testing_util::WhiteNoise(300, static_cast<std::uint64_t>(c.seed));
  Series b =
      testing_util::WhiteNoise(260, static_cast<std::uint64_t>(c.seed) + 50);
  if (c.planted) {
    for (Index i = 0; i < 40; ++i) {
      const double v = 4.0 * std::sin(0.4 * static_cast<double>(i));
      a[static_cast<std::size_t>(80 + i)] = v;
      b[static_cast<std::size_t>(150 + i)] = v;
    }
  }
  AbValmodOptions options;
  options.len_min = 16;
  options.len_max = 28;
  options.p = c.p;
  const AbValmodResult result = RunAbValmod(a, b, options);
  ASSERT_EQ(result.per_length_join_motifs.size(), 13u);
  for (Index len = 16; len <= 28; ++len) {
    const MotifPair truth = AbJoinMotif(AbJoin(a, b, len));
    const MotifPair& got =
        result.per_length_join_motifs[static_cast<std::size_t>(len - 16)];
    ASSERT_TRUE(got.valid()) << "len=" << len;
    EXPECT_NEAR(got.distance, truth.distance, 1e-6 * (1.0 + truth.distance))
        << "len=" << len << " p=" << c.p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbValmodExactnessTest,
    ::testing::Values(AbValmodCase{1, 1, false}, AbValmodCase{5, 2, false},
                      AbValmodCase{10, 3, true}, AbValmodCase{5, 4, true},
                      AbValmodCase{20, 5, false}));

TEST(AbValmodTest, FindsPlantedCrossSeriesPattern) {
  Series a = testing_util::WhiteNoise(400, 11);
  Series b = testing_util::WhiteNoise(400, 12);
  for (Index i = 0; i < 50; ++i) {
    const double v = 5.0 * std::sin(0.35 * static_cast<double>(i));
    a[static_cast<std::size_t>(120 + i)] =
        v + 0.02 * std::sin(static_cast<double>(i));
    b[static_cast<std::size_t>(250 + i)] = v;
  }
  AbValmodOptions options;
  options.len_min = 40;
  options.len_max = 52;
  options.p = 5;
  const AbValmodResult result = RunAbValmod(a, b, options);
  const MotifPair best = result.BestOverall();
  ASSERT_TRUE(best.valid());
  EXPECT_NEAR(static_cast<double>(best.a), 120.0, 3.0);
  EXPECT_NEAR(static_cast<double>(best.b), 250.0, 3.0);
}

TEST(AbValmodTest, ValmpTracksPerOffsetBest) {
  const Series a = testing_util::WhiteNoise(250, 13);
  const Series b = testing_util::WhiteNoise(250, 14);
  AbValmodOptions options;
  options.len_min = 16;
  options.len_max = 22;
  options.p = 5;
  const AbValmodResult result = RunAbValmod(a, b, options);
  for (Index i = 0; i < result.valmp.size(); ++i) {
    if (!result.valmp.IsSet(i)) continue;
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_GE(result.valmp.lengths[k], 16);
    EXPECT_LE(result.valmp.lengths[k], 22);
    EXPECT_GE(result.valmp.indices[k], 0);  // Offset in B.
  }
}

TEST(AbValmodTest, SelfJoinHasDistanceZeroEverywhere) {
  // Joining a series with itself (no exclusion zone): every length's join
  // motif has distance 0.
  const Series a = testing_util::WhiteNoise(200, 15);
  AbValmodOptions options;
  options.len_min = 16;
  options.len_max = 20;
  options.p = 3;
  const AbValmodResult result = RunAbValmod(a, a, options);
  for (const MotifPair& m : result.per_length_join_motifs) {
    ASSERT_TRUE(m.valid());
    EXPECT_NEAR(m.distance, 0.0, 1e-6);
  }
}

TEST(AbValmodTest, DeadlineFlagsDnf) {
  const Series a = testing_util::WhiteNoise(2000, 16);
  const Series b = testing_util::WhiteNoise(2000, 17);
  AbValmodOptions options;
  options.len_min = 64;
  options.len_max = 96;
  options.p = 5;
  options.deadline = Deadline::After(0.0);
  const AbValmodResult result = RunAbValmod(a, b, options);
  EXPECT_TRUE(result.dnf);
}

}  // namespace
}  // namespace valmod
