#include "core/ranking.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "signal/znorm.h"
#include "test_util.h"

namespace valmod {
namespace {

Valmp MakeValmp(const std::vector<double>& dists,
                const std::vector<Index>& indices,
                const std::vector<Index>& lengths) {
  Valmp v(static_cast<Index>(dists.size()));
  for (std::size_t i = 0; i < dists.size(); ++i) {
    v.distances[i] = dists[i];
    v.indices[i] = indices[i];
    v.lengths[i] = lengths[i];
    v.norm_distances[i] = LengthNormalize(dists[i], lengths[i]);
  }
  return v;
}

TEST(SelectTopKPairsTest, OrdersByNormalizedDistance) {
  // Offsets 0 and 40 pair together; offsets 80 and 120 pair together.
  Valmp v = MakeValmp({8.0, 2.0, 9.0, 9.0}, {1, 0, 3, 2}, {16, 16, 16, 16});
  // Slots live at offsets 0,1,2,3 -> too close; spread them out.
  Valmp spread(200);
  auto set = [&spread](Index off, Index nb, double d, Index len) {
    const std::size_t s = static_cast<std::size_t>(off);
    spread.distances[s] = d;
    spread.indices[s] = nb;
    spread.lengths[s] = len;
    spread.norm_distances[s] = LengthNormalize(d, len);
  };
  set(0, 60, 8.0, 16);
  set(60, 0, 8.0, 16);
  set(120, 180, 2.0, 16);
  set(180, 120, 2.0, 16);
  const std::vector<RankedPair> top = SelectTopKPairs(spread, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].off1, 120);
  EXPECT_EQ(top[0].off2, 180);
  EXPECT_EQ(top[1].off1, 0);
  EXPECT_LE(top[0].norm_distance, top[1].norm_distance);
  (void)v;
}

TEST(SelectTopKPairsTest, DeduplicatesMirrorEntries) {
  Valmp v(200);
  auto set = [&v](Index off, Index nb, double d) {
    const std::size_t s = static_cast<std::size_t>(off);
    v.distances[s] = d;
    v.indices[s] = nb;
    v.lengths[s] = 16;
    v.norm_distances[s] = LengthNormalize(d, 16);
  };
  set(10, 100, 3.0);
  set(100, 10, 3.0);
  const std::vector<RankedPair> top = SelectTopKPairs(v, 5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].off1, 10);
  EXPECT_EQ(top[0].off2, 100);
}

TEST(SelectTopKPairsTest, SelectedPairsAreMutuallyDisjoint) {
  const Series s = testing_util::WalkWithPlantedMotif(600, 40, 80, 400, 31);
  ValmodOptions options;
  options.len_min = 20;
  options.len_max = 32;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  const std::vector<RankedPair> top = SelectTopKPairs(result.valmp, 6);
  std::vector<std::pair<Index, Index>> occs;
  for (const RankedPair& pair : top) {
    occs.emplace_back(pair.off1, pair.length);
    occs.emplace_back(pair.off2, pair.length);
  }
  for (std::size_t x = 0; x < occs.size(); ++x) {
    for (std::size_t y = x + 1; y < occs.size(); ++y) {
      const Index excl =
          ExclusionZone(std::min(occs[x].second, occs[y].second));
      EXPECT_GE(std::llabs(static_cast<long long>(occs[x].first -
                                                  occs[y].first)),
                excl);
    }
  }
}

TEST(SelectTopKPairsTest, KLargerThanAvailableReturnsAll) {
  Valmp v(50);
  v.distances[0] = 1.0;
  v.indices[0] = 30;
  v.lengths[0] = 10;
  v.norm_distances[0] = LengthNormalize(1.0, 10);
  const std::vector<RankedPair> top = SelectTopKPairs(v, 100);
  EXPECT_EQ(top.size(), 1u);
}

TEST(RankMotifsTest, SortsAcrossLengthsByNormalizedDistance) {
  std::vector<MotifPair> motifs;
  motifs.push_back(MotifPair{0, 50, 100, 10.0});   // norm = 1.0
  motifs.push_back(MotifPair{5, 60, 25, 2.5});     // norm = 0.5
  motifs.push_back(MotifPair{9, 70, 400, 40.0});   // norm = 2.0
  const std::vector<RankedPair> ranked =
      RankMotifsByNormalizedDistance(motifs);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].length, 25);
  EXPECT_EQ(ranked[1].length, 100);
  EXPECT_EQ(ranked[2].length, 400);
}

TEST(TopKMotifsPerLengthTest, OneRankedListPerLength) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 32);
  ValmodOptions options;
  options.len_min = 20;
  options.len_max = 24;
  options.p = 5;
  options.emit_per_length_profiles = true;
  const ValmodResult result = RunValmod(s, options);
  const auto ranked = TopKMotifsPerLength(result.per_length_profiles, 3);
  ASSERT_EQ(ranked.size(), 5u);
  for (std::size_t l = 0; l < ranked.size(); ++l) {
    ASSERT_FALSE(ranked[l].empty());
    // First entry is the motif of that length.
    EXPECT_NEAR(ranked[l][0].distance,
                result.per_length_motifs[l].distance, 1e-9);
    for (std::size_t r = 1; r < ranked[l].size(); ++r) {
      EXPECT_GE(ranked[l][r].distance, ranked[l][r - 1].distance);
    }
  }
}

TEST(RankMotifsTest, DropsInvalidPairs) {
  std::vector<MotifPair> motifs(3);
  motifs[1] = MotifPair{0, 50, 20, 1.0};
  const std::vector<RankedPair> ranked =
      RankMotifsByNormalizedDistance(motifs);
  EXPECT_EQ(ranked.size(), 1u);
}

}  // namespace
}  // namespace valmod
