#include "core/diagnostics.h"

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(DiagnosticsTest, CollectsOneEntryPerLiveProfile) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 101);
  const LbDiagnostics diag = CollectLbDiagnostics(s, 20, 24, 5);
  EXPECT_EQ(diag.length, 24);
  EXPECT_FALSE(diag.margins.empty());
  EXPECT_EQ(static_cast<Index>(diag.tlb.size()), NumSubsequences(400, 24));
}

TEST(DiagnosticsTest, TlbValuesAreInUnitInterval) {
  const Series s = testing_util::WhiteNoise(300, 102);
  const LbDiagnostics diag = CollectLbDiagnostics(s, 16, 20, 5);
  for (double t : diag.tlb) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, 1.0);
  }
}

TEST(DiagnosticsTest, MeanTlbAndPositiveFractionConsistent) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 103);
  const LbDiagnostics diag = CollectLbDiagnostics(s, 20, 22, 5);
  const double frac = diag.PositiveMarginFraction();
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
  EXPECT_GE(diag.MeanTlb(), 0.0);
  EXPECT_LE(diag.MeanTlb(), 1.0);
}

TEST(DiagnosticsTest, EmptyDiagnosticsReportZero) {
  LbDiagnostics diag;
  EXPECT_DOUBLE_EQ(diag.PositiveMarginFraction(), 0.0);
  EXPECT_DOUBLE_EQ(diag.MeanTlb(), 0.0);
}

TEST(DiagnosticsTest, RegularDataTighterThanNoisyDataAtLongLengths) {
  // The Figure 9/10 phenomenon: on ECG-like regular data the bound stays
  // tight as the length grows; on EMG-like bursty data it degrades. The
  // contrast appears at lengths beyond the EMG burst scale, where quiet
  // windows grow into bursts and their sigma ratio collapses.
  const Series ecg = GenerateEcg(3000, 7);
  const Series emg = GenerateEmg(3000, 7);
  const LbDiagnostics ecg_diag = CollectLbDiagnostics(ecg, 160, 192, 5);
  const LbDiagnostics emg_diag = CollectLbDiagnostics(emg, 160, 192, 5);
  EXPECT_GT(ecg_diag.MeanTlb(), emg_diag.MeanTlb());
  // Pruning success (Figure 9): most ECG profiles certify, EMG's collapse.
  EXPECT_GT(ecg_diag.PositiveMarginFraction(),
            emg_diag.PositiveMarginFraction() + 0.1);
}

}  // namespace
}  // namespace valmod
