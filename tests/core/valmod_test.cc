#include "core/valmod.h"

#include <gtest/gtest.h>

#include "datasets/registry.h"
#include "mp/brute_force.h"
#include "signal/znorm.h"
#include "test_util.h"

namespace valmod {
namespace {

ValmodOptions MakeOptions(Index len_min, Index len_max, Index p) {
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = p;
  return options;
}

// The headline exactness property (Problem 1): VALMOD's motif distance per
// length equals brute force, for every length in the range, across p values
// and data characters.
struct ValmodCase {
  const char* label;
  int p;
  int seed;
  bool noise;
};

class ValmodExactnessTest : public ::testing::TestWithParam<ValmodCase> {};

TEST_P(ValmodExactnessTest, PerLengthMotifsMatchBruteForce) {
  const ValmodCase c = GetParam();
  const Series s =
      c.noise ? testing_util::WhiteNoise(350, static_cast<std::uint64_t>(c.seed))
              : testing_util::WalkWithPlantedMotif(
                    350, 30, 50, 250, static_cast<std::uint64_t>(c.seed));
  const Index len_min = 18;
  const Index len_max = 34;
  const ValmodResult result =
      RunValmod(s, MakeOptions(len_min, len_max, c.p));
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, len_min, len_max);
  ASSERT_EQ(result.per_length_motifs.size(), truth.size());
  for (std::size_t k = 0; k < truth.size(); ++k) {
    ASSERT_TRUE(truth[k].valid());
    ASSERT_TRUE(result.per_length_motifs[k].valid()) << "len=" << len_min + k;
    EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                1e-6 * (1.0 + truth[k].distance))
        << c.label << " len=" << (len_min + static_cast<Index>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ValmodExactnessTest,
    ::testing::Values(ValmodCase{"p1_motif", 1, 11, false},
                      ValmodCase{"p5_motif", 5, 12, false},
                      ValmodCase{"p20_motif", 20, 13, false},
                      ValmodCase{"p5_noise", 5, 14, true},
                      ValmodCase{"p10_noise", 10, 15, true}));

TEST(ValmodTest, ValmpEntriesAreConsistent) {
  const Series s = testing_util::WalkWithPlantedMotif(350, 30, 50, 250, 21);
  const ValmodResult result = RunValmod(s, MakeOptions(16, 30, 5));
  const Valmp& v = result.valmp;
  for (Index i = 0; i < v.size(); ++i) {
    if (!v.IsSet(i)) continue;
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_GE(v.lengths[k], 16);
    EXPECT_LE(v.lengths[k], 30);
    EXPECT_NEAR(v.norm_distances[k],
                LengthNormalize(v.distances[k], v.lengths[k]), 1e-12);
    EXPECT_FALSE(IsTrivialMatch(i, v.indices[k], v.lengths[k]));
  }
}

TEST(ValmodTest, BestOverallIsMinimumNormalizedDistance) {
  const Series s = testing_util::WalkWithPlantedMotif(350, 30, 50, 250, 22);
  const ValmodResult result = RunValmod(s, MakeOptions(16, 30, 5));
  const MotifPair best = result.BestOverall();
  ASSERT_TRUE(best.valid());
  const double best_norm = LengthNormalize(best.distance, best.length);
  for (const MotifPair& m : result.per_length_motifs) {
    EXPECT_GE(LengthNormalize(m.distance, m.length) + 1e-12, best_norm);
  }
}

TEST(ValmodTest, SingleLengthRangeDegeneratesToMatrixProfile) {
  const Series s = testing_util::WalkWithPlantedMotif(300, 24, 40, 200, 23);
  const ValmodResult result = RunValmod(s, MakeOptions(24, 24, 5));
  ASSERT_EQ(result.per_length_motifs.size(), 1u);
  const MotifPair truth = BruteForceMotif(s, 24);
  EXPECT_NEAR(result.per_length_motifs[0].distance, truth.distance, 1e-6);
  EXPECT_EQ(result.full_mp_computations, 1);
}

TEST(ValmodTest, LengthStatsCoverWholeRange) {
  const Series s = testing_util::WhiteNoise(300, 24);
  const ValmodResult result = RunValmod(s, MakeOptions(16, 26, 5));
  ASSERT_EQ(result.length_stats.size(), 11u);
  for (std::size_t k = 0; k < result.length_stats.size(); ++k) {
    EXPECT_EQ(result.length_stats[k].length, 16 + static_cast<Index>(k));
    EXPECT_LE(result.length_stats[k].valid_count,
              result.length_stats[k].n_profiles);
  }
}

TEST(ValmodTest, SubMpShrinksAcrossIterations) {
  // Figure 14's observation: |subMP| trends downward as the length grows,
  // as long as the retained entries are not re-based. Selective recomputes
  // are disabled so the listDP state evolves purely by length extension;
  // runs that needed a full re-base are skipped (the trend only holds
  // between re-bases).
  const Series s = testing_util::WalkWithPlantedMotif(500, 40, 80, 350, 25);
  ValmodOptions options = MakeOptions(32, 64, 5);
  options.sub_mp.allow_selective_recompute = false;
  const ValmodResult result = RunValmod(s, options);
  const auto& stats = result.length_stats;
  ASSERT_GE(stats.size(), 9u);
  for (std::size_t k = 1; k < stats.size(); ++k) {
    if (stats[k].used_full_recompute) {
      GTEST_SKIP() << "full re-base at length " << stats[k].length;
    }
  }
  // Mean of the last quarter must not exceed the mean of the first quarter
  // (after the base pass); strict per-step monotonicity is not claimed.
  const std::size_t quarter = (stats.size() - 1) / 4;
  double head = 0.0;
  double tail = 0.0;
  for (std::size_t k = 0; k < quarter; ++k) {
    head += static_cast<double>(stats[1 + k].valid_count);
    tail += static_cast<double>(stats[stats.size() - 1 - k].valid_count);
  }
  EXPECT_LE(tail, head * 1.05);
}

TEST(ValmodTest, EmitPerLengthProfilesProducesExactProfiles) {
  const Series s = testing_util::WalkWithPlantedMotif(260, 20, 40, 180, 26);
  ValmodOptions options = MakeOptions(16, 20, 5);
  options.emit_per_length_profiles = true;
  const ValmodResult result = RunValmod(s, options);
  ASSERT_EQ(result.per_length_profiles.size(), 5u);
  for (const MatrixProfile& profile : result.per_length_profiles) {
    const MatrixProfile truth =
        BruteForceMatrixProfile(s, profile.subsequence_length);
    for (Index i = 0; i < profile.size(); ++i) {
      const std::size_t k = static_cast<std::size_t>(i);
      if (truth.distances[k] == kInf) continue;
      EXPECT_NEAR(profile.distances[k], truth.distances[k], 1e-6);
    }
  }
}

TEST(ValmodTest, DeadlineProducesDnf) {
  const Series s = testing_util::WhiteNoise(4000, 27);
  ValmodOptions options = MakeOptions(64, 128, 5);
  options.deadline = Deadline::After(0.0);
  const ValmodResult result = RunValmod(s, options);
  EXPECT_TRUE(result.dnf);
}

TEST(ValmodTest, WorksOnEveryBenchmarkDataset) {
  for (const DatasetSpec& spec : BenchmarkDatasets()) {
    Series s;
    ASSERT_TRUE(GenerateByName(spec.name, 400, &s).ok());
    const ValmodResult result = RunValmod(s, MakeOptions(16, 24, 5));
    const std::vector<MotifPair> truth =
        BruteForceVariableLengthMotifs(s, 16, 24);
    for (std::size_t k = 0; k < truth.size(); ++k) {
      EXPECT_NEAR(result.per_length_motifs[k].distance, truth[k].distance,
                  1e-5 * (1.0 + truth[k].distance))
          << spec.name << " len=" << (16 + static_cast<Index>(k));
    }
  }
}

}  // namespace
}  // namespace valmod
