#include "core/serialize.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "mp/stomp.h"
#include "test_util.h"

namespace valmod {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeValmpTest, RoundTripPreservesSetSlots) {
  const Series s = testing_util::WalkWithPlantedMotif(300, 24, 50, 200, 1);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 24;
  options.p = 5;
  const ValmodResult result = RunValmod(s, options);
  const std::string path = TempPath("valmp.csv");
  ASSERT_TRUE(WriteValmpCsv(result.valmp, path).ok());
  Valmp loaded(0);
  ASSERT_TRUE(ReadValmpCsv(path, result.valmp.size(), &loaded).ok());
  ASSERT_EQ(loaded.size(), result.valmp.size());
  for (Index i = 0; i < loaded.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(loaded.IsSet(i), result.valmp.IsSet(i)) << i;
    if (!loaded.IsSet(i)) continue;
    EXPECT_EQ(loaded.indices[k], result.valmp.indices[k]);
    EXPECT_EQ(loaded.lengths[k], result.valmp.lengths[k]);
    EXPECT_DOUBLE_EQ(loaded.distances[k], result.valmp.distances[k]);
    EXPECT_DOUBLE_EQ(loaded.norm_distances[k],
                     result.valmp.norm_distances[k]);
  }
  std::remove(path.c_str());
}

TEST(SerializeProfileTest, RoundTripPreservesProfile) {
  const Series s = testing_util::WhiteNoise(260, 2);
  const MatrixProfile profile = Stomp(s, 20);
  const std::string path = TempPath("profile.csv");
  ASSERT_TRUE(WriteMatrixProfileCsv(profile, path).ok());
  MatrixProfile loaded;
  ASSERT_TRUE(ReadMatrixProfileCsv(path, 20, &loaded).ok());
  ASSERT_EQ(loaded.size(), profile.size());
  EXPECT_EQ(loaded.subsequence_length, 20);
  for (Index i = 0; i < loaded.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    EXPECT_EQ(loaded.indices[k], profile.indices[k]);
    if (profile.indices[k] != kNoNeighbor) {
      EXPECT_DOUBLE_EQ(loaded.distances[k], profile.distances[k]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeMotifsTest, RoundTripPreservesPairs) {
  std::vector<MotifPair> motifs;
  motifs.push_back(MotifPair{10, 200, 32, 1.25});
  motifs.push_back(MotifPair{55, 480, 40, 2.5});
  motifs.push_back(MotifPair{});  // Invalid: dropped on write.
  const std::string path = TempPath("motifs.csv");
  ASSERT_TRUE(WriteMotifsCsv(motifs, path).ok());
  std::vector<MotifPair> loaded;
  ASSERT_TRUE(ReadMotifsCsv(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].a, 10);
  EXPECT_EQ(loaded[0].b, 200);
  EXPECT_EQ(loaded[0].length, 32);
  EXPECT_DOUBLE_EQ(loaded[0].distance, 1.25);
  EXPECT_EQ(loaded[1].length, 40);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingVersionLineIsRejected) {
  // A pre-v2 file starts directly with the header row.
  const std::string path = TempPath("legacy.csv");
  {
    std::ofstream f(path);
    f << "offset,distance,neighbor\n0,1.0,5\n";
  }
  MatrixProfile profile;
  const Status s = ReadMatrixProfileCsv(path, 16, &profile);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("valmod-csv"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, UnsupportedVersionIsRejected) {
  const std::string path = TempPath("future.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 99\noffset,distance,neighbor\n0,1.0,5\n";
  }
  MatrixProfile profile;
  const Status s = ReadMatrixProfileCsv(path, 16, &profile);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, WriterStampsCurrentVersion) {
  const std::string path = TempPath("stamped.csv");
  ASSERT_TRUE(WriteMotifsCsv({MotifPair{1, 50, 16, 1.0}}, path).ok());
  std::ifstream f(path);
  std::string first;
  ASSERT_TRUE(std::getline(f, first));
  EXPECT_EQ(first,
            "# valmod-csv " + std::to_string(kCsvFormatVersion));
  std::remove(path.c_str());
}

TEST(SerializeTest, ExtraFieldsAreRejected) {
  const std::string path = TempPath("extra.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 2\nlength,offset_a,offset_b,distance\n"
      << "10,2,300,4.0,extra\n";
  }
  std::vector<MotifPair> motifs;
  EXPECT_EQ(ReadMotifsCsv(path, &motifs).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, NanFieldIsRejected) {
  const std::string path = TempPath("nan.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 2\nlength,offset_a,offset_b,distance\n"
      << "10,2,300,nan\n";
  }
  std::vector<MotifPair> motifs;
  EXPECT_EQ(ReadMotifsCsv(path, &motifs).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, HugeOffsetIsRejectedBeforeAllocation) {
  // A corrupt offset far past kMaxSerializedIndex must fail cleanly
  // instead of sizing the output container from it.
  const std::string path = TempPath("huge.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 2\noffset,distance,neighbor\n"
      << "99999999999999999,1.0,5\n";
  }
  MatrixProfile profile;
  EXPECT_EQ(ReadMatrixProfileCsv(path, 16, &profile).code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(SerializeTest, WrongHeaderIsRejected) {
  const std::string path = TempPath("bad_header.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 2\ntotally,unrelated,columns\n1,2,3\n";
  }
  MatrixProfile profile;
  EXPECT_EQ(ReadMatrixProfileCsv(path, 16, &profile).code(),
            StatusCode::kInvalidArgument);
  std::vector<MotifPair> motifs;
  EXPECT_EQ(ReadMotifsCsv(path, &motifs).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, MalformedRowIsRejected) {
  const std::string path = TempPath("bad_row.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 2\nlength,offset_a,offset_b,distance\n"
      << "10,garbage,3,4\n";
  }
  std::vector<MotifPair> motifs;
  EXPECT_EQ(ReadMotifsCsv(path, &motifs).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, OutOfRangeValmpOffsetIsRejected) {
  const std::string path = TempPath("oob.csv");
  {
    std::ofstream f(path);
    f << "# valmod-csv 2\noffset,neighbor,length,distance,norm_distance\n"
      << "999,1,16,2.0,0.5\n";
  }
  Valmp loaded(0);
  EXPECT_EQ(ReadValmpCsv(path, 10, &loaded).code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFilesAreIoErrors) {
  Valmp valmp(0);
  MatrixProfile profile;
  std::vector<MotifPair> motifs;
  EXPECT_EQ(ReadValmpCsv("/nonexistent/x.csv", 5, &valmp).code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadMatrixProfileCsv("/nonexistent/x.csv", 8, &profile).code(),
            StatusCode::kIoError);
  EXPECT_EQ(ReadMotifsCsv("/nonexistent/x.csv", &motifs).code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace valmod
