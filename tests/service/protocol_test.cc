#include "service/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "service/job_queue.h"
#include "service/json.h"
#include "util/status.h"

namespace valmod {
namespace {

TEST(ProtocolTest, QueryTypeNamesRoundTrip) {
  for (QueryType type : {QueryType::kMotif, QueryType::kTopK,
                         QueryType::kDiscord, QueryType::kProfile,
                         QueryType::kStats}) {
    QueryType back = QueryType::kStats;
    ASSERT_TRUE(ParseQueryType(QueryTypeName(type), &back).ok());
    EXPECT_EQ(back, type);
  }
  QueryType out;
  EXPECT_EQ(ParseQueryType("bogus", &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, FrameRoundTrips) {
  const std::string frame = EncodeFrame("{\"a\":1}");
  // Header line, then the payload with its trailing newline.
  const std::size_t header_end = frame.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string header = frame.substr(0, header_end);
  std::size_t bytes = 0;
  ASSERT_TRUE(ParseFrameHeader(header, &bytes).ok());
  // The count includes the payload's trailing newline.
  EXPECT_EQ(bytes, std::string("{\"a\":1}").size() + 1);
  EXPECT_EQ(frame.substr(header_end + 1), "{\"a\":1}\n");
}

TEST(ProtocolTest, HeaderRejectsForeignMagicAndVersions) {
  std::size_t bytes = 0;
  EXPECT_FALSE(ParseFrameHeader("HTTP/1.1 200", &bytes).ok());
  EXPECT_FALSE(ParseFrameHeader("VALMOD/2 10", &bytes).ok());
  EXPECT_FALSE(ParseFrameHeader("VALMOD/1 ", &bytes).ok());
  EXPECT_FALSE(ParseFrameHeader("VALMOD/1 abc", &bytes).ok());
  EXPECT_FALSE(ParseFrameHeader("VALMOD/1 -5", &bytes).ok());
  // A count over the cap is rejected before any payload is buffered.
  EXPECT_FALSE(
      ParseFrameHeader("VALMOD/1 " + std::to_string(kMaxFrameBytes + 1),
                       &bytes)
          .ok());
  EXPECT_TRUE(ParseFrameHeader("VALMOD/1 17", &bytes).ok());
  EXPECT_EQ(bytes, 17u);
}

TEST(ProtocolTest, RequestRoundTripsThroughJson) {
  Request request;
  request.type = QueryType::kTopK;
  request.id = 99;
  request.series = {1.0, 2.5, -3.0, 0.125};
  request.len_min = 8;
  request.len_max = 16;
  request.p = 5;
  request.k = 4;
  request.deadline_ms = 250.0;
  request.priority = kPriorityHigh;
  request.no_cache = true;

  Request back;
  ASSERT_TRUE(back.FromJson(request.ToJson()).ok());
  EXPECT_EQ(back.type, request.type);
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.series, request.series);
  EXPECT_EQ(back.len_min, request.len_min);
  EXPECT_EQ(back.len_max, request.len_max);
  EXPECT_EQ(back.p, request.p);
  EXPECT_EQ(back.k, request.k);
  EXPECT_EQ(back.deadline_ms, request.deadline_ms);
  EXPECT_EQ(back.priority, request.priority);
  EXPECT_EQ(back.no_cache, request.no_cache);
}

TEST(ProtocolTest, DatasetRequestRoundTrips) {
  Request request;
  request.type = QueryType::kDiscord;
  request.dataset = "PLANTED";
  request.n = 4096;
  request.len_min = 32;
  request.len_max = 40;
  Request back;
  ASSERT_TRUE(back.FromJson(request.ToJson()).ok());
  EXPECT_EQ(back.dataset, "PLANTED");
  EXPECT_EQ(back.n, 4096);
  EXPECT_TRUE(back.series.empty());
}

TEST(ProtocolTest, RequestMissingFieldsKeepDefaults) {
  JsonValue json;
  ASSERT_TRUE(
      JsonValue::Parse("{\"type\":\"motif\",\"unknown_field\":1}", &json)
          .ok());
  Request request;
  ASSERT_TRUE(request.FromJson(json).ok());
  EXPECT_EQ(request.type, QueryType::kMotif);
  EXPECT_EQ(request.p, 10);
  EXPECT_EQ(request.k, 3);
  EXPECT_EQ(request.priority, kPriorityNormal);
}

TEST(ProtocolTest, RequestRejectsUnknownType) {
  JsonValue json;
  ASSERT_TRUE(JsonValue::Parse("{\"type\":\"nope\"}", &json).ok());
  Request request;
  EXPECT_EQ(request.FromJson(json).code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, ResponseRoundTripsThroughJson) {
  Response response;
  response.id = 7;
  response.type = QueryType::kMotif;
  response.ok = true;
  response.cached = true;
  response.elapsed_us = 123.5;
  response.fingerprint = "00000000deadbeef";
  LengthResult lr;
  lr.length = 32;
  lr.has_motif = true;
  lr.motif = {10, 50, 32, 1.25};
  response.lengths.push_back(lr);
  response.has_best_motif = true;
  response.best_motif = {10, 50, 32, 1.25, 1.25 * 0.1767766952966369};

  Response back;
  ASSERT_TRUE(back.FromJson(response.ToJson()).ok());
  EXPECT_EQ(back.id, 7);
  EXPECT_EQ(back.type, QueryType::kMotif);
  EXPECT_TRUE(back.ok);
  EXPECT_TRUE(back.cached);
  EXPECT_EQ(back.fingerprint, "00000000deadbeef");
  ASSERT_EQ(back.lengths.size(), 1u);
  EXPECT_TRUE(back.lengths[0].has_motif);
  EXPECT_FALSE(back.lengths[0].has_discord);
  EXPECT_EQ(back.lengths[0].motif.a, 10);
  EXPECT_EQ(back.lengths[0].motif.b, 50);
  EXPECT_EQ(back.lengths[0].motif.distance, 1.25);
  ASSERT_TRUE(back.has_best_motif);
  EXPECT_EQ(back.best_motif.norm_distance, response.best_motif.norm_distance);
  // Re-serialization of the parsed response is byte-identical: the wire
  // format is canonical.
  EXPECT_EQ(back.ToJson().Serialize(), response.ToJson().Serialize());
}

TEST(ProtocolTest, ErrorResponseCarriesCodeAndMessage) {
  Request request;
  request.type = QueryType::kProfile;
  request.id = 3;
  const Response error = Response::Error(
      request, Status::ResourceExhausted("job queue full"));
  EXPECT_FALSE(error.ok);
  EXPECT_EQ(error.id, 3);
  EXPECT_EQ(error.error_code, "RESOURCE_EXHAUSTED");
  Response back;
  ASSERT_TRUE(back.FromJson(error.ToJson()).ok());
  EXPECT_FALSE(back.ok);
  const Status status = back.ToStatus();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(status.message(), "job queue full");
}

TEST(ProtocolTest, UnknownErrorCodeFailsClosed) {
  EXPECT_EQ(StatusCodeFromName("SOME_FUTURE_CODE"), StatusCode::kIoError);
  EXPECT_EQ(StatusCodeFromName("RESOURCE_EXHAUSTED"),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(StatusCodeFromName("DEADLINE_EXCEEDED"),
            StatusCode::kDeadlineExceeded);
}

TEST(ProtocolTest, SeriesValuesSurviveTheWireBitExact) {
  Request request;
  request.type = QueryType::kMotif;
  request.series = {0.1, 1.0 / 3.0, 1e-300, -2.5000000000000004};
  Request back;
  JsonValue reparsed;
  ASSERT_TRUE(
      JsonValue::Parse(request.ToJson().Serialize(), &reparsed).ok());
  ASSERT_TRUE(back.FromJson(reparsed).ok());
  ASSERT_EQ(back.series.size(), request.series.size());
  for (std::size_t i = 0; i < back.series.size(); ++i) {
    EXPECT_EQ(back.series[i], request.series[i]) << i;
  }
}

}  // namespace
}  // namespace valmod
