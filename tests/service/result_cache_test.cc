#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/common.h"

namespace valmod {
namespace {

CacheKey KeyFor(std::uint64_t fingerprint) {
  return CacheKey{fingerprint, 16, 32, 10, 3};
}

/// An artifact whose footprint scales with `lengths` so tests can control
/// entry sizes without hardcoding struct sizes.
CachedArtifact ArtifactWithLengths(Index lengths, double marker = 0.0) {
  CachedArtifact artifact;
  for (Index i = 0; i < lengths; ++i) {
    LengthResult lr;
    lr.length = 16 + i;
    lr.has_motif = lr.has_top_k = lr.has_discord = lr.has_profile = true;
    lr.profile_min = marker;
    artifact.lengths.push_back(lr);
  }
  return artifact;
}

/// Cost of one cache entry holding `artifact`, measured empirically so the
/// tests track the implementation's bookkeeping overhead.
std::size_t EntryCost(const CachedArtifact& artifact) {
  ResultCache probe(/*byte_budget=*/1u << 30, /*shards=*/1);
  probe.Put(KeyFor(1), artifact);
  return probe.bytes();
}

TEST(ResultCacheTest, GetMissThenHit) {
  ResultCache cache(1u << 20, /*shards=*/4);
  CachedArtifact out;
  EXPECT_FALSE(cache.Get(KeyFor(1), &out));
  EXPECT_EQ(cache.misses(), 1);
  cache.Put(KeyFor(1), ArtifactWithLengths(2, 42.0));
  ASSERT_TRUE(cache.Get(KeyFor(1), &out));
  EXPECT_EQ(cache.hits(), 1);
  ASSERT_EQ(out.lengths.size(), 2u);
  EXPECT_EQ(out.lengths[0].profile_min, 42.0);
}

TEST(ResultCacheTest, KeyIncludesEveryParameter) {
  ResultCache cache(1u << 20, /*shards=*/4);
  cache.Put(CacheKey{7, 16, 32, 10, 3}, ArtifactWithLengths(1));
  CachedArtifact out;
  EXPECT_FALSE(cache.Get(CacheKey{8, 16, 32, 10, 3}, &out));  // fingerprint
  EXPECT_FALSE(cache.Get(CacheKey{7, 17, 32, 10, 3}, &out));  // len_min
  EXPECT_FALSE(cache.Get(CacheKey{7, 16, 33, 10, 3}, &out));  // len_max
  EXPECT_FALSE(cache.Get(CacheKey{7, 16, 32, 11, 3}, &out));  // p
  EXPECT_FALSE(cache.Get(CacheKey{7, 16, 32, 10, 4}, &out));  // k
  EXPECT_TRUE(cache.Get(CacheKey{7, 16, 32, 10, 3}, &out));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedFirst) {
  const CachedArtifact artifact = ArtifactWithLengths(4);
  const std::size_t cost = EntryCost(artifact);
  // Room for exactly three entries; one shard so LRU order is global.
  ResultCache cache(3 * cost, /*shards=*/1);
  cache.Put(KeyFor(1), artifact);
  cache.Put(KeyFor(2), artifact);
  cache.Put(KeyFor(3), artifact);
  EXPECT_EQ(cache.entries(), 3);
  // Touch 1 so 2 becomes the least recently used.
  CachedArtifact out;
  ASSERT_TRUE(cache.Get(KeyFor(1), &out));
  cache.Put(KeyFor(4), artifact);
  EXPECT_EQ(cache.entries(), 3);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Get(KeyFor(2), &out)) << "LRU entry should be evicted";
  EXPECT_TRUE(cache.Get(KeyFor(1), &out));
  EXPECT_TRUE(cache.Get(KeyFor(3), &out));
  EXPECT_TRUE(cache.Get(KeyFor(4), &out));
}

TEST(ResultCacheTest, ByteBudgetIsNeverExceeded) {
  const CachedArtifact artifact = ArtifactWithLengths(8);
  const std::size_t cost = EntryCost(artifact);
  const std::size_t budget = 5 * cost + cost / 2;
  ResultCache cache(budget, /*shards=*/1);
  for (std::uint64_t i = 0; i < 50; ++i) {
    cache.Put(KeyFor(i), artifact);
    EXPECT_LE(cache.bytes(), budget);
  }
  EXPECT_EQ(cache.entries(), 5);
  EXPECT_EQ(cache.evictions(), 45);
}

TEST(ResultCacheTest, ReplacingAKeyDoesNotLeakBytes) {
  const CachedArtifact small = ArtifactWithLengths(2);
  const CachedArtifact big = ArtifactWithLengths(16);
  ResultCache cache(1u << 20, /*shards=*/1);
  cache.Put(KeyFor(1), big);
  const std::size_t big_bytes = cache.bytes();
  cache.Put(KeyFor(1), small);
  EXPECT_LT(cache.bytes(), big_bytes);
  EXPECT_EQ(cache.entries(), 1);
}

TEST(ResultCacheTest, OversizeArtifactsAreRejectedNotAdmitted) {
  const CachedArtifact big = ArtifactWithLengths(64);
  const std::size_t cost = EntryCost(big);
  // Budget below one entry: admitting would evict the whole shard.
  ResultCache cache(cost - 1, /*shards=*/1);
  cache.Put(KeyFor(1), big);
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.oversize_rejects(), 1);
  CachedArtifact out;
  EXPECT_FALSE(cache.Get(KeyFor(1), &out));
}

TEST(ResultCacheTest, ClearDropsEverything) {
  ResultCache cache(1u << 20, /*shards=*/8);
  for (std::uint64_t i = 0; i < 10; ++i) {
    cache.Put(KeyFor(i), ArtifactWithLengths(1));
  }
  EXPECT_GT(cache.entries(), 0);
  cache.Clear();
  EXPECT_EQ(cache.entries(), 0);
  EXPECT_EQ(cache.bytes(), 0u);
}

// Named *Stress* so the tsan-parallel CTest preset picks it up: many
// threads hammering overlapping keys across all shards must neither race
// (TSan) nor ever exceed the byte budget.
TEST(ResultCacheStressTest, MultithreadedHammerStaysBoundedAndRaceFree) {
  const CachedArtifact artifact = ArtifactWithLengths(4);
  const std::size_t cost = EntryCost(artifact);
  const std::size_t budget = 8 * cost;
  ResultCache cache(budget, /*shards=*/4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  constexpr std::uint64_t kKeySpace = 32;
  std::atomic<bool> over_budget{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CachedArtifact out;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(t * 31 + i) % kKeySpace;
        if (i % 3 == 0) {
          cache.Put(KeyFor(key), artifact);
        } else if (cache.Get(KeyFor(key), &out)) {
          // Hits must return a fully formed artifact, not a torn one.
          if (out.lengths.size() != 4u) over_budget.store(true);
        }
        if (cache.bytes() > budget) over_budget.store(true);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_FALSE(over_budget.load());
  EXPECT_LE(cache.bytes(), budget);
  EXPECT_GT(cache.hits() + cache.misses(), 0);
}

}  // namespace
}  // namespace valmod
