#include "service/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/ranking.h"
#include "mp/matrix_profile.h"
#include "mp/parallel_stomp.h"
#include "service/protocol.h"
#include "signal/znorm.h"
#include "test_util.h"
#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

/// Canonical serialization of a response with the per-call fields (elapsed
/// time, cache flag) zeroed, so answers can be compared for bit-identity.
std::string NormalizedBody(Response response) {
  response.elapsed_us = 0.0;
  response.cached = false;
  return response.ToJson().Serialize();
}

Request ProfileRequest(const Series& series, Index len_min, Index len_max) {
  Request request;
  request.type = QueryType::kProfile;
  request.series = series;
  request.len_min = len_min;
  request.len_max = len_max;
  request.k = 3;
  return request;
}

TEST(QueryEngineTest, AnswersAreBitIdenticalToDirectLibraryCalls) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(1024, 32, 100, 600, 7);
  const Index len_min = 24;
  const Index len_max = 40;

  QueryEngine engine;
  const Response response =
      engine.Execute(ProfileRequest(series, len_min, len_max));
  ASSERT_TRUE(response.ok) << response.error_message;
  ASSERT_EQ(response.lengths.size(),
            static_cast<std::size_t>(len_max - len_min + 1));

  // The reference: direct library calls, centering once and sharing one
  // PrefixStats exactly like the ParallelStomp convenience overload.
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  std::vector<MotifPair> per_length_motifs;
  for (Index len = len_min; len <= len_max; ++len) {
    const MatrixProfile profile = ParallelStomp(centered, stats, len, 1);
    const LengthResult& lr =
        response.lengths[static_cast<std::size_t>(len - len_min)];
    EXPECT_EQ(lr.length, len);

    const MotifPair motif = MotifFromProfile(profile);
    EXPECT_EQ(lr.motif.a, motif.a);
    EXPECT_EQ(lr.motif.b, motif.b);
    EXPECT_EQ(lr.motif.distance, motif.distance);  // bit-exact

    const std::vector<MotifPair> top_k = TopMotifsFromProfile(profile, 3);
    ASSERT_EQ(lr.top_k.size(), top_k.size());
    for (std::size_t i = 0; i < top_k.size(); ++i) {
      EXPECT_EQ(lr.top_k[i].a, top_k[i].a);
      EXPECT_EQ(lr.top_k[i].b, top_k[i].b);
      EXPECT_EQ(lr.top_k[i].distance, top_k[i].distance);
    }

    const Discord discord = DiscordFromProfile(profile);
    EXPECT_EQ(lr.discord.offset, discord.offset);
    EXPECT_EQ(lr.discord.distance, discord.distance);

    double profile_min = kInf;
    double profile_max = -kInf;
    double sum = 0.0;
    Index finite = 0;
    for (const double d : profile.distances) {
      if (d == kInf) continue;
      profile_min = d < profile_min ? d : profile_min;
      profile_max = d > profile_max ? d : profile_max;
      sum += d;
      ++finite;
    }
    EXPECT_EQ(lr.profile_min, profile_min);
    EXPECT_EQ(lr.profile_max, profile_max);
    EXPECT_EQ(lr.profile_mean,
              finite > 0 ? sum / static_cast<double>(finite) : kInf);
    per_length_motifs.push_back(motif);
  }

  const std::vector<RankedPair> ranked =
      RankMotifsByNormalizedDistance(per_length_motifs);
  ASSERT_FALSE(ranked.empty());
  ASSERT_TRUE(response.has_best_motif);
  EXPECT_EQ(response.best_motif.off1, ranked.front().off1);
  EXPECT_EQ(response.best_motif.off2, ranked.front().off2);
  EXPECT_EQ(response.best_motif.length, ranked.front().length);
  EXPECT_EQ(response.best_motif.norm_distance, ranked.front().norm_distance);
}

TEST(QueryEngineTest, CachedRepeatIsByteIdenticalToCold) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 11);
  QueryEngine engine;
  const Request request = ProfileRequest(series, 16, 24);
  const Response cold = engine.Execute(request);
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cached);
  const Response warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cached);
  EXPECT_EQ(NormalizedBody(warm), NormalizedBody(cold));
  EXPECT_EQ(engine.cache().hits(), 1);
}

TEST(QueryEngineTest, AllQueryTypesShareOneCachedArtifact) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 11);
  QueryEngine engine;
  Request request = ProfileRequest(series, 16, 24);
  request.type = QueryType::kMotif;
  ASSERT_FALSE(engine.Execute(request).cached);
  // A different projection of the same (series, parameters) key hits.
  request.type = QueryType::kDiscord;
  EXPECT_TRUE(engine.Execute(request).cached);
  request.type = QueryType::kTopK;
  EXPECT_TRUE(engine.Execute(request).cached);
  request.type = QueryType::kProfile;
  EXPECT_TRUE(engine.Execute(request).cached);
  EXPECT_EQ(engine.cache().entries(), 1);
}

TEST(QueryEngineTest, NoCacheSkipsLookupButStillStores) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 13);
  QueryEngine engine;
  Request request = ProfileRequest(series, 16, 20);
  request.no_cache = true;
  EXPECT_FALSE(engine.Execute(request).cached);
  EXPECT_FALSE(engine.Execute(request).cached);  // lookup skipped
  request.no_cache = false;
  EXPECT_TRUE(engine.Execute(request).cached);  // but the store happened
}

TEST(QueryEngineTest, DatasetRequestsResolveThroughTheRegistry) {
  QueryEngine engine;
  Request request;
  request.type = QueryType::kMotif;
  request.dataset = "PLANTED";
  request.n = 2048;
  request.len_min = 32;
  request.len_max = 36;
  const Response response = engine.Execute(request);
  ASSERT_TRUE(response.ok) << response.error_message;
  EXPECT_TRUE(response.has_best_motif);
}

TEST(QueryEngineTest, InvalidRequestsGetErrorResponses) {
  QueryEngine engine;
  const Series series = testing_util::WhiteNoise(256, 3);

  Request request;  // neither series nor dataset
  request.type = QueryType::kMotif;
  request.len_min = 16;
  request.len_max = 16;
  EXPECT_EQ(engine.Execute(request).error_code, "INVALID_ARGUMENT");

  request.series = series;
  request.len_min = 2;  // too small
  EXPECT_EQ(engine.Execute(request).error_code, "INVALID_ARGUMENT");

  request.len_min = 32;
  request.len_max = 16;  // inverted range
  EXPECT_EQ(engine.Execute(request).error_code, "INVALID_ARGUMENT");

  request.len_min = 200;
  request.len_max = 240;  // series far too short
  EXPECT_EQ(engine.Execute(request).error_code, "INVALID_ARGUMENT");

  request.len_min = 16;
  request.len_max = 16;
  request.k = 100000;  // above max_k
  EXPECT_EQ(engine.Execute(request).error_code, "INVALID_ARGUMENT");

  Request dataset_request;
  dataset_request.type = QueryType::kMotif;
  dataset_request.dataset = "NO_SUCH_DATASET";
  dataset_request.n = 1024;
  dataset_request.len_min = 16;
  dataset_request.len_max = 16;
  EXPECT_EQ(engine.Execute(dataset_request).error_code, "NOT_FOUND");
}

TEST(QueryEngineTest, TinyDeadlineYieldsDeadlineExceeded) {
  QueryEngine engine;
  Request request;
  request.type = QueryType::kProfile;
  request.dataset = "PLANTED";
  request.n = 1 << 14;
  request.len_min = 64;
  request.len_max = 128;
  request.deadline_ms = 0.001;
  const Response response = engine.Execute(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "DEADLINE_EXCEEDED");
}

TEST(QueryEngineTest, StatsQueryExposesMetrics) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 17);
  QueryEngine engine;
  Request request = ProfileRequest(series, 16, 20);
  request.type = QueryType::kMotif;
  ASSERT_TRUE(engine.Execute(request).ok);

  Request stats;
  stats.type = QueryType::kStats;
  const Response response = engine.Execute(stats);
  ASSERT_TRUE(response.ok);
  EXPECT_NE(response.stats_text.find("valmod_requests_total"),
            std::string::npos);
  EXPECT_NE(response.stats_text.find("valmod_requests_motif 1"),
            std::string::npos);
  EXPECT_NE(response.stats_text.find("valmod_latency_motif_count 1"),
            std::string::npos);
  EXPECT_NE(response.stats_text.find("valmod_cache_entries 1"),
            std::string::npos);
}

TEST(QueryEngineTest, FloodedQueueAppliesBackpressure) {
  QueryEngineOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  QueryEngine engine(options);
  constexpr int kThreads = 8;
  std::atomic<int> succeeded{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &succeeded, &rejected, t] {
      // Unique series per thread so the cache cannot absorb the flood.
      Request request = ProfileRequest(
          testing_util::NoiseWithPlantedMotif(
              1024, 32, 100, 600, static_cast<std::uint64_t>(100 + t)),
          32, 48);
      request.no_cache = true;
      const Response response = engine.Execute(request);
      if (response.ok) {
        succeeded.fetch_add(1);
      } else {
        EXPECT_EQ(response.error_code, "RESOURCE_EXHAUSTED");
        rejected.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(succeeded.load() + rejected.load(), kThreads);
  EXPECT_GE(succeeded.load(), 1);
  EXPECT_GE(rejected.load(), 1) << "flooding a capacity-1 queue from "
                                << kThreads
                                << " threads should trigger backpressure";
  // The engine keeps serving after the flood.
  Request after = ProfileRequest(
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 999), 16, 20);
  EXPECT_TRUE(engine.Execute(after).ok);
}

}  // namespace
}  // namespace valmod
