#include "service/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/status.h"
#include "util/timer.h"

namespace valmod {
namespace {

TEST(ExecutorTest, RunsSubmittedJobs) {
  Executor executor(/*workers=*/2, /*queue_capacity=*/8);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(executor
                    .Submit(kPriorityNormal, Deadline(),
                            [&ran](bool expired) {
                              EXPECT_FALSE(expired);
                              ran.fetch_add(1);
                            })
                    .ok());
  }
  executor.Drain();
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(executor.executed(), 5);
  EXPECT_EQ(executor.expired_in_queue(), 0);
}

TEST(ExecutorTest, RejectsWhenQueueFull) {
  // One worker, blocked; capacity 1 — the second queued job must be
  // rejected with the backpressure code rather than queued unboundedly.
  Executor executor(/*workers=*/1, /*queue_capacity=*/1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(executor
                  .Submit(kPriorityNormal, Deadline(),
                          [&](bool) {
                            std::unique_lock<std::mutex> lock(mu);
                            cv.wait(lock, [&] { return release; });
                          })
                  .ok());
  // Wait for the worker to pick up the blocker so the queue is empty.
  while (executor.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(
      executor.Submit(kPriorityNormal, Deadline(), [](bool) {}).ok());
  const Status status =
      executor.Submit(kPriorityNormal, Deadline(), [](bool) {});
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  executor.Drain();
}

TEST(ExecutorTest, ExpiredJobsAreFlaggedNotDropped) {
  // Block the only worker, queue a job whose deadline lapses while it
  // waits; the job must still run, with expired == true, so its owner can
  // fail fast instead of waiting forever.
  Executor executor(/*workers=*/1, /*queue_capacity=*/4);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(executor
                  .Submit(kPriorityNormal, Deadline(),
                          [&](bool) {
                            std::unique_lock<std::mutex> lock(mu);
                            cv.wait(lock, [&] { return release; });
                          })
                  .ok());
  std::atomic<bool> saw_expired{false};
  ASSERT_TRUE(executor
                  .Submit(kPriorityNormal, Deadline::After(0.01),
                          [&](bool expired) { saw_expired.store(expired); })
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  executor.Drain();
  EXPECT_TRUE(saw_expired.load());
  EXPECT_EQ(executor.expired_in_queue(), 1);
}

TEST(ExecutorTest, DrainRunsAdmittedJobsThenRejects) {
  Executor executor(/*workers=*/1, /*queue_capacity=*/16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor
                    .Submit(kPriorityNormal, Deadline(),
                            [&ran](bool) { ran.fetch_add(1); })
                    .ok());
  }
  executor.Drain();
  EXPECT_EQ(ran.load(), 8);
  // After Drain, submission is backpressure-rejected.
  EXPECT_EQ(
      executor.Submit(kPriorityNormal, Deadline(), [](bool) {}).code(),
      StatusCode::kResourceExhausted);
  // And Drain is idempotent.
  executor.Drain();
}

TEST(ExecutorTest, DefaultWorkerCountIsPositive) {
  Executor executor(/*workers=*/0, /*queue_capacity=*/2);
  EXPECT_GE(executor.workers(), 1);
  executor.Drain();
}

}  // namespace
}  // namespace valmod
