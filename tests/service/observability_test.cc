// End-to-end tests of the observability layer's HTTP face: /metrics and
// /healthz on the gateway, the trace session endpoints, and the slow-query
// log wired through the engine. The acceptance invariant lives here too:
// the pruning counters scraped from /metrics equal the library-struct
// bookkeeping of the same RunValmod call, exactly.

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/valmod.h"
#include "obs/counters.h"
#include "obs/log.h"
#include "service/engine.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/server.h"
#include "test_util.h"
#include "util/common.h"

namespace valmod {
namespace {

/// Sends raw bytes to the gateway and returns everything until EOF (the
/// gateway always answers Connection: close).
std::string HttpExchange(int port, const std::string& request_text) {
  int fd = -1;
  if (!net::Connect("127.0.0.1", port, 5.0, &fd).ok()) return {};
  if (!net::SendAll(fd, request_text).ok()) {
    net::CloseFd(fd);
    return {};
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got <= 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  net::CloseFd(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpExchange(port,
                      "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

/// Parses `name value` from Prometheus text (skipping # TYPE lines).
std::int64_t MetricValue(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  const std::string needle = name + " ";
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    if (line.rfind(needle, 0) == 0) {
      return std::stoll(line.substr(needle.size()));
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }
  ADD_FAILURE() << "metric " << name << " not found in:\n" << text;
  return -1;
}

Request MotifRequest(const Series& series) {
  Request request;
  request.type = QueryType::kMotif;
  request.series = series;
  request.len_min = 16;
  request.len_max = 20;
  request.k = 3;
  return request;
}

TEST(ObservabilityHttp, HealthzMetricsAndErrorPaths) {
  ServerOptions options;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);
  const int port = server.metrics_port();

  const std::string healthz = HttpGet(port, "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos) << healthz;
  EXPECT_EQ(BodyOf(healthz), "ok\n");

  // One real query so the latency histogram and request counters are live.
  const Response response = server.engine().Execute(
      MotifRequest(testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 21)));
  ASSERT_TRUE(response.ok) << response.error_message;

  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos)
      << metrics;
  const std::string body = BodyOf(metrics);
  EXPECT_NE(body.find("# TYPE valmod_requests_total counter"),
            std::string::npos)
      << body;
  EXPECT_EQ(MetricValue(body, "valmod_requests_total"), 1);
  EXPECT_NE(body.find("# TYPE valmod_submp_profiles_certified gauge"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE valmod_latency_motif_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("valmod_latency_motif_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(body.find("valmod_latency_motif_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << body;
  EXPECT_EQ(MetricValue(body, "valmod_latency_motif_us_count"), 1);

  const std::string not_found = HttpGet(port, "/nope");
  EXPECT_NE(not_found.find("HTTP/1.1 404 Not Found"), std::string::npos)
      << not_found;
  const std::string post = HttpExchange(
      port, "POST /metrics HTTP/1.1\r\nHost: test\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405 Method Not Allowed"), std::string::npos)
      << post;
  const std::string malformed = HttpExchange(port, "NONSENSE\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400 Bad Request"), std::string::npos)
      << malformed;

  server.Shutdown();
}

TEST(ObservabilityHttp, NegativeMetricsPortDisablesTheGateway) {
  ServerOptions options;
  options.metrics_port = -1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.metrics_port(), 0);
  server.Shutdown();
}

// The acceptance invariant: the certified/recomputed totals scraped from
// GET /metrics equal the profile counts the library structs report for the
// same RunValmod call.
TEST(ObservabilityHttp, MetricsCountersMatchLibraryStructsExactly) {
  ServerOptions options;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);

  obs::Counters::Reset();
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 21);
  ValmodOptions valmod_options;
  valmod_options.len_min = 16;
  valmod_options.len_max = 24;
  valmod_options.p = 5;
  const ValmodResult result = RunValmod(series, valmod_options);
  ASSERT_FALSE(result.dnf);

  std::int64_t full_profiles = 0;
  std::int64_t submp_valid = 0;
  std::int64_t heap_updates = 0;
  std::int64_t fallbacks = 0;
  for (const LengthStats& ls : result.length_stats) {
    heap_updates += ls.heap_updates;
    if (ls.used_full_recompute) {
      full_profiles += ls.n_profiles;
      if (ls.length != valmod_options.len_min) ++fallbacks;
    } else {
      submp_valid += ls.valid_count;
    }
  }
  // The planted-motif input certifies every length from the bounds; the
  // exact-equality branch below is therefore the one exercised.
  ASSERT_EQ(fallbacks, 0);

  const std::string body = BodyOf(HttpGet(server.metrics_port(), "/metrics"));
  EXPECT_EQ(MetricValue(body, "valmod_submp_profiles_certified") +
                MetricValue(body, "valmod_submp_profiles_recomputed"),
            submp_valid);
  EXPECT_EQ(MetricValue(body, "valmod_mp_profiles_full_stomp"),
            full_profiles);
  EXPECT_EQ(MetricValue(body, "valmod_listdp_heap_updates"), heap_updates);
  EXPECT_EQ(MetricValue(body, "valmod_full_stomp_fallbacks"), 0);
  EXPECT_EQ(MetricValue(body, "valmod_submp_lengths_total"),
            static_cast<std::int64_t>(result.length_stats.size()) - 1);
  server.Shutdown();
}

// The catalog acceptance invariant: the five catalog series scraped from
// GET /metrics equal the Catalog/Singleflight struct counters exactly.
TEST(ObservabilityHttp, CatalogMetricsMatchLibraryStructsExactly) {
  static int run = 0;
  ServerOptions options;
  options.engine.workers = 1;  // deterministic coalescing (see below)
  options.engine.catalog_dir =
      ::testing::TempDir() + "/obs_catalog_" + std::to_string(run++);
  // TempDir() survives across runs; a stale catalog would flip the
  // hit/miss counts this test pins down.
  std::filesystem::remove_all(options.engine.catalog_dir);
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.metrics_port(), 0);
  QueryEngine& engine = server.engine();
  ASSERT_NE(engine.artifact_catalog(), nullptr);

  // One cold query: a catalog miss, then the write-through Put.
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 23);
  ASSERT_TRUE(engine.Execute(MotifRequest(series)).ok);
  // The same key with no_cache: skips the result cache (and the
  // coalescer), so the worker consults the catalog and hits.
  Request again = MotifRequest(series);
  again.no_cache = true;
  ASSERT_TRUE(engine.Execute(again).ok);

  // Three identical in-flight cold requests on a worker occupied by a
  // blocker: one leads, two coalesce — deterministically.
  Request blocker =
      MotifRequest(testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 29));
  blocker.no_cache = true;
  const Request coalesced =
      MotifRequest(testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 31));
  engine.ExecuteAsync(blocker, [](Response) {});
  for (int i = 0; i < 3; ++i) engine.ExecuteAsync(coalesced, [](Response) {});
  engine.Drain();

  const catalog::Catalog& cat = *engine.artifact_catalog();
  const std::string body = BodyOf(HttpGet(server.metrics_port(), "/metrics"));
  EXPECT_EQ(MetricValue(body, "valmod_catalog_hits_total"), cat.hits());
  EXPECT_EQ(MetricValue(body, "valmod_catalog_misses_total"), cat.misses());
  EXPECT_EQ(MetricValue(body, "valmod_catalog_evictions_total"),
            cat.evictions());
  EXPECT_EQ(MetricValue(body, "valmod_catalog_resident_bytes_total"),
            static_cast<std::int64_t>(cat.resident_bytes()));
  EXPECT_EQ(MetricValue(body, "valmod_catalog_coalesced_jobs_total"),
            engine.flight().coalesced());
  // And the values themselves are the ones the scenario dictates.
  EXPECT_EQ(cat.hits(), 1);
  EXPECT_GE(cat.misses(), 1);
  EXPECT_GT(cat.resident_bytes(), 0u);
  EXPECT_EQ(engine.flight().coalesced(), 2);
  server.Shutdown();
}

TEST(ObservabilityHttp, CatalogMetricsExistAtZeroWhenDisabled) {
  // The exposition schema is stable: engines without a catalog still
  // export every catalog series, pinned at zero.
  QueryEngine engine;
  ASSERT_EQ(engine.artifact_catalog(), nullptr);
  const std::string body = engine.metrics().Exposition();
  EXPECT_EQ(MetricValue(body, "valmod_catalog_hits_total"), 0);
  EXPECT_EQ(MetricValue(body, "valmod_catalog_misses_total"), 0);
  EXPECT_EQ(MetricValue(body, "valmod_catalog_evictions_total"), 0);
  EXPECT_EQ(MetricValue(body, "valmod_catalog_resident_bytes_total"), 0);
  EXPECT_EQ(MetricValue(body, "valmod_catalog_coalesced_jobs_total"), 0);
}

TEST(ObservabilityHttp, TraceEndpointsCaptureAQuerySession) {
  ServerOptions options;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.metrics_port();

  const std::string started = HttpGet(port, "/trace/start");
  EXPECT_NE(started.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(BodyOf(started), "tracing started\n");

  const Response response = server.engine().Execute(
      MotifRequest(testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 7)));
  ASSERT_TRUE(response.ok) << response.error_message;

  const std::string stopped = HttpGet(port, "/trace/stop");
  EXPECT_NE(stopped.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(stopped.find("application/json"), std::string::npos) << stopped;
  const std::string body = BodyOf(stopped);
  EXPECT_NE(body.find("{\"traceEvents\":["), std::string::npos) << body;
#if VALMOD_TRACING_ENABLED
  // The traced session spans the engine stages and the kernel chunks.
  EXPECT_NE(body.find("\"name\":\"service_execute\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"compute_artifact\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"stomp_row_chunk\""), std::string::npos);
#endif
  server.Shutdown();
}

TEST(ObservabilityHttp, SlowQueryLogFiresAndCountsOverThreshold) {
  std::vector<std::string> lines;
  obs::Log::SetSink([&lines](const std::string& line) {
    lines.push_back(line);
  });

  QueryEngineOptions options;
  options.slow_query_ms = 0.001;  // everything is slow
  QueryEngine engine(options);
  const Response response = engine.Execute(
      MotifRequest(testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 9)));
  ASSERT_TRUE(response.ok) << response.error_message;

  obs::Log::SetSink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("\"event\":\"slow_query\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"type\":\"motif\""), std::string::npos);
  EXPECT_NE(line.find("\"cached\":false"), std::string::npos);
  // queue_wait is a manual stage record, present with or without tracing.
  EXPECT_NE(line.find("\"stage\":\"queue_wait\""), std::string::npos) << line;
#if VALMOD_TRACING_ENABLED
  EXPECT_NE(line.find("\"stage\":\"compute_artifact\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"stage\":\"service_execute\""), std::string::npos);
#endif
  EXPECT_NE(engine.metrics().Exposition().find("valmod_slow_queries_total 1"),
            std::string::npos);

  // Under the threshold nothing fires: a fresh engine with a generous
  // threshold stays quiet on a fast cached query.
  QueryEngineOptions quiet_options;
  quiet_options.slow_query_ms = 60000.0;
  QueryEngine quiet(quiet_options);
  std::vector<std::string> quiet_lines;
  obs::Log::SetSink([&quiet_lines](const std::string& quiet_line) {
    quiet_lines.push_back(quiet_line);
  });
  const Response fast = quiet.Execute(
      MotifRequest(testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 9)));
  obs::Log::SetSink(nullptr);
  ASSERT_TRUE(fast.ok);
  EXPECT_TRUE(quiet_lines.empty());
}

}  // namespace
}  // namespace valmod
