#include "service/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace valmod {
namespace {

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.GetCounter("requests_total");
  counter->Increment();
  counter->Increment(4);
  EXPECT_EQ(counter->Value(), 5);
  // Same name returns the same counter.
  EXPECT_EQ(registry.GetCounter("requests_total"), counter);
}

TEST(MetricsTest, HistogramQuantilesBoundWithinFactorOfTwo) {
  LatencyHistogram histogram;
  for (int i = 0; i < 99; ++i) histogram.Observe(100.0);  // bucket [64,128)
  histogram.Observe(100000.0);  // one outlier in [65536,131072)
  EXPECT_EQ(histogram.TotalCount(), 100);
  const double p50 = histogram.QuantileUpperBoundUs(0.5);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 200.0);
  const double p99 = histogram.QuantileUpperBoundUs(0.99);
  EXPECT_GE(p99, 100.0);
  EXPECT_LE(p99, 200.0);
  const double p999 = histogram.QuantileUpperBoundUs(0.999);
  EXPECT_GE(p999, 100000.0);
  EXPECT_LE(p999, 200000.0);
  EXPECT_NEAR(histogram.SumUs(), 99 * 100.0 + 100000.0, 100.0);
}

TEST(MetricsTest, EmptyHistogramReportsZero) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.TotalCount(), 0);
  EXPECT_EQ(histogram.QuantileUpperBoundUs(0.5), 0.0);
}

// Regression for the bucket-0 edge: sub-microsecond observations land in
// bucket [0,1) whose upper edge is 1us — the quantile used to report the
// edge of the wrong bucket for them.
TEST(MetricsTest, SubMicrosecondObservationsQuantileToOneMicrosecond) {
  LatencyHistogram histogram;
  histogram.Observe(0.5);
  EXPECT_EQ(histogram.TotalCount(), 1);
  EXPECT_EQ(histogram.BucketCount(0), 1);
  EXPECT_EQ(LatencyHistogram::BucketUpperEdgeUs(0), 1);
  EXPECT_DOUBLE_EQ(histogram.QuantileUpperBoundUs(0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.QuantileUpperBoundUs(0.99), 1.0);
  // The next bucket starts at exactly 1us: [1,2) reports upper edge 2.
  LatencyHistogram next;
  next.Observe(1.0);
  EXPECT_EQ(next.BucketCount(1), 1);
  EXPECT_DOUBLE_EQ(next.QuantileUpperBoundUs(0.5), 2.0);
}

TEST(MetricsTest, PrometheusTextRendersTypedCumulativeSeries) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.SetGauge("queue_depth", [] { return std::int64_t{2}; });
  LatencyHistogram* histogram = registry.GetHistogram("latency_motif");
  histogram->Observe(0.25);   // bucket 0, le="1"
  histogram->Observe(100.0);  // bucket 7, le="128"
  histogram->Observe(100.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE valmod_requests_total counter\n"
                      "valmod_requests_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE valmod_queue_depth gauge\n"
                      "valmod_queue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE valmod_latency_motif_us histogram\n"),
            std::string::npos);
  // Buckets are cumulative: the le="128" series includes the bucket-0 hit.
  EXPECT_NE(text.find("valmod_latency_motif_us_bucket{le=\"1\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("valmod_latency_motif_us_bucket{le=\"128\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("valmod_latency_motif_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("valmod_latency_motif_us_sum 200\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("valmod_latency_motif_us_count 3\n"),
            std::string::npos);
}

TEST(MetricsTest, ExpositionIsSortedAndPrefixed) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(2);
  registry.GetCounter("alpha")->Increment();
  registry.SetGauge("middle", [] { return std::int64_t{7}; });
  const std::string text = registry.Exposition();
  const std::size_t alpha = text.find("valmod_alpha 1");
  const std::size_t middle = text.find("valmod_middle 7");
  const std::size_t zeta = text.find("valmod_zeta 2");
  ASSERT_NE(alpha, std::string::npos) << text;
  ASSERT_NE(middle, std::string::npos) << text;
  ASSERT_NE(zeta, std::string::npos) << text;
  EXPECT_LT(alpha, middle);
  EXPECT_LT(middle, zeta);
}

TEST(MetricsTest, HistogramExpositionHasCountMeanAndQuantiles) {
  MetricsRegistry registry;
  registry.GetHistogram("latency_motif")->Observe(50.0);
  const std::string text = registry.Exposition();
  EXPECT_NE(text.find("valmod_latency_motif_count 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("valmod_latency_motif_mean_us"), std::string::npos);
  EXPECT_NE(text.find("valmod_latency_motif_p50_us"), std::string::npos);
  EXPECT_NE(text.find("valmod_latency_motif_p90_us"), std::string::npos);
  EXPECT_NE(text.find("valmod_latency_motif_p99_us"), std::string::npos);
}

TEST(MetricsTest, GaugesSampleLiveValues) {
  MetricsRegistry registry;
  std::int64_t value = 1;
  registry.SetGauge("live", [&value] { return value; });
  EXPECT_NE(registry.Exposition().find("valmod_live 1"), std::string::npos);
  value = 2;
  EXPECT_NE(registry.Exposition().find("valmod_live 2"), std::string::npos);
}

TEST(MetricsTest, ConcurrentRegistrationAndUpdatesAreSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kOps; ++i) {
        registry.GetCounter("shared")->Increment();
        registry.GetHistogram("lat")->Observe(static_cast<double>(i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared")->Value(), kThreads * kOps);
  EXPECT_EQ(registry.GetHistogram("lat")->TotalCount(), kThreads * kOps);
}

}  // namespace
}  // namespace valmod
