#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/engine.h"
#include "service/json.h"
#include "service/net.h"
#include "service/protocol.h"
#include "service/server.h"
#include "test_util.h"
#include "util/common.h"
#include "util/status.h"
#include "util/timer.h"

namespace valmod {
namespace {

/// Canonical serialization with the per-call fields (elapsed time, cache
/// flag) zeroed: two answers with equal NormalizedBody are bit-identical.
std::string NormalizedBody(Response response) {
  response.id = 0;
  response.elapsed_us = 0.0;
  response.cached = false;
  return response.ToJson().Serialize();
}

Request MakeRequest(QueryType type, const Series& series, Index len_min,
                    Index len_max) {
  Request request;
  request.type = type;
  request.series = series;
  request.len_min = len_min;
  request.len_max = len_max;
  request.k = 3;
  return request;
}

// The acceptance-criteria scenario: 16 concurrent clients issuing a mix of
// query types over loopback, every answer bit-identical to direct library
// calls (which QueryEngineTest.AnswersAreBitIdenticalToDirectLibraryCalls
// ties to the engine; here the engine's answer is compared byte-for-byte
// against what comes back over the wire).
TEST(ServiceE2E, SixteenConcurrentClientsGetBitIdenticalAnswers) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 21);
  const Index len_min = 16;
  const Index len_max = 20;
  const QueryType kTypes[] = {QueryType::kMotif, QueryType::kTopK,
                              QueryType::kDiscord, QueryType::kProfile};

  // Reference answers from a local engine (no sockets involved).
  QueryEngine reference;
  std::map<QueryType, std::string> expected;
  for (const QueryType type : kTypes) {
    const Response response =
        reference.Execute(MakeRequest(type, series, len_min, len_max));
    ASSERT_TRUE(response.ok) << response.error_message;
    expected[type] = NormalizedBody(response);
  }

  ServerOptions options;
  options.engine.workers = 2;
  options.engine.queue_capacity = 64;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 16;
  constexpr int kQueriesPerClient = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      if (!client.Connect("127.0.0.1", server.port(), 30.0).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const QueryType type = kTypes[(c + q) % 4];
        Request request = MakeRequest(type, series, len_min, len_max);
        request.id = c * 100 + q;
        Response response;
        if (!client.Query(request, &response).ok() || !response.ok) {
          failures.fetch_add(1);
          continue;
        }
        if (response.id != request.id ||
            NormalizedBody(response) != expected[type]) {
          mismatches.fetch_add(1);
        }
      }
      std::string stats;
      if (!client.Stats(&stats).ok() ||
          stats.find("valmod_requests_total") == std::string::npos) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.connections_accepted(), kClients);
  server.Shutdown();
}

TEST(ServiceE2E, QueueOverflowReturnsBackpressureNotStall) {
  ServerOptions options;
  options.engine.workers = 1;
  options.engine.queue_capacity = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  std::atomic<int> succeeded{0};
  std::atomic<int> rejected{0};
  std::atomic<int> transport_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Unique series per client so the cache cannot absorb the flood.
      Request request = MakeRequest(
          QueryType::kProfile,
          testing_util::NoiseWithPlantedMotif(
              1024, 32, 100, 600, static_cast<std::uint64_t>(200 + c)),
          32, 40);
      request.no_cache = true;
      Client client;
      if (!client.Connect("127.0.0.1", server.port(), 60.0).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      Response response;
      if (!client.Query(request, &response).ok()) {
        transport_errors.fetch_add(1);
        return;
      }
      if (response.ok) {
        succeeded.fetch_add(1);
      } else if (response.error_code == "RESOURCE_EXHAUSTED") {
        rejected.fetch_add(1);
      } else {
        transport_errors.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(transport_errors.load(), 0);
  EXPECT_EQ(succeeded.load() + rejected.load(), kClients);
  EXPECT_GE(succeeded.load(), 1);
  EXPECT_GE(rejected.load(), 1)
      << "a capacity-1 queue flooded by " << kClients
      << " concurrent clients should reject with backpressure";

  // Backpressure is transient: the server keeps serving afterwards.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 30.0).ok());
  Response response;
  ASSERT_TRUE(client
                  .Query(MakeRequest(QueryType::kMotif,
                                     testing_util::NoiseWithPlantedMotif(
                                         512, 24, 60, 300, 33),
                                     16, 20),
                         &response)
                  .ok());
  EXPECT_TRUE(response.ok) << response.error_message;
  server.Shutdown();
}

TEST(ServiceE2E, ShutdownDrainsInFlightRequests) {
  ServerOptions options;
  options.engine.workers = 1;
  options.engine.queue_capacity = 4;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<bool> got_answer{false};
  std::thread client_thread([&] {
    Client client;
    if (!client.Connect("127.0.0.1", server.port(), 60.0).ok()) return;
    // Slow enough that Shutdown lands mid-computation.
    const Request request = MakeRequest(
        QueryType::kProfile,
        testing_util::NoiseWithPlantedMotif(2048, 48, 200, 1200, 5), 64, 80);
    Response response;
    if (client.Query(request, &response).ok() && response.ok &&
        response.lengths.size() == 17u) {
      got_answer.store(true);
    }
  });

  // Wait until the worker has actually started the job, then pull the plug.
  const Deadline wait = Deadline::After(30.0);
  while (server.engine().executor().executed() == 0 && !wait.Expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(server.engine().executor().executed(), 0);
  server.Shutdown();
  EXPECT_FALSE(server.running());

  client_thread.join();
  EXPECT_TRUE(got_answer.load())
      << "graceful drain must deliver the in-flight response";

  // The listener is gone: new connections cannot be served.
  Client late;
  if (late.Connect("127.0.0.1", server.port(), 1.0).ok()) {
    Response response;
    EXPECT_FALSE(late.Query(MakeRequest(QueryType::kMotif,
                                        testing_util::WhiteNoise(64, 1), 8, 8),
                            &response)
                     .ok());
  }
}

TEST(ServiceE2E, OverCapacityConnectionsAreRefused) {
  ServerOptions options;
  options.max_connections = 1;
  options.engine.workers = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  Client first;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port(), 30.0).ok());
  std::string stats;
  ASSERT_TRUE(first.Stats(&stats).ok());  // connection is fully registered

  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port(), 30.0).ok());
  Response response;
  const Status status = second.Query(
      MakeRequest(QueryType::kMotif, testing_util::WhiteNoise(64, 1), 8, 8),
      &response);
  // The refusal is a well-formed error frame, not a silent close.
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "RESOURCE_EXHAUSTED");
  EXPECT_EQ(server.connections_refused(), 1);

  // Freeing the slot lets a new client in (the handler notices the close
  // within its poll slice).
  first.Close();
  const Deadline wait = Deadline::After(30.0);
  bool admitted = false;
  while (!admitted && !wait.Expired()) {
    Client retry;
    if (retry.Connect("127.0.0.1", server.port(), 5.0).ok() &&
        retry.Stats(&stats).ok()) {
      admitted = true;
    }
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(admitted);
  server.Shutdown();
}

TEST(ServiceE2E, MalformedFramesGetOneErrorThenClose) {
  ServerOptions options;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  int fd = -1;
  ASSERT_TRUE(net::Connect("127.0.0.1", server.port(), 5.0, &fd).ok());
  ASSERT_TRUE(net::SendAll(fd, "GARBAGE HEADER\n").ok());
  std::string payload;
  ASSERT_TRUE(net::ReadFramePayload(fd, 10.0, nullptr, &payload).ok());
  JsonValue json;
  ASSERT_TRUE(JsonValue::Parse(payload, &json).ok());
  Response response;
  ASSERT_TRUE(response.FromJson(json).ok());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "INVALID_ARGUMENT");
  // After a framing error the server closes: the next read sees EOF.
  const Status closed = net::ReadFramePayload(fd, 10.0, nullptr, &payload);
  EXPECT_EQ(closed.code(), StatusCode::kNotFound);
  net::CloseFd(fd);
  server.Shutdown();
}

}  // namespace
}  // namespace valmod
