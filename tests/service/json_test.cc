#include "service/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/common.h"

namespace valmod {
namespace {

TEST(JsonTest, SerializesScalars) {
  EXPECT_EQ(JsonValue().Serialize(), "null");
  EXPECT_EQ(JsonValue(true).Serialize(), "true");
  EXPECT_EQ(JsonValue(false).Serialize(), "false");
  EXPECT_EQ(JsonValue(std::int64_t{42}).Serialize(), "42");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).Serialize(), "-7");
  EXPECT_EQ(JsonValue(std::string("hi")).Serialize(), "\"hi\"");
}

TEST(JsonTest, ObjectKeysSerializeSorted) {
  JsonValue v;
  v.Set("zebra", JsonValue(std::int64_t{1}));
  v.Set("alpha", JsonValue(std::int64_t{2}));
  EXPECT_EQ(v.Serialize(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(JsonTest, ArraysSerializeInOrder) {
  JsonValue v;
  v.Append(JsonValue(std::int64_t{3}));
  v.Append(JsonValue(std::int64_t{1}));
  v.Append(JsonValue(std::int64_t{2}));
  EXPECT_EQ(v.Serialize(), "[3,1,2]");
}

TEST(JsonTest, EscapesStrings) {
  const JsonValue v(std::string("a\"b\\c\n\t\x01"));
  EXPECT_EQ(v.Serialize(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(v.Serialize(), &parsed).ok());
  EXPECT_EQ(parsed.AsString(), "a\"b\\c\n\t\x01");
}

TEST(JsonTest, DoublesRoundTripBitExact) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           std::nextafter(2.0, 3.0),
                           1e-300,
                           1e300,
                           -0.0,
                           3.141592653589793};
  for (const double d : values) {
    JsonValue parsed;
    ASSERT_TRUE(JsonValue::Parse(JsonValue(d).Serialize(), &parsed).ok());
    EXPECT_EQ(parsed.AsDouble(), d) << JsonValue(d).Serialize();
  }
}

TEST(JsonTest, NonFiniteDoublesBecomeMarkerStrings) {
  EXPECT_EQ(JsonValue(kInf).Serialize(), "\"inf\"");
  EXPECT_EQ(JsonValue(-kInf).Serialize(), "\"-inf\"");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).Serialize(),
            "\"nan\"");
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse("\"inf\"", &parsed).ok());
  EXPECT_EQ(parsed.AsDouble(), kInf);
  ASSERT_TRUE(JsonValue::Parse("\"-inf\"", &parsed).ok());
  EXPECT_EQ(parsed.AsDouble(), -kInf);
  ASSERT_TRUE(JsonValue::Parse("\"nan\"", &parsed).ok());
  EXPECT_TRUE(std::isnan(parsed.AsDouble()));
}

TEST(JsonTest, ParsesNestedDocument) {
  JsonValue v;
  const Status status = JsonValue::Parse(
      " { \"a\" : [ 1 , 2.5 , true , null ] , \"b\" : { \"c\" : \"x\" } } ",
      &v);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->AsArray().size(), 4u);
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_EQ(a->AsArray()[1].AsDouble(), 2.5);
  EXPECT_TRUE(a->AsArray()[2].AsBool());
  EXPECT_TRUE(a->AsArray()[3].is_null());
  const JsonValue* b = v.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_NE(b->Find("c"), nullptr);
  EXPECT_EQ(b->Find("c")->AsString(), "x");
}

TEST(JsonTest, IntegersStayIntegers) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("9007199254740993", &v).ok());
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.AsInt(), 9007199254740993LL);
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(JsonValue::Parse("", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("{", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":}", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("1 trailing", &v).ok());
  EXPECT_FALSE(JsonValue::Parse("tru", &v).ok());
}

TEST(JsonTest, RejectsExcessiveNesting) {
  std::string deep;
  for (int i = 0; i < kMaxParseDepth + 1; ++i) deep += "[";
  for (int i = 0; i < kMaxParseDepth + 1; ++i) deep += "]";
  JsonValue v;
  EXPECT_FALSE(JsonValue::Parse(deep, &v).ok());
  std::string fine;
  for (int i = 0; i < kMaxParseDepth - 1; ++i) fine += "[";
  for (int i = 0; i < kMaxParseDepth - 1; ++i) fine += "]";
  EXPECT_TRUE(JsonValue::Parse(fine, &v).ok());
}

TEST(JsonTest, ParsesUnicodeEscapes) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::Parse("\"\\u00e9\\u0041\"", &v).ok());
  EXPECT_EQ(v.AsString(), "\xc3\xa9"
                          "A");
}

TEST(JsonTest, SerializationIsDeterministic) {
  JsonValue a;
  a.Set("x", JsonValue(1.5));
  a.Set("y", JsonValue(std::string("s")));
  JsonValue b;
  b.Set("y", JsonValue(std::string("s")));
  b.Set("x", JsonValue(1.5));
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

}  // namespace
}  // namespace valmod
