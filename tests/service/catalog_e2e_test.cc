// End-to-end tests of the engine's catalog/coalescing path: N identical
// concurrent cold requests cost exactly one STOMP job, a second engine
// instance serves from the persisted artifact without recomputing, deeper
// stored artifacts serve shallower k by prefix truncation, and no_catalog
// forces a recompute — every path byte-identical to a cold compute.

#include "service/engine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "obs/counters.h"
#include "service/protocol.h"
#include "test_util.h"
#include "util/common.h"
#include "util/mutex.h"

namespace valmod {
namespace {

/// Canonical serialization with the per-call fields (elapsed time, cache
/// flag) zeroed, so responses can be compared for bit-identity.
std::string NormalizedBody(Response response) {
  response.elapsed_us = 0.0;
  response.cached = false;
  return response.ToJson().Serialize();
}

Request ProfileRequest(const Series& series, Index len_min, Index len_max,
                       Index k = 3) {
  Request request;
  request.type = QueryType::kProfile;
  request.series = series;
  request.len_min = len_min;
  request.len_max = len_max;
  request.k = k;
  return request;
}

std::string FreshCatalogRoot(const char* name) {
  static int counter = 0;
  std::string root = ::testing::TempDir() + "/catalog_e2e_" + name + "_" +
                     std::to_string(counter++);
  // TempDir() survives across runs; a stale catalog from a previous run
  // would turn this test's cold path into a hit.
  std::filesystem::remove_all(root);
  return root;
}

/// stomp_rows recorded by exactly one cold execution of `request` on a
/// fresh engine (no catalog, no shared cache). The kernel is deterministic,
/// so this count is exact, not approximate.
std::int64_t StompRowsForOneJob(const Request& request) {
  QueryEngine engine;
  obs::Counters::Reset();
  const Response response = engine.Execute(request);
  EXPECT_TRUE(response.ok) << response.error_message;
  return obs::Counters::Snapshot().stomp_rows;
}

TEST(CatalogE2eTest, SixteenConcurrentColdRequestsCostOneStompJob) {
  // The acceptance scenario: 16 identical cold requests in flight at once
  // coalesce onto one compute job. A single worker plus a blocker request
  // occupying it guarantees every follower joins the leader's flight
  // before the leader's job even starts — no timing luck involved.
  const Series series =
      testing_util::NoiseWithPlantedMotif(2048, 32, 200, 1200, 41);
  const Series blocker_series =
      testing_util::NoiseWithPlantedMotif(4096, 48, 300, 2500, 43);
  const Request request = ProfileRequest(series, 24, 40);
  Request blocker = ProfileRequest(blocker_series, 24, 40);
  blocker.no_cache = true;  // skips the coalescer: pays its own way

  const std::int64_t one_job_rows = StompRowsForOneJob(request);
  const std::int64_t blocker_rows = StompRowsForOneJob(blocker);
  ASSERT_GT(one_job_rows, 0);

  // The reference answer every coalesced response must match byte-exactly
  // (transitively bit-identical to direct library calls per
  // QueryEngineTest.AnswersAreBitIdenticalToDirectLibraryCalls).
  std::string reference;
  {
    QueryEngine engine;
    reference = NormalizedBody(engine.Execute(request));
  }

  obs::Counters::Reset();
  constexpr int kClients = 16;
  Mutex mu;
  std::vector<std::string> bodies;
  int blocker_done = 0;
  {
    QueryEngineOptions options;
    options.workers = 1;
    QueryEngine engine(options);
    engine.ExecuteAsync(blocker, [&mu, &blocker_done](Response response) {
      EXPECT_TRUE(response.ok) << response.error_message;
      const MutexLock lock(&mu);
      ++blocker_done;
    });
    // With the lone worker occupied by the blocker, these 16 submissions
    // are all in flight together: the first leads, the rest coalesce.
    for (int i = 0; i < kClients; ++i) {
      engine.ExecuteAsync(request, [&mu, &bodies](Response response) {
        EXPECT_TRUE(response.ok) << response.error_message;
        const MutexLock lock(&mu);
        bodies.push_back(NormalizedBody(std::move(response)));
      });
    }
    EXPECT_EQ(engine.flight().coalesced(), kClients - 1);
    EXPECT_EQ(engine.flight().flights_led(), 1);
    engine.Drain();
    EXPECT_EQ(engine.flight().in_flight(), 0);
  }
  const MutexLock lock(&mu);
  EXPECT_EQ(blocker_done, 1);
  ASSERT_EQ(bodies.size(), static_cast<std::size_t>(kClients));
  for (const std::string& body : bodies) EXPECT_EQ(body, reference);
  // The ledger: 16 requests, but the kernel ran exactly one job's worth of
  // rows for them (plus the blocker's own).
  const obs::CountersSnapshot snapshot = obs::Counters::Snapshot();
  EXPECT_EQ(snapshot.stomp_rows, one_job_rows + blocker_rows);
  EXPECT_EQ(snapshot.coalesced_jobs, kClients - 1);
}

TEST(CatalogE2eTest, SecondEngineServesFromPersistedArtifactWithoutStomp) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(1024, 32, 100, 600, 47);
  const Request request = ProfileRequest(series, 16, 24);
  const std::string root = FreshCatalogRoot("warm");

  std::string cold_body;
  {
    QueryEngineOptions options;
    options.catalog_dir = root;
    QueryEngine engine(options);
    ASSERT_NE(engine.artifact_catalog(), nullptr);
    const Response cold = engine.Execute(request);
    ASSERT_TRUE(cold.ok) << cold.error_message;
    EXPECT_FALSE(cold.cached);
    cold_body = NormalizedBody(cold);
    EXPECT_EQ(engine.artifact_catalog()->puts(), 1);
  }

  // A fresh engine over the same root — a restart. Its result cache is
  // empty, so the request goes cold; the catalog answers instead of STOMP.
  QueryEngineOptions options;
  options.catalog_dir = root;
  QueryEngine engine(options);
  obs::Counters::Reset();
  const Response warm = engine.Execute(request);
  ASSERT_TRUE(warm.ok) << warm.error_message;
  EXPECT_FALSE(warm.cached) << "catalog hits are not result-cache hits";
  EXPECT_EQ(NormalizedBody(warm), cold_body);
  const obs::CountersSnapshot snapshot = obs::Counters::Snapshot();
  EXPECT_EQ(snapshot.stomp_rows, 0) << "served from the artifact, not STOMP";
  EXPECT_EQ(snapshot.catalog_hits, 1);
  EXPECT_EQ(engine.artifact_catalog()->hits(), 1);
  EXPECT_EQ(engine.artifact_catalog()->disk_loads(), 1);
}

TEST(CatalogE2eTest, StoredArtifactServesShallowerKByPrefixTruncation) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(1024, 32, 100, 600, 53);
  const std::string root = FreshCatalogRoot("truncate");
  {
    QueryEngineOptions options;
    options.catalog_dir = root;
    QueryEngine engine(options);
    ASSERT_TRUE(engine.Execute(ProfileRequest(series, 16, 24, /*k=*/5)).ok);
  }

  // k=2 from the stored (max_k-deep) artifact, no recompute...
  QueryEngineOptions options;
  options.catalog_dir = root;
  QueryEngine engine(options);
  obs::Counters::Reset();
  const Response truncated =
      engine.Execute(ProfileRequest(series, 16, 24, /*k=*/2));
  ASSERT_TRUE(truncated.ok) << truncated.error_message;
  EXPECT_EQ(obs::Counters::Snapshot().stomp_rows, 0);
  EXPECT_EQ(engine.artifact_catalog()->hits(), 1);
  for (const LengthResult& lr : truncated.lengths) {
    EXPECT_LE(lr.top_k.size(), 2u);
  }
  // ...and byte-identical to computing with k=2 directly.
  QueryEngine reference;
  EXPECT_EQ(NormalizedBody(truncated),
            NormalizedBody(
                reference.Execute(ProfileRequest(series, 16, 24, /*k=*/2))));
}

TEST(CatalogE2eTest, NoCatalogFlagForcesRecomputeButSameBytes) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(1024, 32, 100, 600, 59);
  Request request = ProfileRequest(series, 16, 24);
  const std::string root = FreshCatalogRoot("nocatalog");
  {
    QueryEngineOptions options;
    options.catalog_dir = root;
    QueryEngine engine(options);
    ASSERT_TRUE(engine.Execute(request).ok);
  }

  QueryEngineOptions options;
  options.catalog_dir = root;
  QueryEngine engine(options);
  obs::Counters::Reset();
  request.no_catalog = true;
  const Response recomputed = engine.Execute(request);
  ASSERT_TRUE(recomputed.ok) << recomputed.error_message;
  EXPECT_GT(obs::Counters::Snapshot().stomp_rows, 0)
      << "no_catalog must skip the artifact lookup";
  EXPECT_EQ(engine.artifact_catalog()->hits(), 0);

  request.no_catalog = false;
  QueryEngineOptions fresh_options;
  fresh_options.catalog_dir = root;
  QueryEngine fresh(fresh_options);
  EXPECT_EQ(NormalizedBody(recomputed),
            NormalizedBody(fresh.Execute(request)));
}

TEST(CatalogE2eTest, EngineWithoutCatalogDirHasNoCatalog) {
  QueryEngine engine;
  EXPECT_EQ(engine.artifact_catalog(), nullptr);
  // And still serves correctly (the compute-only path).
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 61);
  EXPECT_TRUE(engine.Execute(ProfileRequest(series, 16, 20)).ok);
}

}  // namespace
}  // namespace valmod
