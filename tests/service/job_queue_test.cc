#include "service/job_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/status.h"

namespace valmod {
namespace {

Job NoopJob(int priority) {
  Job job;
  job.priority = priority;
  job.run = [](bool) {};
  return job;
}

TEST(JobQueueTest, PushPopRoundTrips) {
  JobQueue queue(4);
  int ran = 0;
  Job job;
  job.run = [&ran](bool) { ++ran; };
  ASSERT_TRUE(queue.Push(std::move(job)).ok());
  EXPECT_EQ(queue.size(), 1);
  Job out;
  ASSERT_TRUE(queue.Pop(&out));
  out.run(false);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(queue.size(), 0);
}

TEST(JobQueueTest, FullQueueReturnsBackpressureNotBlocking) {
  JobQueue queue(2);
  ASSERT_TRUE(queue.Push(NoopJob(kPriorityNormal)).ok());
  ASSERT_TRUE(queue.Push(NoopJob(kPriorityNormal)).ok());
  // The third push must return immediately with the backpressure code —
  // never block, never grow the queue.
  const Status status = queue.Push(NoopJob(kPriorityNormal));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2);
  // Capacity is shared across priority lanes: high priority is not a
  // side-channel around the bound.
  EXPECT_EQ(queue.Push(NoopJob(kPriorityHigh)).code(),
            StatusCode::kResourceExhausted);
}

TEST(JobQueueTest, PopsInPriorityOrderFifoWithinLane) {
  JobQueue queue(8);
  std::vector<int> order;
  auto tagged = [&order](int tag, int priority) {
    Job job;
    job.priority = priority;
    job.run = [&order, tag](bool) { order.push_back(tag); };
    return job;
  };
  ASSERT_TRUE(queue.Push(tagged(1, kPriorityLow)).ok());
  ASSERT_TRUE(queue.Push(tagged(2, kPriorityNormal)).ok());
  ASSERT_TRUE(queue.Push(tagged(3, kPriorityHigh)).ok());
  ASSERT_TRUE(queue.Push(tagged(4, kPriorityHigh)).ok());
  ASSERT_TRUE(queue.Push(tagged(5, kPriorityNormal)).ok());
  for (int i = 0; i < 5; ++i) {
    Job out;
    ASSERT_TRUE(queue.Pop(&out));
    out.run(false);
  }
  EXPECT_EQ(order, (std::vector<int>{3, 4, 2, 5, 1}));
}

TEST(JobQueueTest, CloseRejectsPushesButDrainsPops) {
  JobQueue queue(4);
  ASSERT_TRUE(queue.Push(NoopJob(kPriorityNormal)).ok());
  ASSERT_TRUE(queue.Push(NoopJob(kPriorityLow)).ok());
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.Push(NoopJob(kPriorityNormal)).code(),
            StatusCode::kResourceExhausted);
  // Jobs admitted before Close() are still handed out (graceful drain).
  Job out;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(JobQueueTest, CloseIsIdempotent) {
  JobQueue queue(2);
  queue.Close();
  queue.Close();
  Job out;
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(JobQueueTest, OutOfRangePrioritiesAreClamped) {
  JobQueue queue(4);
  Job low = NoopJob(99);
  Job high = NoopJob(-5);
  ASSERT_TRUE(queue.Push(std::move(low)).ok());
  ASSERT_TRUE(queue.Push(std::move(high)).ok());
  Job out;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.priority, kPriorityHigh);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out.priority, kPriorityLow);
}

TEST(JobQueueTest, CapacityClampedToAtLeastOne) {
  JobQueue queue(0);
  EXPECT_EQ(queue.capacity(), 1);
  ASSERT_TRUE(queue.Push(NoopJob(kPriorityNormal)).ok());
  EXPECT_EQ(queue.Push(NoopJob(kPriorityNormal)).code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace valmod
