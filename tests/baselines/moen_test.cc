#include "baselines/moen.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

// Exactness: MOEN's per-length motif distances equal brute force across
// data characters and seeds.
class MoenExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(MoenExactnessTest, MatchesBruteForcePerLength) {
  const int seed = GetParam();
  const Series s =
      seed % 2 == 0
          ? testing_util::WhiteNoise(300, static_cast<std::uint64_t>(seed))
          : testing_util::WalkWithPlantedMotif(
                300, 24, 40, 200, static_cast<std::uint64_t>(seed));
  const Index len_min = 16;
  const Index len_max = 28;
  const MoenResult result = MoenVariableLength(s, len_min, len_max);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, len_min, len_max);
  ASSERT_EQ(result.motifs.size(), truth.size());
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(result.motifs[k].distance, truth[k].distance,
                1e-6 * (1.0 + truth[k].distance))
        << "len=" << (len_min + static_cast<Index>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoenExactnessTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MoenTest, FirstLengthComputesEveryRow) {
  const Series s = testing_util::WhiteNoise(250, 5);
  const MoenResult result = MoenVariableLength(s, 16, 18);
  ASSERT_FALSE(result.stats.empty());
  EXPECT_EQ(result.stats[0].rows_computed, NumSubsequences(250, 16));
}

TEST(MoenTest, PruningSkipsRowsOnRegularData) {
  // With a strong planted motif, later lengths should prune most rows.
  const Series s = testing_util::WalkWithPlantedMotif(500, 40, 80, 350, 6);
  const MoenResult result = MoenVariableLength(s, 32, 40);
  ASSERT_GE(result.stats.size(), 2u);
  Index pruned_lengths = 0;
  for (std::size_t k = 1; k < result.stats.size(); ++k) {
    if (result.stats[k].rows_computed < result.stats[0].rows_computed) {
      ++pruned_lengths;
    }
  }
  EXPECT_GT(pruned_lengths, 0);
}

TEST(MoenTest, DeadlineFlagsDnf) {
  const Series s = testing_util::WhiteNoise(2000, 7);
  const MoenResult result =
      MoenVariableLength(s, 64, 96, Deadline::After(0.0));
  EXPECT_TRUE(result.dnf);
}

TEST(MoenTest, MotifLengthsAreLabelled) {
  const Series s = testing_util::WhiteNoise(250, 8);
  const MoenResult result = MoenVariableLength(s, 20, 24);
  for (std::size_t k = 0; k < result.motifs.size(); ++k) {
    EXPECT_EQ(result.motifs[k].length, 20 + static_cast<Index>(k));
  }
}

}  // namespace
}  // namespace valmod
