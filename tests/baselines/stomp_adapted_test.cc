#include "baselines/stomp_adapted.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(StompPerLengthTest, MatchesBruteForcePerLength) {
  const Series s = testing_util::WalkWithPlantedMotif(280, 22, 40, 190, 21);
  const PerLengthMotifs sweep = StompPerLength(s, 16, 26);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 16, 26);
  ASSERT_EQ(sweep.motifs.size(), truth.size());
  EXPECT_FALSE(sweep.dnf);
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(sweep.motifs[k].distance, truth[k].distance,
                1e-6 * (1.0 + truth[k].distance));
    EXPECT_EQ(sweep.motifs[k].length, 16 + static_cast<Index>(k));
  }
}

TEST(StompPerLengthTest, SingleLengthRange) {
  const Series s = testing_util::WhiteNoise(200, 22);
  const PerLengthMotifs sweep = StompPerLength(s, 20, 20);
  ASSERT_EQ(sweep.motifs.size(), 1u);
  EXPECT_TRUE(sweep.motifs[0].valid());
}

TEST(StompPerLengthTest, DeadlineFlagsDnfWithPartialResults) {
  const Series s = testing_util::WhiteNoise(2000, 23);
  const PerLengthMotifs sweep =
      StompPerLength(s, 32, 64, Deadline::After(0.0));
  EXPECT_TRUE(sweep.dnf);
  EXPECT_LT(sweep.motifs.size(), 33u);
}

}  // namespace
}  // namespace valmod
