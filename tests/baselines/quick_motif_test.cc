#include "baselines/quick_motif.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

// Exactness across PAA dimensionalities, leaf sizes and data characters.
struct QuickMotifCase {
  int paa;
  int leaf;
  int seed;
  bool noise;
};

class QuickMotifExactnessTest
    : public ::testing::TestWithParam<QuickMotifCase> {};

TEST_P(QuickMotifExactnessTest, MatchesBruteForce) {
  const QuickMotifCase c = GetParam();
  const Series s =
      c.noise ? testing_util::WhiteNoise(300, static_cast<std::uint64_t>(c.seed))
              : testing_util::WalkWithPlantedMotif(
                    300, 24, 40, 200, static_cast<std::uint64_t>(c.seed));
  QuickMotifOptions options;
  options.paa_segments = c.paa;
  options.leaf_capacity = c.leaf;
  const MotifPair fast = QuickMotif(s, 24, options);
  const MotifPair truth = BruteForceMotif(s, 24);
  ASSERT_TRUE(fast.valid());
  EXPECT_NEAR(fast.distance, truth.distance, 1e-6 * (1.0 + truth.distance));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuickMotifExactnessTest,
    ::testing::Values(QuickMotifCase{4, 8, 1, false},
                      QuickMotifCase{8, 32, 2, false},
                      QuickMotifCase{12, 16, 3, false},
                      QuickMotifCase{8, 32, 4, true},
                      QuickMotifCase{6, 64, 5, true},
                      QuickMotifCase{16, 8, 6, false}));

TEST(QuickMotifTest, FindsPlantedMotifLocations) {
  const Series s = testing_util::NoiseWithPlantedMotif(400, 30, 60, 280, 7);
  const MotifPair motif = QuickMotif(s, 30);
  ASSERT_TRUE(motif.valid());
  EXPECT_NEAR(static_cast<double>(motif.a), 60.0, 3.0);
  EXPECT_NEAR(static_cast<double>(motif.b), 280.0, 3.0);
}

TEST(QuickMotifTest, StatsShowPruningActivity) {
  const Series s = testing_util::WalkWithPlantedMotif(400, 30, 60, 280, 8);
  QuickMotifStats stats;
  QuickMotif(s, 30, QuickMotifOptions(), &stats);
  EXPECT_GT(stats.exact_distances, 0);
  EXPECT_GT(stats.node_pairs_visited, 0);
  // Exact distances must be far fewer than the n^2/2 naive pair count on
  // this easy input.
  const Index n_sub = NumSubsequences(400, 30);
  EXPECT_LT(stats.exact_distances, n_sub * n_sub / 4);
}

TEST(QuickMotifTest, PerLengthSweepMatchesBruteForce) {
  const Series s = testing_util::WalkWithPlantedMotif(260, 20, 40, 180, 9);
  const PerLengthMotifs sweep = QuickMotifPerLength(s, 16, 22);
  const std::vector<MotifPair> truth =
      BruteForceVariableLengthMotifs(s, 16, 22);
  ASSERT_EQ(sweep.motifs.size(), truth.size());
  for (std::size_t k = 0; k < truth.size(); ++k) {
    EXPECT_NEAR(sweep.motifs[k].distance, truth[k].distance, 1e-6);
  }
}

TEST(QuickMotifTest, DeadlineFlagsDnf) {
  const Series s = testing_util::WhiteNoise(3000, 10);
  QuickMotifOptions options;
  options.deadline = Deadline::After(0.0);
  bool dnf = false;
  const MotifPair motif = QuickMotif(s, 64, options, nullptr, &dnf);
  EXPECT_TRUE(dnf);
  EXPECT_FALSE(motif.valid());
}

TEST(QuickMotifTest, MotifPairIsNonTrivial) {
  const Series s = testing_util::WhiteNoise(300, 11);
  const MotifPair motif = QuickMotif(s, 20);
  ASSERT_TRUE(motif.valid());
  EXPECT_FALSE(IsTrivialMatch(motif.a, motif.b, 20));
}

}  // namespace
}  // namespace valmod
