#include "baselines/projection.h"

#include <gtest/gtest.h>

#include "mp/brute_force.h"
#include "test_util.h"

namespace valmod {
namespace {

TEST(ProjectionTest, FindsObviousPlantedMotif) {
  const Series s = testing_util::NoiseWithPlantedMotif(400, 32, 60, 280, 1);
  const MotifPair found = ProjectionMotif(s, 32);
  ASSERT_TRUE(found.valid());
  EXPECT_NEAR(static_cast<double>(found.a), 60.0, 3.0);
  EXPECT_NEAR(static_cast<double>(found.b), 280.0, 3.0);
}

TEST(ProjectionTest, NeverBeatsTheExactMotif) {
  // An approximate algorithm returns a real pair distance, so it can only
  // be >= the exact motif distance.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Series s = testing_util::WhiteNoise(300, seed);
    const MotifPair approx = ProjectionMotif(s, 24);
    const MotifPair exact = BruteForceMotif(s, 24);
    ASSERT_TRUE(approx.valid());
    EXPECT_GE(approx.distance + 1e-9, exact.distance) << "seed " << seed;
  }
}

TEST(ProjectionTest, ReturnedPairIsNonTrivialAndConsistent) {
  const Series s = testing_util::WhiteNoise(300, 7);
  const MotifPair found = ProjectionMotif(s, 20);
  ASSERT_TRUE(found.valid());
  EXPECT_FALSE(IsTrivialMatch(found.a, found.b, 20));
  EXPECT_LT(found.a, found.b);
}

TEST(ProjectionTest, DeterministicForSameSeed) {
  const Series s = testing_util::WhiteNoise(300, 8);
  ProjectionOptions options;
  options.seed = 99;
  const MotifPair a = ProjectionMotif(s, 20, options);
  const MotifPair b = ProjectionMotif(s, 20, options);
  EXPECT_EQ(a.a, b.a);
  EXPECT_EQ(a.b, b.b);
}

TEST(ProjectionTest, MoreIterationsNeverHurt) {
  const Series s = testing_util::WhiteNoise(300, 9);
  ProjectionOptions few;
  few.iterations = 1;
  ProjectionOptions many = few;
  many.iterations = 25;
  const MotifPair with_few = ProjectionMotif(s, 20, few);
  const MotifPair with_many = ProjectionMotif(s, 20, many);
  EXPECT_LE(with_many.distance, with_few.distance + 1e-9);
}

TEST(ProjectionTest, StatsCountVerificationWork) {
  const Series s = testing_util::WhiteNoise(300, 10);
  ProjectionStats stats;
  ProjectionMotif(s, 20, ProjectionOptions(), &stats);
  EXPECT_GT(stats.buckets, 0);
  const Index n_sub = NumSubsequences(300, 20);
  // The whole point: vastly fewer exact distances than the n^2/2 of brute
  // force.
  EXPECT_LT(stats.exact_distances, n_sub * n_sub / 8);
}

TEST(ProjectionTest, CanMissTheExactMotifOnHardData) {
  // The approximation gap exists: across seeds on structureless noise, at
  // least one run must miss the exact motif (if this ever starts failing,
  // PROJECTION has become exact and the bench narrative needs revisiting).
  Index misses = 0;
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const Series s = testing_util::WhiteNoise(400, seed);
    ProjectionOptions options;
    options.iterations = 3;
    options.candidates_per_round = 8;
    const MotifPair approx = ProjectionMotif(s, 24, options);
    const MotifPair exact = BruteForceMotif(s, 24);
    if (approx.distance > exact.distance + 1e-6) ++misses;
  }
  EXPECT_GT(misses, 0);
}

}  // namespace
}  // namespace valmod
