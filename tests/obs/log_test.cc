#include "obs/log.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "obs/slow_query.h"
#include "obs/trace.h"

namespace valmod {
namespace {

/// Captures log lines for one test and restores the defaults afterwards.
class CapturedLog {
 public:
  CapturedLog() {
    obs::Log::SetSink([this](const std::string& line) {
      lines_.push_back(line);
    });
  }
  ~CapturedLog() {
    obs::Log::SetSink(nullptr);
    obs::Log::SetMinLevel(obs::LogLevel::kWarn);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogTest, LevelNamesAreLowercase) {
  EXPECT_STREQ(LogLevelName(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelName(obs::LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelName(obs::LogLevel::kWarn), "warn");
  EXPECT_STREQ(LogLevelName(obs::LogLevel::kError), "error");
}

TEST(LogTest, ThresholdFiltersBelowMinLevel) {
  CapturedLog captured;
  obs::Log::SetMinLevel(obs::LogLevel::kInfo);
  obs::LogEvent(obs::LogLevel::kDebug, "too_quiet");
  obs::LogEvent(obs::LogLevel::kInfo, "audible");
  obs::LogEvent(obs::LogLevel::kError, "loud");
  ASSERT_EQ(captured.lines().size(), 2u);
  EXPECT_NE(captured.lines()[0].find("\"event\":\"audible\""),
            std::string::npos);
  EXPECT_NE(captured.lines()[1].find("\"level\":\"error\""),
            std::string::npos);
}

TEST(LogTest, RendersAllFieldTypesAsOneJsonLine) {
  CapturedLog captured;
  obs::LogEvent(obs::LogLevel::kWarn, "kitchen_sink")
      .Str("text", "plain")
      .Int("count", -42)
      .Num("ratio", 0.25)
      .Num("nonfinite", std::numeric_limits<double>::quiet_NaN())
      .Bool("flag", true)
      .Raw("payload", "[1,2]");
  ASSERT_EQ(captured.lines().size(), 1u);
  const std::string& line = captured.lines()[0];
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("{\"level\":\"warn\",\"event\":\"kitchen_sink\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"text\":\"plain\""), std::string::npos);
  EXPECT_NE(line.find("\"count\":-42"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\":0.25"), std::string::npos);
  EXPECT_NE(line.find("\"nonfinite\":null"), std::string::npos) << line;
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos);
  EXPECT_NE(line.find("\"payload\":[1,2]"), std::string::npos);
}

TEST(LogTest, EscapesStringsForJson) {
  CapturedLog captured;
  obs::LogEvent(obs::LogLevel::kError, "escape_check")
      .Str("value", "quote\" backslash\\ newline\n tab\t");
  ASSERT_EQ(captured.lines().size(), 1u);
  const std::string& line = captured.lines()[0];
  EXPECT_NE(line.find("quote\\\" backslash\\\\ newline\\u000a tab\\u0009"),
            std::string::npos)
      << line;
}

TEST(SlowQueryLogTest, ThresholdGatesEmission) {
  CapturedLog captured;
  const obs::SlowQueryLog log(/*threshold_ms=*/10.0);
  EXPECT_FALSE(log.disabled());
  obs::StageRecorder stages;
  stages.Add("queue_wait", 123.0, 1);
  obs::SlowQueryRecord record;
  record.query_type = "motif";
  record.dataset = "PLANTED";
  record.n = 4096;
  record.len_min = 16;
  record.len_max = 24;
  record.elapsed_us = 9000.0;  // 9 ms < 10 ms threshold
  EXPECT_FALSE(log.MaybeLog(record, stages));
  EXPECT_TRUE(captured.lines().empty());

  record.elapsed_us = 11000.0;  // 11 ms > threshold
  EXPECT_TRUE(log.MaybeLog(record, stages));
  ASSERT_EQ(captured.lines().size(), 1u);
  const std::string& line = captured.lines()[0];
  EXPECT_NE(line.find("\"event\":\"slow_query\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"type\":\"motif\""), std::string::npos);
  EXPECT_NE(line.find("\"dataset\":\"PLANTED\""), std::string::npos);
  EXPECT_NE(line.find("\"threshold_ms\":10"), std::string::npos);
  EXPECT_NE(line.find("\"stages\":[{\"stage\":\"queue_wait\""),
            std::string::npos)
      << line;
}

TEST(SlowQueryLogTest, NonPositiveThresholdDisables) {
  CapturedLog captured;
  const obs::SlowQueryLog log(/*threshold_ms=*/0.0);
  EXPECT_TRUE(log.disabled());
  obs::SlowQueryRecord record;
  record.elapsed_us = 1e9;
  EXPECT_FALSE(log.MaybeLog(record, obs::StageRecorder()));
  EXPECT_TRUE(captured.lines().empty());
}

TEST(SlowQueryLogTest, FailedRequestsCarryTheErrorCode) {
  CapturedLog captured;
  const obs::SlowQueryLog log(/*threshold_ms=*/1.0);
  obs::SlowQueryRecord record;
  record.query_type = "profile";
  record.ok = false;
  record.error_code = "DEADLINE_EXCEEDED";
  record.elapsed_us = 5000.0;
  EXPECT_TRUE(log.MaybeLog(record, obs::StageRecorder()));
  ASSERT_EQ(captured.lines().size(), 1u);
  EXPECT_NE(captured.lines()[0].find("\"error_code\":\"DEADLINE_EXCEEDED\""),
            std::string::npos)
      << captured.lines()[0];
}

TEST(SlowQueryLogTest, StagesJsonReportsDroppedOverflow) {
  obs::StageRecorder stages;
  for (std::size_t i = 0; i < obs::StageRecorder::kMaxStages + 3; ++i) {
    stages.Add("repeat_stage", 2.0, 0);
  }
  const std::string json = obs::StagesJson(stages);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("{\"dropped\":3}"), std::string::npos) << json;
}

}  // namespace
}  // namespace valmod
