#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/valmod.h"
#include "obs/chrome_trace.h"
#include "test_util.h"
#include "util/common.h"

namespace valmod {
namespace {

std::vector<std::pair<std::string, int>> NamesAndDepths(
    const std::vector<obs::TraceEvent>& events) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(events.size());
  for (const obs::TraceEvent& event : events) {
    out.emplace_back(event.name, event.depth);
  }
  return out;
}

std::vector<obs::TraceEvent> TraceOneValmodRun(const Series& series) {
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 20;
  options.p = 5;
  obs::TraceSession::Global().Start();
  RunValmod(series, options);
  return obs::TraceSession::Global().StopAndCollect();
}

// Satellite (c): the trace export is deterministic — two identical
// single-threaded runs produce identical span sequences (names, depths,
// thread ids), differing only in timestamps.
TEST(TraceTest, SingleThreadedRunsExportDeterministically) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 21);
  const std::vector<obs::TraceEvent> first = TraceOneValmodRun(series);
  const std::vector<obs::TraceEvent> second = TraceOneValmodRun(series);
  EXPECT_EQ(NamesAndDepths(first), NamesAndDepths(second));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].tid, second[i].tid);
    EXPECT_GE(first[i].dur_ns, 0);
    EXPECT_GE(first[i].start_ns, 0);
  }
#if VALMOD_TRACING_ENABLED
  EXPECT_FALSE(first.empty());
  // The instrumented layers all appear: the algorithm driver, the full
  // profile pass, the kernel chunks, and the per-length sub-MP updates.
  const auto names = NamesAndDepths(first);
  auto contains = [&names](const char* name) {
    for (const auto& [n, depth] : names) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("valmod_run"));
  EXPECT_TRUE(contains("compute_matrix_profile"));
  EXPECT_TRUE(contains("stomp_row_chunk"));
  EXPECT_TRUE(contains("submp_length_update"));
#else
  // Tracing compiled out: sessions always collect zero events.
  EXPECT_TRUE(first.empty());
#endif
}

TEST(TraceTest, InactiveSessionCollectsNothing) {
  {
    const obs::TraceSpan span("orphan_span");
  }
  obs::TraceSession::Global().Start();
#if VALMOD_TRACING_ENABLED
  EXPECT_TRUE(obs::TraceSession::Global().active());
#else
  // The compiled-out stub never reports active.
  EXPECT_FALSE(obs::TraceSession::Global().active());
#endif
  const std::vector<obs::TraceEvent> events =
      obs::TraceSession::Global().StopAndCollect();
  EXPECT_FALSE(obs::TraceSession::Global().active());
  // The span closed before Start(), so nothing was buffered.
  EXPECT_TRUE(events.empty());
  // A second stop without a start is a harmless no-op.
  EXPECT_TRUE(obs::TraceSession::Global().StopAndCollect().empty());
}

#if VALMOD_TRACING_ENABLED

TEST(TraceTest, NestedSpansRecordDepthsInCompletionOrder) {
  obs::TraceSession::Global().Start();
  {
    const obs::TraceSpan outer("outer_span");
    {
      const obs::TraceSpan middle("middle_span");
      const obs::TraceSpan inner("inner_span");
    }
  }
  const std::vector<obs::TraceEvent> events =
      obs::TraceSession::Global().StopAndCollect();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: innermost closes first.
  EXPECT_STREQ(events[0].name, "inner_span");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "middle_span");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer_span");
  EXPECT_EQ(events[2].depth, 0);
  // Containment: the outer span brackets the inner ones.
  EXPECT_LE(events[2].start_ns, events[0].start_ns);
  EXPECT_GE(events[2].start_ns + events[2].dur_ns,
            events[0].start_ns + events[0].dur_ns);
}

TEST(TraceTest, StageSinkCapturesRelativeDepthZeroAndOneOnly) {
  obs::StageRecorder stages;
  {
    // An already-open outer span (as the server's connection_frame would
    // be): the sink's depths are relative to its install point, so this
    // must not shift what gets captured.
    const obs::TraceSpan outer("outer_context_span");
    const obs::ScopedStageSink sink(&stages);
    {
      const obs::TraceSpan stage("stage_span");
      {
        const obs::TraceSpan sub("substage_span");
        const obs::TraceSpan detail("detail_span");  // relative depth 2
      }
    }
  }
  ASSERT_EQ(stages.stages().size(), 2u);
  EXPECT_STREQ(stages.stages()[0].name, "substage_span");
  EXPECT_EQ(stages.stages()[0].depth, 1);
  EXPECT_STREQ(stages.stages()[1].name, "stage_span");
  EXPECT_EQ(stages.stages()[1].depth, 0);
  EXPECT_EQ(stages.dropped(), 0u);
  // The outer span closed after the sink was uninstalled: not captured.
}

TEST(TraceTest, StageSinkNestsAndRestores) {
  obs::StageRecorder outer_stages;
  obs::StageRecorder inner_stages;
  {
    const obs::ScopedStageSink outer_sink(&outer_stages);
    {
      const obs::ScopedStageSink inner_sink(&inner_stages);
      const obs::TraceSpan span("inner_only_span");
    }
    const obs::TraceSpan span("outer_only_span");
  }
  ASSERT_EQ(inner_stages.stages().size(), 1u);
  EXPECT_STREQ(inner_stages.stages()[0].name, "inner_only_span");
  ASSERT_EQ(outer_stages.stages().size(), 1u);
  EXPECT_STREQ(outer_stages.stages()[0].name, "outer_only_span");
}

#else  // !VALMOD_TRACING_ENABLED

// Satellite (c): with -DVALMOD_TRACING=OFF the span type compiles to an
// empty object — zero storage, zero side effects.
static_assert(std::is_empty_v<obs::TraceSpan>,
              "tracing-off TraceSpan must be empty");

TEST(TraceTest, TracingOffSpansAreInvisible) {
  obs::TraceSession::Global().Start();
  {
    const obs::TraceSpan span("invisible_span");
  }
  EXPECT_TRUE(obs::TraceSession::Global().StopAndCollect().empty());
  // Manual stage records still work (the slow-query log's queue_wait).
  obs::StageRecorder stages;
  stages.Add("manual_stage", 12.5, 1);
  ASSERT_EQ(stages.stages().size(), 1u);
  EXPECT_STREQ(stages.stages()[0].name, "manual_stage");
}

#endif  // VALMOD_TRACING_ENABLED

TEST(TraceTest, StageRecorderBoundsAndCountsDrops) {
  obs::StageRecorder stages;
  for (std::size_t i = 0; i < obs::StageRecorder::kMaxStages + 5; ++i) {
    stages.Add("bulk_stage", 1.0, 0);
  }
  EXPECT_EQ(stages.stages().size(), obs::StageRecorder::kMaxStages);
  EXPECT_EQ(stages.dropped(), 5u);
}

TEST(ChromeTraceTest, RendersCompleteEventsWithEscaping) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent event;
  event.name = "alpha_span";
  event.tid = 0;
  event.depth = 0;
  event.start_ns = 1500;   // 1.5 us
  event.dur_ns = 2000000;  // 2 ms
  events.push_back(event);
  event.name = "beta\"evil\nname";  // spans never do this, but JSON must hold
  event.tid = 3;
  event.depth = 2;
  events.push_back(event);
  const std::string json = obs::ChromeTraceJson(events);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"alpha_span\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"depth\":2}"), std::string::npos);
  EXPECT_NE(json.find("beta\\\"evil\\u000aname"), std::string::npos) << json;
  // Empty input still renders a valid document.
  EXPECT_NE(obs::ChromeTraceJson({}).find("\"traceEvents\":[]"),
            std::string::npos);
}

}  // namespace
}  // namespace valmod
