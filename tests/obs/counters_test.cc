#include "obs/counters.h"

#include <gtest/gtest.h>

#include "core/valmod.h"
#include "test_util.h"
#include "util/common.h"

namespace valmod {
namespace {

TEST(CountersTest, RecordersAccumulateAndResetClears) {
  obs::Counters::Reset();
  obs::Counters::RecordFullProfilePass(100, 7);
  obs::Counters::RecordStompChunk(64);
  obs::Counters::RecordStompChunk(36);
  obs::Counters::RecordValmodFallback();
  obs::Counters::RecordSubMpLength(/*certified=*/30, /*recomputed=*/5,
                                   /*uncertified=*/65,
                                   /*motif_certified=*/true,
                                   /*heap_updates=*/11,
                                   /*tightness_ratio=*/0.5);
  const obs::CountersSnapshot s = obs::Counters::Snapshot();
  EXPECT_EQ(s.mp_profiles_full_stomp, 100);
  EXPECT_EQ(s.listdp_heap_updates, 18);  // 7 from the pass + 11 from subMP
  EXPECT_EQ(s.stomp_chunks, 2);
  EXPECT_EQ(s.stomp_rows, 100);
  EXPECT_EQ(s.valmod_full_fallbacks, 1);
  EXPECT_EQ(s.submp_profiles_certified, 30);
  EXPECT_EQ(s.submp_profiles_recomputed, 5);
  EXPECT_EQ(s.submp_profiles_uncertified, 65);
  EXPECT_EQ(s.submp_lengths_certified, 1);
  EXPECT_EQ(s.submp_lengths_total, 1);
  EXPECT_EQ(s.lb_tightness_samples, 1);
  EXPECT_EQ(s.lb_tightness_ppm_sum, 500000);
  EXPECT_DOUBLE_EQ(s.MeanLbTightness(), 0.5);

  obs::Counters::Reset();
  const obs::CountersSnapshot zero = obs::Counters::Snapshot();
  EXPECT_EQ(zero.mp_profiles_full_stomp, 0);
  EXPECT_EQ(zero.submp_lengths_total, 0);
  EXPECT_EQ(zero.lb_tightness_samples, 0);
  EXPECT_DOUBLE_EQ(zero.MeanLbTightness(), 0.0);
}

TEST(CountersTest, NegativeTightnessRatioSkipsTheSample) {
  obs::Counters::Reset();
  obs::Counters::RecordSubMpLength(1, 0, 0, false, 0, /*tightness_ratio=*/-1.0);
  const obs::CountersSnapshot s = obs::Counters::Snapshot();
  EXPECT_EQ(s.submp_lengths_total, 1);
  EXPECT_EQ(s.submp_lengths_certified, 0);
  EXPECT_EQ(s.lb_tightness_samples, 0);
  EXPECT_DOUBLE_EQ(s.MeanLbTightness(), 0.0);
}

// The tentpole conservation law: what the process-wide counters record for
// one RunValmod call must match the per-length bookkeeping the library
// returns — certified-from-bounds plus selectively-salvaged profiles is
// exactly the valid_count sum, full-pass profile counts match the fallback
// lengths, and heap updates agree entry for entry.
TEST(CountersTest, ValmodRunMatchesLengthStatsExactly) {
  const Series series =
      testing_util::NoiseWithPlantedMotif(512, 24, 60, 300, 21);
  ValmodOptions options;
  options.len_min = 16;
  options.len_max = 24;
  options.p = 5;

  obs::Counters::Reset();
  const ValmodResult result = RunValmod(series, options);
  const obs::CountersSnapshot s = obs::Counters::Snapshot();
  ASSERT_FALSE(result.dnf);

  std::int64_t full_profiles = 0;
  std::int64_t submp_valid = 0;
  std::int64_t heap_updates = 0;
  std::int64_t fallbacks = 0;
  for (const LengthStats& ls : result.length_stats) {
    heap_updates += ls.heap_updates;
    if (ls.used_full_recompute) {
      full_profiles += ls.n_profiles;
      if (ls.length != options.len_min) ++fallbacks;
    } else {
      submp_valid += ls.valid_count;
    }
  }

  EXPECT_EQ(s.mp_profiles_full_stomp, full_profiles);
  EXPECT_EQ(s.stomp_rows, full_profiles);
  EXPECT_EQ(s.listdp_heap_updates, heap_updates);
  EXPECT_EQ(s.valmod_full_fallbacks, fallbacks);
  EXPECT_EQ(s.submp_lengths_total,
            static_cast<std::int64_t>(result.length_stats.size()) - 1);
  if (fallbacks == 0) {
    EXPECT_EQ(s.submp_profiles_certified + s.submp_profiles_recomputed,
              submp_valid);
  } else {
    // Fallback lengths record their (discarded) subMP attempt too, so the
    // counters can only exceed the struct sum.
    EXPECT_GE(s.submp_profiles_certified + s.submp_profiles_recomputed,
              submp_valid);
  }
  // Lengths whose motif certified without a fallback are exactly the
  // non-fallback sub-MP lengths.
  EXPECT_EQ(s.submp_lengths_certified, s.submp_lengths_total - fallbacks);
}

}  // namespace
}  // namespace valmod
