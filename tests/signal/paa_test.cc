#include "signal/paa.h"

#include <cmath>

#include <gtest/gtest.h>

#include "signal/znorm.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(PaaTest, DivisibleLengthSegmentMeans) {
  const std::vector<double> values = {1.0, 3.0, 5.0, 7.0, 2.0, 4.0};
  const std::vector<double> paa = Paa(values, 3);
  ASSERT_EQ(paa.size(), 3u);
  EXPECT_DOUBLE_EQ(paa[0], 2.0);
  EXPECT_DOUBLE_EQ(paa[1], 6.0);
  EXPECT_DOUBLE_EQ(paa[2], 3.0);
}

TEST(PaaTest, OneSegmentIsGlobalMean) {
  const std::vector<double> values = {2.0, 4.0, 9.0};
  const std::vector<double> paa = Paa(values, 1);
  ASSERT_EQ(paa.size(), 1u);
  EXPECT_DOUBLE_EQ(paa[0], 5.0);
}

TEST(PaaTest, SegmentsEqualLengthIsIdentity) {
  const std::vector<double> values = {1.0, -2.0, 3.5};
  const std::vector<double> paa = Paa(values, 3);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(paa[i], values[i]);
}

TEST(PaaTest, NonDivisibleLengthPreservesTotalMass) {
  // Weighted PAA: sum of segment means * segment width == sum of values.
  Rng rng(8);
  std::vector<double> values(10);
  for (auto& v : values) v = rng.Gaussian();
  const std::vector<double> paa = Paa(values, 3);
  double mass = 0.0;
  for (double m : paa) mass += m * (10.0 / 3.0);
  double expected = 0.0;
  for (double v : values) expected += v;
  EXPECT_NEAR(mass, expected, 1e-10);
}

TEST(PaaTest, ConstantInputGivesConstantSummary) {
  const std::vector<double> values(17, 4.5);
  for (const double m : Paa(values, 5)) EXPECT_NEAR(m, 4.5, 1e-12);
}

// Property: the PAA lower bound never exceeds the true Euclidean distance
// (the pruning-correctness invariant QUICK MOTIF relies on).
class PaaLowerBoundPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PaaLowerBoundPropertyTest, LowerBoundsTrueDistance) {
  const int segments = GetParam();
  Rng rng(static_cast<std::uint64_t>(segments) * 31);
  const Index len = 96;  // Divisible and non-divisible by several params.
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> a(static_cast<std::size_t>(len));
    std::vector<double> b(static_cast<std::size_t>(len));
    for (auto& v : a) v = rng.Gaussian();
    for (auto& v : b) v = rng.Gaussian();
    const double truth = EuclideanDistance(a, b);
    const double lb =
        PaaLowerBound(Paa(a, segments), Paa(b, segments), len);
    EXPECT_LE(lb, truth + 1e-9) << "segments=" << segments;
  }
}

INSTANTIATE_TEST_SUITE_P(SegmentCounts, PaaLowerBoundPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 12, 96));

TEST(PaaLowerBoundTest, TightWhenSegmentsEqualLength) {
  Rng rng(12);
  const Index len = 32;
  std::vector<double> a(32);
  std::vector<double> b(32);
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const double truth = EuclideanDistance(a, b);
  const double lb = PaaLowerBound(Paa(a, len), Paa(b, len), len);
  EXPECT_NEAR(lb, truth, 1e-10);
}

}  // namespace
}  // namespace valmod
