#include "signal/fft.h"

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "util/random.h"

namespace valmod {
namespace {

TEST(FftTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(1023), 1024);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048);
}

TEST(FftTest, ForwardOfImpulseIsFlat) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  Fft(data, /*inverse=*/false);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, ForwardOfConstantIsImpulse) {
  std::vector<std::complex<double>> data(16, {1.0, 0.0});
  Fft(data, /*inverse=*/false);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < data.size(); ++k) {
    EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
  }
}

TEST(FftTest, RoundTripRecoversInput) {
  Rng rng(5);
  std::vector<std::complex<double>> data(256);
  std::vector<std::complex<double>> original(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {rng.Gaussian(), rng.Gaussian()};
    original[i] = data[i];
  }
  Fft(data, false);
  Fft(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(FftTest, ParsevalEnergyConservation) {
  Rng rng(6);
  const std::size_t n = 128;
  std::vector<std::complex<double>> data(n);
  double time_energy = 0.0;
  for (auto& x : data) {
    x = {rng.Gaussian(), 0.0};
    time_energy += std::norm(x);
  }
  Fft(data, false);
  double freq_energy = 0.0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8);
}

TEST(FftConvolveTest, SmallKnownConvolution) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, 5.0};
  const std::vector<double> c = FftConvolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_NEAR(c[0], 4.0, 1e-10);
  EXPECT_NEAR(c[1], 13.0, 1e-10);
  EXPECT_NEAR(c[2], 22.0, 1e-10);
  EXPECT_NEAR(c[3], 15.0, 1e-10);
}

// Property: FFT convolution equals the direct O(n^2) convolution for random
// inputs of awkward (non-power-of-two) sizes.
class FftConvolvePropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FftConvolvePropertyTest, MatchesDirectConvolution) {
  const auto [na, nb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(na * 1000 + nb));
  std::vector<double> a(static_cast<std::size_t>(na));
  std::vector<double> b(static_cast<std::size_t>(nb));
  for (auto& v : a) v = rng.Gaussian();
  for (auto& v : b) v = rng.Gaussian();
  const std::vector<double> fast = FftConvolve(a, b);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double direct = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (k >= i && k - i < b.size()) direct += a[i] * b[k - i];
    }
    EXPECT_NEAR(fast[k], direct, 1e-8) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FftConvolvePropertyTest,
    ::testing::Values(std::pair{1, 1}, std::pair{7, 5}, std::pair{33, 100},
                      std::pair{100, 33}, std::pair{255, 257}));

}  // namespace
}  // namespace valmod
