#include "signal/resample.h"

#include <cmath>

#include <gtest/gtest.h>

namespace valmod {
namespace {

TEST(ResampleTest, PreservesEndpoints) {
  const std::vector<double> values = {3.0, 7.0, 1.0, 9.0};
  for (Index target : {2, 3, 7, 100}) {
    const std::vector<double> out = ResampleLinear(values, target);
    ASSERT_EQ(static_cast<Index>(out.size()), target);
    EXPECT_DOUBLE_EQ(out.front(), 3.0);
    EXPECT_DOUBLE_EQ(out.back(), 9.0);
  }
}

TEST(ResampleTest, IdentityWhenTargetEqualsInput) {
  const std::vector<double> values = {1.0, 2.0, 4.0, 8.0};
  const std::vector<double> out = ResampleLinear(values, 4);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(out[i], values[i], 1e-12);
  }
}

TEST(ResampleTest, UpsamplingLinearRampStaysLinear) {
  std::vector<double> ramp(10);
  for (std::size_t i = 0; i < 10; ++i) ramp[i] = static_cast<double>(i);
  const std::vector<double> out = ResampleLinear(ramp, 19);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], static_cast<double>(i) * 0.5, 1e-12);
  }
}

TEST(ResampleTest, DownsamplingSineKeepsShape) {
  std::vector<double> sine(1000);
  for (std::size_t i = 0; i < sine.size(); ++i) {
    sine[i] = std::sin(2.0 * M_PI * static_cast<double>(i) / 1000.0);
  }
  const std::vector<double> out = ResampleLinear(sine, 100);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double expected =
        std::sin(2.0 * M_PI * static_cast<double>(i) / 99.0 * (999.0 / 1000.0));
    EXPECT_NEAR(out[i], expected, 0.01);
  }
}

TEST(ResampleTest, ConstantInputStaysConstant) {
  const std::vector<double> values(7, 2.5);
  for (const double v : ResampleLinear(values, 23)) {
    EXPECT_DOUBLE_EQ(v, 2.5);
  }
}

}  // namespace
}  // namespace valmod
