#include "signal/distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "signal/znorm.h"
#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(CorrelationTest, PerfectlyCorrelatedWindows) {
  // b = 2a + 1: correlation 1 after normalization.
  const Series s = {1.0, 2.0, 3.0, 4.0, /*b:*/ 3.0, 5.0, 7.0, 9.0};
  const PrefixStats stats(s);
  const double qt = SubsequenceDotProduct(s, 0, 4, 4);
  const double corr =
      CorrelationFromDotProduct(qt, 4, stats.Stats(0, 4), stats.Stats(4, 4));
  EXPECT_NEAR(corr, 1.0, 1e-12);
}

TEST(CorrelationTest, AntiCorrelatedWindows) {
  const Series s = {1.0, 2.0, 3.0, 4.0, /*b:*/ 4.0, 3.0, 2.0, 1.0};
  const PrefixStats stats(s);
  const double qt = SubsequenceDotProduct(s, 0, 4, 4);
  const double corr =
      CorrelationFromDotProduct(qt, 4, stats.Stats(0, 4), stats.Stats(4, 4));
  EXPECT_NEAR(corr, -1.0, 1e-12);
}

TEST(CorrelationTest, ClampedIntoValidRange) {
  // Degenerate numerics must never escape [-1, 1].
  Rng rng(7);
  Series s(256);
  for (auto& v : s) v = 1e6 + 1e-4 * rng.Gaussian();
  const PrefixStats stats(s);
  for (Index i = 0; i + 16 <= 240; i += 16) {
    const double qt = SubsequenceDotProduct(s, 0, i, 16);
    const double corr = CorrelationFromDotProduct(qt, 16, stats.Stats(0, 16),
                                                  stats.Stats(i, 16));
    EXPECT_GE(corr, -1.0);
    EXPECT_LE(corr, 1.0);
  }
}

TEST(DistanceCorrelationTest, RoundTrip) {
  for (double corr : {-1.0, -0.5, 0.0, 0.3, 0.99, 1.0}) {
    const double d = DistanceFromCorrelation(corr, 64);
    EXPECT_NEAR(CorrelationFromDistance(d, 64), corr, 1e-12);
  }
}

TEST(DistanceTest, PerfectCorrelationGivesZeroDistance) {
  EXPECT_DOUBLE_EQ(DistanceFromCorrelation(1.0, 128), 0.0);
}

TEST(DistanceTest, AntiCorrelationGivesMaximalDistance) {
  EXPECT_DOUBLE_EQ(DistanceFromCorrelation(-1.0, 128),
                   std::sqrt(4.0 * 128.0));
}

// Property: the O(1) Eq. 3 distance equals the direct z-normalize-and-
// subtract distance on random pairs, for multiple subsequence lengths.
class Eq3PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Eq3PropertyTest, MatchesDirectZNormDistance) {
  const Index len = GetParam();
  const Series s = testing_util::WalkWithPlantedMotif(800, 40, 100, 600, 11);
  const PrefixStats stats(s);
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const Index i = rng.UniformIndex(0, 800 - len);
    const Index j = rng.UniformIndex(0, 800 - len);
    const double fast = SubsequenceDistance(s, stats, i, j, len);
    const std::vector<double> za = ZNormalizeSubsequence(s, i, len);
    const std::vector<double> zb = ZNormalizeSubsequence(s, j, len);
    const double slow = EuclideanDistance(za, zb);
    EXPECT_NEAR(fast, slow, 1e-6 * (1.0 + slow)) << "i=" << i << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, Eq3PropertyTest,
                         ::testing::Values(8, 16, 50, 128, 333));

TEST(DistanceTest, FlatVsFlatWindowsAreIdentical) {
  Series s(64, 5.0);
  const PrefixStats stats(s);
  EXPECT_DOUBLE_EQ(SubsequenceDistance(s, stats, 0, 32, 16), 0.0);
}

TEST(DistanceTest, FlatVsStructuredWindowDistanceIsSqrtLen) {
  Series s(64, 0.0);
  for (Index i = 32; i < 64; ++i) {
    s[static_cast<std::size_t>(i)] = std::sin(0.7 * static_cast<double>(i));
  }
  const PrefixStats stats(s);
  // Flat window z-normalizes to zeros; distance to a unit-variance window
  // of length l is sqrt(l).
  EXPECT_NEAR(SubsequenceDistance(s, stats, 0, 40, 16), std::sqrt(16.0), 1e-9);
}

}  // namespace
}  // namespace valmod
