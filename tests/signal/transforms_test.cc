#include "signal/transforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/prefix_stats.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(MovingAverageTest, WindowOneIsIdentity) {
  const Series s = {1.0, -2.0, 3.0};
  EXPECT_EQ(MovingAverage(s, 1), s);
}

TEST(MovingAverageTest, InteriorValuesAreWindowMeans) {
  const Series s = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Series out = MovingAverage(s, 3);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
  EXPECT_DOUBLE_EQ(out[3], 4.0);
}

TEST(MovingAverageTest, EdgesUseTruncatedWindows) {
  const Series s = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Series out = MovingAverage(s, 3);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // Mean of {1, 2}.
  EXPECT_DOUBLE_EQ(out[4], 4.5);  // Mean of {4, 5}.
}

TEST(MovingAverageTest, SlidingSumMatchesNaiveOnRandomData) {
  Rng rng(1);
  Series s(200);
  for (auto& v : s) v = rng.Gaussian();
  for (const Index window : {2, 5, 16, 200, 500}) {
    const Series fast = MovingAverage(s, window);
    for (Index i = 0; i < 200; ++i) {
      const Index lo = std::max<Index>(0, i - (window - 1) / 2);
      const Index hi = std::min<Index>(199, i + window / 2);
      double acc = 0.0;
      for (Index k = lo; k <= hi; ++k) acc += s[static_cast<std::size_t>(k)];
      EXPECT_NEAR(fast[static_cast<std::size_t>(i)],
                  acc / static_cast<double>(hi - lo + 1), 1e-9)
          << "window=" << window << " i=" << i;
    }
  }
}

TEST(MovingAverageTest, SmoothsNoise) {
  Rng rng(2);
  Series s(5000);
  for (auto& v : s) v = rng.Gaussian();
  const Series smooth = MovingAverage(s, 21);
  const MeanStd raw = ExactMeanStd(s, 0, 5000);
  const MeanStd sm = ExactMeanStd(smooth, 0, 5000);
  EXPECT_LT(sm.std, 0.4 * raw.std);
}

TEST(DetrendLinearTest, RemovesExactLine) {
  Series s(50);
  for (Index i = 0; i < 50; ++i) {
    s[static_cast<std::size_t>(i)] = 3.0 + 0.5 * static_cast<double>(i);
  }
  for (const double v : DetrendLinear(s)) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(DetrendLinearTest, ConstantSeriesDetrendsToZero) {
  const Series s(10, 7.0);
  for (const double v : DetrendLinear(s)) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(DetrendLinearTest, PreservesResidualStructure) {
  // Sine + line: detrending keeps the sine (up to small leakage).
  Series s(400);
  for (Index i = 0; i < 400; ++i) {
    const double t = static_cast<double>(i);
    s[static_cast<std::size_t>(i)] = 2.0 * t + 5.0 * std::sin(0.3 * t);
  }
  const Series out = DetrendLinear(s);
  const MeanStd ms = ExactMeanStd(out, 0, 400);
  EXPECT_NEAR(ms.std, 5.0 / std::sqrt(2.0), 0.4);
}

TEST(DetrendLinearTest, SingleSampleReturnsZero) {
  const Series s = {42.0};
  const Series out = DetrendLinear(s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(DownsampleTest, FactorOneIsIdentity) {
  const Series s = {1.0, 2.0, 3.0};
  EXPECT_EQ(Downsample(s, 1), s);
}

TEST(DownsampleTest, KeepsEveryKthSample) {
  const Series s = {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const Series out = Downsample(s, 3);
  const Series expected = {0.0, 3.0, 6.0};
  EXPECT_EQ(out, expected);
}

TEST(AddGaussianNoiseTest, ZeroSigmaIsIdentity) {
  const Series s = {1.0, 2.0, 3.0};
  EXPECT_EQ(AddGaussianNoise(s, 0.0, 9), s);
}

TEST(AddGaussianNoiseTest, NoiseHasRequestedScale) {
  const Series s(50000, 0.0);
  const Series noisy = AddGaussianNoise(s, 2.5, 10);
  const MeanStd ms = ExactMeanStd(noisy, 0, 50000);
  EXPECT_NEAR(ms.std, 2.5, 0.05);
  EXPECT_NEAR(ms.mean, 0.0, 0.05);
}

TEST(AddGaussianNoiseTest, Deterministic) {
  const Series s(100, 1.0);
  EXPECT_EQ(AddGaussianNoise(s, 1.0, 11), AddGaussianNoise(s, 1.0, 11));
  EXPECT_NE(AddGaussianNoise(s, 1.0, 11), AddGaussianNoise(s, 1.0, 12));
}

TEST(DifferenceTest, FirstDifferences) {
  const Series s = {1.0, 4.0, 2.0, 2.0};
  const Series out = Difference(s);
  const Series expected = {3.0, -2.0, 0.0};
  EXPECT_EQ(out, expected);
}

TEST(DifferenceTest, WalkDifferencesAreIncrements) {
  Rng rng(13);
  Series walk(100);
  double level = 0.0;
  Series increments;
  for (auto& v : walk) {
    const double step = rng.Gaussian();
    increments.push_back(step);
    level += step;
    v = level;
  }
  const Series out = Difference(walk);
  for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
    EXPECT_NEAR(out[i], increments[i + 1], 1e-12);
  }
}

}  // namespace
}  // namespace valmod
