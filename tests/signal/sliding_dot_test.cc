#include "signal/sliding_dot.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(SlidingDotTest, TinyKnownCase) {
  const std::vector<double> series = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> query = {1.0, 1.0};
  const std::vector<double> out = SlidingDotProductNaive(query, series);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
  EXPECT_DOUBLE_EQ(out[2], 7.0);
}

TEST(SlidingDotTest, QueryEqualsSeriesIsSelfDot) {
  const std::vector<double> series = {1.0, -2.0, 0.5};
  const std::vector<double> out = SlidingDotProductNaive(series, series);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 1.0 + 4.0 + 0.25);
}

// Property: the FFT path agrees with the naive path for query lengths on
// both sides of the internal cutoff.
class SlidingDotPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SlidingDotPropertyTest, FftMatchesNaive) {
  const Index m = GetParam();
  Rng rng(static_cast<std::uint64_t>(m));
  std::vector<double> series(1000);
  for (auto& v : series) v = rng.Gaussian();
  const std::vector<double> query(series.begin() + 100,
                                  series.begin() + 100 + m);
  const std::vector<double> fast = SlidingDotProduct(query, series);
  const std::vector<double> slow = SlidingDotProductNaive(query, series);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t j = 0; j < fast.size(); ++j) {
    EXPECT_NEAR(fast[j], slow[j], 1e-6) << "j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(QueryLengths, SlidingDotPropertyTest,
                         ::testing::Values(2, 8, 31, 32, 33, 64, 100, 500));

TEST(SlidingDotTest, OutputSizeIsNMinusMPlusOne) {
  const std::vector<double> series(100, 1.0);
  const std::vector<double> query(40, 1.0);
  EXPECT_EQ(SlidingDotProduct(query, series).size(), 61u);
}

TEST(SlidingDotTest, WorksOnStructuredSeries) {
  const Series series = testing_util::WalkWithPlantedMotif(600, 30, 50, 400, 9);
  const std::vector<double> query(series.begin() + 50, series.begin() + 110);
  const std::vector<double> fast = SlidingDotProduct(query, series);
  const std::vector<double> slow = SlidingDotProductNaive(query, series);
  for (std::size_t j = 0; j < fast.size(); ++j) {
    EXPECT_NEAR(fast[j], slow[j], 1e-5 * (1.0 + std::abs(slow[j])));
  }
}

}  // namespace
}  // namespace valmod
