#include "signal/znorm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/prefix_stats.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(ZNormalizeTest, OutputHasZeroMeanUnitStd) {
  Rng rng(3);
  std::vector<double> values(100);
  for (auto& v : values) v = rng.Uniform(-5.0, 20.0);
  const std::vector<double> z = ZNormalize(values);
  const MeanStd ms = ExactMeanStd(z, 0, 100);
  EXPECT_NEAR(ms.mean, 0.0, 1e-12);
  EXPECT_NEAR(ms.std, 1.0, 1e-12);
}

TEST(ZNormalizeTest, ConstantInputMapsToZeros) {
  const std::vector<double> values(10, 42.0);
  const std::vector<double> z = ZNormalize(values);
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ZNormalizeTest, InvariantToAffineTransform) {
  Rng rng(4);
  std::vector<double> values(64);
  for (auto& v : values) v = rng.Gaussian();
  std::vector<double> shifted(64);
  for (std::size_t i = 0; i < 64; ++i) shifted[i] = 3.0 * values[i] + 17.0;
  const std::vector<double> za = ZNormalize(values);
  const std::vector<double> zb = ZNormalize(shifted);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_NEAR(za[i], zb[i], 1e-10);
}

TEST(ZNormalizeSubsequenceTest, MatchesManualSlice) {
  Rng rng(5);
  std::vector<double> series(50);
  for (auto& v : series) v = rng.Gaussian();
  const std::vector<double> direct = ZNormalizeSubsequence(series, 10, 20);
  const std::vector<double> slice(series.begin() + 10, series.begin() + 30);
  const std::vector<double> expected = ZNormalize(slice);
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(direct[i], expected[i]);
  }
}

TEST(EuclideanDistanceTest, KnownValues) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), 5.0);
}

TEST(EuclideanDistanceTest, IdenticalVectorsHaveZeroDistance) {
  const std::vector<double> a = {1.5, -2.0, 0.25};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, a), 0.0);
}

TEST(ZNormalizedDistanceDirectTest, ScaleAndOffsetInvariant) {
  Rng rng(6);
  std::vector<double> a(40);
  for (auto& v : a) v = rng.Gaussian();
  std::vector<double> b(40);
  for (std::size_t i = 0; i < 40; ++i) b[i] = -2.0 * a[i] + 100.0;
  // Negative scaling flips the sign of z-values: distance is maximal; use
  // positive scaling for the invariance check.
  std::vector<double> c(40);
  for (std::size_t i = 0; i < 40; ++i) c[i] = 5.0 * a[i] - 3.0;
  EXPECT_NEAR(ZNormalizedDistanceDirect(a, c), 0.0, 1e-10);
  EXPECT_GT(ZNormalizedDistanceDirect(a, b), 1.0);
}

TEST(LengthNormalizeTest, Formula) {
  EXPECT_DOUBLE_EQ(LengthNormalize(10.0, 4), 5.0);
  EXPECT_DOUBLE_EQ(LengthNormalize(0.0, 100), 0.0);
}

TEST(CenterSeriesTest, ResultHasZeroMean) {
  Rng rng(8);
  Series s(1000);
  for (auto& v : s) v = rng.Uniform(50.0, 150.0);
  const Series centered = CenterSeries(s);
  const MeanStd ms = ExactMeanStd(centered, 0, 1000);
  EXPECT_NEAR(ms.mean, 0.0, 1e-9);
}

TEST(CenterSeriesTest, PreservesShape) {
  const Series s = {1.0, 5.0, 3.0};
  const Series centered = CenterSeries(s);
  EXPECT_DOUBLE_EQ(centered[1] - centered[0], 4.0);
  EXPECT_DOUBLE_EQ(centered[2] - centered[1], -2.0);
}

TEST(CenterSeriesTest, ZNormDistancesInvariantToCentering) {
  Rng rng(9);
  Series s(200);
  for (auto& v : s) v = 1000.0 + rng.Gaussian();
  const Series centered = CenterSeries(s);
  const auto a_raw = std::span<const double>(s).subspan(10, 32);
  const auto b_raw = std::span<const double>(s).subspan(120, 32);
  const auto a_c = std::span<const double>(centered).subspan(10, 32);
  const auto b_c = std::span<const double>(centered).subspan(120, 32);
  EXPECT_NEAR(ZNormalizedDistanceDirect(a_raw, b_raw),
              ZNormalizedDistanceDirect(a_c, b_c), 1e-9);
}

TEST(LengthNormalizeTest, EqualZDistancesRankLongerFirst) {
  // Two pairs at the same straight distance: the longer pair must get the
  // smaller normalized distance (the sqrt(1/l) correction favours longer
  // matches; Section 3).
  const double d = 7.0;
  EXPECT_LT(LengthNormalize(d, 200), LengthNormalize(d, 100));
}

}  // namespace
}  // namespace valmod
