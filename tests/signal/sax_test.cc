#include "signal/sax.h"

#include <cmath>

#include <gtest/gtest.h>

#include "signal/znorm.h"
#include "test_util.h"
#include "util/random.h"

namespace valmod {
namespace {

TEST(SaxBreakpointsTest, CorrectCountAndAscending) {
  for (Index a = 2; a <= 10; ++a) {
    const auto cuts = SaxBreakpoints(a);
    ASSERT_EQ(static_cast<Index>(cuts.size()), a - 1) << "alphabet " << a;
    for (std::size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_GT(cuts[i], cuts[i - 1]);
    }
  }
}

TEST(SaxBreakpointsTest, SymmetricAroundZero) {
  for (Index a = 2; a <= 10; ++a) {
    const auto cuts = SaxBreakpoints(a);
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      EXPECT_NEAR(cuts[i], -cuts[cuts.size() - 1 - i], 1e-9);
    }
  }
}

TEST(SaxWordTest, WordLengthAndSymbolRange) {
  Rng rng(1);
  std::vector<double> window(64);
  for (auto& v : window) v = rng.Gaussian();
  SaxParams params;
  params.word_len = 8;
  params.alphabet = 5;
  const auto word = SaxWord(window, params);
  ASSERT_EQ(word.size(), 8u);
  for (const std::uint8_t s : word) EXPECT_LT(s, 5);
}

TEST(SaxWordTest, RampMapsToAscendingSymbols) {
  std::vector<double> ramp(64);
  for (std::size_t i = 0; i < 64; ++i) ramp[i] = static_cast<double>(i);
  SaxParams params;
  params.word_len = 4;
  params.alphabet = 4;
  const auto word = SaxWord(ramp, params);
  for (std::size_t s = 1; s < word.size(); ++s) {
    EXPECT_GE(word[s], word[s - 1]);
  }
  EXPECT_EQ(word.front(), 0);
  EXPECT_EQ(word.back(), 3);
}

TEST(SaxWordTest, ScaleAndOffsetInvariant) {
  Rng rng(2);
  std::vector<double> a(48);
  for (auto& v : a) v = rng.Gaussian();
  std::vector<double> b(48);
  for (std::size_t i = 0; i < 48; ++i) b[i] = 7.0 * a[i] + 100.0;
  SaxParams params;
  EXPECT_EQ(SaxWord(a, params), SaxWord(b, params));
}

TEST(SaxWordTest, SymbolFrequenciesAreRoughlyEquiprobable) {
  // Over many Gaussian windows, each symbol should appear ~1/alphabet of
  // the time (the breakpoints are the N(0,1) quantiles).
  Rng rng(3);
  SaxParams params;
  params.word_len = 1;  // One segment == the window mean, re-normalized.
  params.alphabet = 4;
  std::vector<Index> counts(4, 0);
  // Use word_len 8 over longer windows instead: segment means of a
  // z-normalized white-noise window are approximately N(0, 1/seg_len)...
  // so use direct symbol counting on z-scores via alphabet cuts instead.
  params.word_len = 8;
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<double> window(16);
    for (auto& v : window) v = rng.Gaussian();
    const auto word = SaxWord(window, params);
    for (const std::uint8_t s : word) ++counts[s];
  }
  // Middle symbols occur more often for PAA-smoothed segments; just check
  // every symbol occurs and the distribution is not degenerate.
  for (Index c = 0; c < 4; ++c) {
    EXPECT_GT(counts[static_cast<std::size_t>(c)], 0) << "symbol " << c;
  }
}

TEST(SaxMinDistTest, IdenticalWordsHaveZeroDistance) {
  SaxParams params;
  const std::vector<std::uint8_t> w = {0, 1, 2, 3, 3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(SaxMinDist(w, w, 64, params), 0.0);
}

TEST(SaxMinDistTest, AdjacentSymbolsHaveZeroGap) {
  SaxParams params;
  const std::vector<std::uint8_t> a = {0, 1, 2, 3, 0, 1, 2, 3};
  const std::vector<std::uint8_t> b = {1, 2, 3, 2, 1, 0, 1, 2};
  EXPECT_DOUBLE_EQ(SaxMinDist(a, b, 64, params), 0.0);
}

TEST(SaxMinDistTest, LowerBoundsTrueZNormDistance) {
  // The defining property: MINDIST(SAX(a), SAX(b)) <= ED(z(a), z(b)).
  Rng rng(4);
  SaxParams params;
  params.word_len = 8;
  params.alphabet = 6;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a(64);
    std::vector<double> b(64);
    for (auto& v : a) v = rng.Gaussian();
    for (auto& v : b) v = rng.Gaussian();
    const double truth = ZNormalizedDistanceDirect(a, b);
    const double lb =
        SaxMinDist(SaxWord(a, params), SaxWord(b, params), 64, params);
    EXPECT_LE(lb, truth + 1e-9) << "trial " << trial;
  }
}

}  // namespace
}  // namespace valmod
