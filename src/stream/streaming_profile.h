#ifndef VALMOD_STREAM_STREAMING_PROFILE_H_
#define VALMOD_STREAM_STREAMING_PROFILE_H_

#include <span>
#include <vector>

#include "mp/matrix_profile.h"
#include "stream/streaming_series.h"
#include "util/common.h"
#include "util/prefix_stats.h"
#include "util/status.h"

namespace valmod {

/// Configuration of a StreamingMatrixProfile.
struct StreamingProfileOptions {
  /// Subsequence (motif) length the profile is maintained for. Required,
  /// >= 2.
  Index subsequence_length = 0;
  /// Sliding-window capacity in points (0 = unbounded). When positive it
  /// must be at least 2 * subsequence_length, so the window always holds
  /// non-trivially-matching pairs.
  Index capacity = 0;
  /// Forwarded to the underlying StreamingSeries drift policy.
  Index stats_recompute_interval = 1 << 15;
};

/// Serializable state of a StreamingMatrixProfile, produced by
/// TakeSnapshot() and consumed by FromSnapshot() — the unit of the
/// checkpoint/restore path (src/stream/checkpoint.h). Restoring from a
/// snapshot reproduces the exact internal arrays, so a restarted process
/// continues bit-for-bit without replaying the stream.
struct StreamingProfileSnapshot {
  StreamingProfileOptions options;
  Index total_appended = 0;
  bool initialized = false;
  Index rows_since_reseed = 0;
  std::vector<double> window;
  std::vector<double> distances;
  std::vector<Index> indices;
  std::vector<double> qt_last;
};

/// Incrementally maintained matrix profile over an append-only series: the
/// STAMPI idea (Yeh et al., ICDM'16) adapted to this codebase's batch STOMP
/// conventions. Each appended point introduces one new subsequence whose
/// dot-product row is derived from the previous row with the O(n) STOMP
/// recurrence of mp/stomp_kernel; the row is re-seeded with MASS on the same
/// fixed chunk grid (kStompChunkRows) as batch STOMP, so recurrence rounding
/// drift stays bounded by the chunk length and streaming results remain
/// directly comparable to a batch recompute over the accumulated window.
///
/// With a bounded window, eviction of the oldest point invalidates profile
/// entries whose nearest neighbor left the window; those rows are recomputed
/// exactly (MASS), keeping the maintained profile exact over the live window
/// rather than an approximation.
class StreamingMatrixProfile {
 public:
  /// Creates an empty streaming profile; CHECK-fails on invalid options
  /// (see StreamingProfileOptions).
  explicit StreamingMatrixProfile(StreamingProfileOptions options);

  /// Appends one point and folds it into the profile. Cost: O(w) for a
  /// window of w points (O(w log w) on chunk-reseed appends and when
  /// eviction invalidated entries).
  void Append(double value);

  /// Appends every value of `values` in order.
  void AppendBlock(std::span<const double> values);

  /// The underlying windowed series.
  const StreamingSeries& series() const { return series_; }

  /// Active options.
  const StreamingProfileOptions& options() const { return options_; }

  /// Number of live points in the window.
  Index size() const { return series_.size(); }

  /// Number of live subsequences (profile slots once initialized).
  Index num_subsequences() const {
    return NumSubsequences(series_.size(), options_.subsequence_length);
  }

  /// True once the warm-up is over (>= 2 subsequences) and the profile is
  /// being maintained; Profile() is empty before that.
  bool initialized() const { return initialized_; }

  /// Snapshot of the current matrix profile over the live window, in
  /// window-relative offsets (0 = oldest live point).
  MatrixProfile Profile() const;

  /// Best (lowest-distance) pair currently in the window.
  MotifPair BestMotif() const;

  /// Subsequence with the largest nearest-neighbor distance in the window.
  Discord TopDiscord() const;

  /// Number of MASS re-seeds of the dot-product row so far (chunk-grid
  /// boundaries plus initialization); exposed for tests and benchmarks.
  Index mass_reseeds() const { return mass_reseeds_; }

  /// Number of profile rows recomputed because eviction removed their
  /// nearest neighbor; exposed for tests and benchmarks.
  Index stale_recomputes() const { return stale_recomputes_; }

  /// Copies the complete internal state for checkpointing.
  StreamingProfileSnapshot TakeSnapshot() const;

  /// Rebuilds a profile from a snapshot. Returns InvalidArgument when the
  /// snapshot is internally inconsistent (sizes, ranges); used by the
  /// checkpoint reader after checksum validation.
  static Status FromSnapshot(const StreamingProfileSnapshot& snapshot,
                             StreamingMatrixProfile* out);

 private:
  /// Runs batch STOMP over the current window (first time two subsequences
  /// exist) and seeds the incremental dot-product row.
  void InitializeFromBatch();

  /// Folds the newest subsequence into the profile: advances the QT row,
  /// computes its distance profile, and min-updates every slot.
  void IncorporateNewRow();

  /// Shifts profile state after the oldest point was evicted and collects
  /// the offsets whose stored nearest neighbor left the window.
  void EvictFront(std::vector<Index>* stale);

  /// Exactly recomputes one row's nearest neighbor (MASS distance profile).
  void RecomputeRow(Index row);

  StreamingProfileOptions options_;
  StreamingSeries series_;
  bool initialized_ = false;
  std::vector<double> distances_;  // window-relative profile
  std::vector<Index> indices_;
  std::vector<double> qt_last_;  // QT row of the newest subsequence
  Index rows_since_reseed_ = 0;
  Index mass_reseeds_ = 0;
  Index stale_recomputes_ = 0;
  std::vector<MeanStd> col_stats_;  // per-append scratch
  std::vector<double> qt_scratch_;
};

}  // namespace valmod

#endif  // VALMOD_STREAM_STREAMING_PROFILE_H_
