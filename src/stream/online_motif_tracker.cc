#include "stream/online_motif_tracker.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/trace.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {
namespace {

/// True when `off` overlaps any taken (offset, length) occurrence within
/// the exclusion zone — the disjointness rule of core/ranking.
bool Overlaps(const std::vector<std::pair<Index, Index>>& taken, Index off,
              Index len) {
  for (const auto& [t_off, t_len] : taken) {
    const Index excl = ExclusionZone(std::min(len, t_len));
    if (std::llabs(static_cast<long long>(t_off - off)) < excl) return true;
  }
  return false;
}

}  // namespace

OnlineMotifTracker::OnlineMotifTracker(OnlineTrackerOptions options)
    : options_(options) {
  VALMOD_CHECK(options_.length_min >= 2);
  VALMOD_CHECK(options_.length_max >= options_.length_min);
  VALMOD_CHECK(options_.length_step >= 1);
  VALMOD_CHECK(options_.capacity == 0 ||
               options_.capacity >= 2 * options_.length_max);
  for (Index len = options_.length_min; len <= options_.length_max;
       len += options_.length_step) {
    lengths_.push_back(len);
    StreamingProfileOptions profile_options;
    profile_options.subsequence_length = len;
    profile_options.capacity = options_.capacity;
    profile_options.stats_recompute_interval =
        options_.stats_recompute_interval;
    profiles_.emplace_back(profile_options);
  }
}

Status OnlineMotifTracker::FromSnapshots(
    const OnlineTrackerOptions& options,
    std::span<const StreamingProfileSnapshot> snapshots,
    OnlineMotifTracker* out) {
  OnlineMotifTracker tracker(options);
  if (snapshots.size() != tracker.profiles_.size()) {
    return Status::InvalidArgument("checkpoint: snapshot count does not "
                                   "match the tracked length range");
  }
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const StreamingProfileSnapshot& snapshot = snapshots[i];
    if (snapshot.options.subsequence_length != tracker.lengths_[i]) {
      return Status::InvalidArgument("checkpoint: snapshot length order "
                                     "does not match lengths()");
    }
    if (snapshot.options.capacity != options.capacity ||
        snapshot.total_appended != snapshots[0].total_appended ||
        snapshot.window.size() != snapshots[0].window.size()) {
      return Status::InvalidArgument(
          "checkpoint: snapshots disagree on the shared window");
    }
    if (Status s = StreamingMatrixProfile::FromSnapshot(
            snapshot, &tracker.profiles_[i]);
        !s.ok()) {
      return s;
    }
  }
  *out = std::move(tracker);
  return Status::Ok();
}

void OnlineMotifTracker::Append(double value) {
  const obs::TraceSpan span("tracker_append");
  for (StreamingMatrixProfile& profile : profiles_) profile.Append(value);
}

void OnlineMotifTracker::AppendBlock(std::span<const double> values) {
  for (double v : values) Append(v);
}

const StreamingMatrixProfile& OnlineMotifTracker::ProfileForLength(
    Index len) const {
  for (std::size_t i = 0; i < lengths_.size(); ++i) {
    if (lengths_[i] == len) return profiles_[i];
  }
  VALMOD_CHECK_MSG(false, "length is not tracked");
  std::abort();  // unreachable; silences no-return warnings
}

bool OnlineMotifTracker::ready() const {
  for (const StreamingMatrixProfile& profile : profiles_) {
    if (profile.BestMotif().valid()) return true;
  }
  return false;
}

RankedPair OnlineMotifTracker::BestPair() const {
  RankedPair best;
  for (const StreamingMatrixProfile& profile : profiles_) {
    const MotifPair pair = profile.BestMotif();
    if (!pair.valid()) continue;
    const double norm = LengthNormalize(pair.distance, pair.length);
    if (norm < best.norm_distance) {
      best.off1 = pair.a;
      best.off2 = pair.b;
      best.length = pair.length;
      best.distance = pair.distance;
      best.norm_distance = norm;
    }
  }
  return best;
}

std::vector<RankedPair> OnlineMotifTracker::TopKPairs(Index k) const {
  // Gather per-length candidates (top-k of each length's profile), rank
  // them together under the sqrt(1/l) normalization, then greedily keep
  // pairs whose occurrences are disjoint — the streaming analogue of
  // Algorithm 5's heapBestKPairs.
  std::vector<MotifPair> candidates;
  for (const StreamingMatrixProfile& profile : profiles_) {
    const std::vector<MotifPair> top =
        TopMotifsFromProfile(profile.Profile(), k);
    candidates.insert(candidates.end(), top.begin(), top.end());
  }
  const std::vector<RankedPair> ranked =
      RankMotifsByNormalizedDistance(candidates);
  std::vector<RankedPair> out;
  std::vector<std::pair<Index, Index>> taken;
  for (const RankedPair& pair : ranked) {
    if (static_cast<Index>(out.size()) >= k) break;
    if (Overlaps(taken, pair.off1, pair.length) ||
        Overlaps(taken, pair.off2, pair.length)) {
      continue;
    }
    out.push_back(pair);
    taken.emplace_back(pair.off1, pair.length);
    taken.emplace_back(pair.off2, pair.length);
  }
  return out;
}

std::vector<Discord> OnlineMotifTracker::TopDiscords(Index k) const {
  std::vector<Discord> candidates;
  for (const StreamingMatrixProfile& profile : profiles_) {
    const Discord d = profile.TopDiscord();
    if (d.valid()) candidates.push_back(d);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Discord& a, const Discord& b) {
              return LengthNormalize(a.distance, a.length) >
                     LengthNormalize(b.distance, b.length);
            });
  std::vector<Discord> out;
  std::vector<std::pair<Index, Index>> taken;
  for (const Discord& d : candidates) {
    if (static_cast<Index>(out.size()) >= k) break;
    if (Overlaps(taken, d.offset, d.length)) continue;
    out.push_back(d);
    taken.emplace_back(d.offset, d.length);
  }
  return out;
}

}  // namespace valmod
