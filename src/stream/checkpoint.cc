#include "stream/checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/serialize.h"
#include "mp/matrix_profile.h"
#include "stream/streaming_profile.h"
#include "util/common.h"

namespace valmod {
namespace {

/// FNV-1a 64 over the raw bytes — the checkpoint trailer hash. Chosen for
/// being dependency-free and byte-order independent; the trailer guards
/// against truncation and bit flips, not adversaries.
std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Reads one line of the body, failing with InvalidArgument naming `what`
/// when the checkpoint ends early.
Status NextLine(std::istringstream& in, const std::string& what,
                const std::string& path, std::string* line) {
  if (!std::getline(in, *line)) {
    return Status::InvalidArgument("checkpoint truncated before " + what +
                                   " in " + path);
  }
  return Status::Ok();
}

/// Parses a `<keyword> <int>...` line into `n` integers, rejecting wrong
/// keywords, missing fields, and trailing junk.
Status ParseKeywordLine(const std::string& line, const std::string& keyword,
                        int n, long long* values, const std::string& path) {
  std::istringstream stream(line);
  std::string word;
  if (!(stream >> word) || word != keyword) {
    return Status::InvalidArgument("expected '" + keyword + "' line, got '" +
                                   line + "' in " + path);
  }
  for (int i = 0; i < n; ++i) {
    if (!(stream >> values[i])) {
      return Status::InvalidArgument("malformed '" + keyword + "' line '" +
                                     line + "' in " + path);
    }
  }
  if (stream >> word) {
    return Status::InvalidArgument("trailing junk on '" + keyword +
                                   "' line in " + path);
  }
  return Status::Ok();
}

}  // namespace

Status WriteCheckpoint(const OnlineMotifTracker& tracker,
                       const std::string& path) {
  std::ostringstream body;
  body.precision(17);
  const OnlineTrackerOptions& options = tracker.options();
  body << "valmod-stream-checkpoint " << kStreamCheckpointVersion << '\n';
  body << "options " << options.length_min << ' ' << options.length_max
       << ' ' << options.length_step << ' ' << options.capacity << ' '
       << options.stats_recompute_interval << '\n';
  body << "total_appended " << tracker.total_appended() << '\n';

  // The window is shared by every per-length profile, so it is stored once.
  const std::vector<Index>& lengths = tracker.lengths();
  std::vector<StreamingProfileSnapshot> snapshots;
  snapshots.reserve(lengths.size());
  for (Index len : lengths) {
    snapshots.push_back(tracker.ProfileForLength(len).TakeSnapshot());
  }
  const std::vector<double>& window = snapshots.front().window;
  body << "window " << window.size() << '\n';
  for (double v : window) body << v << '\n';

  body << "profiles " << lengths.size() << '\n';
  for (const StreamingProfileSnapshot& snapshot : snapshots) {
    body << "profile " << snapshot.options.subsequence_length << ' '
         << (snapshot.initialized ? 1 : 0) << ' '
         << snapshot.rows_since_reseed << ' ' << snapshot.distances.size()
         << '\n';
    for (std::size_t i = 0; i < snapshot.distances.size(); ++i) {
      body << snapshot.distances[i] << ',' << snapshot.indices[i] << ','
           << snapshot.qt_last[i] << '\n';
    }
  }

  const std::string text = body.str();
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << text << "checksum " << std::hex << Fnv1a64(text) << '\n';
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadCheckpoint(const std::string& path, OnlineMotifTracker* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in) return Status::IoError("read failed: " + path);
  return ParseCheckpoint(buffer.str(), path, out);
}

Status ParseCheckpoint(std::string_view content, const std::string& source,
                       OnlineMotifTracker* out) {
  const std::string& path = source;  // error messages name the origin

  // Version first: a version mismatch must produce a clear error even
  // though it also changes the checksum.
  const std::size_t first_newline = content.find('\n');
  if (first_newline == std::string_view::npos) {
    return Status::InvalidArgument("not a stream checkpoint: " + path);
  }
  {
    std::istringstream magic_line(std::string(content.substr(0,
                                                             first_newline)));
    std::string magic;
    int version = 0;
    if (!(magic_line >> magic >> version) ||
        magic != "valmod-stream-checkpoint") {
      return Status::InvalidArgument("not a stream checkpoint: " + path);
    }
    if (version != kStreamCheckpointVersion) {
      return Status::InvalidArgument("unsupported checkpoint version " +
                                     std::to_string(version) + " in " + path);
    }
  }

  // Checksum second: any byte flip in the body is rejected before the
  // content is parsed.
  const std::size_t trailer_pos = content.rfind("\nchecksum ");
  if (trailer_pos == std::string_view::npos) {
    return Status::InvalidArgument("missing checksum trailer in " + path);
  }
  const std::string body(content.substr(0, trailer_pos + 1));
  {
    std::istringstream trailer(std::string(content.substr(trailer_pos + 1)));
    std::string word;
    std::string hex;
    trailer >> word >> hex;
    if (word != "checksum" || hex.empty()) {
      return Status::InvalidArgument("malformed checksum trailer in " + path);
    }
    if (trailer >> word) {
      return Status::InvalidArgument("trailing data after checksum in " +
                                     path);
    }
    char* end = nullptr;
    const std::uint64_t stored = std::strtoull(hex.c_str(), &end, 16);
    if (end == hex.c_str() || *end != '\0' || stored != Fnv1a64(body)) {
      return Status::InvalidArgument("checksum mismatch in " + path +
                                     " (corrupt or truncated checkpoint)");
    }
  }

  std::istringstream lines(body);
  std::string line;
  std::getline(lines, line);  // magic line, validated above

  // Options are range-checked here because the OnlineMotifTracker
  // constructor treats bad options as programmer error (CHECK-abort),
  // while a corrupt file must surface as a recoverable Status.
  long long v[5];
  if (Status s = NextLine(lines, "options", path, &line); !s.ok()) return s;
  if (Status s = ParseKeywordLine(line, "options", 5, v, path); !s.ok()) {
    return s;
  }
  OnlineTrackerOptions options;
  options.length_min = static_cast<Index>(v[0]);
  options.length_max = static_cast<Index>(v[1]);
  options.length_step = static_cast<Index>(v[2]);
  options.capacity = static_cast<Index>(v[3]);
  options.stats_recompute_interval = static_cast<Index>(v[4]);
  if (options.length_min < 2 || options.length_max < options.length_min ||
      options.length_max > kMaxSerializedIndex || options.length_step < 1 ||
      options.stats_recompute_interval < 1 ||
      (options.capacity != 0 &&
       options.capacity < 2 * options.length_max)) {
    return Status::InvalidArgument("invalid tracker options in " + path);
  }

  if (Status s = NextLine(lines, "total_appended", path, &line); !s.ok()) {
    return s;
  }
  if (Status s = ParseKeywordLine(line, "total_appended", 1, v, path);
      !s.ok()) {
    return s;
  }
  const Index total_appended = static_cast<Index>(v[0]);

  if (Status s = NextLine(lines, "window", path, &line); !s.ok()) return s;
  if (Status s = ParseKeywordLine(line, "window", 1, v, path); !s.ok()) {
    return s;
  }
  const Index window_size = static_cast<Index>(v[0]);
  if (window_size < 0 || window_size > kMaxSerializedIndex ||
      (options.capacity != 0 && window_size > options.capacity) ||
      total_appended < window_size) {
    return Status::OutOfRange("window size out of range in " + path);
  }
  // Reserve no more than the remaining text could plausibly hold (every
  // value line is at least 2 bytes): a corrupt header claiming a huge count
  // must fail on truncation below, not on a giant allocation here.
  const std::size_t plausible_values = body.size() / 2;
  std::vector<double> window;
  window.reserve(std::min(static_cast<std::size_t>(window_size),
                          plausible_values));
  for (Index i = 0; i < window_size; ++i) {
    if (Status s = NextLine(lines, "window values", path, &line); !s.ok()) {
      return s;
    }
    double value = 0.0;
    if (Status s = ParseCsvFields(line, 1, &value, path); !s.ok()) return s;
    window.push_back(value);
  }

  if (Status s = NextLine(lines, "profiles", path, &line); !s.ok()) return s;
  if (Status s = ParseKeywordLine(line, "profiles", 1, v, path); !s.ok()) {
    return s;
  }
  const long long num_profiles = v[0];
  std::vector<StreamingProfileSnapshot> snapshots;
  for (long long p = 0; p < num_profiles; ++p) {
    if (Status s = NextLine(lines, "profile header", path, &line); !s.ok()) {
      return s;
    }
    long long h[4];
    if (Status s = ParseKeywordLine(line, "profile", 4, h, path); !s.ok()) {
      return s;
    }
    StreamingProfileSnapshot snapshot;
    snapshot.options.subsequence_length = static_cast<Index>(h[0]);
    snapshot.options.capacity = options.capacity;
    snapshot.options.stats_recompute_interval =
        options.stats_recompute_interval;
    snapshot.total_appended = total_appended;
    snapshot.initialized = h[1] != 0;
    snapshot.rows_since_reseed = static_cast<Index>(h[2]);
    snapshot.window = window;
    const long long n_sub = h[3];
    if (n_sub < 0 || n_sub > window_size) {
      return Status::OutOfRange("profile row count out of range in " + path);
    }
    const std::size_t plausible_rows =
        std::min(static_cast<std::size_t>(n_sub), plausible_values);
    snapshot.distances.reserve(plausible_rows);
    snapshot.indices.reserve(plausible_rows);
    snapshot.qt_last.reserve(plausible_rows);
    for (long long i = 0; i < n_sub; ++i) {
      if (Status s = NextLine(lines, "profile rows", path, &line); !s.ok()) {
        return s;
      }
      double f[3];
      if (Status s = ParseCsvFields(line, 3, f, path); !s.ok()) return s;
      if (f[0] < 0.0) {
        return Status::InvalidArgument("negative distance in " + path);
      }
      if (!(f[1] >= -1.0 && f[1] <= static_cast<double>(window_size))) {
        return Status::OutOfRange("neighbor index out of range in " + path);
      }
      snapshot.distances.push_back(f[0]);
      snapshot.indices.push_back(static_cast<Index>(f[1]));
      snapshot.qt_last.push_back(f[2]);
    }
    snapshots.push_back(std::move(snapshot));
  }
  while (std::getline(lines, line)) {
    if (!line.empty()) {
      return Status::InvalidArgument("trailing data before checksum in " +
                                     path);
    }
  }

  // Structural validation of each snapshot (array sizes, index ranges,
  // reseed counter) happens inside the restore path.
  return OnlineMotifTracker::FromSnapshots(options, snapshots, out);
}

}  // namespace valmod
