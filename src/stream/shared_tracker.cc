#include "stream/shared_tracker.h"

#include <utility>

#include "stream/checkpoint.h"

namespace valmod {

void SharedTracker::Append(double value) {
  const WriterMutexLock lock(&mu_);
  tracker_.Append(value);
}

void SharedTracker::AppendBlock(std::span<const double> values) {
  const WriterMutexLock lock(&mu_);
  tracker_.AppendBlock(values);
}

OnlineTrackerOptions SharedTracker::options() const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.options();
}

Index SharedTracker::size() const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.size();
}

Index SharedTracker::total_appended() const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.total_appended();
}

bool SharedTracker::ready() const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.ready();
}

RankedPair SharedTracker::BestPair() const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.BestPair();
}

std::vector<RankedPair> SharedTracker::TopKPairs(Index k) const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.TopKPairs(k);
}

std::vector<Discord> SharedTracker::TopDiscords(Index k) const {
  const ReaderMutexLock lock(&mu_);
  return tracker_.TopDiscords(k);
}

Status SharedTracker::Checkpoint(const std::string& path) const {
  const ReaderMutexLock lock(&mu_);
  return WriteCheckpoint(tracker_, path);
}

Status SharedTracker::Restore(const std::string& path) {
  // Parse outside the lock: readers keep serving while the file is
  // validated, and a corrupt checkpoint leaves the live tracker untouched.
  OnlineMotifTracker fresh(options());
  if (Status s = ReadCheckpoint(path, &fresh); !s.ok()) return s;
  const WriterMutexLock lock(&mu_);
  tracker_ = std::move(fresh);
  return Status::Ok();
}

}  // namespace valmod
