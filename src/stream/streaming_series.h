#ifndef VALMOD_STREAM_STREAMING_SERIES_H_
#define VALMOD_STREAM_STREAMING_SERIES_H_

#include <span>
#include <vector>

#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// Configuration of a StreamingSeries.
struct StreamingSeriesOptions {
  /// Maximum number of live points. Once reached, every append evicts the
  /// oldest point (a sliding window). 0 keeps every point (append-only).
  Index capacity = 0;
  /// Appends between forced exact rebuilds of the rolling prefix
  /// statistics. Rebuilds re-accumulate the prefix sums from the live
  /// window only, which bounds the floating-point drift of the rolling
  /// formulas (see docs/STREAMING.md, "Drift policy").
  Index stats_recompute_interval = 1 << 15;
};

/// Append-only view of a growing data series with rolling z-normalization
/// statistics: the streaming counterpart of util/prefix_stats. Points are
/// held in a compacting ring buffer whose live window stays contiguous, so
/// the sliding-dot-product kernels can consume it as a plain span; prefix
/// sums extend incrementally in O(1) per append and are periodically
/// re-accumulated from scratch so rounding drift never grows with the
/// stream length.
class StreamingSeries {
 public:
  /// Creates an empty streaming series. A positive `options.capacity`
  /// (>= 2) turns the series into a sliding window that evicts the oldest
  /// point once full; 0 keeps every appended point.
  explicit StreamingSeries(StreamingSeriesOptions options = {});

  /// Checkpoint-restore constructor: reconstructs a series whose live
  /// window is `window` after `total_appended` total appends. Prefix
  /// statistics are rebuilt exactly from the window contents, so no replay
  /// of evicted points is needed.
  StreamingSeries(StreamingSeriesOptions options,
                  std::span<const double> window, Index total_appended);

  /// Appends one point, evicting the oldest when the window is at
  /// capacity. Amortized O(1): prefix statistics extend incrementally and
  /// the dead prefix left by eviction is compacted geometrically.
  void Append(double value);

  /// Appends every value of `values` in order.
  void AppendBlock(std::span<const double> values);

  /// Number of live (non-evicted) points.
  Index size() const { return static_cast<Index>(data_.size()) - start_; }

  /// Total points ever appended, including evicted ones.
  Index total_appended() const { return total_appended_; }

  /// Number of evicted points; equivalently, the absolute stream position
  /// of live offset 0.
  Index dropped() const { return total_appended() - size(); }

  /// Contiguous view of the live window, oldest point first.
  std::span<const double> Window() const {
    return std::span<const double>(data_).subspan(
        static_cast<std::size_t>(start_));
  }

  /// Value at live offset `i` (0 = oldest live point).
  double At(Index i) const {
    return data_[static_cast<std::size_t>(start_ + i)];
  }

  /// Mean and population standard deviation of the live-window subsequence
  /// [offset, offset + len), computed from the rolling prefix sums with the
  /// same long-double formula as PrefixStats::Stats, so the streaming and
  /// batch distance kernels see matching statistics.
  MeanStd Stats(Index offset, Index len) const;

  /// Number of exact prefix rebuilds performed so far (compactions plus
  /// interval-forced recomputations); exposed for tests and benchmarks.
  Index rebuild_count() const { return rebuild_count_; }

 private:
  /// Compacts the dead prefix away and re-accumulates the prefix sums from
  /// the live window, resetting the drift-policy counters.
  void Rebuild();

  StreamingSeriesOptions options_;
  std::vector<double> data_;      // dead prefix [0, start_) + live window
  std::vector<long double> sum_;  // sum_[i] = data_[0] + ... + data_[i-1]
  std::vector<long double> sq_;   // sq_[i]  = data_[0]^2 + ... + data_[i-1]^2
  Index start_ = 0;
  Index total_appended_ = 0;
  Index appends_since_rebuild_ = 0;
  Index rebuild_count_ = 0;
};

}  // namespace valmod

#endif  // VALMOD_STREAM_STREAMING_SERIES_H_
