#ifndef VALMOD_STREAM_ONLINE_MOTIF_TRACKER_H_
#define VALMOD_STREAM_ONLINE_MOTIF_TRACKER_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "mp/matrix_profile.h"
#include "stream/streaming_profile.h"
#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// Configuration of an OnlineMotifTracker.
struct OnlineTrackerOptions {
  /// Inclusive motif-length range tracked, stepped by `length_step` —
  /// the streaming counterpart of ValmodOptions' [l_min, l_max].
  Index length_min = 0;
  Index length_max = 0;
  Index length_step = 1;
  /// Sliding-window capacity in points shared by every tracked length
  /// (0 = unbounded). When positive it must be >= 2 * length_max.
  Index capacity = 0;
  /// Forwarded to every per-length StreamingSeries drift policy.
  Index stats_recompute_interval = 1 << 15;
};

/// Keeps VALMOD's variable-length motif state current as points arrive: one
/// StreamingMatrixProfile per tracked length, queried under the paper's
/// sqrt(1/l) length normalization (Section 3) so pairs of different lengths
/// rank against each other exactly like the batch Problem 2 machinery in
/// core/ranking. Evictions propagate to every length, so the best pair,
/// top-K pairs, and top discords always describe the live window only.
class OnlineMotifTracker {
 public:
  /// Creates a tracker over the configured length range; CHECK-fails on
  /// invalid options.
  explicit OnlineMotifTracker(OnlineTrackerOptions options);

  /// Checkpoint-restore constructor: rebuilds a tracker from per-length
  /// snapshots (one per tracked length, in lengths() order, all sharing the
  /// same window). Returns InvalidArgument on inconsistent snapshots.
  static Status FromSnapshots(
      const OnlineTrackerOptions& options,
      std::span<const StreamingProfileSnapshot> snapshots,
      OnlineMotifTracker* out);

  /// Appends one point to every tracked length. Cost O(L * w) for L lengths
  /// over a window of w points.
  void Append(double value);

  /// Appends every value of `values` in order.
  void AppendBlock(std::span<const double> values);

  /// Active options.
  const OnlineTrackerOptions& options() const { return options_; }

  /// The tracked subsequence lengths, ascending.
  const std::vector<Index>& lengths() const { return lengths_; }

  /// Number of live points in the shared window.
  Index size() const { return profiles_.front().size(); }

  /// Total points ever appended.
  Index total_appended() const {
    return profiles_.front().series().total_appended();
  }

  /// Number of evicted points.
  Index dropped() const { return profiles_.front().series().dropped(); }

  /// The per-length streaming profile; `len` must be a tracked length.
  const StreamingMatrixProfile& ProfileForLength(Index len) const;

  /// True once at least one tracked length has a valid pair.
  bool ready() const;

  /// The current best pair across all tracked lengths under the
  /// length-normalized distance; an invalid pair (off1 == kNoNeighbor)
  /// before ready().
  RankedPair BestPair() const;

  /// The current top-k pairs across all tracked lengths, ascending by
  /// length-normalized distance, with occurrences disjoint under the
  /// exclusion-zone rule of core/ranking's SelectTopKPairs.
  std::vector<RankedPair> TopKPairs(Index k) const;

  /// The current top-k discords across all tracked lengths, descending by
  /// length-normalized nearest-neighbor distance, at most one per tracked
  /// length, offsets disjoint under the exclusion zone.
  std::vector<Discord> TopDiscords(Index k) const;

 private:
  OnlineTrackerOptions options_;
  std::vector<Index> lengths_;
  std::vector<StreamingMatrixProfile> profiles_;
};

}  // namespace valmod

#endif  // VALMOD_STREAM_ONLINE_MOTIF_TRACKER_H_
