#include "stream/streaming_series.h"

#include <cmath>

#include "util/check.h"

namespace valmod {

StreamingSeries::StreamingSeries(StreamingSeriesOptions options)
    : options_(options) {
  VALMOD_CHECK(options_.capacity == 0 || options_.capacity >= 2);
  VALMOD_CHECK(options_.stats_recompute_interval >= 1);
  sum_.push_back(0.0L);
  sq_.push_back(0.0L);
  if (options_.capacity > 0) {
    const std::size_t cap = static_cast<std::size_t>(options_.capacity);
    // The buffer is compacted before it doubles, so 2x capacity suffices.
    data_.reserve(2 * cap);
    sum_.reserve(2 * cap + 1);
    sq_.reserve(2 * cap + 1);
  }
}

StreamingSeries::StreamingSeries(StreamingSeriesOptions options,
                                 std::span<const double> window,
                                 Index total_appended)
    : StreamingSeries(options) {
  VALMOD_CHECK(total_appended >= static_cast<Index>(window.size()));
  VALMOD_CHECK(options_.capacity == 0 ||
               static_cast<Index>(window.size()) <= options_.capacity);
  data_.assign(window.begin(), window.end());
  total_appended_ = total_appended;
  Rebuild();
  rebuild_count_ = 0;  // The restore rebuild is not a drift event.
}

void StreamingSeries::Append(double value) {
  if (options_.capacity > 0 && size() == options_.capacity) ++start_;
  data_.push_back(value);
  const long double v = value;
  sum_.push_back(sum_.back() + v);
  sq_.push_back(sq_.back() + v * v);
  ++total_appended_;
  ++appends_since_rebuild_;
  // Compact when the dead prefix outgrows the live window (amortized O(1)
  // per append) or when the drift policy forces an exact recomputation.
  if (start_ > 0 && (start_ >= size() ||
                     appends_since_rebuild_ >=
                         options_.stats_recompute_interval)) {
    Rebuild();
  }
}

void StreamingSeries::AppendBlock(std::span<const double> values) {
  for (double v : values) Append(v);
}

MeanStd StreamingSeries::Stats(Index offset, Index len) const {
  VALMOD_DCHECK(offset >= 0 && len >= 1 && offset + len <= size());
  const std::size_t lo = static_cast<std::size_t>(start_ + offset);
  const std::size_t hi = static_cast<std::size_t>(start_ + offset + len);
  const long double l = static_cast<long double>(len);
  const long double s = sum_[hi] - sum_[lo];
  const long double ss = sq_[hi] - sq_[lo];
  const long double mean = s / l;
  long double var = ss / l - mean * mean;
  if (var < 0.0L) var = 0.0L;
  return MeanStd{static_cast<double>(mean),
                 static_cast<double>(std::sqrt(var))};
}

void StreamingSeries::Rebuild() {
  data_.erase(data_.begin(),
              data_.begin() + static_cast<std::ptrdiff_t>(start_));
  start_ = 0;
  const std::size_t n = data_.size();
  sum_.assign(n + 1, 0.0L);
  sq_.assign(n + 1, 0.0L);
  for (std::size_t i = 0; i < n; ++i) {
    const long double v = data_[i];
    sum_[i + 1] = sum_[i] + v;
    sq_[i + 1] = sq_[i] + v * v;
  }
  appends_since_rebuild_ = 0;
  ++rebuild_count_;
}

}  // namespace valmod
