#ifndef VALMOD_STREAM_SHARED_TRACKER_H_
#define VALMOD_STREAM_SHARED_TRACKER_H_

#include <span>
#include <string>
#include <vector>

#include "core/ranking.h"
#include "stream/online_motif_tracker.h"
#include "util/common.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace valmod {

/// A thread-safe façade over OnlineMotifTracker for the serving path: one
/// ingest thread appends points while any number of query threads read the
/// current motifs (ROADMAP: streaming + serving unification). Appends and
/// restore take the write lock; every query and the checkpoint snapshot
/// take the read lock, so concurrent readers never serialize against each
/// other. All locking is annotation-checked — misuse is a compile error
/// under -Wthread-safety.
class SharedTracker {
 public:
  /// Creates a tracker over the configured length range; CHECK-fails on
  /// invalid options (same contract as OnlineMotifTracker).
  explicit SharedTracker(const OnlineTrackerOptions& options)
      : tracker_(options) {}

  SharedTracker(const SharedTracker&) = delete;
  SharedTracker& operator=(const SharedTracker&) = delete;

  /// Appends one point to every tracked length (exclusive lock).
  void Append(double value) EXCLUDES(mu_);

  /// Appends every value of `values` in order under one exclusive lock, so
  /// readers observe block boundaries, never mid-block state.
  void AppendBlock(std::span<const double> values) EXCLUDES(mu_);

  /// Active options (immutable after construction or Restore).
  OnlineTrackerOptions options() const EXCLUDES(mu_);

  /// Number of live points in the shared window.
  Index size() const EXCLUDES(mu_);

  /// Total points ever appended.
  Index total_appended() const EXCLUDES(mu_);

  /// True once at least one tracked length has a valid pair.
  bool ready() const EXCLUDES(mu_);

  /// The current best pair across all tracked lengths (shared lock).
  RankedPair BestPair() const EXCLUDES(mu_);

  /// The current top-k pairs across all tracked lengths (shared lock).
  std::vector<RankedPair> TopKPairs(Index k) const EXCLUDES(mu_);

  /// The current top-k discords across all tracked lengths (shared lock).
  std::vector<Discord> TopDiscords(Index k) const EXCLUDES(mu_);

  /// Writes a checkpoint of the current state to `path` under the shared
  /// lock: ingest pauses for the snapshot, queries do not.
  Status Checkpoint(const std::string& path) const EXCLUDES(mu_);

  /// Replaces the tracker with the state checkpointed at `path`. The file
  /// is read and validated before the exclusive lock is taken, so a corrupt
  /// checkpoint never disturbs the live tracker.
  Status Restore(const std::string& path) EXCLUDES(mu_);

 private:
  mutable SharedMutex mu_;
  OnlineMotifTracker tracker_ GUARDED_BY(mu_);
};

}  // namespace valmod

#endif  // VALMOD_STREAM_SHARED_TRACKER_H_
