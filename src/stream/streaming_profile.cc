#include "stream/streaming_profile.h"

#include <utility>

#include "mp/simd/simd.h"
#include "mp/stomp.h"
#include "mp/stomp_kernel.h"
#include "obs/trace.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "util/check.h"

namespace valmod {

StreamingMatrixProfile::StreamingMatrixProfile(StreamingProfileOptions options)
    : options_(options),
      series_(StreamingSeriesOptions{options.capacity,
                                     options.stats_recompute_interval}) {
  VALMOD_CHECK(options_.subsequence_length >= 2);
  VALMOD_CHECK(options_.capacity == 0 ||
               options_.capacity >= 2 * options_.subsequence_length);
}

void StreamingMatrixProfile::Append(double value) {
  const bool evicts =
      options_.capacity > 0 && series_.size() == options_.capacity;
  series_.Append(value);
  std::vector<Index> stale;
  if (evicts && initialized_) EvictFront(&stale);
  if (series_.size() < options_.subsequence_length + 1) return;  // warm-up
  if (!initialized_) {
    InitializeFromBatch();
    return;
  }
  IncorporateNewRow();
  for (Index offset : stale) RecomputeRow(offset);
}

void StreamingMatrixProfile::AppendBlock(std::span<const double> values) {
  for (double v : values) Append(v);
}

void StreamingMatrixProfile::InitializeFromBatch() {
  const obs::TraceSpan span("stream_init_batch");
  const Index len = options_.subsequence_length;
  const std::span<const double> t = series_.Window();
  // A fresh PrefixStats over the window makes the initial profile
  // bit-identical to a batch Stomp call on the same data.
  const PrefixStats stats(t);
  MatrixProfile profile = Stomp(t, stats, len);
  distances_ = std::move(profile.distances);
  indices_ = std::move(profile.indices);
  const Index r = num_subsequences() - 1;
  qt_last_ =
      SlidingDotProduct(t.subspan(static_cast<std::size_t>(r),
                                  static_cast<std::size_t>(len)),
                        t);
  rows_since_reseed_ = 0;
  ++mass_reseeds_;
  initialized_ = true;
}

void StreamingMatrixProfile::IncorporateNewRow() {
  const obs::TraceSpan span("stream_append_update");
  const Index len = options_.subsequence_length;
  const std::span<const double> t = series_.Window();
  const Index n_sub = num_subsequences();
  const Index r = n_sub - 1;

  col_stats_.resize(static_cast<std::size_t>(n_sub));
  for (Index c = 0; c < n_sub; ++c) {
    col_stats_[static_cast<std::size_t>(c)] = series_.Stats(c, len);
  }

  // Advance the dot-product row. Re-seed with MASS on the batch kernel's
  // fixed chunk grid (bounds recurrence drift to kStompChunkRows steps, the
  // same guarantee batch STOMP gives itself — see mp/stomp_kernel.h);
  // otherwise derive row r from row r-1 with the O(n) STOMP recurrence.
  if (rows_since_reseed_ + 1 >= internal::kStompChunkRows) {
    qt_scratch_ =
        SlidingDotProduct(t.subspan(static_cast<std::size_t>(r),
                                    static_cast<std::size_t>(len)),
                          t);
    rows_since_reseed_ = 0;
    ++mass_reseeds_;
  } else {
    qt_scratch_.resize(static_cast<std::size_t>(n_sub));
    simd::CurrentKernels().qt_update(t.data(), r, len, n_sub, qt_last_.data(),
                                     qt_scratch_.data());
    qt_scratch_[0] = SubsequenceDotProduct(t, r, 0, len);
    ++rows_since_reseed_;
  }

  // Distance profile of the new row: set its own slot to the row minimum
  // and min-update every older slot against the new subsequence. The new
  // row is the last one, so only the left non-trivial range is non-empty.
  const MeanStd row_stats = col_stats_[static_cast<std::size_t>(r)];
  const ColumnRanges ranges = NonTrivialColumnRanges(r, len, n_sub);
  double best = kInf;
  Index best_c = kNoNeighbor;
  distances_.push_back(kInf);
  indices_.push_back(kNoNeighbor);
  simd::CurrentKernels().dist_row_min_update(
      qt_scratch_.data(), col_stats_.data(), row_stats, len, r, 0,
      ranges.left_end, distances_.data(), indices_.data(), &best, &best_c);
  simd::CurrentKernels().dist_row_min_update(
      qt_scratch_.data(), col_stats_.data(), row_stats, len, r,
      ranges.right_begin, n_sub, distances_.data(), indices_.data(), &best,
      &best_c);
  distances_[static_cast<std::size_t>(r)] = best;
  indices_[static_cast<std::size_t>(r)] = best_c;
  qt_last_.swap(qt_scratch_);
}

void StreamingMatrixProfile::EvictFront(std::vector<Index>* stale) {
  const obs::TraceSpan span("stream_evict_repair");
  // Subsequence 0 of the previous window left the buffer: drop its profile
  // slot, shift every stored neighbor index down by one, and collect the
  // offsets whose nearest neighbor was the evicted subsequence — their
  // stored distance is no longer witnessed and must be recomputed.
  distances_.erase(distances_.begin());
  indices_.erase(indices_.begin());
  if (!qt_last_.empty()) qt_last_.erase(qt_last_.begin());
  for (std::size_t j = 0; j < indices_.size(); ++j) {
    if (indices_[j] == kNoNeighbor) continue;
    if (--indices_[j] < 0) {
      indices_[j] = kNoNeighbor;
      distances_[j] = kInf;
      stale->push_back(static_cast<Index>(j));
    }
  }
}

void StreamingMatrixProfile::RecomputeRow(Index row) {
  const Index len = options_.subsequence_length;
  const std::span<const double> t = series_.Window();
  const Index n_sub = num_subsequences();
  const std::vector<double> qt =
      SlidingDotProduct(t.subspan(static_cast<std::size_t>(row),
                                  static_cast<std::size_t>(len)),
                        t);
  const MeanStd row_stats = series_.Stats(row, len);
  double best = kInf;
  Index best_c = kNoNeighbor;
  // col_stats_ is always current here: stale-row repair runs right after
  // IncorporateNewRow refreshed it for this window.
  VALMOD_DCHECK(static_cast<Index>(col_stats_.size()) == n_sub);
  const ColumnRanges ranges = NonTrivialColumnRanges(row, len, n_sub);
  simd::CurrentKernels().dist_row_min(qt.data(), col_stats_.data(), row_stats,
                                      len, 0, ranges.left_end, nullptr, &best,
                                      &best_c);
  simd::CurrentKernels().dist_row_min(qt.data(), col_stats_.data(), row_stats,
                                      len, ranges.right_begin, n_sub, nullptr,
                                      &best, &best_c);
  // Only this row's slot is refreshed: every other slot's stored minimum is
  // still witnessed by a live subsequence.
  distances_[static_cast<std::size_t>(row)] = best;
  indices_[static_cast<std::size_t>(row)] = best_c;
  ++stale_recomputes_;
}

MatrixProfile StreamingMatrixProfile::Profile() const {
  MatrixProfile out;
  out.subsequence_length = options_.subsequence_length;
  out.distances = distances_;
  out.indices = indices_;
  return out;
}

MotifPair StreamingMatrixProfile::BestMotif() const {
  return MotifFromProfile(Profile());
}

Discord StreamingMatrixProfile::TopDiscord() const {
  return DiscordFromProfile(Profile());
}

StreamingProfileSnapshot StreamingMatrixProfile::TakeSnapshot() const {
  StreamingProfileSnapshot snapshot;
  snapshot.options = options_;
  snapshot.total_appended = series_.total_appended();
  snapshot.initialized = initialized_;
  snapshot.rows_since_reseed = rows_since_reseed_;
  const std::span<const double> t = series_.Window();
  snapshot.window.assign(t.begin(), t.end());
  snapshot.distances = distances_;
  snapshot.indices = indices_;
  snapshot.qt_last = qt_last_;
  return snapshot;
}

Status StreamingMatrixProfile::FromSnapshot(
    const StreamingProfileSnapshot& snapshot, StreamingMatrixProfile* out) {
  const StreamingProfileOptions& options = snapshot.options;
  const Index len = options.subsequence_length;
  const Index n = static_cast<Index>(snapshot.window.size());
  if (len < 2) {
    return Status::InvalidArgument("snapshot: subsequence length < 2");
  }
  if (options.capacity != 0 && options.capacity < 2 * len) {
    return Status::InvalidArgument("snapshot: capacity < 2 * length");
  }
  if (options.capacity != 0 && n > options.capacity) {
    return Status::InvalidArgument("snapshot: window exceeds capacity");
  }
  if (options.stats_recompute_interval < 1) {
    return Status::InvalidArgument("snapshot: recompute interval < 1");
  }
  if (snapshot.total_appended < n) {
    return Status::InvalidArgument("snapshot: total appends < window size");
  }
  const Index n_sub = NumSubsequences(n, len);
  if (snapshot.initialized) {
    if (n < len + 1) {
      return Status::InvalidArgument("snapshot: initialized but window too "
                                     "short for two subsequences");
    }
    const std::size_t want = static_cast<std::size_t>(n_sub);
    if (snapshot.distances.size() != want ||
        snapshot.indices.size() != want || snapshot.qt_last.size() != want) {
      return Status::InvalidArgument("snapshot: profile arrays do not match "
                                     "the window's subsequence count");
    }
    if (snapshot.rows_since_reseed < 0 ||
        snapshot.rows_since_reseed >= internal::kStompChunkRows) {
      return Status::InvalidArgument("snapshot: reseed counter out of range");
    }
    for (Index idx : snapshot.indices) {
      if (idx < kNoNeighbor || idx >= n_sub) {
        return Status::OutOfRange("snapshot: neighbor index out of range");
      }
    }
  } else if (!snapshot.distances.empty() || !snapshot.indices.empty() ||
             !snapshot.qt_last.empty()) {
    return Status::InvalidArgument(
        "snapshot: uninitialized profile carries state");
  }
  StreamingMatrixProfile restored(options);
  restored.series_ = StreamingSeries(
      StreamingSeriesOptions{options.capacity,
                             options.stats_recompute_interval},
      snapshot.window, snapshot.total_appended);
  restored.initialized_ = snapshot.initialized;
  restored.rows_since_reseed_ = snapshot.rows_since_reseed;
  restored.distances_ = snapshot.distances;
  restored.indices_ = snapshot.indices;
  restored.qt_last_ = snapshot.qt_last;
  *out = std::move(restored);
  return Status::Ok();
}

}  // namespace valmod
