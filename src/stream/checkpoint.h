#ifndef VALMOD_STREAM_CHECKPOINT_H_
#define VALMOD_STREAM_CHECKPOINT_H_

#include <string>
#include <string_view>

#include "stream/online_motif_tracker.h"
#include "util/status.h"

namespace valmod {

/// Checkpoint/restore of an OnlineMotifTracker through a single text file,
/// so a monitoring process can restart without replaying the stream. The
/// format (documented in docs/STREAMING.md) is line-oriented: a magic line
/// `valmod-stream-checkpoint <version>`, the tracker options, the shared
/// window stored once, one profile section per tracked length, and a
/// trailing FNV-1a 64 checksum over every preceding byte. The reader
/// validates the version first (so version mismatches produce a clear
/// error), then the checksum (so any byte flip elsewhere is rejected before
/// parsing), then the structural invariants of every section.

/// Version stamped in the magic line. Readers reject other versions.
inline constexpr int kStreamCheckpointVersion = 1;

/// Writes the tracker's complete state to `path`. Returns IoError when the
/// file cannot be written.
Status WriteCheckpoint(const OnlineMotifTracker& tracker,
                       const std::string& path);

/// Restores a tracker from a file written by WriteCheckpoint. Returns
/// IoError when the file cannot be read, InvalidArgument on version
/// mismatch, checksum failure, or inconsistent content. `*out` is assigned
/// only on success.
Status ReadCheckpoint(const std::string& path, OnlineMotifTracker* out);

/// Restores a tracker from in-memory checkpoint text (the full file
/// contents, trailer included). `source` names the origin in error
/// messages. This is ReadCheckpoint without the file I/O — the entry point
/// the checkpoint fuzzer drives byte-for-byte.
Status ParseCheckpoint(std::string_view content, const std::string& source,
                       OnlineMotifTracker* out);

}  // namespace valmod

#endif  // VALMOD_STREAM_CHECKPOINT_H_
