#include "catalog/artifact.h"

namespace valmod {
namespace catalog {

std::size_t ArtifactKeyHash::operator()(const ArtifactKey& key) const {
  // FNV-1a over the key fields, mirroring CacheKeyHash so shard placement
  // and hashing behave identically across the cache and the catalog.
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xffu;
      hash *= 1099511628211ULL;
    }
  };
  mix(key.fingerprint);
  mix(static_cast<std::uint64_t>(key.len_min));
  mix(static_cast<std::uint64_t>(key.len_max));
  mix(static_cast<std::uint64_t>(key.p));
  return static_cast<std::size_t>(hash);
}

std::size_t MotifArtifact::ApproxBytes() const {
  std::size_t bytes = sizeof(MotifArtifact);
  bytes += static_cast<std::size_t>(valmp.size()) *
           (2 * sizeof(double) + 2 * sizeof(Index));
  for (const ArtifactLength& length : lengths) {
    bytes += sizeof(ArtifactLength);
    bytes += length.top_k.capacity() * sizeof(MotifPair);
  }
  return bytes;
}

}  // namespace catalog
}  // namespace valmod
