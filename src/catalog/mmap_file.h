#ifndef VALMOD_CATALOG_MMAP_FILE_H_
#define VALMOD_CATALOG_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace valmod {
namespace catalog {

/// A read-only memory-mapped file. The artifact format is fixed-width and
/// aligned precisely so a shard can parse straight out of the mapping
/// without a read()-and-copy of the whole blob; the mapping lives for the
/// duration of the parse (MappedFile is movable, non-copyable RAII).
class MappedFile {
 public:
  /// An empty, unmapped file; Open() maps one.
  MappedFile() = default;

  /// Unmaps (no-op when unmapped).
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  /// Transfers the mapping; the source is left unmapped.
  MappedFile(MappedFile&& other) noexcept;
  /// Transfers the mapping; the source is left unmapped.
  MappedFile& operator=(MappedFile&& other) noexcept;

  /// Maps `path` read-only. NotFound when the file does not exist, IoError
  /// on any other failure. A zero-byte file maps successfully with
  /// size() == 0.
  Status Open(const std::string& path);

  /// Unmaps now (idempotent).
  void Close();

  /// The mapped bytes (empty view when unmapped or zero-sized).
  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }

  /// True between a successful Open() and Close().
  bool mapped() const { return data_ != nullptr || opened_empty_; }

  /// Size of the mapping in bytes.
  std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool opened_empty_ = false;
};

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, fsync, then rename over the target. Readers therefore only
/// ever see a complete artifact — never a torn write — which is what lets
/// shards serve from disk while a Put replaces the same key.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads a whole file into `*out` (the non-mmap fallback used by tools and
/// tests). NotFound when absent, IoError otherwise.
Status ReadFile(const std::string& path, std::string* out);

/// Creates a directory (and any missing parents). Ok when it already
/// exists as a directory.
Status EnsureDirectory(const std::string& path);

}  // namespace catalog
}  // namespace valmod

#endif  // VALMOD_CATALOG_MMAP_FILE_H_
