#include "catalog/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace valmod {
namespace catalog {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

MappedFile::~MappedFile() { Close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      opened_empty_(std::exchange(other.opened_empty_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    opened_empty_ = std::exchange(other.opened_empty_, false);
  }
  return *this;
}

Status MappedFile::Open(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT)
      return Status::NotFound("no artifact at " + path);
    return Errno("open " + path);
  }
  struct stat st;
  if (fstat(fd, &st) < 0) {
    const Status status = Errno("fstat " + path);
    ::close(fd);
    return status;
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    opened_empty_ = true;
    return Status::Ok();
  }
  void* data = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (data == MAP_FAILED) return Errno("mmap " + path);
  data_ = data;
  size_ = size;
  return Status::Ok();
}

void MappedFile::Close() {
  if (data_ != nullptr) munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  opened_empty_ = false;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  // Unique within the directory: pid disambiguates concurrent writers of
  // different processes, the sequence number concurrent same-process
  // writers of the same key (the catalog writes before taking its shard
  // lock, so two workers can land here with the same path at once).
  static std::atomic<std::uint64_t> sequence{0};
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long long>(getpid())) +
      "." + std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + temp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t r =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (r < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("write " + temp);
      ::close(fd);
      ::unlink(temp.c_str());
      return status;
    }
    written += static_cast<std::size_t>(r);
  }
  if (fsync(fd) < 0) {
    const Status status = Errno("fsync " + temp);
    ::close(fd);
    ::unlink(temp.c_str());
    return status;
  }
  if (::close(fd) < 0) {
    const Status status = Errno("close " + temp);
    ::unlink(temp.c_str());
    return status;
  }
  if (::rename(temp.c_str(), path.c_str()) < 0) {
    const Status status = Errno("rename " + temp + " -> " + path);
    ::unlink(temp.c_str());
    return status;
  }
  return Status::Ok();
}

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (errno == ENOENT)
      return Status::NotFound("no artifact at " + path);
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof())
    return Status::IoError("error reading " + path);
  *out = buffer.str();
  return Status::Ok();
}

Status EnsureDirectory(const std::string& path) {
  if (mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat st;
    if (stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode))
      return Status::Ok();
    return Status::IoError(path + " exists and is not a directory");
  }
  if (errno != ENOENT) return Errno("mkdir " + path);
  // Missing parent: create it first, then retry this level once.
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0)
    return Errno("mkdir " + path);
  const Status parent = EnsureDirectory(path.substr(0, slash));
  if (!parent.ok()) return parent;
  if (mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return Errno("mkdir " + path);
}

}  // namespace catalog
}  // namespace valmod
