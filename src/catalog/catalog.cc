#include "catalog/catalog.h"

#include <cstdio>
#include <utility>

#include "catalog/format.h"
#include "catalog/mmap_file.h"
#include "obs/counters.h"

namespace valmod {
namespace catalog {
namespace {

/// Fixed-width lowercase-hex rendering of a fingerprint (mirrors
/// service/FingerprintHex; kept local so the catalog stays below the
/// service layer).
std::string HexU64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer, 16);
}

}  // namespace

Catalog::Catalog(const CatalogOptions& options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.shards > 64) options_.shards = 64;
  shard_budget_ =
      options_.resident_bytes / static_cast<std::size_t>(options_.shards);
  shards_ = std::vector<Shard>(static_cast<std::size_t>(options_.shards));
}

Status Catalog::Open() {
  if (options_.root.empty())
    return Status::InvalidArgument("catalog root directory is empty");
  Status status = EnsureDirectory(options_.root);
  if (!status.ok()) return status;
  for (int shard = 0; shard < options_.shards; ++shard) {
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%02d", shard);
    status = EnsureDirectory(options_.root + "/" + name);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

std::size_t Catalog::ShardIndexFor(const ArtifactKey& key) const {
  return ArtifactKeyHash{}(key) % shards_.size();
}

std::string Catalog::ArtifactPath(const ArtifactKey& key) const {
  char shard_name[32];
  std::snprintf(shard_name, sizeof(shard_name), "shard-%02d",
                static_cast<int>(ShardIndexFor(key)));
  return options_.root + "/" + shard_name + "/" + HexU64(key.fingerprint) +
         "-" + std::to_string(key.len_min) + "-" +
         std::to_string(key.len_max) + "-p" + std::to_string(key.p) + ".vca";
}

Status Catalog::Put(const MotifArtifact& artifact) {
  const std::string bytes = SerializeArtifact(artifact);
  const Status status = WriteFileAtomic(ArtifactPath(artifact.key), bytes);
  if (!status.ok()) return status;
  puts_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shards_[ShardIndexFor(artifact.key)];
  const MutexLock lock(&shard.mu);
  AdmitResident(shard, artifact.key,
                std::make_shared<const MotifArtifact>(artifact));
  return Status::Ok();
}

Status Catalog::Get(const ArtifactKey& key,
                    std::shared_ptr<const MotifArtifact>* out) {
  Shard& shard = shards_[ShardIndexFor(key)];
  const MutexLock lock(&shard.mu);
  const auto found = shard.index.find(key);
  if (found != shard.index.end()) {
    shard.lru.splice(shard.lru.begin(), shard.lru, found->second);
    *out = found->second->artifact;
    hits_.fetch_add(1, std::memory_order_relaxed);
    obs::Counters::RecordCatalogLookup(/*hit=*/true);
    return Status::Ok();
  }
  // Not resident: parse straight out of the mmap-ed file (the fixed-width
  // format makes this one pass, no intermediate copy of the blob). Holding
  // the shard mutex serializes concurrent loaders of the same shard, so a
  // burst of Gets for one key parses once and hits the LRU afterwards.
  MappedFile file;
  Status status = file.Open(ArtifactPath(key));
  if (!status.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Counters::RecordCatalogLookup(/*hit=*/false);
    return status;
  }
  MotifArtifact parsed;
  status = ParseArtifact(file.bytes(), ArtifactPath(key), &parsed);
  if (status.ok() && !(parsed.key == key)) {
    status = Status::InvalidArgument("artifact at " + ArtifactPath(key) +
                                     " carries a different key (renamed "
                                     "or cross-linked file)");
  }
  if (!status.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::Counters::RecordCatalogLookup(/*hit=*/false);
    return status;
  }
  auto artifact = std::make_shared<const MotifArtifact>(std::move(parsed));
  *out = artifact;
  disk_loads_.fetch_add(1, std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::Counters::RecordCatalogLookup(/*hit=*/true);
  AdmitResident(shard, key, std::move(artifact));
  return Status::Ok();
}

void Catalog::DropResident() {
  for (Shard& shard : shards_) {
    const MutexLock lock(&shard.mu);
    resident_bytes_now_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    resident_entries_.fetch_sub(static_cast<Index>(shard.lru.size()),
                                std::memory_order_relaxed);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

void Catalog::AdmitResident(Shard& shard, const ArtifactKey& key,
                            std::shared_ptr<const MotifArtifact> artifact) {
  const std::size_t bytes = artifact->ApproxBytes();
  const auto found = shard.index.find(key);
  if (found != shard.index.end()) {
    shard.bytes -= found->second->bytes;
    resident_bytes_now_.fetch_sub(found->second->bytes,
                                  std::memory_order_relaxed);
    resident_entries_.fetch_sub(1, std::memory_order_relaxed);
    shard.lru.erase(found->second);
    shard.index.erase(found);
  }
  if (bytes > shard_budget_) {
    // Oversize for a whole shard slice: serve it, but never admit it —
    // one entry that evicts an entire shard can never pay its rent.
    return;
  }
  shard.lru.push_front(Entry{key, std::move(artifact), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  resident_bytes_now_.fetch_add(bytes, std::memory_order_relaxed);
  resident_entries_.fetch_add(1, std::memory_order_relaxed);
  EvictToBudgetLocked(shard);
}

void Catalog::EvictToBudgetLocked(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    resident_bytes_now_.fetch_sub(victim.bytes, std::memory_order_relaxed);
    resident_entries_.fetch_sub(1, std::memory_order_relaxed);
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    obs::Counters::RecordCatalogEviction();
  }
}

}  // namespace catalog
}  // namespace valmod
