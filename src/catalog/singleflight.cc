#include "catalog/singleflight.h"

#include <utility>

#include "obs/counters.h"

namespace valmod {
namespace catalog {

bool Singleflight::JoinOrLead(const ArtifactKey& key, Waiter waiter) {
  const MutexLock lock(&mu_);
  auto [it, opened] = pending_.try_emplace(key);
  it->second.push_back(std::move(waiter));
  if (opened) {
    flights_led_.fetch_add(1, std::memory_order_relaxed);
  } else {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    obs::Counters::RecordCoalescedJob();
  }
  return opened;
}

void Singleflight::Complete(
    const ArtifactKey& key,
    const std::shared_ptr<const MotifArtifact>& artifact,
    const Status& status) {
  std::vector<Waiter> waiters;
  {
    const MutexLock lock(&mu_);
    const auto found = pending_.find(key);
    if (found == pending_.end()) return;
    waiters = std::move(found->second);
    pending_.erase(found);
  }
  // Outside the lock: a waiter may submit follow-up work that re-enters
  // JoinOrLead (the retry-once path) without self-deadlocking.
  for (Waiter& waiter : waiters) waiter(artifact, status);
}

Index Singleflight::in_flight() const {
  const MutexLock lock(&mu_);
  return static_cast<Index>(pending_.size());
}

}  // namespace catalog
}  // namespace valmod
