#ifndef VALMOD_CATALOG_SINGLEFLIGHT_H_
#define VALMOD_CATALOG_SINGLEFLIGHT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/artifact.h"
#include "util/common.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace valmod {
namespace catalog {

/// A request coalescer: N identical in-flight (series, range, p) cold jobs
/// cost exactly one STOMP. The first caller for a key becomes the
/// *leader* and computes; every later caller for the same key while the
/// flight is open becomes a *follower* and just parks a callback. The
/// leader's Complete() delivers the one shared artifact to every waiter.
///
/// Deliberately callback-based, not condition-variable-based: followers
/// must never occupy an executor worker while they wait, or a thundering
/// herd of W+1 identical requests on a W-worker pool would park every
/// worker on a CV and starve the leader — a deadlock by coalescing. A
/// parked callback costs a closure, not a thread.
class Singleflight {
 public:
  /// Delivery callback: the shared artifact on success (status Ok), or a
  /// null artifact with the leader's failure status. Invoked exactly once,
  /// on the leader's (worker) thread, outside the coalescer's lock.
  using Waiter = std::function<void(
      const std::shared_ptr<const MotifArtifact>&, const Status&)>;

  Singleflight() = default;
  Singleflight(const Singleflight&) = delete;
  Singleflight& operator=(const Singleflight&) = delete;

  /// Registers `waiter` under `key`. Returns true when the caller opened
  /// the flight (it is now the leader and MUST eventually call
  /// Complete()), false when an earlier leader is already computing (the
  /// waiter fires when that leader completes). Followers are counted in
  /// coalesced() and in the process-wide obs counter.
  bool JoinOrLead(const ArtifactKey& key, Waiter waiter);

  /// Closes the flight for `key`: removes it and invokes every parked
  /// waiter (leader's included, in join order) with the given artifact
  /// and status, outside the lock. No-op for an unknown key.
  void Complete(const ArtifactKey& key,
                const std::shared_ptr<const MotifArtifact>& artifact,
                const Status& status);

  /// Followers that joined an existing flight instead of computing — the
  /// STOMPs the coalescer saved.
  std::int64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// Flights opened (leaders).
  std::int64_t flights_led() const {
    return flights_led_.load(std::memory_order_relaxed);
  }
  /// Currently open flights.
  Index in_flight() const;

 private:
  mutable Mutex mu_;
  /// Open flights: key -> parked waiters (leader first). Bounded by the
  /// executor queue: every open flight has exactly one admitted job, so
  /// there are never more than queue_capacity + workers entries.
  std::unordered_map<ArtifactKey, std::vector<Waiter>, ArtifactKeyHash>
      pending_ GUARDED_BY(mu_);
  std::atomic<std::int64_t> coalesced_{0};
  std::atomic<std::int64_t> flights_led_{0};
};

}  // namespace catalog
}  // namespace valmod

#endif  // VALMOD_CATALOG_SINGLEFLIGHT_H_
