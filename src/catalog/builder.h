#ifndef VALMOD_CATALOG_BUILDER_H_
#define VALMOD_CATALOG_BUILDER_H_

#include <cstdint>
#include <span>

#include "catalog/artifact.h"
#include "util/common.h"
#include "util/status.h"
#include "util/timer.h"

namespace valmod {
namespace catalog {

/// Parameters of one artifact build; mirrors the request parameters the
/// artifact key covers, plus the top-K depth to persist.
struct BuildOptions {
  /// Length range [len_min, len_max], inclusive.
  Index len_min = 0;
  Index len_max = 0;
  /// VALMOD p parameter (part of the key for provenance).
  Index p = 10;
  /// Top-K depth stored per length. Any request with k <= stored_k is
  /// served from the artifact by prefix truncation, so builders should use
  /// the service's max_k here.
  Index stored_k = 3;
  /// Threads per ParallelStomp call; the answer is bit-identical for any
  /// value (the kernel's determinism guarantee).
  int stomp_threads = 1;
};

/// Computes the full motif artifact for `series`: centered once, one
/// PrefixStats, one deterministic ParallelStomp per length — exactly the
/// pipeline QueryEngine runs for a cold request, so artifacts built
/// offline are bit-identical to what the engine would compute online. The
/// per-length profiles are additionally folded into the VALMP
/// (Algorithm 2) so one artifact answers the whole query family.
///
/// `fingerprint` is the caller-computed series fingerprint (the engine and
/// the offline tool both use service SeriesFingerprint). Returns
/// InvalidArgument for an unusable geometry and DeadlineExceeded when
/// `deadline` lapses mid-build (`*out` is unspecified then).
Status BuildArtifact(std::span<const double> series,
                     std::uint64_t fingerprint, const BuildOptions& options,
                     const Deadline& deadline, MotifArtifact* out);

}  // namespace catalog
}  // namespace valmod

#endif  // VALMOD_CATALOG_BUILDER_H_
