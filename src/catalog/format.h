#ifndef VALMOD_CATALOG_FORMAT_H_
#define VALMOD_CATALOG_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "catalog/artifact.h"
#include "util/status.h"

namespace valmod {
namespace catalog {

/// On-disk artifact format (full spec: docs/CATALOG.md).
///
/// A catalog artifact is one little-endian binary blob of fixed-width,
/// 8-byte-aligned sections — mmap-friendly by construction — sealed with a
/// trailing FNV-1a 64 checksum over every preceding byte (the same hash
/// and trailer discipline as the stream checkpoint format):
///
///     [header 160 B] [VALMP n_slots x 32 B] [per-length records] [u64 checksum]
///
/// Each per-length record is itself fixed-width (96 + 32 * stored_k
/// bytes): unused top-K slots are padded with a canonical invalid pair, so
/// a reader can index any length's record by arithmetic alone. Doubles
/// travel as raw IEEE-754 bits, so serialization round-trips byte-exactly:
/// Serialize(Parse(Serialize(a))) == Serialize(a) for every artifact.

/// 8-byte magic opening every artifact file.
inline constexpr std::string_view kArtifactMagic = "VALMCAT\n";

/// Format version; readers reject any other value.
inline constexpr std::uint32_t kArtifactVersion = 1;

/// Fixed header size in bytes (magic through best_discord_norm).
inline constexpr std::size_t kArtifactHeaderBytes = 160;

/// Bytes per VALMP slot (distance, norm_distance, length, index).
inline constexpr std::size_t kValmpSlotBytes = 32;

/// Fixed bytes of a per-length record before its top-K slots.
inline constexpr std::size_t kLengthRecordFixedBytes = 96;

/// Bytes per top-K motif-pair slot (a, b, length, distance).
inline constexpr std::size_t kTopKSlotBytes = 32;

/// Sanity ceilings a parser enforces before any allocation, so a
/// malicious header cannot demand an unbounded reserve.
inline constexpr std::int64_t kMaxValmpSlots = std::int64_t{1} << 32;
/// Upper bound on per-artifact length records a parser accepts.
inline constexpr std::int64_t kMaxLengthRecords = std::int64_t{1} << 20;
/// Upper bound on stored_k a parser accepts.
inline constexpr std::int64_t kMaxStoredK = std::int64_t{1} << 20;

/// Serializes an artifact into the on-disk byte format described above,
/// checksum trailer included.
std::string SerializeArtifact(const MotifArtifact& artifact);

/// Parses an artifact blob (as written by SerializeArtifact, possibly via
/// an mmap view). Rejects foreign magic, other versions, count fields
/// inconsistent with the byte size, and checksum mismatches — each with a
/// distinct message naming `source`. Never allocates more than O(size)
/// bytes regardless of header contents. On success `*out` is fully
/// overwritten.
Status ParseArtifact(std::string_view bytes, const std::string& source,
                     MotifArtifact* out);

/// The exact serialized size of an artifact with the given geometry; what
/// Serialize produces and Parse demands.
std::size_t SerializedArtifactBytes(std::int64_t n_slots,
                                    std::int64_t length_count,
                                    std::int64_t stored_k);

}  // namespace catalog
}  // namespace valmod

#endif  // VALMOD_CATALOG_FORMAT_H_
