#include "catalog/builder.h"

#include <cmath>
#include <utility>
#include <vector>

#include "core/ranking.h"
#include "core/valmp.h"
#include "mp/parallel_stomp.h"
#include "obs/trace.h"
#include "signal/znorm.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace catalog {

Status BuildArtifact(std::span<const double> series,
                     std::uint64_t fingerprint, const BuildOptions& options,
                     const Deadline& deadline, MotifArtifact* out) {
  if (options.len_min < 4)
    return Status::InvalidArgument("len_min must be >= 4");
  if (options.len_max < options.len_min)
    return Status::InvalidArgument("len_max must be >= len_min");
  if (options.stored_k < 1)
    return Status::InvalidArgument("stored_k must be >= 1");
  if (options.p < 1) return Status::InvalidArgument("p must be >= 1");
  const Index n = static_cast<Index>(series.size());
  if (n < options.len_max + ExclusionZone(options.len_max)) {
    return Status::InvalidArgument(
        "series of " + std::to_string(n) + " points is too short for "
        "len_max " + std::to_string(options.len_max) +
        " (need len_max + ExclusionZone(len_max) points)");
  }

  const obs::TraceSpan span("build_artifact");
  // Mirror the ParallelStomp convenience overload — center once, share one
  // PrefixStats across lengths — so every per-length section is
  // bit-identical to a direct ParallelStomp(series, len) library call
  // (and to what QueryEngine computes for a cold request).
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);

  MotifArtifact artifact;
  artifact.key.fingerprint = fingerprint;
  artifact.key.len_min = options.len_min;
  artifact.key.len_max = options.len_max;
  artifact.key.p = options.p;
  artifact.n = n;
  artifact.stored_k = options.stored_k;
  artifact.valmp = Valmp(NumSubsequences(n, options.len_min));

  std::vector<MotifPair> per_length_motifs;
  for (Index len = options.len_min; len <= options.len_max; ++len) {
    if (deadline.Expired())
      return Status::DeadlineExceeded("deadline expired during build");
    const MatrixProfile profile =
        ParallelStomp(centered, stats, len, options.stomp_threads);
    ArtifactLength lr;
    lr.length = len;
    lr.motif = MotifFromProfile(profile);
    lr.top_k = TopMotifsFromProfile(profile, options.stored_k);
    lr.discord = DiscordFromProfile(profile);
    double sum = 0.0;
    Index finite = 0;
    for (const double d : profile.distances) {
      if (d == kInf) continue;
      lr.profile_min = d < lr.profile_min ? d : lr.profile_min;
      lr.profile_max = d > lr.profile_max ? d : lr.profile_max;
      sum += d;
      ++finite;
    }
    lr.profile_mean = finite > 0 ? sum / static_cast<double>(finite) : kInf;
    UpdateValmp(artifact.valmp, profile.distances, profile.indices, len);
    per_length_motifs.push_back(lr.motif);
    const double norm = std::sqrt(1.0 / static_cast<double>(len));
    if (lr.discord.valid() &&
        lr.discord.distance * norm > artifact.best_discord_norm) {
      artifact.best_discord = lr.discord;
      artifact.best_discord_norm = lr.discord.distance * norm;
      artifact.has_best_discord = true;
    }
    artifact.lengths.push_back(std::move(lr));
  }
  const std::vector<RankedPair> ranked =
      RankMotifsByNormalizedDistance(per_length_motifs);
  if (!ranked.empty()) {
    artifact.best_motif = ranked.front();
    artifact.has_best_motif = true;
  }
  *out = std::move(artifact);
  return Status::Ok();
}

}  // namespace catalog
}  // namespace valmod
