#ifndef VALMOD_CATALOG_ARTIFACT_H_
#define VALMOD_CATALOG_ARTIFACT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ranking.h"
#include "core/valmp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"

namespace valmod {
namespace catalog {

/// Key of one persisted artifact: the series fingerprint plus every
/// parameter the *computation* depends on. Deliberately narrower than the
/// service's CacheKey: `k` is absent because an artifact stores the
/// deepest top-K list it was built with (`MotifArtifact::stored_k`) and
/// any request with a smaller k is served by truncation —
/// TopMotifsFromProfile is a greedy ascending-distance scan, so its top-k
/// for k' < k is an exact prefix of its top-k (docs/CATALOG.md,
/// "Truncation serving").
struct ArtifactKey {
  std::uint64_t fingerprint = 0;
  Index len_min = 0;
  Index len_max = 0;
  Index p = 0;

  /// Field-wise equality.
  bool operator==(const ArtifactKey& other) const = default;
};

/// Hash for ArtifactKey; also selects the catalog shard, so equal series
/// always land in the same shard directory.
struct ArtifactKeyHash {
  /// FNV-1a style mix of every key field (same recipe as CacheKeyHash).
  std::size_t operator()(const ArtifactKey& key) const;
};

/// Everything the artifact persists for one subsequence length: the best
/// motif pair, the stored_k-deep disjoint top-K list, the top discord, and
/// the matrix-profile summary. Mirrors the service's LengthResult minus
/// the wire-level `has_*` projection flags — an artifact always stores
/// every section.
struct ArtifactLength {
  Index length = 0;
  /// Best motif pair at this length (Definition 2.3).
  MotifPair motif;
  /// Top-stored_k disjoint motif pairs at this length, best first; may be
  /// shorter when the profile yields fewer disjoint pairs.
  std::vector<MotifPair> top_k;
  /// Top discord at this length.
  Discord discord;
  /// Matrix-profile summary over the finite entries.
  double profile_min = kInf;
  double profile_mean = kInf;
  double profile_max = -kInf;
};

/// One persisted motif artifact: the full answer family for a (series,
/// length-range, p) key — VALMP, per-length motif/top-K/discord/profile
/// sections, and the cross-length length-normalized winners. The service
/// projects responses for every query type out of this one object; the
/// offline `valmod_catalog` tool builds the same object ahead of time.
struct MotifArtifact {
  ArtifactKey key;
  /// Number of points in the source series (provenance; not required to
  /// serve, but lets tools sanity-check an artifact against its series).
  Index n = 0;
  /// Depth of every per-length top-K list; requests with k <= stored_k are
  /// served from this artifact by prefix truncation.
  Index stored_k = 0;
  /// The Variable-Length Matrix Profile folded across every length in
  /// [key.len_min, key.len_max] (Algorithm 2 per length).
  Valmp valmp;
  /// One entry per length in [key.len_min, key.len_max], ascending.
  std::vector<ArtifactLength> lengths;
  bool has_best_motif = false;
  /// Best motif pair across lengths by length-normalized distance.
  RankedPair best_motif;
  bool has_best_discord = false;
  /// Best discord across lengths by length-normalized distance.
  Discord best_discord;
  double best_discord_norm = -kInf;

  /// Heap footprint estimate used against the catalog's resident-bytes
  /// budget (same role as CachedArtifact::ApproxBytes for the result
  /// cache).
  std::size_t ApproxBytes() const;
};

}  // namespace catalog
}  // namespace valmod

#endif  // VALMOD_CATALOG_ARTIFACT_H_
