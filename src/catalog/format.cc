#include "catalog/format.h"

#include <cstring>

#include "util/common.h"

namespace valmod {
namespace catalog {
namespace {

/// FNV-1a 64 over a byte range; mirrors service/fingerprint.h (kept local
/// so the catalog layer stays below the service in the link order).
std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// The canonical padding pair written into unused top-K slots, so equal
/// artifacts serialize byte-identically.
MotifPair PaddingPair() {
  MotifPair pair;
  pair.a = kNoNeighbor;
  pair.b = kNoNeighbor;
  pair.length = 0;
  pair.distance = kInf;
  return pair;
}

void AppendU64(std::string* out, std::uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<char>((value >> (i * 8)) & 0xffu);
  out->append(bytes, 8);
}

void AppendI64(std::string* out, std::int64_t value) {
  AppendU64(out, static_cast<std::uint64_t>(value));
}

void AppendF64(std::string* out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

void AppendPair(std::string* out, const MotifPair& pair) {
  AppendI64(out, pair.a);
  AppendI64(out, pair.b);
  AppendI64(out, pair.length);
  AppendF64(out, pair.distance);
}

void AppendDiscord(std::string* out, const Discord& discord) {
  AppendI64(out, discord.offset);
  AppendI64(out, discord.length);
  AppendF64(out, discord.distance);
}

/// Little-endian cursor over an artifact blob; bounds were validated
/// up-front (the byte size is an exact function of the header counts), so
/// reads never run past the end.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  std::uint64_t ReadU64() {
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (i * 8);
    }
    pos_ += 8;
    return value;
  }

  std::int64_t ReadI64() { return static_cast<std::int64_t>(ReadU64()); }

  double ReadF64() {
    const std::uint64_t bits = ReadU64();
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  MotifPair ReadPair() {
    MotifPair pair;
    pair.a = ReadI64();
    pair.b = ReadI64();
    pair.length = ReadI64();
    pair.distance = ReadF64();
    return pair;
  }

  Discord ReadDiscord() {
    Discord discord;
    discord.offset = ReadI64();
    discord.length = ReadI64();
    discord.distance = ReadF64();
    return discord;
  }

  std::size_t pos() const { return pos_; }

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

Status Corrupt(const std::string& source, const std::string& what) {
  return Status::InvalidArgument("catalog artifact " + source + ": " + what);
}

}  // namespace

std::size_t SerializedArtifactBytes(std::int64_t n_slots,
                                    std::int64_t length_count,
                                    std::int64_t stored_k) {
  return kArtifactHeaderBytes +
         static_cast<std::size_t>(n_slots) * kValmpSlotBytes +
         static_cast<std::size_t>(length_count) *
             (kLengthRecordFixedBytes +
              static_cast<std::size_t>(stored_k) * kTopKSlotBytes) +
         sizeof(std::uint64_t);
}

std::string SerializeArtifact(const MotifArtifact& artifact) {
  const std::int64_t n_slots = artifact.valmp.size();
  const std::int64_t length_count =
      static_cast<std::int64_t>(artifact.lengths.size());
  std::string out;
  out.reserve(
      SerializedArtifactBytes(n_slots, length_count, artifact.stored_k));
  out.append(kArtifactMagic);
  AppendU64(&out, kArtifactVersion);  // version u32 + reserved u32, packed
  AppendU64(&out, artifact.key.fingerprint);
  AppendI64(&out, artifact.key.len_min);
  AppendI64(&out, artifact.key.len_max);
  AppendI64(&out, artifact.key.p);
  AppendI64(&out, artifact.n);
  AppendI64(&out, artifact.stored_k);
  AppendI64(&out, n_slots);
  AppendI64(&out, length_count);
  std::uint64_t flags = 0;
  if (artifact.has_best_motif) flags |= 1u;
  if (artifact.has_best_discord) flags |= 2u;
  AppendU64(&out, flags);
  AppendI64(&out, artifact.best_motif.off1);
  AppendI64(&out, artifact.best_motif.off2);
  AppendI64(&out, artifact.best_motif.length);
  AppendF64(&out, artifact.best_motif.distance);
  AppendF64(&out, artifact.best_motif.norm_distance);
  AppendDiscord(&out, artifact.best_discord);
  AppendF64(&out, artifact.best_discord_norm);

  for (std::int64_t i = 0; i < n_slots; ++i) {
    const std::size_t slot = static_cast<std::size_t>(i);
    AppendF64(&out, artifact.valmp.distances[slot]);
    AppendF64(&out, artifact.valmp.norm_distances[slot]);
    AppendI64(&out, artifact.valmp.lengths[slot]);
    AppendI64(&out, artifact.valmp.indices[slot]);
  }

  const MotifPair padding = PaddingPair();
  for (const ArtifactLength& length : artifact.lengths) {
    AppendI64(&out, length.length);
    AppendPair(&out, length.motif);
    AppendDiscord(&out, length.discord);
    AppendF64(&out, length.profile_min);
    AppendF64(&out, length.profile_mean);
    AppendF64(&out, length.profile_max);
    const std::int64_t live =
        static_cast<std::int64_t>(length.top_k.size()) < artifact.stored_k
            ? static_cast<std::int64_t>(length.top_k.size())
            : artifact.stored_k;
    AppendI64(&out, live);
    for (std::int64_t slot = 0; slot < artifact.stored_k; ++slot) {
      AppendPair(&out, slot < live
                           ? length.top_k[static_cast<std::size_t>(slot)]
                           : padding);
    }
  }

  AppendU64(&out, Fnv1a64(out.data(), out.size()));
  return out;
}

Status ParseArtifact(std::string_view bytes, const std::string& source,
                     MotifArtifact* out) {
  if (bytes.size() < kArtifactHeaderBytes + sizeof(std::uint64_t))
    return Corrupt(source, "truncated (shorter than header + checksum)");
  if (bytes.substr(0, kArtifactMagic.size()) != kArtifactMagic)
    return Corrupt(source, "bad magic (not a catalog artifact)");

  Cursor cursor(bytes.substr(kArtifactMagic.size()));
  const std::uint64_t version = cursor.ReadU64();
  if (version != kArtifactVersion) {
    return Corrupt(source, "unsupported version " + std::to_string(version) +
                               " (expected " +
                               std::to_string(kArtifactVersion) + ")");
  }
  MotifArtifact artifact;
  artifact.key.fingerprint = cursor.ReadU64();
  artifact.key.len_min = cursor.ReadI64();
  artifact.key.len_max = cursor.ReadI64();
  artifact.key.p = cursor.ReadI64();
  artifact.n = cursor.ReadI64();
  artifact.stored_k = cursor.ReadI64();
  const std::int64_t n_slots = cursor.ReadI64();
  const std::int64_t length_count = cursor.ReadI64();
  // Bound every count before trusting it in size arithmetic; the ceilings
  // keep SerializedArtifactBytes far from 64-bit overflow.
  if (n_slots < 0 || n_slots > kMaxValmpSlots)
    return Corrupt(source, "implausible VALMP slot count");
  if (length_count < 0 || length_count > kMaxLengthRecords)
    return Corrupt(source, "implausible length-record count");
  if (artifact.stored_k < 0 || artifact.stored_k > kMaxStoredK)
    return Corrupt(source, "implausible stored_k");
  const std::size_t expected =
      SerializedArtifactBytes(n_slots, length_count, artifact.stored_k);
  if (bytes.size() != expected) {
    return Corrupt(source, "size mismatch: header promises " +
                               std::to_string(expected) + " bytes, file has " +
                               std::to_string(bytes.size()));
  }
  // Counts are now consistent with the actual byte size, so the checksum
  // and every fixed-width read below are in bounds — and allocations are
  // bounded by the input size.
  const std::size_t body = bytes.size() - sizeof(std::uint64_t);
  std::uint64_t stored_checksum = 0;
  for (int i = 0; i < 8; ++i) {
    stored_checksum |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                           bytes[body + static_cast<std::size_t>(i)]))
                       << (i * 8);
  }
  if (stored_checksum != Fnv1a64(bytes.data(), body))
    return Corrupt(source, "checksum mismatch (artifact corrupt)");

  const std::uint64_t flags = cursor.ReadU64();
  artifact.has_best_motif = (flags & 1u) != 0;
  artifact.has_best_discord = (flags & 2u) != 0;
  artifact.best_motif.off1 = cursor.ReadI64();
  artifact.best_motif.off2 = cursor.ReadI64();
  artifact.best_motif.length = cursor.ReadI64();
  artifact.best_motif.distance = cursor.ReadF64();
  artifact.best_motif.norm_distance = cursor.ReadF64();
  artifact.best_discord = cursor.ReadDiscord();
  artifact.best_discord_norm = cursor.ReadF64();

  artifact.valmp = Valmp(n_slots);
  for (std::int64_t i = 0; i < n_slots; ++i) {
    const std::size_t slot = static_cast<std::size_t>(i);
    artifact.valmp.distances[slot] = cursor.ReadF64();
    artifact.valmp.norm_distances[slot] = cursor.ReadF64();
    artifact.valmp.lengths[slot] = cursor.ReadI64();
    artifact.valmp.indices[slot] = cursor.ReadI64();
  }

  artifact.lengths.reserve(static_cast<std::size_t>(length_count));
  for (std::int64_t i = 0; i < length_count; ++i) {
    ArtifactLength length;
    length.length = cursor.ReadI64();
    length.motif = cursor.ReadPair();
    length.discord = cursor.ReadDiscord();
    length.profile_min = cursor.ReadF64();
    length.profile_mean = cursor.ReadF64();
    length.profile_max = cursor.ReadF64();
    const std::int64_t live = cursor.ReadI64();
    if (live < 0 || live > artifact.stored_k)
      return Corrupt(source, "top-K count exceeds stored_k");
    length.top_k.reserve(static_cast<std::size_t>(live));
    for (std::int64_t slot = 0; slot < artifact.stored_k; ++slot) {
      const MotifPair pair = cursor.ReadPair();
      if (slot < live) length.top_k.push_back(pair);
    }
    artifact.lengths.push_back(std::move(length));
  }

  *out = std::move(artifact);
  return Status::Ok();
}

}  // namespace catalog
}  // namespace valmod
