#ifndef VALMOD_CATALOG_CATALOG_H_
#define VALMOD_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/artifact.h"
#include "util/common.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace valmod {
namespace catalog {

/// Tuning knobs of a Catalog.
struct CatalogOptions {
  /// Root directory; shard directories (`shard-00` ...) live underneath.
  std::string root;
  /// Number of shard directories/mutexes; clamped to [1, 64]. Keys map to
  /// shards by ArtifactKeyHash, so the same series always lands in the
  /// same shard (and the same on-disk path) regardless of process.
  int shards = 8;
  /// Byte budget for resident (parsed, in-memory) artifacts across all
  /// shards; each shard gets an equal slice. Disk holds everything; this
  /// only bounds what stays hot.
  std::size_t resident_bytes = 256u << 20;
};

/// A sharded, persisted store of motif artifacts: the serving tier's
/// answer to "never pay the same STOMP twice across processes". Put()
/// serializes an artifact into the versioned+checksummed binary format
/// (catalog/format.h) and writes it atomically under its shard directory;
/// Get() serves it back from a resident LRU first and the mmap-ed file
/// second. Artifacts are handed out as shared_ptr-to-const, so eviction
/// never invalidates an answer a request is still projecting from.
///
/// Thread safety: every shard owns an annotated Mutex; cross-shard state
/// is atomic. All methods are safe from any thread after Open().
class Catalog {
 public:
  /// Stores the options; nothing touches the filesystem until Open().
  explicit Catalog(const CatalogOptions& options);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates the root and shard directories (idempotent). Must succeed
  /// before Put/Get are used.
  Status Open();

  /// Serializes `artifact` and atomically replaces its on-disk file
  /// (write-to-temp + rename, so concurrent readers only ever see a
  /// complete artifact), then makes it resident. Ok on success.
  Status Put(const MotifArtifact& artifact);

  /// Looks up `key`: resident LRU first (promoting on hit), then the
  /// shard's on-disk file via mmap + checksum-verified parse (admitting
  /// the result to the LRU). Ok fills `*out`; NotFound means the catalog
  /// has never seen this key; any other status means the file exists but
  /// is unreadable or corrupt (the caller should treat it as a miss and
  /// recompute — Put will then heal the file).
  Status Get(const ArtifactKey& key,
             std::shared_ptr<const MotifArtifact>* out);

  /// Drops every resident entry (disk is untouched). Mostly for tests and
  /// for measuring cold-load latency.
  void DropResident();

  /// The on-disk path an artifact key maps to (exists only after a Put).
  std::string ArtifactPath(const ArtifactKey& key) const;

  /// Gets that served an artifact (resident or loaded from disk).
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Gets that found nothing servable (absent, unreadable, or corrupt).
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Hits that had to parse the on-disk file (subset of hits()).
  std::int64_t disk_loads() const {
    return disk_loads_.load(std::memory_order_relaxed);
  }
  /// Resident entries dropped to get a shard back under its budget slice.
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Successful Put() calls.
  std::int64_t puts() const { return puts_.load(std::memory_order_relaxed); }
  /// Current resident (parsed, in-memory) bytes across shards.
  std::size_t resident_bytes() const {
    return resident_bytes_now_.load(std::memory_order_relaxed);
  }
  /// Current resident entry count across shards.
  Index resident_entries() const {
    return resident_entries_.load(std::memory_order_relaxed);
  }
  /// The active options (after shard clamping).
  const CatalogOptions& options() const { return options_; }

 private:
  struct Entry {
    ArtifactKey key;
    std::shared_ptr<const MotifArtifact> artifact;
    std::size_t bytes = 0;
  };
  /// One shard: a directory plus the resident-LRU slice covering it.
  struct Shard {
    mutable Mutex mu;
    /// Front = most recently used; eviction pops from the back. Bounded
    /// by the shard's resident-bytes budget slice (EvictToBudgetLocked).
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<ArtifactKey, std::list<Entry>::iterator,
                       ArtifactKeyHash>
        index GUARDED_BY(mu);
    std::size_t bytes GUARDED_BY(mu) = 0;
  };

  /// Maps a key's hash onto its owning shard index.
  std::size_t ShardIndexFor(const ArtifactKey& key) const;

  /// Inserts (or replaces) a resident entry and evicts back to budget.
  void AdmitResident(Shard& shard, const ArtifactKey& key,
                     std::shared_ptr<const MotifArtifact> artifact)
      REQUIRES(shard.mu);

  /// Pops least-recently-used entries until `shard` is back under its
  /// budget slice; counts each pop in evictions_.
  void EvictToBudgetLocked(Shard& shard) REQUIRES(shard.mu);

  CatalogOptions options_;  // unguarded: written only in the constructor
  std::size_t shard_budget_ = 0;  // unguarded: written only in constructor
  /// unguarded: the vector itself is sized in the constructor and never
  /// resized; per-shard state is guarded by each shard's own mu.
  std::vector<Shard> shards_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> disk_loads_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> puts_{0};
  std::atomic<std::size_t> resident_bytes_now_{0};
  std::atomic<Index> resident_entries_{0};
};

}  // namespace catalog
}  // namespace valmod

#endif  // VALMOD_CATALOG_CATALOG_H_
