#ifndef VALMOD_DATASETS_GENERATORS_H_
#define VALMOD_DATASETS_GENERATORS_H_

#include <cstdint>

#include "util/common.h"

namespace valmod {

/// Seeded synthetic generators standing in for the paper's real datasets
/// (see DESIGN.md, "Substitutions"). Each generator reproduces the
/// morphological property of its dataset that the VALMOD evaluation
/// depends on, not the provenance of the samples.

/// ECG stand-in (Stress Recognition in Automobile Drivers): quasi-periodic
/// heartbeats built from P/QRS/T Gaussian bumps with period and amplitude
/// jitter plus baseline wander. Regular and self-similar — the paper's
/// "easy" dataset where pairwise distances stay uniform across lengths.
Series GenerateEcg(Index n, std::uint64_t seed);

/// EMG stand-in: bursty heavy noise — quiet segments interleaved with
/// high-variance activation bursts and spikes. The paper's "hard" dataset:
/// pairwise distances blow up at long subsequence lengths, which degrades
/// the Eq. 2 lower bound (Figures 9-11).
Series GenerateEmg(Index n, std::uint64_t seed);

/// GAP stand-in (global active power): daily load cycle with morning and
/// evening peaks, weekly modulation, random level shifts and spiky
/// appliance events, positive-valued.
Series GenerateGap(Index n, std::uint64_t seed);

/// ASTRO stand-in (celestial-object series): smooth low-amplitude
/// superposition of slow oscillations with occasional flare transients
/// (sharp rise, exponential decay) and very small noise.
Series GenerateAstro(Index n, std::uint64_t seed);

/// EEG stand-in (CAP sleep dataset): ongoing oscillatory background with
/// amplitude-modulated bursts (A-phase-like events) recurring throughout,
/// and measurement noise. Values span a large range like scalp EEG in uV.
Series GenerateEeg(Index n, std::uint64_t seed);

/// A single washing-machine-style signature (the TRACE dataset shape used
/// in Figure 2): flat lead-in, sharp rise, oscillating plateau, decay.
/// `len` is the signature length in samples.
Series GenerateTraceSignature(Index len, std::uint64_t seed);

/// Seismogram stand-in for the paper's seismology case study: continuous
/// microseismic background noise punctuated by "repeating earthquakes" —
/// two families of stereotyped event waveforms (impulsive onset, oscillatory
/// coda with exponential decay) with *different characteristic durations*,
/// each recurring several times. Variable-length motif discovery should
/// recover both families; `out_event_offsets`/`out_event_family` (optional)
/// receive the ground truth.
Series GenerateSeismic(Index n, std::uint64_t seed,
                       std::vector<Index>* out_event_offsets = nullptr,
                       std::vector<int>* out_event_family = nullptr);

/// Durations (in samples) of the two seismic event families embedded by
/// GenerateSeismic.
inline constexpr Index kSeismicFamilyALength = 120;
inline constexpr Index kSeismicFamilyBLength = 180;

/// Pure Gaussian random walk; the neutral background for property tests.
Series GenerateRandomWalk(Index n, std::uint64_t seed, double step = 1.0);

/// Parameters of GeneratePlantedWalk.
struct PlantedWalkSpec {
  /// Length of the planted motif template in samples.
  Index motif_length = 64;
  /// Mean spacing between consecutive occurrence starts; must exceed
  /// motif_length so occurrences never overlap.
  Index mean_period = 600;
  /// Relative jitter of the spacing: each gap is drawn uniformly from
  /// [mean_period * (1 - jitter), mean_period * (1 + jitter)].
  double period_jitter = 0.3;
  /// Scale of the template relative to the walk's step size.
  double amplitude = 4.0;
  /// Standard deviation of per-occurrence additive noise, so occurrences
  /// are near-identical but not bitwise equal.
  double occurrence_noise = 0.05;
  /// Step size of the random-walk background.
  double walk_step = 0.5;
};

/// Streaming-benchmark generator: a Gaussian random walk with one
/// stereotyped motif planted at quasi-periodic offsets. Because occurrences
/// keep arriving for the whole stream, a sliding window of a few periods
/// always contains at least two — the ground truth the online tracker
/// (src/stream) is tested and benchmarked against. `out_offsets` (optional)
/// receives the occurrence start offsets.
Series GeneratePlantedWalk(Index n, std::uint64_t seed,
                           const PlantedWalkSpec& spec,
                           std::vector<Index>* out_offsets = nullptr);

/// Default-spec overload matching the dataset-registry generator signature.
Series GeneratePlantedWalk(Index n, std::uint64_t seed);

/// Adds `pattern` into `series` starting at `offset`, scaled by `scale`,
/// blended additively. Used to plant known motifs for exactness tests.
void InjectPattern(Series& series, const Series& pattern, Index offset,
                   double scale = 1.0);

}  // namespace valmod

#endif  // VALMOD_DATASETS_GENERATORS_H_
