#ifndef VALMOD_DATASETS_GENERATORS_H_
#define VALMOD_DATASETS_GENERATORS_H_

#include <cstdint>

#include "util/common.h"

namespace valmod {

/// Seeded synthetic generators standing in for the paper's real datasets
/// (see DESIGN.md, "Substitutions"). Each generator reproduces the
/// morphological property of its dataset that the VALMOD evaluation
/// depends on, not the provenance of the samples.

/// ECG stand-in (Stress Recognition in Automobile Drivers): quasi-periodic
/// heartbeats built from P/QRS/T Gaussian bumps with period and amplitude
/// jitter plus baseline wander. Regular and self-similar — the paper's
/// "easy" dataset where pairwise distances stay uniform across lengths.
Series GenerateEcg(Index n, std::uint64_t seed);

/// EMG stand-in: bursty heavy noise — quiet segments interleaved with
/// high-variance activation bursts and spikes. The paper's "hard" dataset:
/// pairwise distances blow up at long subsequence lengths, which degrades
/// the Eq. 2 lower bound (Figures 9-11).
Series GenerateEmg(Index n, std::uint64_t seed);

/// GAP stand-in (global active power): daily load cycle with morning and
/// evening peaks, weekly modulation, random level shifts and spiky
/// appliance events, positive-valued.
Series GenerateGap(Index n, std::uint64_t seed);

/// ASTRO stand-in (celestial-object series): smooth low-amplitude
/// superposition of slow oscillations with occasional flare transients
/// (sharp rise, exponential decay) and very small noise.
Series GenerateAstro(Index n, std::uint64_t seed);

/// EEG stand-in (CAP sleep dataset): ongoing oscillatory background with
/// amplitude-modulated bursts (A-phase-like events) recurring throughout,
/// and measurement noise. Values span a large range like scalp EEG in uV.
Series GenerateEeg(Index n, std::uint64_t seed);

/// A single washing-machine-style signature (the TRACE dataset shape used
/// in Figure 2): flat lead-in, sharp rise, oscillating plateau, decay.
/// `len` is the signature length in samples.
Series GenerateTraceSignature(Index len, std::uint64_t seed);

/// Seismogram stand-in for the paper's seismology case study: continuous
/// microseismic background noise punctuated by "repeating earthquakes" —
/// two families of stereotyped event waveforms (impulsive onset, oscillatory
/// coda with exponential decay) with *different characteristic durations*,
/// each recurring several times. Variable-length motif discovery should
/// recover both families; `out_event_offsets`/`out_event_family` (optional)
/// receive the ground truth.
Series GenerateSeismic(Index n, std::uint64_t seed,
                       std::vector<Index>* out_event_offsets = nullptr,
                       std::vector<int>* out_event_family = nullptr);

/// Durations (in samples) of the two seismic event families embedded by
/// GenerateSeismic.
inline constexpr Index kSeismicFamilyALength = 120;
inline constexpr Index kSeismicFamilyBLength = 180;

/// Pure Gaussian random walk; the neutral background for property tests.
Series GenerateRandomWalk(Index n, std::uint64_t seed, double step = 1.0);

/// Adds `pattern` into `series` starting at `offset`, scaled by `scale`,
/// blended additively. Used to plant known motifs for exactness tests.
void InjectPattern(Series& series, const Series& pattern, Index offset,
                   double scale = 1.0);

}  // namespace valmod

#endif  // VALMOD_DATASETS_GENERATORS_H_
