#ifndef VALMOD_DATASETS_EPG_H_
#define VALMOD_DATASETS_EPG_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Parameters of the Electrical Penetration Graph simulator (the insect
/// feeding recording of the Figure 1 / Section 9.1 case study).
struct EpgOptions {
  /// Total series length in samples.
  Index n = 205000 / 10;
  /// Samples per second; the paper's 205k points over 5.5 h is ~10 Hz.
  double sample_rate = 10.0;
  /// Duration of the probing behaviour motif, seconds (paper: ~10 s).
  double probing_seconds = 10.0;
  /// Duration of the xylem-ingestion ("sucking") motif, seconds (~12 s).
  double ingestion_seconds = 12.0;
  /// How many instances of each behaviour to embed.
  Index probing_instances = 6;
  Index ingestion_instances = 6;
  std::uint64_t seed = 42;
};

/// Ground truth of one embedded behaviour instance.
struct EpgEvent {
  enum class Kind { kProbing, kIngestion };
  Kind kind;
  Index offset;
  Index length;
};

/// A generated EPG recording plus the ground-truth event log.
struct EpgSeries {
  Series values;
  std::vector<EpgEvent> events;

  /// Length (samples) of the probing motif instances.
  Index probing_length = 0;
  /// Length (samples) of the ingestion motif instances.
  Index ingestion_length = 0;
};

/// Simulates an EPG recording: drifting baseline punctuated by two
/// behaviour classes of *different characteristic lengths* — a spiky
/// probing waveform (~10 s) and a smooth rhythmic ingestion waveform
/// (~12 s) — each repeated with small jitter. Variable-length motif
/// discovery should surface both; a single-length search can only see one
/// (the paper's motivating example).
EpgSeries GenerateEpg(const EpgOptions& options = EpgOptions());

}  // namespace valmod

#endif  // VALMOD_DATASETS_EPG_H_
