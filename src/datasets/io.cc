#include "datasets/io.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace valmod {

Status WriteSeriesText(const Series& series, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for write: " + path);
  file.precision(17);
  for (double v : series) file << v << '\n';
  file.flush();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status ReadSeriesText(const std::string& path, Series* out) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open for read: " + path);
  out->clear();
  std::string line;
  while (std::getline(file, line)) {
    // Accept comma- or whitespace-separated values per line.
    for (char& c : line) {
      if (c == ',' || c == ';' || c == '\t') c = ' ';
    }
    std::istringstream tokens(line);
    std::string token;
    while (tokens >> token) {
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("malformed value '" + token + "' in " +
                                       path);
      }
      out->push_back(v);
    }
  }
  return Status::Ok();
}

Status WriteSeriesBinary(const Series& series, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for write: " + path);
  const std::uint64_t count = series.size();
  file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  file.write(reinterpret_cast<const char*>(series.data()),
             static_cast<std::streamsize>(count * sizeof(double)));
  file.flush();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status ReadSeriesBinary(const std::string& path, Series* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for read: " + path);
  std::uint64_t count = 0;
  file.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!file) return Status::IoError("truncated header: " + path);
  out->assign(count, 0.0);
  file.read(reinterpret_cast<char*>(out->data()),
            static_cast<std::streamsize>(count * sizeof(double)));
  if (!file) return Status::IoError("truncated payload: " + path);
  return Status::Ok();
}

}  // namespace valmod
