#include "datasets/generators.h"

#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace valmod {
namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Gaussian bump centred at `center` with width `sigma`, evaluated at x.
double Bump(double x, double center, double sigma) {
  const double d = (x - center) / sigma;
  return std::exp(-0.5 * d * d);
}

}  // namespace

Series GenerateEcg(Index n, std::uint64_t seed) {
  VALMOD_CHECK(n >= 1);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n), 0.0);
  // Baseline wander: a slow drifting sinusoid.
  const double wander_freq = kTwoPi / 900.0;
  const double wander_phase = rng.Uniform(0.0, kTwoPi);
  for (Index i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        0.05 * std::sin(wander_freq * static_cast<double>(i) + wander_phase);
  }
  // Beats: P wave, QRS complex (down-up-down), T wave, repeated with
  // period and amplitude jitter.
  Index beat_start = 0;
  while (beat_start < n) {
    const double period = 80.0 + rng.Gaussian(0.0, 1.5);
    const double amp = 1.0 + rng.Gaussian(0.0, 0.05);
    const Index beat_len = static_cast<Index>(period);
    for (Index k = 0; k < beat_len && beat_start + k < n; ++k) {
      const double x = static_cast<double>(k);
      double v = 0.0;
      v += 0.12 * amp * Bump(x, 0.22 * period, 0.040 * period);   // P
      v -= 0.10 * amp * Bump(x, 0.35 * period, 0.022 * period);   // Q
      v += 1.00 * amp * Bump(x, 0.40 * period, 0.030 * period);   // R
      v -= 0.18 * amp * Bump(x, 0.46 * period, 0.024 * period);   // S
      v += 0.25 * amp * Bump(x, 0.70 * period, 0.060 * period);   // T
      out[static_cast<std::size_t>(beat_start + k)] += v;
    }
    beat_start += std::max<Index>(beat_len, 1);
  }
  for (Index i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] += rng.Gaussian(0.0, 0.015);
  }
  return out;
}

Series GenerateEmg(Index n, std::uint64_t seed) {
  VALMOD_CHECK(n >= 1);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n), 0.0);
  // Activation bursts assembled from a small pool of stereotyped
  // "motor unit" waveforms fired in random order, separated by quiet gaps
  // of random length. Windows at the unit scale (<= ~64 samples) repeat
  // throughout the recording, but longer windows span several units in a
  // random sequence (plus a variable-length gap) and stop matching — the
  // length-dependent degradation behind the paper's EMG observations
  // (Figures 8-11). The quiet/burst amplitude contrast additionally makes
  // quiet-anchored windows suffer a sigma jump when they grow into a
  // burst, collapsing the Eq. 2 sigma ratio.
  constexpr Index kUnitLen = 64;
  constexpr int kPoolSize = 5;
  constexpr Index kUnitsPerBurst = 4;
  Series pool[kPoolSize];
  for (auto& unit : pool) {
    unit.assign(kUnitLen, 0.0);
    double smooth = 0.0;
    for (Index k = 0; k < kUnitLen; ++k) {
      smooth = 0.6 * smooth + rng.Gaussian(0.0, 0.2);
      const double envelope = 0.4 + 0.6 * std::sin(M_PI * static_cast<double>(k) /
                                                   static_cast<double>(kUnitLen));
      unit[static_cast<std::size_t>(k)] = envelope * smooth;
    }
  }
  Index i = 0;
  while (i < n) {
    const Index gap = rng.UniformIndex(120, 600);
    for (Index k = 0; k < gap && i < n; ++k, ++i) {
      out[static_cast<std::size_t>(i)] = rng.Gaussian(0.0, 0.015);
    }
    // One burst: kUnitsPerBurst units drawn with replacement from the pool.
    const double amp = rng.Uniform(0.8, 1.2);
    for (Index u = 0; u < kUnitsPerBurst; ++u) {
      const Series& unit = pool[static_cast<std::size_t>(
          rng.UniformIndex(0, kPoolSize - 1))];
      for (Index k = 0; k < kUnitLen && i < n; ++k, ++i) {
        double v = amp * unit[static_cast<std::size_t>(k)] +
                   rng.Gaussian(0.0, 0.02);
        if (rng.Bernoulli(0.01)) v += rng.Uniform(0.3, 0.7);  // Spike.
        out[static_cast<std::size_t>(i)] = v;
      }
    }
  }
  return out;
}

Series GenerateGap(Index n, std::uint64_t seed) {
  VALMOD_CHECK(n >= 1);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n), 0.0);
  const double day = 144.0;  // One simulated day in samples.
  double level = 1.0;        // Base household load, kW.
  Index next_shift = rng.UniformIndex(500, 3000);
  for (Index i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double phase = std::fmod(t, day) / day;  // Position in the day.
    // Morning and evening peaks on a small nightly base.
    double v = level;
    v += 1.6 * Bump(phase, 0.33, 0.05);
    v += 2.4 * Bump(phase, 0.79, 0.07);
    // Weekly modulation.
    v *= 1.0 + 0.15 * std::sin(kTwoPi * t / (7.0 * day));
    // Appliance spikes.
    if (rng.Bernoulli(0.004)) v += rng.Uniform(1.0, 5.0);
    v += rng.Gaussian(0.0, 0.08);
    if (v < 0.05) v = 0.05;  // Power draw never goes negative.
    out[static_cast<std::size_t>(i)] = v;
    // Occasional level shift (occupancy change).
    if (--next_shift <= 0) {
      level = rng.Uniform(0.6, 1.6);
      next_shift = rng.UniformIndex(500, 3000);
    }
  }
  return out;
}

Series GenerateAstro(Index n, std::uint64_t seed) {
  VALMOD_CHECK(n >= 1);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n), 0.0);
  // Smooth background: three slow incommensurate oscillations at the
  // dataset's tiny amplitude scale (~1e-3, Table 1).
  const double p1 = rng.Uniform(0.0, kTwoPi);
  const double p2 = rng.Uniform(0.0, kTwoPi);
  const double p3 = rng.Uniform(0.0, kTwoPi);
  for (Index i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double v = 0.0;
    v += 0.0012 * std::sin(kTwoPi * t / 1450.0 + p1);
    v += 0.0007 * std::sin(kTwoPi * t / 530.0 + p2);
    v += 0.0004 * std::sin(kTwoPi * t / 211.0 + p3);
    v += rng.Gaussian(0.0, 0.00005);
    out[static_cast<std::size_t>(i)] = v;
  }
  // Rare flares: sharp rise, exponential decay.
  const Index n_flares = std::max<Index>(1, n / 20000);
  for (Index f = 0; f < n_flares; ++f) {
    const Index at = rng.UniformIndex(0, n - 1);
    const double amp = rng.Uniform(0.001, 0.003);
    const double tau = rng.Uniform(30.0, 120.0);
    for (Index k = 0; at + k < n && k < static_cast<Index>(8.0 * tau); ++k) {
      out[static_cast<std::size_t>(at + k)] +=
          amp * std::exp(-static_cast<double>(k) / tau);
    }
  }
  return out;
}

Series GenerateEeg(Index n, std::uint64_t seed) {
  VALMOD_CHECK(n >= 1);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n), 0.0);
  // Background: alpha-band-like oscillation with slowly wandering
  // amplitude, at scalp-EEG scale (tens of uV).
  double amp = 20.0;
  const double p1 = rng.Uniform(0.0, kTwoPi);
  for (Index i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    amp += rng.Gaussian(0.0, 0.3);
    if (amp < 5.0) amp = 5.0;
    if (amp > 40.0) amp = 40.0;
    double v = amp * std::sin(kTwoPi * t / 11.0 + p1);
    v += 0.4 * amp * std::sin(kTwoPi * t / 23.0);
    v += rng.Gaussian(0.0, 4.0);
    out[static_cast<std::size_t>(i)] = v;
  }
  // CAP A-phase-like events: recurring bursts of high-amplitude slow waves.
  Index at = rng.UniformIndex(200, 1200);
  while (at < n) {
    const Index burst_len = rng.UniformIndex(80, 200);
    const double burst_amp = rng.Uniform(150.0, 400.0);
    for (Index k = 0; k < burst_len && at + k < n; ++k) {
      const double envelope =
          std::sin(M_PI * static_cast<double>(k) / static_cast<double>(burst_len));
      out[static_cast<std::size_t>(at + k)] +=
          burst_amp * envelope *
          std::sin(kTwoPi * static_cast<double>(k) / 40.0);
    }
    at += burst_len + rng.UniformIndex(400, 2000);
  }
  return out;
}

Series GenerateTraceSignature(Index len, std::uint64_t seed) {
  VALMOD_CHECK(len >= 16);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(len), 0.0);
  // Piecewise washing-machine cycle: flat lead-in (10%), ramp-up (10%),
  // oscillating plateau (60%), decay (20%).
  const Index flat_end = len / 10;
  const Index ramp_end = len / 5;
  const Index plateau_end = (len * 4) / 5;
  const double osc_period = static_cast<double>(len) / 12.0;
  for (Index i = 0; i < len; ++i) {
    double v = 0.0;
    if (i < flat_end) {
      v = 0.0;
    } else if (i < ramp_end) {
      v = static_cast<double>(i - flat_end) /
          static_cast<double>(ramp_end - flat_end);
    } else if (i < plateau_end) {
      v = 1.0 + 0.25 * std::sin(kTwoPi * static_cast<double>(i - ramp_end) /
                                osc_period);
    } else {
      const double frac = static_cast<double>(i - plateau_end) /
                          static_cast<double>(len - plateau_end);
      v = (1.0 - frac);
    }
    out[static_cast<std::size_t>(i)] = v + rng.Gaussian(0.0, 0.01);
  }
  return out;
}

namespace {

/// One stereotyped earthquake waveform: impulsive onset, oscillatory coda
/// with exponential decay. Deterministic per (seed-derived) parameters so
/// all instances of a family share fine structure.
Series EarthquakeTemplate(Index len, double carrier_period, Rng& rng) {
  Series out(static_cast<std::size_t>(len), 0.0);
  const double phase = rng.Uniform(0.0, kTwoPi);
  const double tau = static_cast<double>(len) / 3.5;
  for (Index k = 0; k < len; ++k) {
    const double t = static_cast<double>(k);
    // Sharp rise over the first ~5% (P arrival), then exponential decay.
    const double rise = 1.0 - std::exp(-t / (0.05 * static_cast<double>(len)));
    const double decay = std::exp(-t / tau);
    double v = rise * decay * std::sin(kTwoPi * t / carrier_period + phase);
    // Higher-frequency component riding the coda.
    v += 0.35 * rise * decay *
         std::sin(kTwoPi * t / (carrier_period * 0.37) + 2.0 * phase);
    out[static_cast<std::size_t>(k)] = v;
  }
  return out;
}

}  // namespace

Series GenerateSeismic(Index n, std::uint64_t seed,
                       std::vector<Index>* out_event_offsets,
                       std::vector<int>* out_event_family) {
  VALMOD_CHECK(n >= 2000);
  Rng rng(seed);
  // Microseismic background: band-limited noise (AR(2)-ish), small
  // amplitude relative to events.
  Series out(static_cast<std::size_t>(n), 0.0);
  double x1 = 0.0;
  double x2 = 0.0;
  for (Index i = 0; i < n; ++i) {
    const double x = 1.6 * x1 - 0.7 * x2 + rng.Gaussian(0.0, 0.02);
    out[static_cast<std::size_t>(i)] = x;
    x2 = x1;
    x1 = x;
  }
  // Two repeating-earthquake families of different durations.
  const Series family_a = EarthquakeTemplate(kSeismicFamilyALength, 9.0, rng);
  const Series family_b = EarthquakeTemplate(kSeismicFamilyBLength, 14.0, rng);
  const Index events = std::max<Index>(6, n / 2500);
  Index cursor = rng.UniformIndex(100, 400);
  for (Index e = 0; e < events && cursor + kSeismicFamilyBLength < n; ++e) {
    const bool use_a = (e % 2 == 0);
    const Series& tmpl = use_a ? family_a : family_b;
    const double magnitude = rng.Uniform(0.9, 1.1);
    for (std::size_t k = 0; k < tmpl.size(); ++k) {
      out[static_cast<std::size_t>(cursor) + k] += magnitude * tmpl[k];
    }
    if (out_event_offsets != nullptr) out_event_offsets->push_back(cursor);
    if (out_event_family != nullptr) out_event_family->push_back(use_a ? 0 : 1);
    cursor += static_cast<Index>(tmpl.size()) +
              rng.UniformIndex(kSeismicFamilyBLength, kSeismicFamilyBLength * 3);
  }
  return out;
}

Series GenerateRandomWalk(Index n, std::uint64_t seed, double step) {
  VALMOD_CHECK(n >= 1);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  double level = 0.0;
  for (Index i = 0; i < n; ++i) {
    level += rng.Gaussian(0.0, step);
    out[static_cast<std::size_t>(i)] = level;
  }
  return out;
}

Series GeneratePlantedWalk(Index n, std::uint64_t seed,
                           const PlantedWalkSpec& spec,
                           std::vector<Index>* out_offsets) {
  VALMOD_CHECK(n >= 1);
  VALMOD_CHECK(spec.motif_length >= 4);
  VALMOD_CHECK(spec.mean_period > spec.motif_length);
  VALMOD_CHECK(spec.period_jitter >= 0.0 && spec.period_jitter < 1.0);
  Rng rng(seed);
  Series out(static_cast<std::size_t>(n));
  double level = 0.0;
  for (Index i = 0; i < n; ++i) {
    level += rng.Gaussian(0.0, spec.walk_step);
    out[static_cast<std::size_t>(i)] = level;
  }
  // The template: two incommensurate oscillations plus smoothed noise
  // detail, fixed per seed so every occurrence shares fine structure.
  const Index len = spec.motif_length;
  const double p1 = rng.Uniform(0.0, kTwoPi);
  const double p2 = rng.Uniform(0.0, kTwoPi);
  Series tmpl(static_cast<std::size_t>(len));
  double smooth = 0.0;
  for (Index k = 0; k < len; ++k) {
    const double t = static_cast<double>(k);
    smooth = 0.7 * smooth + rng.Gaussian(0.0, 0.25);
    tmpl[static_cast<std::size_t>(k)] =
        std::sin(kTwoPi * t * 3.0 / static_cast<double>(len) + p1) +
        0.5 * std::sin(kTwoPi * t * 7.0 / static_cast<double>(len) + p2) +
        smooth;
  }
  // Plant occurrences at quasi-periodic offsets for the whole stream.
  const Index lo = static_cast<Index>(
      static_cast<double>(spec.mean_period) * (1.0 - spec.period_jitter));
  const Index hi = static_cast<Index>(
      static_cast<double>(spec.mean_period) * (1.0 + spec.period_jitter));
  Index cursor = rng.UniformIndex(0, spec.mean_period);
  while (cursor + len <= n) {
    for (Index k = 0; k < len; ++k) {
      out[static_cast<std::size_t>(cursor + k)] +=
          spec.amplitude * tmpl[static_cast<std::size_t>(k)] +
          rng.Gaussian(0.0, spec.occurrence_noise);
    }
    if (out_offsets != nullptr) out_offsets->push_back(cursor);
    cursor += std::max<Index>(len + 1, rng.UniformIndex(lo, hi));
  }
  return out;
}

Series GeneratePlantedWalk(Index n, std::uint64_t seed) {
  return GeneratePlantedWalk(n, seed, PlantedWalkSpec{});
}

void InjectPattern(Series& series, const Series& pattern, Index offset,
                   double scale) {
  VALMOD_CHECK(offset >= 0);
  VALMOD_CHECK(static_cast<std::size_t>(offset) + pattern.size() <=
               series.size());
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    series[static_cast<std::size_t>(offset) + k] += scale * pattern[k];
  }
}

}  // namespace valmod
