#ifndef VALMOD_DATASETS_REGISTRY_H_
#define VALMOD_DATASETS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// Descriptor of one benchmark dataset (the five of Table 1).
struct DatasetSpec {
  std::string name;         // "ECG", "GAP", "ASTRO", "EMG", "EEG"
  std::string description;  // What the real dataset was; what we simulate.
  std::uint64_t default_seed;
  Series (*generator)(Index n, std::uint64_t seed);
};

/// The five evaluation datasets, in the paper's Table 1 order
/// (ECG, GAP, ASTRO, EMG, EEG).
const std::vector<DatasetSpec>& BenchmarkDatasets();

/// Datasets outside the paper's Table 1 evaluation set (currently PLANTED,
/// the streaming planted-motif walk). Kept separate so the batch benchmark
/// suites that iterate BenchmarkDatasets() stay pinned to the paper's five.
const std::vector<DatasetSpec>& ExtraDatasets();

/// Generates `n` points of the named dataset (case-insensitive) with its
/// default seed, searching BenchmarkDatasets() then ExtraDatasets().
/// Returns kNotFound for unknown names.
Status GenerateByName(const std::string& name, Index n, Series* out);

}  // namespace valmod

#endif  // VALMOD_DATASETS_REGISTRY_H_
