#ifndef VALMOD_DATASETS_IO_H_
#define VALMOD_DATASETS_IO_H_

#include <string>

#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// Writes one value per line in plain text (the format the paper's public
/// datasets ship in).
Status WriteSeriesText(const Series& series, const std::string& path);

/// Reads a one-value-per-line (or comma/whitespace-separated) text file.
/// Blank lines are skipped; a malformed token fails the whole read.
Status ReadSeriesText(const std::string& path, Series* out);

/// Writes the series as little-endian IEEE-754 doubles with an 8-byte
/// count header.
Status WriteSeriesBinary(const Series& series, const std::string& path);

/// Reads a series written by WriteSeriesBinary.
Status ReadSeriesBinary(const std::string& path, Series* out);

}  // namespace valmod

#endif  // VALMOD_DATASETS_IO_H_
