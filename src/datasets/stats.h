#ifndef VALMOD_DATASETS_STATS_H_
#define VALMOD_DATASETS_STATS_H_

#include <span>

#include "util/common.h"

namespace valmod {

/// The per-dataset summary the paper reports in Table 1.
struct SeriesSummary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double std = 0.0;
  Index n = 0;
};

/// One-pass summary statistics of a series.
SeriesSummary Summarize(std::span<const double> series);

}  // namespace valmod

#endif  // VALMOD_DATASETS_STATS_H_
