#include "datasets/epg.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace valmod {
namespace {

constexpr double kTwoPi = 6.283185307179586;

/// The probing waveform: repeated sharp sawtooth penetrations with a
/// pause — the "highly technical probing skill" searching for a vein.
Series ProbingTemplate(Index len, Rng& rng) {
  Series out(static_cast<std::size_t>(len), 0.0);
  const double tooth_period = static_cast<double>(len) / 7.0;
  for (Index i = 0; i < len; ++i) {
    const double phase =
        std::fmod(static_cast<double>(i), tooth_period) / tooth_period;
    // Sawtooth: fast rise, sharp drop; deeper teeth in the middle.
    const double depth =
        0.6 + 0.4 * std::sin(M_PI * static_cast<double>(i) /
                             static_cast<double>(len));
    out[static_cast<std::size_t>(i)] =
        depth * (phase < 0.8 ? phase / 0.8 : (1.0 - phase) / 0.2) +
        rng.Gaussian(0.0, 0.015);
  }
  return out;
}

/// The ingestion waveform: smooth low-frequency rhythmic sucking.
Series IngestionTemplate(Index len, Rng& rng) {
  Series out(static_cast<std::size_t>(len), 0.0);
  const double period = static_cast<double>(len) / 9.0;
  for (Index i = 0; i < len; ++i) {
    const double t = static_cast<double>(i);
    double v = 0.45 * std::sin(kTwoPi * t / period);
    v += 0.12 * std::sin(2.0 * kTwoPi * t / period + 0.7);
    out[static_cast<std::size_t>(i)] = v + rng.Gaussian(0.0, 0.01);
  }
  return out;
}

}  // namespace

EpgSeries GenerateEpg(const EpgOptions& options) {
  VALMOD_CHECK(options.n >= 1000);
  Rng rng(options.seed);
  EpgSeries out;
  out.values.assign(static_cast<std::size_t>(options.n), 0.0);
  out.probing_length =
      static_cast<Index>(options.probing_seconds * options.sample_rate);
  out.ingestion_length =
      static_cast<Index>(options.ingestion_seconds * options.sample_rate);

  // Baseline: slow random walk with mild mean reversion (electrode drift).
  double level = 0.0;
  for (Index i = 0; i < options.n; ++i) {
    level += rng.Gaussian(0.0, 0.01) - 0.001 * level;
    out.values[static_cast<std::size_t>(i)] = level + rng.Gaussian(0.0, 0.02);
  }

  // Schedule the behaviour instances at non-overlapping random offsets.
  const Index total = options.probing_instances + options.ingestion_instances;
  const Index max_len = std::max(out.probing_length, out.ingestion_length);
  VALMOD_CHECK_MSG(total * (max_len + 40) * 2 < options.n,
                   "series too short for the requested events");
  std::vector<Index> starts;
  Index cursor = rng.UniformIndex(50, 200);
  for (Index e = 0; e < total; ++e) {
    starts.push_back(cursor);
    cursor += max_len + rng.UniformIndex(max_len / 2, max_len * 2);
  }
  VALMOD_CHECK(cursor < options.n);
  // Shuffle which slots get which behaviour.
  std::vector<EpgEvent::Kind> kinds;
  for (Index e = 0; e < options.probing_instances; ++e) {
    kinds.push_back(EpgEvent::Kind::kProbing);
  }
  for (Index e = 0; e < options.ingestion_instances; ++e) {
    kinds.push_back(EpgEvent::Kind::kIngestion);
  }
  for (Index i = total - 1; i > 0; --i) {
    const Index j = rng.UniformIndex(0, i);
    std::swap(kinds[static_cast<std::size_t>(i)],
              kinds[static_cast<std::size_t>(j)]);
  }

  for (Index e = 0; e < total; ++e) {
    const bool probing = kinds[static_cast<std::size_t>(e)] ==
                         EpgEvent::Kind::kProbing;
    const Index len = probing ? out.probing_length : out.ingestion_length;
    Series tmpl =
        probing ? ProbingTemplate(len, rng) : IngestionTemplate(len, rng);
    const double scale = 1.0 + rng.Gaussian(0.0, 0.03);
    const Index at = starts[static_cast<std::size_t>(e)];
    for (Index k = 0; k < len; ++k) {
      out.values[static_cast<std::size_t>(at + k)] +=
          scale * tmpl[static_cast<std::size_t>(k)];
    }
    out.events.push_back(EpgEvent{probing ? EpgEvent::Kind::kProbing
                                          : EpgEvent::Kind::kIngestion,
                                  at, len});
  }
  return out;
}

}  // namespace valmod
