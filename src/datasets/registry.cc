#include "datasets/registry.h"

#include <algorithm>
#include <cctype>

#include "datasets/generators.h"

namespace valmod {

const std::vector<DatasetSpec>& BenchmarkDatasets() {
  // Leak-on-purpose singleton: destroying it at exit would race other
  // static destructors.  // lint: allow(no-naked-new) -- see above
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      {"ECG", "driver-stress electrocardiogram (PhysioNet) stand-in", 101,
       &GenerateEcg},
      {"GAP", "French global-active-power recording (EDF) stand-in", 102,
       &GenerateGap},
      {"ASTRO", "celestial-object hard-X-ray series stand-in", 103,
       &GenerateAstro},
      {"EMG", "driver-stress electromyogram (PhysioNet) stand-in", 104,
       &GenerateEmg},
      {"EEG", "cyclic-alternating-pattern sleep EEG stand-in", 105,
       &GenerateEeg},
  };
  return specs;
}

const std::vector<DatasetSpec>& ExtraDatasets() {
  // Leak-on-purpose singleton, same rationale as BenchmarkDatasets().
  // lint: allow(no-naked-new) -- see above
  static const std::vector<DatasetSpec>& specs = *new std::vector<DatasetSpec>{
      {"PLANTED",
       "random walk with a quasi-periodically planted motif (streaming)", 106,
       &GeneratePlantedWalk},
  };
  return specs;
}

Status GenerateByName(const std::string& name, Index n, Series* out) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  for (const auto* list : {&BenchmarkDatasets(), &ExtraDatasets()}) {
    for (const DatasetSpec& spec : *list) {
      if (spec.name == upper) {
        *out = spec.generator(n, spec.default_seed);
        return Status::Ok();
      }
    }
  }
  return Status::NotFound("unknown dataset: " + name);
}

}  // namespace valmod
