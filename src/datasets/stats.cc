#include "datasets/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace valmod {

SeriesSummary Summarize(std::span<const double> series) {
  VALMOD_CHECK(!series.empty());
  SeriesSummary out;
  out.n = static_cast<Index>(series.size());
  out.min = series[0];
  out.max = series[0];
  // Welford's algorithm: numerically stable single pass.
  double mean = 0.0;
  double m2 = 0.0;
  Index count = 0;
  for (double v : series) {
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
    ++count;
    const double delta = v - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (v - mean);
  }
  out.mean = mean;
  out.std = std::sqrt(m2 / static_cast<double>(count));
  return out;
}

}  // namespace valmod
