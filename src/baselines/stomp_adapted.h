#ifndef VALMOD_BASELINES_STOMP_ADAPTED_H_
#define VALMOD_BASELINES_STOMP_ADAPTED_H_

#include <span>
#include <vector>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// Result of a per-length baseline sweep.
struct PerLengthMotifs {
  std::vector<MotifPair> motifs;
  /// Deadline expired before the sweep finished; `motifs` covers the
  /// processed prefix of the range only.
  bool dnf = false;
};

/// The paper's "STOMP adapted to find all the motifs for a given
/// subsequence length range": one independent full STOMP pass per length.
/// Exact; O((len_max - len_min + 1) * n^2).
PerLengthMotifs StompPerLength(std::span<const double> series, Index len_min,
                               Index len_max,
                               const Deadline& deadline = Deadline());

}  // namespace valmod

#endif  // VALMOD_BASELINES_STOMP_ADAPTED_H_
