#include "baselines/projection.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "signal/distance.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"
#include "util/random.h"

namespace valmod {
namespace {

/// Packs a masked SAX word into a hashable 64-bit key (alphabet <= 10 fits
/// 4 bits per symbol; mask_size <= 16).
std::uint64_t PackMaskedWord(const std::vector<std::uint8_t>& word,
                             const std::vector<Index>& mask) {
  std::uint64_t key = 0;
  for (const Index column : mask) {
    key = (key << 4) | word[static_cast<std::size_t>(column)];
  }
  return key;
}

}  // namespace

MotifPair ProjectionMotif(std::span<const double> series, Index len,
                          const ProjectionOptions& options,
                          ProjectionStats* stats_out) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 4 && n >= len + ExclusionZone(len));
  VALMOD_CHECK(options.mask_size >= 1 &&
               options.mask_size <= options.sax.word_len);
  VALMOD_CHECK(options.mask_size <= 16);
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  const Index n_sub = NumSubsequences(n, len);
  Rng rng(options.seed);

  // SAX-discretize every subsequence once.
  std::vector<std::vector<std::uint8_t>> words(
      static_cast<std::size_t>(n_sub));
  for (Index i = 0; i < n_sub; ++i) {
    words[static_cast<std::size_t>(i)] = SaxWord(
        std::span<const double>(centered).subspan(
            static_cast<std::size_t>(i), static_cast<std::size_t>(len)),
        options.sax);
  }

  MotifPair best;
  best.length = len;
  auto verify = [&](Index i, Index j) {
    if (IsTrivialMatch(i, j, len)) return;
    const double d = SubsequenceDistance(centered, stats, i, j, len);
    if (stats_out != nullptr) ++stats_out->exact_distances;
    if (d < best.distance) {
      best.distance = d;
      best.a = std::min(i, j);
      best.b = std::max(i, j);
    }
  };

  std::vector<Index> columns(static_cast<std::size_t>(options.sax.word_len));
  for (Index c = 0; c < options.sax.word_len; ++c) {
    columns[static_cast<std::size_t>(c)] = c;
  }
  // The collision matrix (sparse): pairs that land in the same bucket in
  // many rounds are the motif candidates. Enormous buckets (ubiquitous
  // words) are skipped — their pairs carry no signal and would blow up the
  // quadratic enumeration, the standard PROJECTION mitigation.
  constexpr std::size_t kMaxBucketEnumerated = 64;
  std::unordered_map<std::uint64_t, int> collisions;
  for (Index round = 0; round < options.iterations; ++round) {
    // Choose mask_size random distinct columns.
    for (Index i = static_cast<Index>(columns.size()) - 1; i > 0; --i) {
      const Index j = rng.UniformIndex(0, i);
      std::swap(columns[static_cast<std::size_t>(i)],
                columns[static_cast<std::size_t>(j)]);
    }
    std::vector<Index> mask(columns.begin(),
                            columns.begin() + options.mask_size);
    std::sort(mask.begin(), mask.end());

    // Bucket all subsequences by masked word.
    std::unordered_map<std::uint64_t, std::vector<Index>> buckets;
    buckets.reserve(static_cast<std::size_t>(n_sub));
    for (Index i = 0; i < n_sub; ++i) {
      buckets[PackMaskedWord(words[static_cast<std::size_t>(i)], mask)]
          .push_back(i);
    }
    if (stats_out != nullptr) {
      stats_out->buckets += static_cast<Index>(buckets.size());
    }
    for (const auto& [key, members] : buckets) {
      if (members.size() < 2 || members.size() > kMaxBucketEnumerated) {
        continue;
      }
      for (std::size_t x = 0; x < members.size(); ++x) {
        for (std::size_t y = x + 1; y < members.size(); ++y) {
          if (IsTrivialMatch(members[x], members[y], len)) continue;
          ++collisions[static_cast<std::uint64_t>(members[x]) *
                           static_cast<std::uint64_t>(n_sub) +
                       static_cast<std::uint64_t>(members[y])];
        }
      }
    }
  }
  // Verify the highest-collision cells with true distances.
  std::vector<std::pair<int, std::uint64_t>> ranked;
  ranked.reserve(collisions.size());
  for (const auto& [key, count] : collisions) {
    ranked.emplace_back(count, key);
  }
  const std::size_t budget = static_cast<std::size_t>(
      options.candidates_per_round * options.iterations);
  const std::size_t take = std::min(budget, ranked.size());
  std::partial_sort(
      ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(take),
      ranked.end(), [](const auto& a, const auto& b) {
        return a.first != b.first ? a.first > b.first : a.second < b.second;
      });
  for (std::size_t c = 0; c < take; ++c) {
    const std::uint64_t key = ranked[c].second;
    verify(static_cast<Index>(key / static_cast<std::uint64_t>(n_sub)),
           static_cast<Index>(key % static_cast<std::uint64_t>(n_sub)));
  }
  return best;
}

}  // namespace valmod
