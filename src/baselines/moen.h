#ifndef VALMOD_BASELINES_MOEN_H_
#define VALMOD_BASELINES_MOEN_H_

#include <span>
#include <vector>

#include "baselines/stomp_adapted.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// Per-length instrumentation of the MOEN baseline.
struct MoenLengthStats {
  Index length = 0;
  /// Distance-profile rows recomputed with MASS (the rows whose carried
  /// bound failed to prune); the growth of this number with the length
  /// range is MOEN's published weakness.
  Index rows_computed = 0;
};

/// Result of a MOEN run: the exact motif pair per length plus bookkeeping.
struct MoenResult {
  std::vector<MotifPair> motifs;
  std::vector<MoenLengthStats> stats;
  bool dnf = false;
};

/// MOEN-style exact variable-length motif enumeration [Mueen, ICDM 2013],
/// reimplemented in spirit (see DESIGN.md): each distance-profile row
/// carries a single lower bound from the last length at which it was fully
/// computed — the row-granularity, p = 1 analogue of VALMOD's Eq. 2 bound.
/// At every new length, rows are visited in ascending carried bound; a row
/// whose bound reaches the best-so-far prunes all remaining rows, otherwise
/// the row is recomputed with MASS and its bound re-based. Faithful to
/// MOEN's published weakness, the carried bound is multiplied by a clamped
/// (<= 1) sigma ratio at *every* length step, so it decays monotonically
/// with the distance from its re-base length — the "multiplies the lower
/// bound by a value smaller than 1, thus making it less tight" behaviour
/// the VALMOD paper identifies as MOEN's deficiency relative to Eq. 2
/// (Section 6.2). Each clamped factor under-estimates the true sigma
/// ratio, so the bound remains admissible and the algorithm exact.
MoenResult MoenVariableLength(std::span<const double> series, Index len_min,
                              Index len_max,
                              const Deadline& deadline = Deadline());

}  // namespace valmod

#endif  // VALMOD_BASELINES_MOEN_H_
