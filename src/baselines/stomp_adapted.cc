#include "baselines/stomp_adapted.h"

#include "mp/stomp.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {

PerLengthMotifs StompPerLength(std::span<const double> series, Index len_min,
                               Index len_max, const Deadline& deadline) {
  VALMOD_CHECK(len_min >= 2 && len_max >= len_min);
  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats stats(series);
  PerLengthMotifs out;
  for (Index len = len_min; len <= len_max; ++len) {
    bool dnf = false;
    const MatrixProfile profile =
        Stomp(series, stats, len, nullptr, deadline, &dnf);
    if (dnf) {
      out.dnf = true;
      break;
    }
    out.motifs.push_back(MotifFromProfile(profile));
  }
  return out;
}

}  // namespace valmod
