#include "baselines/quick_motif.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "index/rtree.h"
#include "signal/distance.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

/// Builds the summary point of one subsequence: per PAA segment,
/// sqrt(segment_size) * (segment_mean - mu) / sigma. The sqrt weighting
/// folds the PAA lower-bound factor into the coordinates, so the *plain*
/// Euclidean distance between two summary points (and the plain MINDIST
/// between their MBRs) lower-bounds the true z-normalized distance, even
/// when `len` is not divisible by the segment count (each segment's squared
/// difference is bounded by the segment's sum of squared differences via
/// Cauchy-Schwarz).
void SummarizeSubsequence(const PrefixStats& stats, Index offset, Index len,
                          Index segments, double* out) {
  const MeanStd ms = stats.Stats(offset, len);
  for (Index s = 0; s < segments; ++s) {
    const Index start = s * len / segments;
    const Index end = (s + 1) * len / segments;
    const Index seg_len = end - start;
    const double seg_mean =
        stats.Sum(offset + start, seg_len) / static_cast<double>(seg_len);
    const double z =
        IsFlatWindow(ms.mean, ms.std) ? 0.0 : (seg_mean - ms.mean) / ms.std;
    out[s] = std::sqrt(static_cast<double>(seg_len)) * z;
  }
}

double PointDistance(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

/// A node pair in the branch-and-bound queue, keyed by the MINDIST of the
/// nodes' MBRs in summary space (a lower bound on every contained pair's
/// true distance).
struct NodePair {
  double key;
  Index a;
  Index b;
  bool operator>(const NodePair& other) const { return key > other.key; }
};

}  // namespace

MotifPair QuickMotif(std::span<const double> series, Index len,
                     const QuickMotifOptions& options, QuickMotifStats* stats,
                     bool* out_dnf) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len >= 4 && n >= len + ExclusionZone(len));
  const Index n_sub = NumSubsequences(n, len);
  const Index w = options.paa_segments;
  VALMOD_CHECK(w >= 1 && w <= len);
  if (out_dnf != nullptr) *out_dnf = false;
  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats prefix(series);

  // Summaries of every subsequence, row-major.
  std::vector<double> points(static_cast<std::size_t>(n_sub * w));
  for (Index i = 0; i < n_sub; ++i) {
    SummarizeSubsequence(prefix, i, len, w,
                         &points[static_cast<std::size_t>(i * w)]);
  }
  const PackedRTree tree(points, n_sub, w, options.leaf_capacity,
                         options.fanout);

  MotifPair best;
  best.length = len;
  auto point_of = [&](Index id) { return tree.point(id); };
  auto try_exact = [&](Index i, Index j) {
    if (IsTrivialMatch(i, j, len)) return;
    const double lb = PointDistance(point_of(i), point_of(j));
    if (lb >= best.distance) {
      if (stats != nullptr) ++stats->paa_pruned;
      return;
    }
    const double d = SubsequenceDistance(series, prefix, i, j, len);
    if (stats != nullptr) ++stats->exact_distances;
    if (d < best.distance) {
      best.distance = d;
      best.a = std::min(i, j);
      best.b = std::max(i, j);
    }
  };

  // Seed the best-so-far with Hilbert-adjacent pairs (cheap, usually tight):
  // consecutive points inside each leaf are neighbours on the curve.
  Index seeded = 0;
  for (Index node_id = 0; node_id < tree.num_nodes() && seeded < 256;
       ++node_id) {
    const RTreeNode& node = tree.node(node_id);
    if (!node.is_leaf) continue;
    for (std::size_t k = 0; k + 1 < node.points.size() && seeded < 256; ++k) {
      try_exact(node.points[k], node.points[k + 1]);
      ++seeded;
    }
  }

  // Branch-and-bound over node pairs.
  std::priority_queue<NodePair, std::vector<NodePair>, std::greater<NodePair>>
      queue;
  queue.push(NodePair{0.0, tree.root(), tree.root()});
  while (!queue.empty()) {
    if (options.deadline.Expired()) {
      if (out_dnf != nullptr) *out_dnf = true;
      return MotifPair{};
    }
    const NodePair top = queue.top();
    queue.pop();
    if (top.key >= best.distance) break;  // Nothing closer remains.
    if (stats != nullptr) ++stats->node_pairs_visited;
    const RTreeNode& na = tree.node(top.a);
    const RTreeNode& nb = tree.node(top.b);
    if (na.is_leaf && nb.is_leaf) {
      if (top.a == top.b) {
        for (std::size_t x = 0; x < na.points.size(); ++x) {
          for (std::size_t y = x + 1; y < na.points.size(); ++y) {
            try_exact(na.points[x], na.points[y]);
          }
        }
      } else {
        for (const Index i : na.points) {
          for (const Index j : nb.points) try_exact(i, j);
        }
      }
      continue;
    }
    if (top.a == top.b) {
      // Self pair of an internal node: children pairs, unordered once each.
      for (std::size_t x = 0; x < na.children.size(); ++x) {
        for (std::size_t y = x; y < na.children.size(); ++y) {
          const Index ca = na.children[x];
          const Index cb = na.children[y];
          const double key =
              ca == cb ? 0.0 : tree.node(ca).mbr.MinDist(tree.node(cb).mbr);
          if (key < best.distance) queue.push(NodePair{key, ca, cb});
        }
      }
      continue;
    }
    // Expand the internal node (prefer a; b when a is a leaf).
    const bool expand_a = !na.is_leaf;
    const RTreeNode& expand = expand_a ? na : nb;
    const Index other = expand_a ? top.b : top.a;
    for (const Index child : expand.children) {
      const double key = tree.node(child).mbr.MinDist(tree.node(other).mbr);
      if (key < best.distance) queue.push(NodePair{key, child, other});
    }
  }
  return best;
}

PerLengthMotifs QuickMotifPerLength(std::span<const double> series,
                                    Index len_min, Index len_max,
                                    const QuickMotifOptions& options) {
  PerLengthMotifs out;
  for (Index len = len_min; len <= len_max; ++len) {
    bool dnf = false;
    MotifPair motif = QuickMotif(series, len, options, nullptr, &dnf);
    if (dnf) {
      out.dnf = true;
      break;
    }
    out.motifs.push_back(motif);
  }
  return out;
}

}  // namespace valmod
