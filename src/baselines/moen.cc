#include "baselines/moen.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/lower_bound.h"
#include "mp/distance_profile.h"
#include "mp/stomp.h"
#include "signal/distance.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

/// Carried state of one distance-profile row.
struct RowBound {
  /// Length at which the row was last fully computed.
  Index base_len = 0;
  /// Eq. 2 base term evaluated at the row's best (largest) correlation:
  /// a lower bound on every entry of the row at any longer length.
  double lb_base = kInf;
  /// Row owner's std at the previous processed length (the numerator of
  /// the next per-step ratio).
  double sigma_prev = 0.0;
  /// Cumulative product of per-step clamped sigma ratios since the last
  /// re-base; multiplied by a value <= 1 at *every* length step, which is
  /// MOEN's published behaviour ("MOEN multiplies the lower bound by a
  /// value smaller than 1", VALMOD paper Sec. 6.2) and the reason its
  /// bound loosens with the length range while VALMOD's Eq. 2 does not.
  /// Each factor min(1, sigma_t/sigma_{t+1}) <= sigma_t/sigma_{t+1}, so
  /// the product lower-bounds the exact sigma ratio and the bound remains
  /// admissible.
  double decay = 1.0;
};

/// Fully computes row `j` at length `len`, returning (min dist, argmin) and
/// re-basing its carried bound.
std::pair<double, Index> ComputeRow(std::span<const double> series,
                                    const PrefixStats& stats, Index j,
                                    Index len, RowBound& bound) {
  const std::vector<double> profile =
      ComputeDistanceProfile(series, stats, j, len);
  const Index arg = ArgMin(profile);
  double min_dist = kInf;
  if (arg != kNoNeighbor) min_dist = profile[static_cast<std::size_t>(arg)];
  bound.base_len = len;
  bound.sigma_prev = stats.Std(j, len);
  bound.decay = 1.0;
  // Max correlation of the row corresponds to its min distance; B(q*) lower
  // bounds B(q_i) for every i, hence bounds the whole row at any l + k.
  const double q_star =
      min_dist == kInf ? -1.0 : CorrelationFromDistance(min_dist, len);
  bound.lb_base = LowerBoundBase(q_star, len);
  return {min_dist, arg};
}

}  // namespace

MoenResult MoenVariableLength(std::span<const double> series, Index len_min,
                              Index len_max, const Deadline& deadline) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(len_min >= 4 && len_max >= len_min);
  VALMOD_CHECK(n >= len_max + ExclusionZone(len_max));
  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats stats(series);
  MoenResult result;

  const Index n_sub_min = NumSubsequences(n, len_min);
  std::vector<RowBound> bounds(static_cast<std::size_t>(n_sub_min));

  // First length: every row is needed, so use the incremental STOMP kernel
  // (O(n) per row) rather than one MASS pass per row, and seed the carried
  // bounds from the finished profile.
  {
    bool dnf = false;
    const MatrixProfile profile =
        Stomp(series, stats, len_min, nullptr, deadline, &dnf);
    if (dnf) {
      result.dnf = true;
      return result;
    }
    for (Index j = 0; j < n_sub_min; ++j) {
      RowBound& bound = bounds[static_cast<std::size_t>(j)];
      bound.base_len = len_min;
      bound.sigma_prev = stats.Std(j, len_min);
      bound.decay = 1.0;
      const double min_dist = profile.distances[static_cast<std::size_t>(j)];
      const double q_star = min_dist == kInf
                                ? -1.0
                                : CorrelationFromDistance(min_dist, len_min);
      bound.lb_base = LowerBoundBase(q_star, len_min);
    }
    result.motifs.push_back(MotifFromProfile(profile));
    result.stats.push_back(MoenLengthStats{len_min, n_sub_min});
  }

  for (Index len = len_min + 1; len <= len_max; ++len) {
    const Index n_sub = NumSubsequences(n, len);
    // Advance every row's decay by this step's clamped sigma ratio, then
    // order rows by the carried bound.
    std::vector<double> row_lb(static_cast<std::size_t>(n_sub));
    for (Index j = 0; j < n_sub; ++j) {
      RowBound& b = bounds[static_cast<std::size_t>(j)];
      const double sigma_now = stats.Std(j, len);
      const double step_ratio =
          sigma_now > 0.0 ? std::min(1.0, b.sigma_prev / sigma_now) : 0.0;
      b.decay *= step_ratio;
      b.sigma_prev = sigma_now;
      row_lb[static_cast<std::size_t>(j)] = b.lb_base * b.decay;
    }
    std::vector<Index> order(static_cast<std::size_t>(n_sub));
    std::iota(order.begin(), order.end(), Index{0});
    std::sort(order.begin(), order.end(), [&](Index a, Index b) {
      return row_lb[static_cast<std::size_t>(a)] <
             row_lb[static_cast<std::size_t>(b)];
    });

    MotifPair motif;
    motif.length = len;
    MoenLengthStats ls{len, 0};
    for (Index j : order) {
      if (deadline.Expired()) {
        result.dnf = true;
        return result;
      }
      // Ascending order: once a bound reaches the best achieved distance,
      // no remaining row can contain a closer pair.
      if (row_lb[static_cast<std::size_t>(j)] >= motif.distance) break;
      const auto [min_dist, arg] = ComputeRow(
          series, stats, j, len, bounds[static_cast<std::size_t>(j)]);
      ++ls.rows_computed;
      if (arg == kNoNeighbor) continue;
      if (min_dist < motif.distance) {
        motif.distance = min_dist;
        motif.a = std::min(j, arg);
        motif.b = std::max(j, arg);
      }
    }
    result.motifs.push_back(motif);
    result.stats.push_back(ls);
  }
  return result;
}

}  // namespace valmod
