#ifndef VALMOD_BASELINES_QUICK_MOTIF_H_
#define VALMOD_BASELINES_QUICK_MOTIF_H_

#include <span>
#include <vector>

#include "baselines/stomp_adapted.h"
#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// Tuning of the QUICK MOTIF reimplementation.
struct QuickMotifOptions {
  /// PAA dimensionality of the subsequence summaries.
  Index paa_segments = 8;
  /// Points per R-tree leaf.
  Index leaf_capacity = 32;
  /// Children per internal R-tree node.
  Index fanout = 8;
  /// Wall-clock budget (DNF reporting).
  Deadline deadline;
};

/// Instrumentation of one QUICK MOTIF run.
struct QuickMotifStats {
  /// Exact O(len) distance computations performed.
  Index exact_distances = 0;
  /// Node pairs popped from the branch-and-bound queue.
  Index node_pairs_visited = 0;
  /// Candidate pairs rejected by the PAA-level lower bound.
  Index paa_pruned = 0;
};

/// QUICK MOTIF [Li et al., ICDE 2015], reimplemented per its published
/// design: z-normalized subsequences are summarized with PAA, bulk-loaded
/// into a Hilbert-packed R-tree, and the exact motif pair is found by
/// branch-and-bound over MBR pairs ordered by MINDIST (scaled by
/// sqrt(len/segments), the PAA lower-bound factor). Exact for a single,
/// fixed subsequence length. Returns an invalid pair on DNF
/// (`out_dnf` set when provided).
MotifPair QuickMotif(std::span<const double> series, Index len,
                     const QuickMotifOptions& options = QuickMotifOptions(),
                     QuickMotifStats* stats = nullptr, bool* out_dnf = nullptr);

/// The paper's adaptation: one independent QUICK MOTIF run per length.
PerLengthMotifs QuickMotifPerLength(
    std::span<const double> series, Index len_min, Index len_max,
    const QuickMotifOptions& options = QuickMotifOptions());

}  // namespace valmod

#endif  // VALMOD_BASELINES_QUICK_MOTIF_H_
