#ifndef VALMOD_BASELINES_PROJECTION_H_
#define VALMOD_BASELINES_PROJECTION_H_

#include <cstdint>
#include <span>

#include "mp/matrix_profile.h"
#include "signal/sax.h"
#include "util/common.h"

namespace valmod {

/// Parameters of the PROJECTION approximate motif finder — the paper's
/// Introduction uses exactly this parameter burden ("required the user to
/// set seven parameters, and it still only produces answers that are
/// approximately correct") to motivate VALMOD.
struct ProjectionOptions {
  SaxParams sax;
  /// Random-projection iterations (masked-column rounds).
  Index iterations = 10;
  /// SAX-word positions kept per round (the projection width).
  Index mask_size = 4;
  /// Candidate pairs verified with true distances per round.
  Index candidates_per_round = 32;
  std::uint64_t seed = 1;
};

/// Instrumentation of one PROJECTION run.
struct ProjectionStats {
  /// Exact distance computations spent on candidate verification.
  Index exact_distances = 0;
  /// Distinct buckets observed across all rounds.
  Index buckets = 0;
};

/// PROJECTION [Chiu, Keogh & Lonardi, KDD 2003], the first motif-discovery
/// algorithm: SAX-discretize every subsequence, repeatedly mask random SAX
/// columns, bucket subsequences by masked word, and verify the pairs that
/// collide most often. APPROXIMATE — it can and does miss the true motif
/// (quantified by bench_approximate_recall); implemented to support the
/// paper's argument that exactness is worth engineering for.
MotifPair ProjectionMotif(std::span<const double> series, Index len,
                          const ProjectionOptions& options = {},
                          ProjectionStats* stats = nullptr);

}  // namespace valmod

#endif  // VALMOD_BASELINES_PROJECTION_H_
