#include "index/rtree.h"

#include <algorithm>
#include <numeric>

#include "index/hilbert.h"
#include "util/check.h"

namespace valmod {

PackedRTree::PackedRTree(std::span<const double> points, Index count,
                         Index dims, Index leaf_capacity, Index fanout,
                         int hilbert_bits)
    : count_(count),
      dims_(dims),
      points_(points.begin(), points.end()) {
  VALMOD_CHECK(count >= 1 && dims >= 1);
  VALMOD_CHECK(static_cast<Index>(points.size()) == count * dims);
  VALMOD_CHECK(leaf_capacity >= 1 && fanout >= 2);
  // Hilbert keys need dims * bits <= 64; shrink bits for high dimensions.
  while (hilbert_bits > 1 && dims * hilbert_bits > 64) --hilbert_bits;

  // Bounding box of all points, per dimension.
  std::vector<double> lo(static_cast<std::size_t>(dims), kInf);
  std::vector<double> hi(static_cast<std::size_t>(dims), -kInf);
  for (Index i = 0; i < count; ++i) {
    const auto row = point(i);
    for (Index d = 0; d < dims; ++d) {
      lo[static_cast<std::size_t>(d)] =
          std::min(lo[static_cast<std::size_t>(d)], row[static_cast<std::size_t>(d)]);
      hi[static_cast<std::size_t>(d)] =
          std::max(hi[static_cast<std::size_t>(d)], row[static_cast<std::size_t>(d)]);
    }
  }

  // Order the point ids along the Hilbert curve.
  std::vector<std::uint64_t> keys(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i) {
    keys[static_cast<std::size_t>(i)] =
        HilbertIndexOfPoint(point(i), lo, hi, hilbert_bits);
  }
  std::vector<Index> order(static_cast<std::size_t>(count));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return keys[static_cast<std::size_t>(a)] < keys[static_cast<std::size_t>(b)];
  });

  // Pack consecutive runs into leaves.
  std::vector<Index> level;  // Node ids of the level under construction.
  for (Index start = 0; start < count; start += leaf_capacity) {
    RTreeNode leaf;
    leaf.is_leaf = true;
    leaf.mbr = Mbr(dims);
    const Index end = std::min(count, start + leaf_capacity);
    for (Index k = start; k < end; ++k) {
      const Index id = order[static_cast<std::size_t>(k)];
      leaf.points.push_back(id);
      leaf.mbr.Extend(point(id));
    }
    level.push_back(static_cast<Index>(nodes_.size()));
    nodes_.push_back(std::move(leaf));
  }

  // Group `fanout` nodes per parent until a single root remains.
  while (level.size() > 1) {
    std::vector<Index> next;
    for (std::size_t start = 0; start < level.size();
         start += static_cast<std::size_t>(fanout)) {
      RTreeNode parent;
      parent.is_leaf = false;
      parent.mbr = Mbr(dims);
      const std::size_t end =
          std::min(level.size(), start + static_cast<std::size_t>(fanout));
      for (std::size_t k = start; k < end; ++k) {
        parent.children.push_back(level[k]);
        parent.mbr.Extend(nodes_[static_cast<std::size_t>(level[k])].mbr);
      }
      next.push_back(static_cast<Index>(nodes_.size()));
      nodes_.push_back(std::move(parent));
    }
    level = std::move(next);
  }
  root_ = level.front();
}

}  // namespace valmod
