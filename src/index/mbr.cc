#include "index/mbr.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace valmod {

Mbr::Mbr(Index dims) {
  VALMOD_CHECK(dims >= 1);
  lo_.assign(static_cast<std::size_t>(dims), kInf);
  hi_.assign(static_cast<std::size_t>(dims), -kInf);
}

void Mbr::Extend(std::span<const double> point) {
  VALMOD_CHECK(static_cast<Index>(point.size()) == dims());
  for (std::size_t d = 0; d < point.size(); ++d) {
    lo_[d] = std::min(lo_[d], point[d]);
    hi_[d] = std::max(hi_[d], point[d]);
  }
  empty_ = false;
}

void Mbr::Extend(const Mbr& other) {
  VALMOD_CHECK(other.dims() == dims());
  if (other.empty_) return;
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
  empty_ = false;
}

double Mbr::MinDist(const Mbr& other) const {
  VALMOD_CHECK(!empty_ && !other.empty_ && other.dims() == dims());
  double acc = 0.0;
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    double gap = 0.0;
    if (other.lo_[d] > hi_[d]) {
      gap = other.lo_[d] - hi_[d];
    } else if (lo_[d] > other.hi_[d]) {
      gap = lo_[d] - other.hi_[d];
    }
    acc += gap * gap;
  }
  return std::sqrt(acc);
}

double Mbr::MinDistToPoint(std::span<const double> point) const {
  VALMOD_CHECK(!empty_ && static_cast<Index>(point.size()) == dims());
  double acc = 0.0;
  for (std::size_t d = 0; d < point.size(); ++d) {
    double gap = 0.0;
    if (point[d] > hi_[d]) {
      gap = point[d] - hi_[d];
    } else if (point[d] < lo_[d]) {
      gap = lo_[d] - point[d];
    }
    acc += gap * gap;
  }
  return std::sqrt(acc);
}

}  // namespace valmod
