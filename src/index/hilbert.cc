#include "index/hilbert.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace valmod {
namespace {

/// Skilling's in-place transform from Gray-coded Hilbert axes to plain
/// coordinates runs one way; this is the inverse direction (coordinates ->
/// transposed Hilbert index), adapted from "Programming the Hilbert curve",
/// J. Skilling, AIP Conf. Proc. 707 (2004).
void AxesToTranspose(std::vector<std::uint32_t>& x, int bits) {
  const int n = static_cast<int>(x.size());
  // Inverse undo.
  for (std::uint32_t m = std::uint32_t{1} << (bits - 1); m > 1; m >>= 1) {
    const std::uint32_t p = m - 1;
    for (int i = 0; i < n; ++i) {
      if (x[static_cast<std::size_t>(i)] & m) {
        x[0] ^= p;  // Invert low bits of x[0].
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  std::uint32_t t = 0;
  for (std::uint32_t m = std::uint32_t{1} << (bits - 1); m > 1; m >>= 1) {
    if (x[static_cast<std::size_t>(n - 1)] & m) t ^= m - 1;
  }
  for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

}  // namespace

std::uint64_t HilbertIndex(std::span<const std::uint32_t> coords, int bits) {
  const int dims = static_cast<int>(coords.size());
  VALMOD_CHECK(dims >= 1 && bits >= 1 && dims * bits <= 64);
  std::vector<std::uint32_t> x(coords.begin(), coords.end());
  AxesToTranspose(x, bits);
  // Interleave the transposed words, most significant bit plane first.
  std::uint64_t key = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < dims; ++i) {
      key = (key << 1) |
            ((x[static_cast<std::size_t>(i)] >> b) & std::uint32_t{1});
    }
  }
  return key;
}

std::uint64_t HilbertIndexOfPoint(std::span<const double> point,
                                  std::span<const double> lo,
                                  std::span<const double> hi, int bits) {
  VALMOD_CHECK(point.size() == lo.size() && point.size() == hi.size());
  const std::uint32_t max_coord = (std::uint32_t{1} << bits) - 1;
  std::vector<std::uint32_t> coords(point.size());
  for (std::size_t d = 0; d < point.size(); ++d) {
    const double span = hi[d] - lo[d];
    double frac = span > 0.0 ? (point[d] - lo[d]) / span : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    coords[d] = static_cast<std::uint32_t>(
        std::min<double>(std::floor(frac * (max_coord + 1.0)),
                         static_cast<double>(max_coord)));
  }
  return HilbertIndex(coords, bits);
}

}  // namespace valmod
