#ifndef VALMOD_INDEX_RTREE_H_
#define VALMOD_INDEX_RTREE_H_

#include <span>
#include <vector>

#include "index/mbr.h"
#include "util/common.h"

namespace valmod {

/// One node of the packed R-tree.
struct RTreeNode {
  Mbr mbr{1};
  bool is_leaf = false;
  /// Node ids of the children (internal nodes only).
  std::vector<Index> children;
  /// Point ids stored in this node (leaves only).
  std::vector<Index> points;
};

/// A static, bulk-loaded R-tree over d-dimensional points, packed in Hilbert
/// order (the "Hilbert R-tree" QUICK MOTIF builds over PAA summaries).
/// Construction sorts the points by Hilbert index, fills leaves with
/// `leaf_capacity` consecutive points, and groups `fanout` nodes per level
/// above. The tree is immutable after construction.
class PackedRTree {
 public:
  /// Bulk-loads the tree. `points` is a flattened row-major array of
  /// `count` points of `dims` doubles each; point id i refers to row i.
  /// Requires count >= 1.
  PackedRTree(std::span<const double> points, Index count, Index dims,
              Index leaf_capacity = 16, Index fanout = 8,
              int hilbert_bits = 8);

  Index root() const { return root_; }
  Index num_nodes() const { return static_cast<Index>(nodes_.size()); }
  Index num_points() const { return count_; }
  Index dims() const { return dims_; }

  const RTreeNode& node(Index id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// Row view of point `id`.
  std::span<const double> point(Index id) const {
    return std::span<const double>(points_)
        .subspan(static_cast<std::size_t>(id * dims_),
                 static_cast<std::size_t>(dims_));
  }

 private:
  Index count_;
  Index dims_;
  Index root_ = 0;
  std::vector<double> points_;
  std::vector<RTreeNode> nodes_;
};

}  // namespace valmod

#endif  // VALMOD_INDEX_RTREE_H_
