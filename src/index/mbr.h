#ifndef VALMOD_INDEX_MBR_H_
#define VALMOD_INDEX_MBR_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Minimum bounding rectangle in d dimensions. The QUICK MOTIF pruning
/// reasons about lower bounds between groups of PAA points via MBR-to-MBR
/// minimum distances.
class Mbr {
 public:
  /// Creates an empty (inverted) MBR of dimension `dims`.
  explicit Mbr(Index dims);

  /// Expands the MBR to contain `point` (must match dims).
  void Extend(std::span<const double> point);

  /// Expands the MBR to contain `other`.
  void Extend(const Mbr& other);

  Index dims() const { return static_cast<Index>(lo_.size()); }
  bool empty() const { return empty_; }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

  /// MINDIST: the smallest possible Euclidean distance between any point in
  /// this MBR and any point in `other` (0 when they intersect).
  double MinDist(const Mbr& other) const;

  /// MINDIST between this MBR and a point.
  double MinDistToPoint(std::span<const double> point) const;

 private:
  bool empty_ = true;
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace valmod

#endif  // VALMOD_INDEX_MBR_H_
