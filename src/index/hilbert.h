#ifndef VALMOD_INDEX_HILBERT_H_
#define VALMOD_INDEX_HILBERT_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// d-dimensional Hilbert curve index via Skilling's transform (AIP 2004).
///
/// QUICK MOTIF bulk-loads its R-tree by sorting the PAA summaries of all
/// subsequences along a Hilbert curve, which keeps spatially close summaries
/// in the same leaves and makes the MBR-pair pruning effective.

/// Converts a point given as `bits`-bit integer coordinates (one per
/// dimension) into its Hilbert index, returned as `dims` words of `bits`
/// bits in transposed form packed into a single comparison key of
/// dims * bits bits, most significant first. `bits * dims` must be <= 64 so
/// the key fits one word.
std::uint64_t HilbertIndex(std::span<const std::uint32_t> coords, int bits);

/// Quantizes a real-valued point into `bits`-bit integer coordinates over
/// the bounding box [lo, hi] per dimension, then returns its Hilbert index.
/// Coordinates outside the box are clamped.
std::uint64_t HilbertIndexOfPoint(std::span<const double> point,
                                  std::span<const double> lo,
                                  std::span<const double> hi, int bits);

}  // namespace valmod

#endif  // VALMOD_INDEX_HILBERT_H_
