#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace valmod {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

std::string Table::Render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      line += "| ";
      line += cell;
      line.append(width[c] - cell.size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += "|";
    sep.append(width[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace valmod
