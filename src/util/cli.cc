#include "util/cli.h"

#include <cstdlib>

namespace valmod {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "true";
    }
  }
}

bool CommandLine::Has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CommandLine::GetString(const std::string& key,
                                   const std::string& def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

Index CommandLine::GetIndex(const std::string& key, Index def) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return end == it->second.c_str() ? def : static_cast<Index>(v);
}

double CommandLine::GetDouble(const std::string& key, double def) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : v;
}

bool CommandLine::GetBool(const std::string& key, bool def) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace valmod
