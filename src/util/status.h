#ifndef VALMOD_UTIL_STATUS_H_
#define VALMOD_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace valmod {

/// Error categories for fallible operations (mostly IO and configuration).
/// Algorithms whose preconditions are programmer-controlled use CHECK
/// instead; Status is for failures the caller is expected to handle.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kDeadlineExceeded,
  /// A bounded resource (queue slot, connection slot) was full; the caller
  /// should back off and retry. The query service's admission-control
  /// backpressure signal (docs/SERVICE.md).
  kResourceExhausted,
};

/// A lightweight success-or-error result, in the style of absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. `INVALID_ARGUMENT: bad length`.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Name of a status code, e.g. "IO_ERROR".
const char* StatusCodeName(StatusCode code);

}  // namespace valmod

#endif  // VALMOD_UTIL_STATUS_H_
