#ifndef VALMOD_UTIL_CHECK_H_
#define VALMOD_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Precondition checking macros. The library does not use exceptions
// (Google style); contract violations abort with a source location. CHECK is
// always on; DCHECK compiles away in NDEBUG builds and is meant for
// tight inner loops.

#define VALMOD_CHECK(cond)                                                    \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                    \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define VALMOD_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define VALMOD_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define VALMOD_DCHECK(cond) VALMOD_CHECK(cond)
#endif

#endif  // VALMOD_UTIL_CHECK_H_
