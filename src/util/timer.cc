#include "util/timer.h"

// WallTimer and Deadline are header-only; this translation unit exists so the
// header participates in the library's compile checks.
