#ifndef VALMOD_UTIL_MUTEX_H_
#define VALMOD_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace valmod {

/// An annotated std::mutex: the capability every concurrent subsystem
/// (src/service, src/obs, src/stream) declares its locking protocol
/// against. Members guarded by a Mutex carry GUARDED_BY(mu_), helpers that
/// assume it carry REQUIRES(mu_), and the `thread-safety` preset turns any
/// violation into a compile error. Same cost as a bare std::mutex — the
/// annotations are attributes, not code.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the calling thread holds the mutex exclusively.
  void Lock() ACQUIRE() { mu_.lock(); }

  /// Releases the mutex; the calling thread must hold it.
  void Unlock() RELEASE() { mu_.unlock(); }

  /// Acquires without blocking when possible; returns true iff acquired.
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std::condition_variable
  /// machinery (CondVar uses it; nothing else should).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// An annotated std::shared_mutex for read-mostly state: queries take the
/// shared side (ReaderMutexLock), mutations the exclusive side (MutexLock
/// works via the same Lock/Unlock surface as Mutex).
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  /// Blocks until the calling thread holds the mutex exclusively.
  void Lock() ACQUIRE() { mu_.lock(); }

  /// Releases exclusive ownership.
  void Unlock() RELEASE() { mu_.unlock(); }

  /// Blocks until the calling thread holds the mutex shared (read side).
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }

  /// Releases shared ownership.
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex — the annotated std::lock_guard.
/// Scoped acquisition is what the analysis reasons about best; prefer this
/// over manual Lock/Unlock pairs everywhere.
class SCOPED_CAPABILITY MutexLock {
 public:
  /// Acquires `*mu` for the lifetime of this object.
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  /// Releases the mutex.
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  /// Acquires `*mu` exclusively for the lifetime of this object.
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }

  /// Releases the exclusive hold.
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII shared (reader) lock over a SharedMutex: any number of readers may
/// hold it concurrently; it excludes writers.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  /// Acquires `*mu` shared for the lifetime of this object.
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }

  /// Releases the shared hold.
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// An annotated std::condition_variable that waits on a valmod::Mutex.
/// Wait() REQUIRES the mutex, so the canonical pattern keeps every guarded
/// access visible to the analysis (no predicate lambda, which the analysis
/// cannot see into):
///
///   MutexLock lock(&mu_);
///   while (!condition_)   // guarded read, provably under mu_
///     cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified; `mu` is held again
  /// on return. Spurious wakeups happen — always wait in a condition loop.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Adopt the caller's hold for the wait, then hand it back: release()
    // stops the unique_lock from unlocking what the caller still owns.
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Wakes one waiter (if any).
  void NotifyOne() { cv_.notify_one(); }

  /// Wakes every waiter.
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace valmod

#endif  // VALMOD_UTIL_MUTEX_H_
