#ifndef VALMOD_UTIL_HISTOGRAM_H_
#define VALMOD_UTIL_HISTOGRAM_H_

#include <span>
#include <string>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Fixed-bin-count histogram over a value range, used to reproduce the
/// pairwise-distance distributions of Figure 11.
class Histogram {
 public:
  /// Creates `bins` equal-width bins over [lo, hi). Values outside the range
  /// are clamped into the first/last bin. Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, Index bins);

  /// Adds one observation.
  void Add(double value);

  /// Adds every value of `values`.
  void AddAll(std::span<const double> values);

  Index bins() const { return static_cast<Index>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::int64_t total() const { return total_; }

  /// Count in bin `b`.
  std::int64_t Count(Index b) const;

  /// Left edge of bin `b`.
  double BinLeft(Index b) const;

  /// Fraction of observations in bin `b` (0 when empty).
  double Fraction(Index b) const;

  /// Multi-line ASCII rendering: one row per bin with a proportional bar.
  /// `width` is the maximum bar width in characters.
  std::string Render(int width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

/// Builds a histogram whose range is the [min, max] of `values` and fills it.
Histogram MakeHistogram(std::span<const double> values, Index bins);

}  // namespace valmod

#endif  // VALMOD_UTIL_HISTOGRAM_H_
