#ifndef VALMOD_UTIL_RANDOM_H_
#define VALMOD_UTIL_RANDOM_H_

#include <cstdint>

#include "util/common.h"

namespace valmod {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the library (dataset generators, anytime
/// STAMP ordering, property-test inputs) draws from this generator so that
/// experiments are reproducible bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  Index UniformIndex(Index lo, Index hi);

  /// Standard normal variate (Box-Muller; consumes two uniforms).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability `prob` (clamped to [0, 1]).
  bool Bernoulli(double prob);

 private:
  std::uint64_t state_[4];
};

}  // namespace valmod

#endif  // VALMOD_UTIL_RANDOM_H_
