#ifndef VALMOD_UTIL_COMMON_H_
#define VALMOD_UTIL_COMMON_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace valmod {

/// Signed index type used throughout the library for offsets and lengths.
/// Signed arithmetic avoids the classic `size_t` underflow traps in the
/// sliding-window index computations that dominate this codebase.
using Index = std::int64_t;

/// A data series is a plain contiguous vector of real values (Definition 2.1).
using Series = std::vector<double>;

/// Positive infinity, used as the "not yet computed" distance sentinel.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Number of subsequences of length `len` in a series of `n` points.
/// Returns 0 when the series is shorter than `len`.
inline Index NumSubsequences(Index n, Index len) {
  return n >= len ? n - len + 1 : 0;
}

/// Half-width of the trivial-match exclusion zone for subsequence length
/// `len`. The paper (Section 2) heuristically sets it to `len / 2`: offsets
/// `i`, `j` form a trivial match iff `|i - j| < ExclusionZone(len)`.
inline Index ExclusionZone(Index len) {
  return len / 2 > Index{1} ? len / 2 : Index{1};
}

/// True iff offsets `i` and `j` are a trivial match at subsequence length
/// `len` (a subsequence always trivially matches itself).
inline bool IsTrivialMatch(Index i, Index j, Index len) {
  const Index d = i > j ? i - j : j - i;
  return d < ExclusionZone(len);
}

/// The columns of profile row `i` that are NOT trivial matches, as two
/// contiguous half-open ranges: [0, left_end) and [right_begin, n_sub).
/// Everything in [left_end, right_begin) is inside the exclusion zone.
struct ColumnRanges {
  Index left_end = 0;
  Index right_begin = 0;
};

/// Single source of truth for the exclusion-zone boundary as a *range*:
/// j is trivial iff |i - j| < ExclusionZone(len), so the trivial block is
/// [i - zone + 1, i + zone - 1] clipped to [0, n_sub). The scalar and SIMD
/// column kernels iterate these ranges instead of testing IsTrivialMatch
/// per column; keeping the l/2 rounding in one place is what lets the
/// brute-force, STOMP, and SIMD paths agree on the boundary for odd `len`
/// (an off-by-one here silently admits trivial matches).
inline ColumnRanges NonTrivialColumnRanges(Index i, Index len, Index n_sub) {
  const Index zone = ExclusionZone(len);
  Index left_end = i - zone + 1;
  if (left_end < 0) left_end = 0;
  if (left_end > n_sub) left_end = n_sub;
  Index right_begin = i + zone;
  if (right_begin > n_sub) right_begin = n_sub;
  return {left_end, right_begin};
}

}  // namespace valmod

#endif  // VALMOD_UTIL_COMMON_H_
