#ifndef VALMOD_UTIL_COMMON_H_
#define VALMOD_UTIL_COMMON_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace valmod {

/// Signed index type used throughout the library for offsets and lengths.
/// Signed arithmetic avoids the classic `size_t` underflow traps in the
/// sliding-window index computations that dominate this codebase.
using Index = std::int64_t;

/// A data series is a plain contiguous vector of real values (Definition 2.1).
using Series = std::vector<double>;

/// Positive infinity, used as the "not yet computed" distance sentinel.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Number of subsequences of length `len` in a series of `n` points.
/// Returns 0 when the series is shorter than `len`.
inline Index NumSubsequences(Index n, Index len) {
  return n >= len ? n - len + 1 : 0;
}

/// Half-width of the trivial-match exclusion zone for subsequence length
/// `len`. The paper (Section 2) heuristically sets it to `len / 2`: offsets
/// `i`, `j` form a trivial match iff `|i - j| < ExclusionZone(len)`.
inline Index ExclusionZone(Index len) {
  return len / 2 > Index{1} ? len / 2 : Index{1};
}

/// True iff offsets `i` and `j` are a trivial match at subsequence length
/// `len` (a subsequence always trivially matches itself).
inline bool IsTrivialMatch(Index i, Index j, Index len) {
  const Index d = i > j ? i - j : j - i;
  return d < ExclusionZone(len);
}

}  // namespace valmod

#endif  // VALMOD_UTIL_COMMON_H_
