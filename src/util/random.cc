#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace valmod {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

Index Rng::UniformIndex(Index lo, Index hi) {
  VALMOD_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<Index>(NextU64() % span);
}

double Rng::Gaussian() {
  // Box-Muller; rejects the (measure-zero in practice) u == 0 draw.
  double u = NextDouble();
  while (u <= 0.0) u = NextDouble();
  const double v = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u));
  return r * std::cos(6.283185307179586 * v);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double prob) {
  return NextDouble() < prob;
}

}  // namespace valmod
