#ifndef VALMOD_UTIL_PREFIX_STATS_H_
#define VALMOD_UTIL_PREFIX_STATS_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Mean and standard deviation of one subsequence.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

/// O(1) subsequence statistics via prefix sums (the "running plain and
/// squared sum" of Algorithm 3, precomputed for the whole series so any
/// (offset, length) window is serviced in constant time at any length —
/// which ComputeSubMP needs when the window length changes every iteration).
///
/// Sums are accumulated in long double to keep the catastrophic cancellation
/// in `ss/l - mu^2` under control for long series.
class PrefixStats {
 public:
  /// Builds prefix sums over `series`. O(n) time, O(n) space.
  explicit PrefixStats(std::span<const double> series);

  /// Number of points in the underlying series.
  Index size() const { return static_cast<Index>(sum_.size()) - 1; }

  /// Sum of values in the window [offset, offset + len).
  double Sum(Index offset, Index len) const {
    return static_cast<double>(sum_[static_cast<std::size_t>(offset + len)] -
                               sum_[static_cast<std::size_t>(offset)]);
  }

  /// Sum of squared values in the window [offset, offset + len).
  double SquaredSum(Index offset, Index len) const {
    return static_cast<double>(sq_[static_cast<std::size_t>(offset + len)] -
                               sq_[static_cast<std::size_t>(offset)]);
  }

  /// Mean of the window [offset, offset + len).
  double Mean(Index offset, Index len) const {
    return Sum(offset, len) / static_cast<double>(len);
  }

  /// Population standard deviation of the window [offset, offset + len).
  /// Clamped at zero from below (never NaN on constant windows).
  double Std(Index offset, Index len) const;

  /// Mean and standard deviation together (one pass over the prefix arrays).
  MeanStd Stats(Index offset, Index len) const;

 private:
  std::vector<long double> sum_;  // sum_[i] = series[0] + ... + series[i-1]
  std::vector<long double> sq_;   // sq_[i]  = series[0]^2 + ... + series[i-1]^2
};

/// Reference implementation: two-pass mean/std over the raw window. Used by
/// tests to validate PrefixStats and by code paths where numerical fidelity
/// matters more than speed.
MeanStd ExactMeanStd(std::span<const double> series, Index offset, Index len);

}  // namespace valmod

#endif  // VALMOD_UTIL_PREFIX_STATS_H_
