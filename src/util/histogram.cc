#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace valmod {

Histogram::Histogram(double lo, double hi, Index bins) : lo_(lo), hi_(hi) {
  VALMOD_CHECK(bins >= 1);
  VALMOD_CHECK(lo < hi);
  counts_.assign(static_cast<std::size_t>(bins), 0);
}

void Histogram::Add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(bins());
  Index b = static_cast<Index>(std::floor((value - lo_) / width));
  b = std::clamp<Index>(b, 0, bins() - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

void Histogram::AddAll(std::span<const double> values) {
  for (double v : values) Add(v);
}

std::int64_t Histogram::Count(Index b) const {
  VALMOD_CHECK(b >= 0 && b < bins());
  return counts_[static_cast<std::size_t>(b)];
}

double Histogram::BinLeft(Index b) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + width * static_cast<double>(b);
}

double Histogram::Fraction(Index b) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(Count(b)) / static_cast<double>(total_);
}

std::string Histogram::Render(int width) const {
  std::int64_t max_count = 1;
  for (Index b = 0; b < bins(); ++b) max_count = std::max(max_count, Count(b));
  std::string out;
  char line[160];
  for (Index b = 0; b < bins(); ++b) {
    const int bar = static_cast<int>(
        static_cast<double>(Count(b)) / static_cast<double>(max_count) * width);
    std::snprintf(line, sizeof(line), "%12.4f | %-10lld ", BinLeft(b),
                  static_cast<long long>(Count(b)));
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

Histogram MakeHistogram(std::span<const double> values, Index bins) {
  VALMOD_CHECK(!values.empty());
  double lo = values[0];
  double hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (lo == hi) hi = lo + 1.0;  // Degenerate range: widen to one unit.
  Histogram h(lo, hi + 1e-12, bins);
  h.AddAll(values);
  return h;
}

}  // namespace valmod
