#ifndef VALMOD_UTIL_THREAD_ANNOTATIONS_H_
#define VALMOD_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attribute macros (the full capability set of
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). The concurrent
// subsystems (src/service, src/obs, src/stream) declare their locking
// protocol with these macros so the `thread-safety` CMake preset
// (-Wthread-safety -Wthread-safety-beta -Werror) can prove, per commit and
// at compile time, that every guarded member is only touched with its mutex
// held. Under GCC and other non-Clang compilers every macro expands to
// nothing, so the annotated code builds identically everywhere.
//
// The macros annotate *declarations*:
//
//   class CAPABILITY("mutex") Mutex { ... };        // a lockable thing
//   Mutex mu_;
//   Index size_ GUARDED_BY(mu_);                    // data needing mu_
//   void EvictLocked() REQUIRES(mu_);               // caller must hold mu_
//
// Conventions (docs/TOOLING.md, "Static concurrency analysis"):
//  * every mutable member of a class holding a valmod::Mutex carries
//    GUARDED_BY / PT_GUARDED_BY, or an explicit `// unguarded:` reason
//    (enforced by tools/lint_invariants.py check `guarded-by-required`);
//  * private helpers that assume the lock carry REQUIRES and a *Locked
//    name suffix;
//  * NO_THREAD_SAFETY_ANALYSIS is a last resort and needs a comment.

#if defined(__clang__) && (!defined(SWIG))
#define VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside Clang
#endif

// A type that acts as a capability (e.g. a mutex). `x` names the capability
// kind in diagnostics ("mutex", "role", ...).
#define CAPABILITY(x) VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

// An RAII type that acquires a capability in its constructor and releases
// it in its destructor (e.g. MutexLock).
#define SCOPED_CAPABILITY VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data members readable/writable only while `x` is held.
#define GUARDED_BY(x) VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

// Pointer members whose *pointee* is protected by `x` (the pointer itself
// may be read freely).
#define PT_GUARDED_BY(x) VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Functions callable only while holding every listed capability
// exclusively (resp. shared); the function does not release them.
#define REQUIRES(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// Functions that acquire the listed capabilities and hold them past return.
#define ACQUIRE(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

// Functions that release capabilities the caller holds on entry.
#define RELEASE(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(release_generic_capability(__VA_ARGS__))

// Functions that try to acquire and report success as `x` (true/false).
#define TRY_ACQUIRE(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...)                  \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(          \
      try_acquire_shared_capability(__VA_ARGS__))

// Functions callable only while NOT holding the listed capabilities
// (deadlock prevention: public entry points of a locking class).
#define EXCLUDES(...) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the calling thread holds the capability; tells the
// analysis to treat it as held from here on.
#define ASSERT_CAPABILITY(x) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(assert_shared_capability(x))

// Functions returning a reference to a capability (lock accessors).
#define RETURN_CAPABILITY(x) \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch: turns the analysis off for one function. Every use must
// carry a comment explaining why the protocol cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  VALMOD_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // VALMOD_UTIL_THREAD_ANNOTATIONS_H_
