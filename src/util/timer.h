#ifndef VALMOD_UTIL_TIMER_H_
#define VALMOD_UTIL_TIMER_H_

#include <chrono>

namespace valmod {

/// Simple wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock budget that long-running algorithms poll to implement the
/// paper's "failed to finish within a reasonable amount of time" (DNF)
/// reporting. A default-constructed Deadline never expires.
class Deadline {
 public:
  /// Never expires.
  Deadline() : unlimited_(true) {}

  /// Expires `seconds` from now.
  static Deadline After(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    return d;
  }

  /// True once the budget is exhausted. Cheap enough to poll every few
  /// thousand inner-loop iterations.
  bool Expired() const {
    return !unlimited_ && Clock::now() >= expiry_;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool unlimited_;
  Clock::time_point expiry_{};
};

}  // namespace valmod

#endif  // VALMOD_UTIL_TIMER_H_
