#ifndef VALMOD_UTIL_TABLE_H_
#define VALMOD_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace valmod {

/// Minimal ASCII table builder used by the benchmark harnesses to print the
/// paper's tables and figure series in a uniform, diff-friendly layout.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` digits.
  static std::string Num(double value, int precision = 3);

  /// Convenience: formats an integer.
  static std::string Int(long long value);

  /// Renders the table with aligned columns and a header separator.
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace valmod

#endif  // VALMOD_UTIL_TABLE_H_
