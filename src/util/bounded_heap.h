#ifndef VALMOD_UTIL_BOUNDED_HEAP_H_
#define VALMOD_UTIL_BOUNDED_HEAP_H_

#include <algorithm>
#include <functional>
#include <vector>

#include "util/check.h"
#include "util/common.h"

namespace valmod {

/// A max-heap with a fixed capacity that retains the `capacity` smallest
/// elements ever inserted (by `Less`). This is the `listDP` building block of
/// Algorithm 3: each distance profile keeps the `p` entries with the smallest
/// lower-bound distances, and `Max()` exposes the p-th smallest (the pruning
/// threshold `maxLB` of Algorithm 4).
///
/// `T` must be movable; `Less` must be a strict weak ordering.
template <typename T, typename Less = std::less<T>>
class BoundedMaxHeap {
 public:
  /// Creates a heap retaining at most `capacity` (>= 1) elements.
  explicit BoundedMaxHeap(Index capacity = 1, Less less = Less())
      : capacity_(capacity), less_(std::move(less)) {
    VALMOD_CHECK(capacity >= 1);
    // Reserve eagerly only for small capacities: callers legitimately pass
    // "unbounded" capacities (retain everything) that must not pre-allocate.
    items_.reserve(static_cast<std::size_t>(std::min<Index>(capacity, 64)));
  }

  /// Offers `value`. If the heap is full and `value` is not smaller than the
  /// current maximum, the offer is rejected. Returns true iff retained.
  bool Insert(T value) {
    if (static_cast<Index>(items_.size()) < capacity_) {
      items_.push_back(std::move(value));
      std::push_heap(items_.begin(), items_.end(), less_);
      return true;
    }
    if (!less_(value, items_.front())) return false;
    std::pop_heap(items_.begin(), items_.end(), less_);
    items_.back() = std::move(value);
    std::push_heap(items_.begin(), items_.end(), less_);
    return true;
  }

  /// True when the heap holds `capacity` elements; from then on `Max()` is a
  /// lower bound on everything that was rejected.
  bool Full() const { return static_cast<Index>(items_.size()) >= capacity_; }

  bool Empty() const { return items_.empty(); }
  Index Size() const { return static_cast<Index>(items_.size()); }
  Index Capacity() const { return capacity_; }

  /// Largest retained element. Requires the heap to be non-empty.
  const T& Max() const {
    VALMOD_CHECK(!items_.empty());
    return items_.front();
  }

  /// Removes and returns the largest retained element.
  T PopMax() {
    VALMOD_CHECK(!items_.empty());
    std::pop_heap(items_.begin(), items_.end(), less_);
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  /// Unordered view of the retained elements.
  const std::vector<T>& Items() const { return items_; }
  std::vector<T>& MutableItems() { return items_; }

  /// Retained elements sorted ascending by `Less`.
  std::vector<T> SortedAscending() const {
    std::vector<T> out = items_;
    std::sort(out.begin(), out.end(), less_);
    return out;
  }

  void Clear() { items_.clear(); }

 private:
  Index capacity_;
  Less less_;
  std::vector<T> items_;
};

}  // namespace valmod

#endif  // VALMOD_UTIL_BOUNDED_HEAP_H_
