#ifndef VALMOD_UTIL_CLI_H_
#define VALMOD_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Tiny `--key=value` / `--flag` command-line parser shared by the examples
/// and benchmark binaries. Unrecognized positional arguments are collected in
/// order and retrievable via Positional().
class CommandLine {
 public:
  /// Parses argv. Arguments of the form `--key=value` or `--key value`
  /// become key/value options; bare `--key` becomes `key=true`.
  CommandLine(int argc, const char* const* argv);

  /// True if `key` was supplied.
  bool Has(const std::string& key) const;

  /// String value of `key`, or `def` when absent.
  std::string GetString(const std::string& key, const std::string& def) const;

  /// Integer value of `key`, or `def` when absent/unparseable.
  Index GetIndex(const std::string& key, Index def) const;

  /// Double value of `key`, or `def` when absent/unparseable.
  double GetDouble(const std::string& key, double def) const;

  /// Boolean value of `key` ("true"/"1"/"yes" are true), or `def`.
  bool GetBool(const std::string& key, bool def) const;

  /// Positional arguments in order of appearance.
  const std::vector<std::string>& Positional() const { return positional_; }

  /// Program name (argv[0]).
  const std::string& ProgramName() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace valmod

#endif  // VALMOD_UTIL_CLI_H_
