#include "util/prefix_stats.h"

#include <cmath>

#include "util/check.h"

namespace valmod {

PrefixStats::PrefixStats(std::span<const double> series) {
  const std::size_t n = series.size();
  sum_.resize(n + 1, 0.0L);
  sq_.resize(n + 1, 0.0L);
  for (std::size_t i = 0; i < n; ++i) {
    const long double v = series[i];
    sum_[i + 1] = sum_[i] + v;
    sq_[i + 1] = sq_[i] + v * v;
  }
}

double PrefixStats::Std(Index offset, Index len) const {
  return Stats(offset, len).std;
}

MeanStd PrefixStats::Stats(Index offset, Index len) const {
  VALMOD_DCHECK(offset >= 0 && len >= 1 && offset + len <= size());
  const long double l = static_cast<long double>(len);
  const long double s = sum_[static_cast<std::size_t>(offset + len)] -
                        sum_[static_cast<std::size_t>(offset)];
  const long double ss = sq_[static_cast<std::size_t>(offset + len)] -
                         sq_[static_cast<std::size_t>(offset)];
  const long double mean = s / l;
  long double var = ss / l - mean * mean;
  if (var < 0.0L) var = 0.0L;
  return MeanStd{static_cast<double>(mean),
                 static_cast<double>(std::sqrt(var))};
}

MeanStd ExactMeanStd(std::span<const double> series, Index offset, Index len) {
  VALMOD_CHECK(offset >= 0 && len >= 1 &&
               static_cast<std::size_t>(offset + len) <= series.size());
  double mean = 0.0;
  for (Index i = 0; i < len; ++i) {
    mean += series[static_cast<std::size_t>(offset + i)];
  }
  mean /= static_cast<double>(len);
  double var = 0.0;
  for (Index i = 0; i < len; ++i) {
    const double d = series[static_cast<std::size_t>(offset + i)] - mean;
    var += d * d;
  }
  var /= static_cast<double>(len);
  return MeanStd{mean, std::sqrt(var)};
}

}  // namespace valmod
