#include "core/compute_matrix_profile.h"

#include "mp/stomp.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "util/check.h"

namespace valmod {

MatrixProfileWithLb ComputeMatrixProfileWithLb(std::span<const double> series,
                                               const PrefixStats& stats,
                                               Index len, Index p,
                                               const Deadline& deadline) {
  VALMOD_CHECK(p >= 1);
  const obs::TraceSpan span("compute_matrix_profile");
  const Index n_sub = NumSubsequences(static_cast<Index>(series.size()), len);
  MatrixProfileWithLb out;
  out.list_dp.resize(static_cast<std::size_t>(n_sub));
  // The observer harvests each finished row into listDP; the STOMP kernel
  // itself is shared with the plain matrix-profile code path.
  const StompRowObserver observer = [&](Index row, std::span<const double> qt,
                                        std::span<const double> profile) {
    out.list_dp[static_cast<std::size_t>(row)] =
        HarvestProfile(row, len, p, qt, profile, stats, &out.heap_updates);
  };
  out.profile = Stomp(series, stats, len, observer, deadline, &out.dnf);
  obs::Counters::RecordFullProfilePass(n_sub, out.heap_updates);
  return out;
}

}  // namespace valmod
