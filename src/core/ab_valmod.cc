#include "core/ab_valmod.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/list_dp.h"
#include "core/lower_bound.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

/// One A-row of the join at a given length: distances to every B
/// subsequence (no exclusion zone), from a prepared dot-product row.
void JoinRowDistances(std::span<const double> qt,
                      const MeanStd& row_stats,
                      std::span<const MeanStd> col_stats_b, Index len,
                      std::vector<double>& out) {
  const Index n_sub_b = static_cast<Index>(qt.size());
  out.resize(static_cast<std::size_t>(n_sub_b));
  for (Index j = 0; j < n_sub_b; ++j) {
    out[static_cast<std::size_t>(j)] = ZNormalizedDistanceFromDotProduct(
        qt[static_cast<std::size_t>(j)], len, row_stats,
        col_stats_b[static_cast<std::size_t>(j)]);
  }
}

/// Harvests the p smallest-LB entries of one join row (the AB analogue of
/// Algorithm 3's listDP fill; no trivial matches to skip).
ProfileLbState HarvestJoinRow(Index owner, Index len, Index p,
                              std::span<const double> qt_row,
                              std::span<const double> dist_row,
                              double sigma_owner) {
  ProfileLbState state;
  state.owner = owner;
  state.base_len = len;
  state.sigma_base = sigma_owner;
  state.entries = BoundedMaxHeap<LbEntry, LbEntryLess>(p);
  const double l = static_cast<double>(len);
  double max_sq = kInf;
  for (Index j = 0; j < static_cast<Index>(dist_row.size()); ++j) {
    const double dist = dist_row[static_cast<std::size_t>(j)];
    const double q = 1.0 - dist * dist / (2.0 * l);
    const double base_sq = q <= 0.0 ? l : l * (1.0 - q * q);
    if (base_sq >= max_sq) continue;
    LbEntry entry;
    entry.neighbor = j;
    entry.qt = qt_row[static_cast<std::size_t>(j)];
    entry.lb_base = std::sqrt(base_sq);
    state.entries.Insert(entry);
    if (state.entries.Full()) {
      const double m = state.entries.Max().lb_base;
      max_sq = m * m;
    }
  }
  return state;
}

}  // namespace

MotifPair AbValmodResult::BestOverall() const {
  MotifPair best;
  double best_norm = kInf;
  for (const MotifPair& m : per_length_join_motifs) {
    if (!m.valid()) continue;
    const double norm = LengthNormalize(m.distance, m.length);
    if (norm < best_norm) {
      best_norm = norm;
      best = m;
    }
  }
  return best;
}

AbValmodResult RunAbValmod(std::span<const double> series_a,
                           std::span<const double> series_b,
                           const AbValmodOptions& options) {
  const Index na = static_cast<Index>(series_a.size());
  const Index nb = static_cast<Index>(series_b.size());
  VALMOD_CHECK(options.len_min >= 4);
  VALMOD_CHECK(options.len_max >= options.len_min);
  VALMOD_CHECK(na >= options.len_max && nb >= options.len_max);
  VALMOD_CHECK(options.p >= 1);

  const Series a = CenterSeries(series_a);
  const Series b = CenterSeries(series_b);
  const PrefixStats stats_a(a);
  const PrefixStats stats_b(b);

  AbValmodResult result;
  result.valmp = Valmp(NumSubsequences(na, options.len_min));

  // Full AB pass at len_min (STOMP-style incremental rows), harvesting the
  // join listDP.
  ListDp list_dp(static_cast<std::size_t>(
      NumSubsequences(na, options.len_min)));
  {
    const Index len = options.len_min;
    const Index n_sub_a = NumSubsequences(na, len);
    const Index n_sub_b = NumSubsequences(nb, len);
    std::vector<MeanStd> col_stats_b(static_cast<std::size_t>(n_sub_b));
    for (Index j = 0; j < n_sub_b; ++j) {
      col_stats_b[static_cast<std::size_t>(j)] = stats_b.Stats(j, len);
    }
    std::vector<double> qt = SlidingDotProduct(
        std::span<const double>(a).subspan(0, static_cast<std::size_t>(len)),
        b);
    const std::vector<double> qt_b0_vs_a = SlidingDotProduct(
        std::span<const double>(b).subspan(0, static_cast<std::size_t>(len)),
        a);
    std::vector<double> row;
    std::vector<double> mp(static_cast<std::size_t>(n_sub_a), kInf);
    std::vector<Index> ip(static_cast<std::size_t>(n_sub_a), kNoNeighbor);
    MotifPair motif;
    motif.length = len;
    for (Index i = 0; i < n_sub_a; ++i) {
      if (options.deadline.Expired()) {
        result.dnf = true;
        return result;
      }
      if (i > 0) {
        for (Index j = n_sub_b - 1; j >= 1; --j) {
          qt[static_cast<std::size_t>(j)] =
              qt[static_cast<std::size_t>(j - 1)] -
              a[static_cast<std::size_t>(i - 1)] *
                  b[static_cast<std::size_t>(j - 1)] +
              a[static_cast<std::size_t>(i + len - 1)] *
                  b[static_cast<std::size_t>(j + len - 1)];
        }
        qt[0] = qt_b0_vs_a[static_cast<std::size_t>(i)];
      }
      const MeanStd row_stats = stats_a.Stats(i, len);
      JoinRowDistances(qt, row_stats, col_stats_b, len, row);
      Index arg = kNoNeighbor;
      double best = kInf;
      for (Index j = 0; j < n_sub_b; ++j) {
        if (row[static_cast<std::size_t>(j)] < best) {
          best = row[static_cast<std::size_t>(j)];
          arg = j;
        }
      }
      mp[static_cast<std::size_t>(i)] = best;
      ip[static_cast<std::size_t>(i)] = arg;
      if (best < motif.distance) {
        motif.distance = best;
        motif.a = i;
        motif.b = arg;
      }
      list_dp[static_cast<std::size_t>(i)] =
          HarvestJoinRow(i, len, options.p, qt, row, row_stats.std);
    }
    ++result.full_join_computations;
    UpdateValmp(result.valmp, mp, ip, len);
    result.per_length_join_motifs.push_back(motif);
  }

  // Lengths len_min+1 .. len_max: O(1) entry advancement + certification,
  // exactly Algorithm 4 minus the trivial-match bookkeeping.
  for (Index len = options.len_min + 1; len <= options.len_max; ++len) {
    if (options.deadline.Expired()) {
      result.dnf = true;
      break;
    }
    const Index n_sub_a = NumSubsequences(na, len);
    const Index n_sub_b = NumSubsequences(nb, len);
    std::vector<double> sub_mp(static_cast<std::size_t>(n_sub_a), kInf);
    std::vector<Index> ip(static_cast<std::size_t>(n_sub_a), kNoNeighbor);
    double min_dist_abs = kInf;
    double min_lb_abs = kInf;
    Index best_owner = kNoNeighbor;
    Index best_neighbor = kNoNeighbor;
    std::vector<Index> non_valid;
    for (Index o = 0; o < n_sub_a; ++o) {
      ProfileLbState& state = list_dp[static_cast<std::size_t>(o)];
      const MeanStd owner_stats = stats_a.Stats(o, len);
      double min_dist = kInf;
      Index min_neighbor = kNoNeighbor;
      for (LbEntry& entry : state.entries.MutableItems()) {
        if (entry.dead) continue;
        if (entry.neighbor >= n_sub_b) {
          entry.dead = true;
          continue;
        }
        entry.qt += a[static_cast<std::size_t>(o + len - 1)] *
                    b[static_cast<std::size_t>(entry.neighbor + len - 1)];
        const double dist = ZNormalizedDistanceFromDotProduct(
            entry.qt, len, owner_stats,
            stats_b.Stats(entry.neighbor, len));
        if (dist < min_dist) {
          min_dist = dist;
          min_neighbor = entry.neighbor;
        }
      }
      const double max_lb =
          state.Complete() || state.entries.Empty()
              ? kInf
              : LowerBoundAtLength(state.entries.Max().lb_base,
                                   state.sigma_base, owner_stats.std);
      if (min_dist <= max_lb) {
        sub_mp[static_cast<std::size_t>(o)] = min_dist;
        ip[static_cast<std::size_t>(o)] = min_neighbor;
        if (min_dist < min_dist_abs) {
          min_dist_abs = min_dist;
          best_owner = o;
          best_neighbor = min_neighbor;
        }
      } else {
        min_lb_abs = std::min(min_lb_abs, max_lb);
        non_valid.push_back(o);
      }
    }
    bool certified = min_dist_abs < min_lb_abs;
    if (!certified) {
      // Selective fallback: recompute the non-valid rows whose threshold
      // could still hide a better join pair.
      std::vector<MeanStd> col_stats_b(static_cast<std::size_t>(n_sub_b));
      for (Index j = 0; j < n_sub_b; ++j) {
        col_stats_b[static_cast<std::size_t>(j)] = stats_b.Stats(j, len);
      }
      std::vector<double> row;
      for (const Index o : non_valid) {
        if (options.deadline.Expired()) {
          result.dnf = true;
          return result;
        }
        ProfileLbState& state = list_dp[static_cast<std::size_t>(o)];
        const double max_lb =
            state.Complete() || state.entries.Empty()
                ? kInf
                : LowerBoundAtLength(state.entries.Max().lb_base,
                                     state.sigma_base, stats_a.Std(o, len));
        if (max_lb >= min_dist_abs) continue;
        const std::vector<double> qt = SlidingDotProduct(
            std::span<const double>(a).subspan(static_cast<std::size_t>(o),
                                               static_cast<std::size_t>(len)),
            b);
        const MeanStd row_stats = stats_a.Stats(o, len);
        JoinRowDistances(qt, row_stats, col_stats_b, len, row);
        Index arg = kNoNeighbor;
        double best = kInf;
        for (Index j = 0; j < n_sub_b; ++j) {
          if (row[static_cast<std::size_t>(j)] < best) {
            best = row[static_cast<std::size_t>(j)];
            arg = j;
          }
        }
        sub_mp[static_cast<std::size_t>(o)] = best;
        ip[static_cast<std::size_t>(o)] = arg;
        list_dp[static_cast<std::size_t>(o)] =
            HarvestJoinRow(o, len, options.p, qt, row, row_stats.std);
        if (best < min_dist_abs) {
          min_dist_abs = best;
          best_owner = o;
          best_neighbor = arg;
        }
      }
      ++result.full_join_computations;
      certified = true;
    }
    (void)certified;
    UpdateValmp(result.valmp, sub_mp, ip, len);
    MotifPair motif;
    motif.length = len;
    if (best_owner != kNoNeighbor) {
      motif.a = best_owner;
      motif.b = best_neighbor;
      motif.distance = min_dist_abs;
    }
    result.per_length_join_motifs.push_back(motif);
  }
  return result;
}

}  // namespace valmod
