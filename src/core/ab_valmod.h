#ifndef VALMOD_CORE_AB_VALMOD_H_
#define VALMOD_CORE_AB_VALMOD_H_

#include <span>
#include <vector>

#include "core/valmp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// Options for variable-length AB-join motif discovery.
struct AbValmodOptions {
  Index len_min = 0;
  Index len_max = 0;
  /// Retained lower-bound entries per join profile.
  Index p = 5;
  Deadline deadline;
};

/// Output of RunAbValmod.
struct AbValmodResult {
  /// Closest cross-series pair for every length in the range
  /// (`a` = offset in series A, `b` = offset in series B; unlike the
  /// self-join there is no canonical ordering).
  std::vector<MotifPair> per_length_join_motifs;
  /// Per-A-offset best length-normalized distance to B over all lengths
  /// (the AB analogue of the VALMP; `indices[i]` is an offset in B).
  Valmp valmp{0};
  /// Full O(|A| * |B|) join passes executed (>= 1).
  Index full_join_computations = 0;
  bool dnf = false;

  /// The best join pair across all lengths under sqrt(1/len) ranking.
  MotifPair BestOverall() const;
};

/// Variable-length AB-join motif discovery: an extension of VALMOD beyond
/// the paper (its future-work section asks for broader applications of the
/// machinery). The Eq. 2 lower bound never references the trivial-match
/// structure, so the exact same listDP/ComputeSubMP strategy applies to a
/// join: one STOMP-style AB pass at len_min harvests the p
/// smallest-lower-bound entries of every A-subsequence's join profile, and
/// each further length advances entries in O(1) with the identical
/// certification logic. Exact: per-length results equal an independent
/// AB-join per length.
AbValmodResult RunAbValmod(std::span<const double> series_a,
                           std::span<const double> series_b,
                           const AbValmodOptions& options);

}  // namespace valmod

#endif  // VALMOD_CORE_AB_VALMOD_H_
