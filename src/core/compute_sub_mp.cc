#include "core/compute_sub_mp.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/lower_bound.h"
#include "mp/distance_profile.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "signal/distance.h"
#include "signal/sliding_dot.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {
namespace {

/// Advances one profile's retained entries from `new_len - 1` to `new_len`
/// and returns (minDist, argmin neighbor) over the live entries.
std::pair<double, Index> AdvanceProfile(std::span<const double> series,
                                        const PrefixStats& stats,
                                        ProfileLbState& state, Index new_len,
                                        Index n_sub_new) {
  const Index owner = state.owner;
  const MeanStd owner_stats = stats.Stats(owner, new_len);
  double min_dist = kInf;
  Index min_neighbor = kNoNeighbor;
  for (LbEntry& entry : state.entries.MutableItems()) {
    if (entry.dead) continue;
    const Index nb = entry.neighbor;
    // The pair leaves play when the neighbor slides past the end of the
    // series or when the growing exclusion zone turns it into a trivial
    // match; both conditions are permanent as the length keeps growing.
    if (nb >= n_sub_new || IsTrivialMatch(owner, nb, new_len)) {
      entry.dead = true;
      continue;
    }
    entry.qt += series[static_cast<std::size_t>(owner + new_len - 1)] *
                series[static_cast<std::size_t>(nb + new_len - 1)];
    const double dist = ZNormalizedDistanceFromDotProduct(
        entry.qt, new_len, owner_stats, stats.Stats(nb, new_len));
    if (dist < min_dist) {
      min_dist = dist;
      min_neighbor = nb;
    }
  }
  return {min_dist, min_neighbor};
}

/// Mean LB/dist tightness over the live entries of one profile, at new_len.
double ProfileTlb(const PrefixStats& stats, const ProfileLbState& state,
                  Index new_len) {
  const double sigma_now = stats.Std(state.owner, new_len);
  const MeanStd owner_stats = stats.Stats(state.owner, new_len);
  // All live entries share the owner's sigma ratio, so their Eq. 2 bounds
  // evaluate as one batch through the dispatched SIMD kernel.
  std::vector<double> lb_bases;
  lb_bases.reserve(state.entries.Items().size());
  for (const LbEntry& entry : state.entries.Items()) {
    if (entry.dead) continue;
    lb_bases.push_back(entry.lb_base);
  }
  std::vector<double> lbs(lb_bases.size());
  LowerBoundAtLengthBatch(lb_bases, state.sigma_base, sigma_now, lbs);
  double acc = 0.0;
  std::size_t live = 0;
  for (const LbEntry& entry : state.entries.Items()) {
    if (entry.dead) continue;
    const double lb = lbs[live++];
    const double dist = ZNormalizedDistanceFromDotProduct(
        entry.qt, new_len, owner_stats, stats.Stats(entry.neighbor, new_len));
    if (dist <= 0.0) {
      acc += 1.0;  // Identical pair: the bound is trivially tight.
    } else {
      acc += std::min(1.0, lb / dist);
    }
  }
  return live == 0 ? 0.0 : acc / static_cast<double>(live);
}

}  // namespace

SubMpResult ComputeSubMp(std::span<const double> series,
                         const PrefixStats& stats, ListDp& list_dp,
                         Index new_len, Index p, const SubMpOptions& options,
                         const Deadline& deadline,
                         SubMpDiagnostics* diagnostics) {
  const obs::TraceSpan span("submp_length_update");
  const Index n = static_cast<Index>(series.size());
  const Index n_sub_new = NumSubsequences(n, new_len);
  VALMOD_CHECK(n_sub_new >= 1);
  VALMOD_CHECK(static_cast<Index>(list_dp.size()) >= n_sub_new);

  SubMpResult result;
  result.sub_mp.assign(static_cast<std::size_t>(n_sub_new), kInf);
  result.ip.assign(static_cast<std::size_t>(n_sub_new), kNoNeighbor);
  result.known.assign(static_cast<std::size_t>(n_sub_new), 0);

  double min_lb_abs = kInf;
  // Non-valid profiles: (owner, maxLB at new_len).
  std::vector<std::pair<Index, double>> non_valid;

  for (Index o = 0; o < n_sub_new; ++o) {
    if ((o & 1023) == 0 && deadline.Expired()) {
      result.dnf = true;
      return result;
    }
    ProfileLbState& state = list_dp[static_cast<std::size_t>(o)];
    const auto [min_dist, min_neighbor] =
        AdvanceProfile(series, stats, state, new_len, n_sub_new);
    const double max_lb = state.MaxLowerBound(stats, new_len);
    if (diagnostics != nullptr) {
      if (min_dist != kInf && max_lb != kInf) {
        diagnostics->margins.push_back(max_lb - min_dist);
      }
      diagnostics->tlb.push_back(ProfileTlb(stats, state, new_len));
    }
    // A profile whose heap never filled holds every candidate, so its local
    // minimum is always the true one (MaxLowerBound returned kInf). The
    // comparison uses <=: entries outside the heap have LB >= maxLB, hence
    // true distance >= maxLB >= minDist, so ties still certify.
    if (min_dist <= max_lb) {
      result.sub_mp[static_cast<std::size_t>(o)] = min_dist;
      result.ip[static_cast<std::size_t>(o)] = min_neighbor;
      result.known[static_cast<std::size_t>(o)] = 1;
      ++result.valid_count;
      if (min_dist < result.min_dist_abs) {
        result.min_dist_abs = min_dist;
        result.min_owner = o;
        result.min_neighbor = min_neighbor;
      }
    } else {
      min_lb_abs = std::min(min_lb_abs, max_lb);
      non_valid.emplace_back(o, max_lb);
    }
  }

  // Global certification: every non-valid profile's true minimum is at least
  // its maxLB, hence at least minLbAbs; if the best certified distance beats
  // that, it is the exact motif distance for this length.
  result.min_lb_abs = min_lb_abs;
  result.best_motif_found = result.min_dist_abs < min_lb_abs;
  const Index certified_from_bounds = result.valid_count;

  // "Last opportunity" (lines 27-38): recompute just the non-valid profiles
  // that could still hide a better pair, instead of a full STOMP pass.
  const bool selective_allowed =
      options.allow_selective_recompute &&
      static_cast<double>(non_valid.size()) <
          options.selective_fraction * static_cast<double>(n_sub_new);
  if (!result.best_motif_found && selective_allowed) {
    const obs::TraceSpan recompute_span("submp_selective_recompute");
    for (const auto& [owner, max_lb] : non_valid) {
      if (deadline.Expired()) {
        result.dnf = true;
        return result;
      }
      if (max_lb >= result.min_dist_abs) continue;  // Cannot improve.
      const std::vector<double> qt_row = SlidingDotProduct(
          series.subspan(static_cast<std::size_t>(owner),
                         static_cast<std::size_t>(new_len)),
          series);
      const std::vector<double> dist_row =
          DistanceProfileFromDotProducts(qt_row, stats, owner, new_len);
      const Index arg = ArgMin(dist_row);
      ++result.recomputed_count;
      // Re-base the profile's retained entries at new_len (line 34).
      list_dp[static_cast<std::size_t>(owner)] = HarvestProfile(
          owner, new_len, p, qt_row, dist_row, stats, &result.heap_updates);
      if (arg == kNoNeighbor) continue;
      const double row_min = dist_row[static_cast<std::size_t>(arg)];
      result.sub_mp[static_cast<std::size_t>(owner)] = row_min;
      result.ip[static_cast<std::size_t>(owner)] = arg;
      if (result.known[static_cast<std::size_t>(owner)] == 0) {
        result.known[static_cast<std::size_t>(owner)] = 1;
        ++result.valid_count;
      }
      if (row_min < result.min_dist_abs) {
        result.min_dist_abs = row_min;
        result.min_owner = owner;
        result.min_neighbor = arg;
      }
    }
    // Every skipped profile had maxLB >= the running best-so-far, so its
    // true minimum cannot beat the final answer: the motif is certified.
    result.best_motif_found = true;
  }
  // Pruning accounting for the observability layer. "Recomputed" counts the
  // profiles the selective pass salvaged into validity, so certified +
  // recomputed == valid_count holds exactly (a conservation law the tests
  // assert); the ratio sample is Algorithm 4's minDistABS / minLbAbs.
  const double tightness =
      (result.min_dist_abs != kInf && min_lb_abs != kInf && min_lb_abs > 0.0)
          ? result.min_dist_abs / min_lb_abs
          : -1.0;
  obs::Counters::RecordSubMpLength(
      certified_from_bounds, result.valid_count - certified_from_bounds,
      n_sub_new - result.valid_count, result.best_motif_found,
      result.heap_updates, tightness);
  return result;
}

}  // namespace valmod
