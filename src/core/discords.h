#ifndef VALMOD_CORE_DISCORDS_H_
#define VALMOD_CORE_DISCORDS_H_

#include <span>
#include <vector>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// Result of variable-length discord discovery (the paper's future-work
/// extension: discords need the *complete* matrix profile at every length,
/// which the per-length-profiles mode of the driver provides).
struct VariableLengthDiscords {
  /// Top discord for each length in the requested range.
  std::vector<Discord> per_length;
  /// The discord with the largest length-normalized nearest-neighbour
  /// distance across all lengths.
  Discord best;
  bool dnf = false;
};

/// Finds the top discord of every length in [len_min, len_max] and the best
/// overall under sqrt(1/l) normalization. Exact; O((len_max - len_min) n^2).
VariableLengthDiscords FindVariableLengthDiscords(
    std::span<const double> series, Index len_min, Index len_max,
    const Deadline& deadline = Deadline());

}  // namespace valmod

#endif  // VALMOD_CORE_DISCORDS_H_
