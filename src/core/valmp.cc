#include "core/valmp.h"

#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

Valmp::Valmp(Index n_slots) {
  distances.assign(static_cast<std::size_t>(n_slots), kInf);
  norm_distances.assign(static_cast<std::size_t>(n_slots), kInf);
  lengths.assign(static_cast<std::size_t>(n_slots), 0);
  indices.assign(static_cast<std::size_t>(n_slots), kNoNeighbor);
}

void UpdateValmp(Valmp& valmp, std::span<const double> mp_new,
                 std::span<const Index> ip, Index len,
                 const ValmpImprovementHook& hook) {
  VALMOD_CHECK(mp_new.size() == ip.size());
  VALMOD_CHECK(static_cast<Index>(mp_new.size()) <= valmp.size());
  const Index n_dp = static_cast<Index>(mp_new.size());
  for (Index i = 0; i < n_dp; ++i) {
    const double dist = mp_new[static_cast<std::size_t>(i)];
    if (dist == kInf) continue;  // ⊥: unknown at this length.
    const Index neighbor = ip[static_cast<std::size_t>(i)];
    if (neighbor == kNoNeighbor) continue;
    const double norm_dist = LengthNormalize(dist, len);
    const std::size_t s = static_cast<std::size_t>(i);
    if (!valmp.IsSet(i) || valmp.norm_distances[s] > norm_dist) {
      valmp.distances[s] = dist;
      valmp.norm_distances[s] = norm_dist;
      valmp.lengths[s] = len;
      valmp.indices[s] = neighbor;
      if (hook) hook(i, neighbor, len, dist, norm_dist);
    }
  }
}

}  // namespace valmod
