#ifndef VALMOD_CORE_LOWER_BOUND_H_
#define VALMOD_CORE_LOWER_BOUND_H_

#include <span>

#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// The paper's Eq. 2 lower bound, split into its two factors.
///
/// Given subsequences of length `base_len` at offsets i (the "unknown" side)
/// and j (the "known" side, the owner of the distance profile), with Pearson
/// correlation q between them, the z-normalized distance at any longer
/// length `base_len + k` is bounded from below by
///
///   LB(d_{i,j}^{l+k}) = B(q, l) * sigma_{j,l} / sigma_{j,l+k}
///
/// where the base term B(q, l) is
///
///   B(q, l) = sqrt(l)              if q <= 0
///   B(q, l) = sqrt(l * (1 - q^2))  otherwise.
///
/// Only the sigma ratio depends on k and it is common to every entry of the
/// profile of j, which is what makes the bound rank-preserving in k
/// (Section 4.1).

/// The k-independent base term B(q, base_len).
double LowerBoundBase(double correlation, Index base_len);

/// Full Eq. 2 bound: B(q, l) * sigma_base / sigma_now.
/// `sigma_base` is the owner's std at the base length, `sigma_now` at the
/// target length. A (near-)flat owner window at the target length makes the
/// ratio blow up; the bound is then truncated to 0 (trivially valid).
double LowerBoundAtLength(double lower_bound_base, double sigma_base,
                          double sigma_now);

/// Convenience: Eq. 2 evaluated end-to-end for a pair of offsets, from base
/// statistics. Used by tests and diagnostics; hot paths use the split form.
double LowerBoundDistance(double correlation, Index base_len,
                          double sigma_owner_base, double sigma_owner_now);

/// Vectorized LowerBoundAtLength over a batch of base terms sharing one
/// owner: out[i] = lb_bases[i] * sigma_base / sigma_now (0 when the owner
/// window is flat at the target length). Routed through the dispatched SIMD
/// kernels; bit-identical to calling LowerBoundAtLength per element.
/// `out` must have lb_bases.size() elements.
void LowerBoundAtLengthBatch(std::span<const double> lb_bases,
                             double sigma_base, double sigma_now,
                             std::span<double> out);

/// Vectorized squared base term recovered from distances (the HarvestProfile
/// inner loop): for each i with d = distances[i], q = 1 - d^2/(2*base_len)
/// and out[i] = base_len if q <= 0, else base_len * (1 - q^2). Entries where
/// d is kInf (trivial matches) come back as base_len; callers that skip them
/// must keep checking the distance. `out` must match distances.size().
void LowerBoundBaseSqBatch(std::span<const double> distances, Index base_len,
                           std::span<double> out);

}  // namespace valmod

#endif  // VALMOD_CORE_LOWER_BOUND_H_
