#include "core/list_dp.h"

#include <cmath>
#include <vector>

#include "core/lower_bound.h"
#include "signal/distance.h"
#include "util/check.h"

namespace valmod {

double ProfileLbState::MaxLowerBound(const PrefixStats& stats,
                                     Index len) const {
  if (Complete() || entries.Empty()) return kInf;
  const double sigma_now = stats.Std(owner, len);
  return LowerBoundAtLength(entries.Max().lb_base, sigma_base, sigma_now);
}

ProfileLbState HarvestProfile(Index owner, Index len, Index p,
                              std::span<const double> qt_row,
                              std::span<const double> dist_row,
                              const PrefixStats& stats,
                              Index* heap_updates) {
  VALMOD_CHECK(qt_row.size() == dist_row.size());
  Index updates = 0;
  ProfileLbState state;
  state.owner = owner;
  state.base_len = len;
  state.sigma_base = stats.Std(owner, len);
  state.entries = BoundedMaxHeap<LbEntry, LbEntryLess>(p);
  const Index n_sub = static_cast<Index>(qt_row.size());
  // This loop runs once per (row, column), i.e. O(n^2) per matrix-profile
  // pass, so it is written to be cheap: the correlation is recovered from
  // the already-computed distance (q = 1 - d^2/(2l), inverting Eq. 3 with
  // all flat-window conventions already applied) by the batched SIMD kernel,
  // and the heap threshold is checked on the *squared* base term so the sqrt
  // only runs for entries that actually enter the heap. The scratch is
  // thread-local because ParallelStomp harvests rows concurrently.
  static thread_local std::vector<double> base_sq_row;
  base_sq_row.resize(qt_row.size());
  LowerBoundBaseSqBatch(dist_row, len, base_sq_row);
  double max_sq = kInf;  // Squared heap max; +inf until the heap fills.
  for (Index j = 0; j < n_sub; ++j) {
    const double dist = dist_row[static_cast<std::size_t>(j)];
    if (dist == kInf) continue;  // Trivial match.
    const double base_sq = base_sq_row[static_cast<std::size_t>(j)];
    if (base_sq >= max_sq) continue;  // Cannot displace the heap max.
    LbEntry entry;
    entry.neighbor = j;
    entry.qt = qt_row[static_cast<std::size_t>(j)];
    entry.lb_base = std::sqrt(base_sq);
    if (state.entries.Insert(entry)) ++updates;
    if (state.entries.Full()) {
      const double m = state.entries.Max().lb_base;
      max_sq = m * m;
    }
  }
  if (heap_updates != nullptr) *heap_updates += updates;
  return state;
}

}  // namespace valmod
