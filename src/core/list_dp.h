#ifndef VALMOD_CORE_LIST_DP_H_
#define VALMOD_CORE_LIST_DP_H_

#include <span>
#include <vector>

#include "mp/matrix_profile.h"
#include "util/bounded_heap.h"
#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// One retained entry of a (partial) distance profile: the pair
/// (owner, neighbor) together with everything needed to (a) re-evaluate the
/// exact z-normalized distance at any later length in O(1) per length step
/// (the running dot product) and (b) evaluate the Eq. 2 lower bound at any
/// later length (the k-independent base term).
struct LbEntry {
  /// Offset of the other subsequence of the pair.
  Index neighbor = kNoNeighbor;
  /// Dot product of the pair's raw values at the current length of the scan
  /// (updated incrementally by ComputeSubMP).
  double qt = 0.0;
  /// Eq. 2 base term B(q, base_len); multiply by sigma_base/sigma_now for
  /// the lower bound at a later length.
  double lb_base = 0.0;
  /// Set when the entry can no longer participate: the neighbor slid past
  /// the end of the series, or the pair became a trivial match as the
  /// exclusion zone grew with the length.
  bool dead = false;
};

/// Heap order: retain the entries with the *smallest* base lower bounds.
struct LbEntryLess {
  /// Orders by the base lower bound, smallest first.
  bool operator()(const LbEntry& x, const LbEntry& y) const {
    return x.lb_base < y.lb_base;
  }
};

/// The `listDP[i]` of Algorithms 3-4: the p smallest-lower-bound entries of
/// the distance profile owned by subsequence `owner`, harvested at
/// `base_len`, plus the owner-side statistics that anchor Eq. 2.
struct ProfileLbState {
  Index owner = kNoNeighbor;
  /// Length at which the entries (and their base lower bounds) were
  /// harvested; rebased when the profile is fully recomputed.
  Index base_len = 0;
  /// Owner's standard deviation at base_len (numerator of the sigma ratio).
  double sigma_base = 0.0;
  BoundedMaxHeap<LbEntry, LbEntryLess> entries;

  ProfileLbState() : entries(1) {}

  /// True when the heap never filled: it then holds *every* non-trivial
  /// entry of the profile, so there is no pruning threshold to respect
  /// (maxLB is effectively +inf).
  bool Complete() const { return !entries.Full(); }

  /// The pruning threshold maxLB of Algorithm 4 at subsequence length
  /// `len`: the largest retained base bound scaled by the sigma ratio.
  /// Returns kInf for complete profiles.
  double MaxLowerBound(const PrefixStats& stats, Index len) const;
};

/// The whole `listDP` vector: one partial profile per subsequence of the
/// base length.
using ListDp = std::vector<ProfileLbState>;

/// Builds the ProfileLbState for one profile from its full dot-product and
/// distance rows (used by the STOMP observer in ComputeMatrixProfile and by
/// the selective-recompute fallback of ComputeSubMP).
///
/// `qt_row[j]` is dot(T_owner, T_j) at length `len`; `dist_row[j]` the
/// z-normalized distance (kInf marks trivial matches, which are skipped).
/// Retains the `p` entries with the smallest Eq. 2 base bounds. When
/// `heap_updates` is non-null it is incremented once per retained
/// insertion (the listDP work metric surfaced by obs::Counters).
ProfileLbState HarvestProfile(Index owner, Index len, Index p,
                              std::span<const double> qt_row,
                              std::span<const double> dist_row,
                              const PrefixStats& stats,
                              Index* heap_updates = nullptr);

}  // namespace valmod

#endif  // VALMOD_CORE_LIST_DP_H_
