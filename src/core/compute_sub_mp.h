#ifndef VALMOD_CORE_COMPUTE_SUB_MP_H_
#define VALMOD_CORE_COMPUTE_SUB_MP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/list_dp.h"
#include "util/common.h"
#include "util/prefix_stats.h"
#include "util/timer.h"

namespace valmod {

/// Tuning knobs for Algorithm 4.
struct SubMpOptions {
  /// Enables the "last opportunity" selective-recompute path (lines 27-38):
  /// when the motif is not certified, non-valid profiles whose maxLB is
  /// below the best-so-far are recomputed individually with MASS instead of
  /// falling back to a full STOMP pass.
  bool allow_selective_recompute = true;
  /// The selective path is only attempted when the number of non-valid
  /// profiles is below this fraction of all profiles. (The paper gates on
  /// "less than half"; each selective recompute costs a MASS pass,
  /// O(n log n), versus O(n) per row inside a full STOMP pass, so a much
  /// smaller gate keeps the fallback strictly cheaper than recomputing the
  /// whole profile.)
  double selective_fraction = 0.1;
};

/// Result of one ComputeSubMP call for subsequence length `new_len`.
struct SubMpResult {
  /// bBestM: true when sub_mp certifiably contains the exact motif pair of
  /// this length; false means the caller must run a full matrix profile.
  bool best_motif_found = false;
  /// Partial matrix profile: the certified row minimum where known[i] != 0,
  /// kInf elsewhere (the ⊥ of the pseudocode).
  std::vector<double> sub_mp;
  /// Neighbor offsets matching sub_mp.
  std::vector<Index> ip;
  /// known[i] != 0 iff profile i was certified valid (or recomputed).
  std::vector<std::uint8_t> known;
  /// Number of certified profiles — the |subMP| series of Figure 14.
  Index valid_count = 0;
  /// Profiles recomputed by the selective fallback.
  Index recomputed_count = 0;
  /// Best certified distance (the motif distance when best_motif_found).
  double min_dist_abs = kInf;
  Index min_owner = kNoNeighbor;
  Index min_neighbor = kNoNeighbor;
  /// minLbAbs of Algorithm 4 line 14: the smallest pruning threshold among
  /// the profiles not certified by the main update loop (kInf when every
  /// profile certified). min_dist_abs / min_lb_abs is the bound-tightness
  /// ratio surfaced by obs::Counters.
  double min_lb_abs = kInf;
  /// Successful listDP heap insertions performed by the selective-recompute
  /// re-harvests.
  Index heap_updates = 0;
  /// Deadline expired mid-computation.
  bool dnf = false;
};

/// Optional per-profile instrumentation, harvested while the main loop runs;
/// feeds Figures 9 (pruning margin) and 10 (tightness of the lower bound).
struct SubMpDiagnostics {
  /// maxLB - minDist per profile (positive = profile certified); profiles
  /// with no live entries are skipped.
  std::vector<double> margins;
  /// Mean of LB / true-distance over the live entries of each profile
  /// (in [0, 1]; higher = tighter bound).
  std::vector<double> tlb;
};

/// Algorithm 4 (ComputeSubMP): advances every retained `listDP` entry from
/// length `new_len - 1` to `new_len` in O(1) each, certifies per-profile
/// minima against the rank-preserved Eq. 2 bounds, and certifies the global
/// motif via the minDistABS < minLbAbs test. Mutates `list_dp` in place
/// (running dot products advance; selectively recomputed profiles are
/// re-based at `new_len`).
SubMpResult ComputeSubMp(std::span<const double> series,
                         const PrefixStats& stats, ListDp& list_dp,
                         Index new_len, Index p,
                         const SubMpOptions& options = SubMpOptions(),
                         const Deadline& deadline = Deadline(),
                         SubMpDiagnostics* diagnostics = nullptr);

}  // namespace valmod

#endif  // VALMOD_CORE_COMPUTE_SUB_MP_H_
