#include "core/ranking.h"

#include <algorithm>
#include <cstdlib>

#include "signal/znorm.h"

namespace valmod {
namespace {

/// True when `off` overlaps any of `taken` within its exclusion zone.
bool Overlaps(const std::vector<std::pair<Index, Index>>& taken, Index off,
              Index len) {
  for (const auto& [t_off, t_len] : taken) {
    const Index excl = ExclusionZone(std::min(len, t_len));
    if (std::llabs(static_cast<long long>(t_off - off)) < excl) return true;
  }
  return false;
}

}  // namespace

std::vector<RankedPair> SelectTopKPairs(const Valmp& valmp, Index k) {
  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(valmp.size()));
  for (Index i = 0; i < valmp.size(); ++i) {
    if (valmp.IsSet(i)) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return valmp.norm_distances[static_cast<std::size_t>(x)] <
           valmp.norm_distances[static_cast<std::size_t>(y)];
  });
  std::vector<RankedPair> out;
  std::vector<std::pair<Index, Index>> taken;  // (offset, length) pairs used.
  for (Index i : order) {
    if (static_cast<Index>(out.size()) >= k) break;
    const std::size_t s = static_cast<std::size_t>(i);
    const Index j = valmp.indices[s];
    const Index len = valmp.lengths[s];
    if (Overlaps(taken, i, len) || Overlaps(taken, j, len)) continue;
    RankedPair pair;
    pair.off1 = std::min(i, j);
    pair.off2 = std::max(i, j);
    pair.length = len;
    pair.distance = valmp.distances[s];
    pair.norm_distance = valmp.norm_distances[s];
    out.push_back(pair);
    taken.emplace_back(i, len);
    taken.emplace_back(j, len);
  }
  return out;
}

std::vector<std::vector<MotifPair>> TopKMotifsPerLength(
    const std::vector<MatrixProfile>& per_length_profiles, Index k) {
  std::vector<std::vector<MotifPair>> out;
  out.reserve(per_length_profiles.size());
  for (const MatrixProfile& profile : per_length_profiles) {
    out.push_back(TopMotifsFromProfile(profile, k));
  }
  return out;
}

std::vector<RankedPair> RankMotifsByNormalizedDistance(
    const std::vector<MotifPair>& motifs) {
  std::vector<RankedPair> out;
  for (const MotifPair& m : motifs) {
    if (!m.valid()) continue;
    RankedPair pair;
    pair.off1 = m.a;
    pair.off2 = m.b;
    pair.length = m.length;
    pair.distance = m.distance;
    pair.norm_distance = LengthNormalize(m.distance, m.length);
    out.push_back(pair);
  }
  std::sort(out.begin(), out.end(),
            [](const RankedPair& x, const RankedPair& y) {
              return x.norm_distance < y.norm_distance;
            });
  return out;
}

}  // namespace valmod
