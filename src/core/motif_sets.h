#ifndef VALMOD_CORE_MOTIF_SETS_H_
#define VALMOD_CORE_MOTIF_SETS_H_

#include <span>
#include <vector>

#include "core/ranking.h"
#include "core/valmod.h"
#include "util/common.h"

namespace valmod {

/// A variable-length motif set (Definition 2.6): all subsequences within
/// radius `radius` of either seed of a top-K motif pair, at that pair's
/// length.
struct MotifSet {
  /// The motif pair the set grew from.
  RankedPair seed;
  /// r = D * seed.distance.
  double radius = 0.0;
  /// Offsets of the member subsequences, including the two seeds, sorted by
  /// distance to the nearest seed (ascending; the seeds come first).
  std::vector<Index> occurrences;
  /// Distance of each occurrence to its nearest seed (0 for the seeds).
  std::vector<double> distances;

  /// |S_r^l|, the frequency of the motif set.
  Index frequency() const { return static_cast<Index>(occurrences.size()); }
};

/// Parameters of the motif-set stage.
struct MotifSetOptions {
  /// Number of top pairs (by length-normalized distance) to extend (K).
  Index k = 10;
  /// Radius factor D: the set radius is D times the seed pair distance.
  double radius_factor = 3.0;
};

/// Bookkeeping reported by ComputeVariableLengthMotifSets; shows how often
/// the retained partial profiles sufficed (the source of the 3-6 orders of
/// magnitude speed-up of Figure 15).
struct MotifSetStats {
  /// Seed profiles answered from the retained listDP entries alone.
  Index answered_from_partial = 0;
  /// Seed profiles that required a fresh full distance profile.
  Index full_profile_recomputes = 0;
  double seconds = 0.0;
};

/// Algorithms 5-6: extends the top-K motif pairs of a finished VALMOD run
/// into motif sets. Each subsequence joins at most one set (the disjointness
/// constraint of Problem 2), enforced greedily in ascending distance order.
///
/// For each seed subsequence, when the maximum retained lower bound of its
/// partial distance profile exceeds the search radius, every member within
/// the radius is already among the retained entries and no new distance
/// profile is computed; otherwise the profile is recomputed with MASS.
std::vector<MotifSet> ComputeVariableLengthMotifSets(
    std::span<const double> series, const ValmodResult& result,
    const MotifSetOptions& options, MotifSetStats* stats = nullptr);

}  // namespace valmod

#endif  // VALMOD_CORE_MOTIF_SETS_H_
