#include "core/serialize.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

namespace valmod {
namespace {

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!*out) return Status::IoError("cannot open for write: " + path);
  out->precision(17);
  return Status::Ok();
}

Status CheckHeader(std::ifstream& in, const std::string& expected,
                   const std::string& path) {
  std::string header;
  if (!std::getline(in, header)) {
    return Status::IoError("empty file: " + path);
  }
  if (header != expected) {
    return Status::InvalidArgument("unexpected header '" + header + "' in " +
                                   path + " (want '" + expected + "')");
  }
  return Status::Ok();
}

/// Splits a CSV line into exactly `n` numeric fields.
Status ParseFields(const std::string& line, int n, double* fields,
                   const std::string& path) {
  std::istringstream stream(line);
  std::string token;
  for (int f = 0; f < n; ++f) {
    if (!std::getline(stream, token, ',')) {
      return Status::InvalidArgument("short row '" + line + "' in " + path);
    }
    char* end = nullptr;
    fields[f] = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      return Status::InvalidArgument("bad field '" + token + "' in " + path);
    }
  }
  return Status::Ok();
}

}  // namespace

Status WriteValmpCsv(const Valmp& valmp, const std::string& path) {
  std::ofstream out;
  if (Status s = OpenForWrite(path, &out); !s.ok()) return s;
  out << "offset,neighbor,length,distance,norm_distance\n";
  for (Index i = 0; i < valmp.size(); ++i) {
    if (!valmp.IsSet(i)) continue;
    const std::size_t k = static_cast<std::size_t>(i);
    out << i << ',' << valmp.indices[k] << ',' << valmp.lengths[k] << ','
        << valmp.distances[k] << ',' << valmp.norm_distances[k] << '\n';
  }
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadValmpCsv(const std::string& path, Index n_slots, Valmp* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  if (Status s =
          CheckHeader(in, "offset,neighbor,length,distance,norm_distance",
                      path);
      !s.ok()) {
    return s;
  }
  *out = Valmp(n_slots);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double f[5];
    if (Status s = ParseFields(line, 5, f, path); !s.ok()) return s;
    const Index offset = static_cast<Index>(f[0]);
    if (offset < 0 || offset >= n_slots) {
      return Status::OutOfRange("offset out of range in " + path);
    }
    const std::size_t k = static_cast<std::size_t>(offset);
    out->indices[k] = static_cast<Index>(f[1]);
    out->lengths[k] = static_cast<Index>(f[2]);
    out->distances[k] = f[3];
    out->norm_distances[k] = f[4];
  }
  return Status::Ok();
}

Status WriteMatrixProfileCsv(const MatrixProfile& profile,
                             const std::string& path) {
  std::ofstream out;
  if (Status s = OpenForWrite(path, &out); !s.ok()) return s;
  out << "offset,distance,neighbor\n";
  for (Index i = 0; i < profile.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (profile.indices[k] == kNoNeighbor) continue;
    out << i << ',' << profile.distances[k] << ',' << profile.indices[k]
        << '\n';
  }
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadMatrixProfileCsv(const std::string& path,
                            Index subsequence_length, MatrixProfile* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  if (Status s = CheckHeader(in, "offset,distance,neighbor", path); !s.ok()) {
    return s;
  }
  out->subsequence_length = subsequence_length;
  out->distances.clear();
  out->indices.clear();
  std::string line;
  Index max_offset = -1;
  std::vector<std::pair<Index, std::pair<double, Index>>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double f[3];
    if (Status s = ParseFields(line, 3, f, path); !s.ok()) return s;
    const Index offset = static_cast<Index>(f[0]);
    if (offset < 0) return Status::OutOfRange("negative offset in " + path);
    rows.emplace_back(offset,
                      std::make_pair(f[1], static_cast<Index>(f[2])));
    max_offset = std::max(max_offset, offset);
  }
  out->distances.assign(static_cast<std::size_t>(max_offset + 1), kInf);
  out->indices.assign(static_cast<std::size_t>(max_offset + 1), kNoNeighbor);
  for (const auto& [offset, value] : rows) {
    out->distances[static_cast<std::size_t>(offset)] = value.first;
    out->indices[static_cast<std::size_t>(offset)] = value.second;
  }
  return Status::Ok();
}

Status WriteMotifsCsv(const std::vector<MotifPair>& motifs,
                      const std::string& path) {
  std::ofstream out;
  if (Status s = OpenForWrite(path, &out); !s.ok()) return s;
  out << "length,offset_a,offset_b,distance\n";
  for (const MotifPair& m : motifs) {
    if (!m.valid()) continue;
    out << m.length << ',' << m.a << ',' << m.b << ',' << m.distance << '\n';
  }
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadMotifsCsv(const std::string& path, std::vector<MotifPair>* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  if (Status s = CheckHeader(in, "length,offset_a,offset_b,distance", path);
      !s.ok()) {
    return s;
  }
  out->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double f[4];
    if (Status s = ParseFields(line, 4, f, path); !s.ok()) return s;
    MotifPair m;
    m.length = static_cast<Index>(f[0]);
    m.a = static_cast<Index>(f[1]);
    m.b = static_cast<Index>(f[2]);
    m.distance = f[3];
    out->push_back(m);
  }
  return Status::Ok();
}

}  // namespace valmod
