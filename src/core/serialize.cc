#include "core/serialize.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

namespace valmod {
namespace {

Status OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path);
  if (!*out) return Status::IoError("cannot open for write: " + path);
  out->precision(17);
  WriteCsvVersionLine(*out);
  return Status::Ok();
}

Status CheckHeader(std::ifstream& in, const std::string& expected,
                   const std::string& path) {
  if (Status s = CheckCsvVersionLine(in, path); !s.ok()) return s;
  std::string header;
  if (!std::getline(in, header)) {
    return Status::IoError("missing header row in " + path);
  }
  if (header != expected) {
    return Status::InvalidArgument("unexpected header '" + header + "' in " +
                                   path + " (want '" + expected + "')");
  }
  return Status::Ok();
}

/// Casts a parsed field to Index after checking it fits the serialized
/// index range (a corrupt field must not size containers or index arrays).
Status CheckedIndex(double field, const std::string& what,
                    const std::string& path, Index* out) {
  if (!(field >= static_cast<double>(-1) &&
        field <= static_cast<double>(kMaxSerializedIndex))) {
    return Status::OutOfRange(what + " out of range in " + path);
  }
  *out = static_cast<Index>(field);
  return Status::Ok();
}

}  // namespace

void WriteCsvVersionLine(std::ostream& out) {
  out << "# valmod-csv " << kCsvFormatVersion << '\n';
}

Status CheckCsvVersionLine(std::istream& in, const std::string& path) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  std::istringstream stream(line);
  std::string hash;
  std::string magic;
  int version = 0;
  if (!(stream >> hash >> magic >> version) || hash != "#" ||
      magic != "valmod-csv") {
    return Status::InvalidArgument(
        "missing '# valmod-csv <version>' line in " + path +
        " (legacy v1 or foreign file?)");
  }
  if (version != kCsvFormatVersion) {
    return Status::InvalidArgument("unsupported format version " +
                                   std::to_string(version) + " in " + path);
  }
  return Status::Ok();
}

Status ParseCsvFields(const std::string& line, int n, double* fields,
                      const std::string& path) {
  std::istringstream stream(line);
  std::string token;
  for (int f = 0; f < n; ++f) {
    if (!std::getline(stream, token, ',')) {
      return Status::InvalidArgument("short row '" + line + "' in " + path);
    }
    char* end = nullptr;
    fields[f] = std::strtod(token.c_str(), &end);
    if (end == token.c_str()) {
      return Status::InvalidArgument("bad field '" + token + "' in " + path);
    }
    if (std::isnan(fields[f])) {
      return Status::InvalidArgument("NaN field in '" + line + "' in " +
                                     path);
    }
  }
  if (std::getline(stream, token, ',')) {
    return Status::InvalidArgument("extra field(s) in row '" + line +
                                   "' in " + path);
  }
  return Status::Ok();
}

Status WriteValmpCsv(const Valmp& valmp, const std::string& path) {
  std::ofstream out;
  if (Status s = OpenForWrite(path, &out); !s.ok()) return s;
  out << "offset,neighbor,length,distance,norm_distance\n";
  for (Index i = 0; i < valmp.size(); ++i) {
    if (!valmp.IsSet(i)) continue;
    const std::size_t k = static_cast<std::size_t>(i);
    out << i << ',' << valmp.indices[k] << ',' << valmp.lengths[k] << ','
        << valmp.distances[k] << ',' << valmp.norm_distances[k] << '\n';
  }
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadValmpCsv(const std::string& path, Index n_slots, Valmp* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  if (Status s =
          CheckHeader(in, "offset,neighbor,length,distance,norm_distance",
                      path);
      !s.ok()) {
    return s;
  }
  *out = Valmp(n_slots);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double f[5];
    if (Status s = ParseCsvFields(line, 5, f, path); !s.ok()) return s;
    Index offset = 0;
    Index neighbor = 0;
    Index length = 0;
    if (Status s = CheckedIndex(f[0], "offset", path, &offset); !s.ok()) {
      return s;
    }
    if (Status s = CheckedIndex(f[1], "neighbor", path, &neighbor); !s.ok()) {
      return s;
    }
    if (Status s = CheckedIndex(f[2], "length", path, &length); !s.ok()) {
      return s;
    }
    if (offset < 0 || offset >= n_slots) {
      return Status::OutOfRange("offset out of range in " + path);
    }
    if (neighbor < 0 || neighbor >= n_slots) {
      return Status::OutOfRange("neighbor out of range in " + path);
    }
    if (length < 2) {
      return Status::InvalidArgument("length < 2 in " + path);
    }
    if (f[3] < 0.0 || f[4] < 0.0) {
      return Status::InvalidArgument("negative distance in " + path);
    }
    const std::size_t k = static_cast<std::size_t>(offset);
    out->indices[k] = neighbor;
    out->lengths[k] = length;
    out->distances[k] = f[3];
    out->norm_distances[k] = f[4];
  }
  return Status::Ok();
}

Status WriteMatrixProfileCsv(const MatrixProfile& profile,
                             const std::string& path) {
  std::ofstream out;
  if (Status s = OpenForWrite(path, &out); !s.ok()) return s;
  out << "offset,distance,neighbor\n";
  for (Index i = 0; i < profile.size(); ++i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (profile.indices[k] == kNoNeighbor) continue;
    out << i << ',' << profile.distances[k] << ',' << profile.indices[k]
        << '\n';
  }
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadMatrixProfileCsv(const std::string& path,
                            Index subsequence_length, MatrixProfile* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  if (Status s = CheckHeader(in, "offset,distance,neighbor", path); !s.ok()) {
    return s;
  }
  out->subsequence_length = subsequence_length;
  out->distances.clear();
  out->indices.clear();
  std::string line;
  Index max_offset = -1;
  std::vector<std::pair<Index, std::pair<double, Index>>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double f[3];
    if (Status s = ParseCsvFields(line, 3, f, path); !s.ok()) return s;
    Index offset = 0;
    Index neighbor = 0;
    if (Status s = CheckedIndex(f[0], "offset", path, &offset); !s.ok()) {
      return s;
    }
    if (Status s = CheckedIndex(f[2], "neighbor", path, &neighbor); !s.ok()) {
      return s;
    }
    if (offset < 0) return Status::OutOfRange("negative offset in " + path);
    if (neighbor < 0) {
      return Status::OutOfRange("negative neighbor in " + path);
    }
    if (f[1] < 0.0) {
      return Status::InvalidArgument("negative distance in " + path);
    }
    rows.emplace_back(offset, std::make_pair(f[1], neighbor));
    max_offset = std::max(max_offset, offset);
  }
  out->distances.assign(static_cast<std::size_t>(max_offset + 1), kInf);
  out->indices.assign(static_cast<std::size_t>(max_offset + 1), kNoNeighbor);
  for (const auto& [offset, value] : rows) {
    out->distances[static_cast<std::size_t>(offset)] = value.first;
    out->indices[static_cast<std::size_t>(offset)] = value.second;
  }
  return Status::Ok();
}

Status WriteMotifsCsv(const std::vector<MotifPair>& motifs,
                      const std::string& path) {
  std::ofstream out;
  if (Status s = OpenForWrite(path, &out); !s.ok()) return s;
  out << "length,offset_a,offset_b,distance\n";
  for (const MotifPair& m : motifs) {
    if (!m.valid()) continue;
    out << m.length << ',' << m.a << ',' << m.b << ',' << m.distance << '\n';
  }
  out.flush();
  return out ? Status::Ok() : Status::IoError("write failed: " + path);
}

Status ReadMotifsCsv(const std::string& path, std::vector<MotifPair>* out) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  if (Status s = CheckHeader(in, "length,offset_a,offset_b,distance", path);
      !s.ok()) {
    return s;
  }
  out->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    double f[4];
    if (Status s = ParseCsvFields(line, 4, f, path); !s.ok()) return s;
    MotifPair m;
    if (Status s = CheckedIndex(f[0], "length", path, &m.length); !s.ok()) {
      return s;
    }
    if (Status s = CheckedIndex(f[1], "offset_a", path, &m.a); !s.ok()) {
      return s;
    }
    if (Status s = CheckedIndex(f[2], "offset_b", path, &m.b); !s.ok()) {
      return s;
    }
    if (m.length < 2 || m.a < 0 || m.b < 0 || f[3] < 0.0) {
      return Status::InvalidArgument("malformed motif row '" + line +
                                     "' in " + path);
    }
    m.distance = f[3];
    out->push_back(m);
  }
  return Status::Ok();
}

}  // namespace valmod
