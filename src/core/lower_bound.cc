#include "core/lower_bound.h"

#include <cmath>

#include "mp/simd/simd.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

double LowerBoundBase(double correlation, Index base_len) {
  VALMOD_DCHECK(base_len >= 1);
  const double l = static_cast<double>(base_len);
  if (correlation <= 0.0) return std::sqrt(l);
  const double q = correlation > 1.0 ? 1.0 : correlation;
  return std::sqrt(l * (1.0 - q * q));
}

double LowerBoundAtLength(double lower_bound_base, double sigma_base,
                          double sigma_now) {
  if (sigma_now < kFlatStdEpsilon) return 0.0;
  return lower_bound_base * (sigma_base / sigma_now);
}

double LowerBoundDistance(double correlation, Index base_len,
                          double sigma_owner_base, double sigma_owner_now) {
  return LowerBoundAtLength(LowerBoundBase(correlation, base_len),
                            sigma_owner_base, sigma_owner_now);
}

void LowerBoundAtLengthBatch(std::span<const double> lb_bases,
                             double sigma_base, double sigma_now,
                             std::span<double> out) {
  VALMOD_DCHECK(out.size() == lb_bases.size());
  simd::CurrentKernels().lb_at_length(lb_bases.data(),
                                      static_cast<Index>(lb_bases.size()),
                                      sigma_base, sigma_now, out.data());
}

void LowerBoundBaseSqBatch(std::span<const double> distances, Index base_len,
                           std::span<double> out) {
  VALMOD_DCHECK(out.size() == distances.size());
  VALMOD_DCHECK(base_len >= 1);
  simd::CurrentKernels().lb_base_sq_row(distances.data(),
                                        static_cast<Index>(distances.size()),
                                        base_len, out.data());
}

}  // namespace valmod
