#ifndef VALMOD_CORE_VALMOD_H_
#define VALMOD_CORE_VALMOD_H_

#include <span>
#include <vector>

#include "core/compute_sub_mp.h"
#include "core/list_dp.h"
#include "core/valmp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// Configuration of a VALMOD run (the inputs of Algorithm 1 plus knobs).
struct ValmodOptions {
  /// Smallest subsequence length of the range (l_min). Must be >= 4.
  Index len_min = 0;
  /// Largest subsequence length of the range (l_max >= l_min).
  Index len_max = 0;
  /// Number of lower-bound entries retained per distance profile (the
  /// paper's parameter p; its benchmark grid uses 5..150).
  Index p = 5;
  /// Algorithm 4 tuning.
  SubMpOptions sub_mp;
  /// Wall-clock budget; on expiry the run stops and `dnf` is set.
  Deadline deadline;
  /// When true, a full exact matrix profile is emitted for every length via
  /// a STOMP pass per length (the paper's future-work extension: "compute a
  /// complete matrix profile for each length in the input range"). This
  /// disables the ComputeSubMP shortcut, trading speed for completeness.
  bool emit_per_length_profiles = false;
};

/// Bookkeeping for one processed length; feeds Figures 8-14.
struct LengthStats {
  Index length = 0;
  /// Number of subsequences (distance profiles) at this length.
  Index n_profiles = 0;
  /// Certified entries of subMP (|subMP| in Figure 14); equals n_profiles
  /// when a full matrix profile was computed.
  Index valid_count = 0;
  /// True when Algorithm 1 fell back to a full ComputeMatrixProfile.
  bool used_full_recompute = false;
  /// Profiles recomputed by Algorithm 4's selective fallback.
  Index selective_recomputes = 0;
  /// Best certified distance at this length (Algorithm 4's minDistABS;
  /// kInf on full-recompute lengths where the quantity is not defined).
  double min_dist_abs = kInf;
  /// Smallest pruning threshold among non-certified profiles (Algorithm 4's
  /// minLbAbs; kInf when every profile certified or on full recomputes).
  double min_lb_abs = kInf;
  /// Successful listDP heap insertions attributable to this length.
  Index heap_updates = 0;
  double seconds = 0.0;
};

/// Output of a VALMOD run.
struct ValmodResult {
  /// The variable-length matrix profile (Algorithm 1's VALMP).
  Valmp valmp{0};
  /// Exact motif pair for every length in [len_min, len_max] (Problem 1).
  std::vector<MotifPair> per_length_motifs;
  /// Full matrix profiles per length; only populated when
  /// ValmodOptions::emit_per_length_profiles is set.
  std::vector<MatrixProfile> per_length_profiles;
  /// Per-length statistics, one entry per processed length.
  std::vector<LengthStats> length_stats;
  /// Full O(n^2) matrix-profile passes executed (>= 1: the l_min pass).
  Index full_mp_computations = 0;
  /// Deadline expired; results cover only the lengths processed so far.
  bool dnf = false;
  /// Final partial-distance-profile state; consumed by the motif-set stage
  /// (Algorithms 5-6).
  ListDp list_dp;

  /// The best motif pair across all lengths under the length-normalized
  /// distance (the global winner of the ranking of Section 3).
  MotifPair BestOverall() const;
};

/// Algorithm 1 (VALMOD): exact variable-length motif discovery over
/// [len_min, len_max]. Requires series.size() >= len_max + ExclusionZone, so
/// at least one non-trivial pair exists at the largest length.
ValmodResult RunValmod(std::span<const double> series,
                       const ValmodOptions& options);

}  // namespace valmod

#endif  // VALMOD_CORE_VALMOD_H_
