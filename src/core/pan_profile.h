#ifndef VALMOD_CORE_PAN_PROFILE_H_
#define VALMOD_CORE_PAN_PROFILE_H_

#include <span>
#include <string>
#include <vector>

#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/timer.h"

namespace valmod {

/// The pan matrix profile: the exact matrix profile of *every* length in
/// [len_min, len_max], stacked. This is the data structure the paper's
/// future-work section asks for ("efficiently compute a complete matrix
/// profile for each length in the input range"); the follow-up literature
/// names it the pan matrix profile. Values are comparable across lengths
/// via the normalized view d / sqrt(2*len) in [0, 1].
class PanMatrixProfile {
 public:
  /// Builds from per-length profiles (e.g. ValmodResult::
  /// per_length_profiles). Profiles must be consecutive lengths ascending.
  explicit PanMatrixProfile(std::vector<MatrixProfile> profiles);

  /// Shortest subsequence length covered by the pan-profile.
  Index len_min() const { return len_min_; }
  /// Longest subsequence length covered by the pan-profile.
  Index len_max() const { return len_min_ + num_lengths() - 1; }
  /// Number of consecutive lengths covered ([len_min, len_max]).
  Index num_lengths() const { return static_cast<Index>(profiles_.size()); }

  /// The profile of one length.
  const MatrixProfile& ProfileAt(Index len) const;

  /// Raw nearest-neighbour distance at (len, offset); kInf when the offset
  /// has no neighbour at that length.
  double ValueAt(Index len, Index offset) const;

  /// Length-comparable value in [0, 1]: d / sqrt(2*len) (1 = as far as a
  /// maximally dissimilar pair can be). Returns 1 for kInf cells.
  double NormalizedValueAt(Index len, Index offset) const;

  /// For each offset of the shortest length, the length whose normalized
  /// value is smallest — "at which time scale is this region most
  /// repetitive?" (the pan profile's headline query).
  std::vector<Index> BestLengthPerOffset() const;

  /// ASCII heat map: `rows` length-bins (top = len_max) by `cols`
  /// offset-bins, dark characters = close pairs (small normalized value).
  std::string RenderAscii(Index rows = 16, Index cols = 72) const;

 private:
  Index len_min_ = 0;
  std::vector<MatrixProfile> profiles_;
};

/// Computes the exact pan matrix profile via the VALMOD driver's
/// per-length-profiles mode. O((len_max - len_min + 1) * n^2).
PanMatrixProfile ComputePanMatrixProfile(std::span<const double> series,
                                         Index len_min, Index len_max,
                                         const Deadline& deadline = Deadline());

}  // namespace valmod

#endif  // VALMOD_CORE_PAN_PROFILE_H_
