#include "core/discords.h"

#include "mp/stomp.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {

VariableLengthDiscords FindVariableLengthDiscords(
    std::span<const double> series, Index len_min, Index len_max,
    const Deadline& deadline) {
  VALMOD_CHECK(len_min >= 4 && len_max >= len_min);
  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats stats(series);
  VariableLengthDiscords out;
  double best_norm = -1.0;
  for (Index len = len_min; len <= len_max; ++len) {
    bool dnf = false;
    const MatrixProfile profile =
        Stomp(series, stats, len, nullptr, deadline, &dnf);
    if (dnf) {
      out.dnf = true;
      break;
    }
    const Discord discord = DiscordFromProfile(profile);
    out.per_length.push_back(discord);
    if (discord.valid()) {
      const double norm = LengthNormalize(discord.distance, len);
      if (norm > best_norm) {
        best_norm = norm;
        out.best = discord;
      }
    }
  }
  return out;
}

}  // namespace valmod
