#include "core/motif_sets.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "mp/distance_profile.h"
#include "signal/znorm.h"
#include "signal/distance.h"
#include "util/check.h"
#include "util/prefix_stats.h"
#include "util/timer.h"

namespace valmod {
namespace {

/// Candidate member of a motif set: offset and distance to one of the seeds.
struct Candidate {
  Index offset;
  double dist;
};

/// Collects every subsequence within `radius` of the seed at `owner`
/// (length `len`), preferring the retained partial profile when its pruning
/// threshold certifies completeness within the radius.
std::vector<Candidate> MembersInRange(std::span<const double> series,
                                      const PrefixStats& stats,
                                      const ListDp& list_dp, Index owner,
                                      Index len, double radius,
                                      MotifSetStats* out_stats) {
  std::vector<Candidate> members;
  const Index n_sub = NumSubsequences(static_cast<Index>(series.size()), len);
  const ProfileLbState* state =
      owner < static_cast<Index>(list_dp.size())
          ? &list_dp[static_cast<std::size_t>(owner)]
          : nullptr;
  // The Eq. 2 bound only extrapolates from the base length upward, so the
  // partial profile is usable only when it was based at or below `len`.
  const bool usable = state != nullptr && state->base_len <= len;
  const double max_lb = usable ? state->MaxLowerBound(stats, len) : -kInf;
  if (usable && max_lb > radius) {
    // Every subsequence within the radius is among the retained entries:
    // anything outside the heap has LB >= maxLB > radius (Algorithm 6,
    // sortAndFilterRange branch). Exact distances are recomputed at `len`
    // because the running dot products have advanced past it.
    if (out_stats != nullptr) ++out_stats->answered_from_partial;
    for (const LbEntry& entry : state->entries.Items()) {
      const Index nb = entry.neighbor;
      if (nb >= n_sub || IsTrivialMatch(owner, nb, len)) continue;
      const double d = SubsequenceDistance(series, stats, owner, nb, len);
      if (d <= radius) members.push_back(Candidate{nb, d});
    }
    return members;
  }
  // Radius reaches beyond the retained entries: recompute the profile
  // (CalcDistProfInRange branch).
  if (out_stats != nullptr) ++out_stats->full_profile_recomputes;
  const std::vector<double> profile =
      ComputeDistanceProfile(series, stats, owner, len);
  for (Index j = 0; j < static_cast<Index>(profile.size()); ++j) {
    const double d = profile[static_cast<std::size_t>(j)];
    if (d <= radius) members.push_back(Candidate{j, d});
  }
  return members;
}

}  // namespace

std::vector<MotifSet> ComputeVariableLengthMotifSets(
    std::span<const double> series, const ValmodResult& result,
    const MotifSetOptions& options, MotifSetStats* stats_out) {
  VALMOD_CHECK(options.k >= 1);
  VALMOD_CHECK(options.radius_factor >= 0.0);
  WallTimer timer;
  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats stats(series);
  const std::vector<RankedPair> pairs =
      SelectTopKPairs(result.valmp, options.k);

  std::vector<MotifSet> sets;
  // Global disjointness: a subsequence (offset at some length) joins at most
  // one set; overlap is judged with the exclusion zone of the shorter of
  // the two lengths involved, matching the trivial-match rule.
  std::vector<std::pair<Index, Index>> used;  // (offset, length)
  auto overlaps_used = [&used](Index off, Index len) {
    for (const auto& [u_off, u_len] : used) {
      const Index excl = ExclusionZone(std::min(len, u_len));
      if (std::llabs(static_cast<long long>(u_off - off)) < excl) return true;
    }
    return false;
  };

  for (const RankedPair& pair : pairs) {
    const double radius = options.radius_factor * pair.distance;
    MotifSet set;
    set.seed = pair;
    set.radius = radius;
    // The seeds anchor the set; SelectTopKPairs already guaranteed they do
    // not overlap earlier sets, but a seed may still have been swallowed by
    // a previous set's radius expansion.
    if (overlaps_used(pair.off1, pair.length) ||
        overlaps_used(pair.off2, pair.length)) {
      continue;
    }
    set.occurrences = {pair.off1, pair.off2};
    set.distances = {0.0, 0.0};
    used.emplace_back(pair.off1, pair.length);
    used.emplace_back(pair.off2, pair.length);

    std::vector<Candidate> candidates = MembersInRange(
        series, stats, result.list_dp, pair.off1, pair.length, radius,
        stats_out);
    const std::vector<Candidate> from_second = MembersInRange(
        series, stats, result.list_dp, pair.off2, pair.length, radius,
        stats_out);
    candidates.insert(candidates.end(), from_second.begin(),
                      from_second.end());
    // mergeRemoveTM: ascending by distance, greedily keep candidates that do
    // not trivially match anything already accepted (in any set).
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                return x.dist < y.dist;
              });
    for (const Candidate& c : candidates) {
      if (overlaps_used(c.offset, pair.length)) continue;
      set.occurrences.push_back(c.offset);
      set.distances.push_back(c.dist);
      used.emplace_back(c.offset, pair.length);
    }
    sets.push_back(std::move(set));
  }
  if (stats_out != nullptr) stats_out->seconds = timer.Seconds();
  return sets;
}

}  // namespace valmod
