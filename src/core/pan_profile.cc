#include "core/pan_profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/valmod.h"
#include "util/check.h"

namespace valmod {

PanMatrixProfile::PanMatrixProfile(std::vector<MatrixProfile> profiles)
    : profiles_(std::move(profiles)) {
  VALMOD_CHECK(!profiles_.empty());
  len_min_ = profiles_.front().subsequence_length;
  for (std::size_t k = 0; k < profiles_.size(); ++k) {
    VALMOD_CHECK_MSG(profiles_[k].subsequence_length ==
                         len_min_ + static_cast<Index>(k),
                     "profiles must cover consecutive ascending lengths");
  }
}

const MatrixProfile& PanMatrixProfile::ProfileAt(Index len) const {
  VALMOD_CHECK(len >= len_min() && len <= len_max());
  return profiles_[static_cast<std::size_t>(len - len_min_)];
}

double PanMatrixProfile::ValueAt(Index len, Index offset) const {
  const MatrixProfile& profile = ProfileAt(len);
  VALMOD_CHECK(offset >= 0 && offset < profile.size());
  return profile.distances[static_cast<std::size_t>(offset)];
}

double PanMatrixProfile::NormalizedValueAt(Index len, Index offset) const {
  const double v = ValueAt(len, offset);
  if (v == kInf) return 1.0;
  return std::min(1.0, v / std::sqrt(2.0 * static_cast<double>(len)));
}

std::vector<Index> PanMatrixProfile::BestLengthPerOffset() const {
  const Index n_offsets = profiles_.back().size();
  std::vector<Index> best(static_cast<std::size_t>(n_offsets), len_min_);
  for (Index offset = 0; offset < n_offsets; ++offset) {
    double best_value = kInf;
    for (Index len = len_min(); len <= len_max(); ++len) {
      if (offset >= ProfileAt(len).size()) break;
      const double v = NormalizedValueAt(len, offset);
      if (v < best_value) {
        best_value = v;
        best[static_cast<std::size_t>(offset)] = len;
      }
    }
  }
  return best;
}

std::string PanMatrixProfile::RenderAscii(Index rows, Index cols) const {
  VALMOD_CHECK(rows >= 1 && cols >= 1);
  // Dark = close pair. Indexed from value 0 (closest) to 1 (unrelated).
  static constexpr char kShades[] = "@%#*+=-:. ";
  constexpr Index kNumShades = 10;
  std::string out;
  for (Index r = 0; r < rows; ++r) {
    // Top row = longest length.
    const Index len =
        len_max() - r * (num_lengths() - 1) / std::max<Index>(1, rows - 1);
    const MatrixProfile& profile = ProfileAt(len);
    out += "len ";
    char label[32];
    std::snprintf(label, sizeof(label), "%5lld |",
                  static_cast<long long>(len));
    out += label;
    for (Index c = 0; c < cols; ++c) {
      // Average the normalized values of the offsets in this column bin.
      const Index lo = c * profile.size() / cols;
      const Index hi =
          std::max<Index>(lo + 1, (c + 1) * profile.size() / cols);
      double acc = 0.0;
      for (Index o = lo; o < hi; ++o) acc += NormalizedValueAt(len, o);
      const double mean = acc / static_cast<double>(hi - lo);
      const Index shade = std::min<Index>(
          kNumShades - 1, static_cast<Index>(mean * kNumShades));
      out += kShades[shade];
    }
    out += "|\n";
  }
  return out;
}

PanMatrixProfile ComputePanMatrixProfile(std::span<const double> series,
                                         Index len_min, Index len_max,
                                         const Deadline& deadline) {
  ValmodOptions options;
  options.len_min = len_min;
  options.len_max = len_max;
  options.p = 1;  // listDP is irrelevant in emit mode; keep memory minimal.
  options.emit_per_length_profiles = true;
  options.deadline = deadline;
  ValmodResult result = RunValmod(series, options);
  VALMOD_CHECK_MSG(!result.dnf, "deadline expired mid pan-profile");
  return PanMatrixProfile(std::move(result.per_length_profiles));
}

}  // namespace valmod
