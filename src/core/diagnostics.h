#ifndef VALMOD_CORE_DIAGNOSTICS_H_
#define VALMOD_CORE_DIAGNOSTICS_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Per-profile lower-bound quality measurements at one subsequence length,
/// reproducing the quantities of Figures 9 and 10.
struct LbDiagnostics {
  /// The length the diagnostics were collected at.
  Index length = 0;
  /// maxLB - minDist per distance profile (Figure 9): positive values mean
  /// the profile's minimum was certified from the retained entries alone.
  std::vector<double> margins;
  /// Average tightness of the lower bound per profile (Figure 10):
  /// mean over retained entries of LB / true distance, in [0, 1].
  std::vector<double> tlb;

  /// Fraction of profiles with a positive margin (pruning success rate).
  double PositiveMarginFraction() const;
  /// Mean of the per-profile TLB averages.
  double MeanTlb() const;
};

/// Runs VALMOD's machinery from `len_base` up to `len_target` with p
/// retained entries per profile and collects the margin/TLB measurements at
/// the final length. `len_target == len_base` measures the bound one step
/// ahead of the base (diagnostics need at least one ComputeSubMP step, so
/// the target must exceed the base).
LbDiagnostics CollectLbDiagnostics(std::span<const double> series,
                                   Index len_base, Index len_target, Index p);

}  // namespace valmod

#endif  // VALMOD_CORE_DIAGNOSTICS_H_
