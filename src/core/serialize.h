#ifndef VALMOD_CORE_SERIALIZE_H_
#define VALMOD_CORE_SERIALIZE_H_

#include <string>
#include <vector>

#include "core/valmp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// CSV serialization of the library's result types, so runs can be archived
/// and consumed by external tooling (pandas, R, gnuplot). All writers emit
/// a header row; all readers validate it.

/// VALMP as `offset,neighbor,length,distance,norm_distance` (set slots
/// only).
Status WriteValmpCsv(const Valmp& valmp, const std::string& path);

/// Reads a file written by WriteValmpCsv. Slots absent from the file stay
/// unset; `n_slots` sizes the container.
Status ReadValmpCsv(const std::string& path, Index n_slots, Valmp* out);

/// One matrix profile as `offset,distance,neighbor`.
Status WriteMatrixProfileCsv(const MatrixProfile& profile,
                             const std::string& path);

/// Reads a file written by WriteMatrixProfileCsv. `subsequence_length` is
/// not stored in the CSV and must be supplied.
Status ReadMatrixProfileCsv(const std::string& path,
                            Index subsequence_length, MatrixProfile* out);

/// Motif pairs as `length,offset_a,offset_b,distance`.
Status WriteMotifsCsv(const std::vector<MotifPair>& motifs,
                      const std::string& path);

/// Reads a file written by WriteMotifsCsv.
Status ReadMotifsCsv(const std::string& path, std::vector<MotifPair>* out);

}  // namespace valmod

#endif  // VALMOD_CORE_SERIALIZE_H_
