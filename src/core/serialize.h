#ifndef VALMOD_CORE_SERIALIZE_H_
#define VALMOD_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/valmp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// CSV serialization of the library's result types, so runs can be archived
/// and consumed by external tooling (pandas, R, gnuplot). All writers stamp
/// a format-version line and a header row; all readers validate both and
/// reject malformed rows instead of silently misreading them.

/// Format version stamped as `# valmod-csv <version>` in the first line of
/// every file written by this module. Readers reject files whose version
/// line is missing (pre-versioning legacy files) or carries a different
/// version, so format drift fails loudly instead of parsing garbage.
/// History: v1 = headerless-version files (before the version line existed);
/// v2 = version line + strict row validation.
inline constexpr int kCsvFormatVersion = 2;

/// Largest offset/index value any reader accepts. A corrupted offset field
/// would otherwise size an output container from whatever bytes happen to be
/// in the file; 2^28 slots (a multi-GB profile) is far beyond any series
/// this library processes.
inline constexpr Index kMaxSerializedIndex = Index{1} << 28;

/// Writes the `# valmod-csv <version>` line (first line of every file).
void WriteCsvVersionLine(std::ostream& out);

/// Consumes and validates the version line. Returns InvalidArgument when it
/// is missing or names an unsupported version.
Status CheckCsvVersionLine(std::istream& in, const std::string& path);

/// Splits one CSV line into exactly `n` numeric fields. Rejects short rows,
/// non-numeric fields, NaN fields, and trailing extra fields (all of which
/// the pre-v2 parser silently tolerated). Shared with the streaming
/// checkpoint reader (src/stream/checkpoint.cc).
Status ParseCsvFields(const std::string& line, int n, double* fields,
                      const std::string& path);

/// VALMP as `offset,neighbor,length,distance,norm_distance` (set slots
/// only).
Status WriteValmpCsv(const Valmp& valmp, const std::string& path);

/// Reads a file written by WriteValmpCsv. Slots absent from the file stay
/// unset; `n_slots` sizes the container.
Status ReadValmpCsv(const std::string& path, Index n_slots, Valmp* out);

/// One matrix profile as `offset,distance,neighbor`.
Status WriteMatrixProfileCsv(const MatrixProfile& profile,
                             const std::string& path);

/// Reads a file written by WriteMatrixProfileCsv. `subsequence_length` is
/// not stored in the CSV and must be supplied.
Status ReadMatrixProfileCsv(const std::string& path,
                            Index subsequence_length, MatrixProfile* out);

/// Motif pairs as `length,offset_a,offset_b,distance`.
Status WriteMotifsCsv(const std::vector<MotifPair>& motifs,
                      const std::string& path);

/// Reads a file written by WriteMotifsCsv.
Status ReadMotifsCsv(const std::string& path, std::vector<MotifPair>* out);

}  // namespace valmod

#endif  // VALMOD_CORE_SERIALIZE_H_
