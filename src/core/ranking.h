#ifndef VALMOD_CORE_RANKING_H_
#define VALMOD_CORE_RANKING_H_

#include <vector>

#include "core/valmp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"

namespace valmod {

/// A motif pair annotated with its length-normalized distance, the ranking
/// key of Section 3.
struct RankedPair {
  Index off1 = kNoNeighbor;
  Index off2 = kNoNeighbor;
  Index length = 0;
  /// Straight z-normalized Euclidean distance.
  double distance = kInf;
  /// distance * sqrt(1 / length).
  double norm_distance = kInf;
};

/// Selects the top-K motif pairs from a finished VALMP (the role of
/// Algorithm 5's heapBestKPairs): slots are visited in ascending
/// length-normalized distance; a pair is taken when neither of its
/// subsequences overlaps (within the pair's exclusion zone) a subsequence
/// already taken, which de-duplicates the (a,b)/(b,a) mirror entries and
/// enforces the disjointness Problem 2 requires.
std::vector<RankedPair> SelectTopKPairs(const Valmp& valmp, Index k);

/// Ranks per-length motif pairs (Problem 1 output) across lengths by
/// length-normalized distance, ascending. Invalid pairs are dropped.
std::vector<RankedPair> RankMotifsByNormalizedDistance(
    const std::vector<MotifPair>& motifs);

/// The ranked list of Definition 2.3, per length: the top-k disjoint motif
/// pairs of every length in the range. Requires the run to have been made
/// with ValmodOptions::emit_per_length_profiles (the complete per-length
/// profiles are needed to rank beyond the best pair); CHECK-fails otherwise.
std::vector<std::vector<MotifPair>> TopKMotifsPerLength(
    const std::vector<MatrixProfile>& per_length_profiles, Index k);

}  // namespace valmod

#endif  // VALMOD_CORE_RANKING_H_
