#include "core/diagnostics.h"

#include "core/compute_matrix_profile.h"
#include "core/compute_sub_mp.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {

double LbDiagnostics::PositiveMarginFraction() const {
  if (margins.empty()) return 0.0;
  Index positive = 0;
  for (double m : margins) {
    if (m > 0.0) ++positive;
  }
  return static_cast<double>(positive) / static_cast<double>(margins.size());
}

double LbDiagnostics::MeanTlb() const {
  if (tlb.empty()) return 0.0;
  double acc = 0.0;
  for (double t : tlb) acc += t;
  return acc / static_cast<double>(tlb.size());
}

LbDiagnostics CollectLbDiagnostics(std::span<const double> series,
                                   Index len_base, Index len_target, Index p) {
  VALMOD_CHECK(len_target > len_base);
  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats stats(series);
  MatrixProfileWithLb base =
      ComputeMatrixProfileWithLb(series, stats, len_base, p);
  ListDp list_dp = std::move(base.list_dp);
  LbDiagnostics diag;
  diag.length = len_target;
  for (Index len = len_base + 1; len <= len_target; ++len) {
    SubMpDiagnostics sink;
    const bool last = len == len_target;
    ComputeSubMp(series, stats, list_dp, len, p, SubMpOptions(), Deadline(),
                 last ? &sink : nullptr);
    if (last) {
      diag.margins = std::move(sink.margins);
      diag.tlb = std::move(sink.tlb);
    }
  }
  return diag;
}

}  // namespace valmod
