#ifndef VALMOD_CORE_COMPUTE_MATRIX_PROFILE_H_
#define VALMOD_CORE_COMPUTE_MATRIX_PROFILE_H_

#include <span>

#include "core/list_dp.h"
#include "mp/matrix_profile.h"
#include "util/common.h"
#include "util/prefix_stats.h"
#include "util/timer.h"

namespace valmod {

/// Result of Algorithm 3: the exact matrix profile at one length plus the
/// per-profile partial distance profiles (`listDP`) that seed ComputeSubMP.
struct MatrixProfileWithLb {
  MatrixProfile profile;
  ListDp list_dp;
  /// Successful listDP heap insertions across all harvested rows (the
  /// Algorithm 3 bookkeeping cost surfaced by obs::Counters).
  Index heap_updates = 0;
  /// Set when the deadline expired; the profile is then incomplete.
  bool dnf = false;
};

/// Algorithm 3 (ComputeMatrixProfile): a STOMP pass at length `len` that
/// additionally retains, for every distance profile, the `p` entries with
/// the smallest Eq. 2 lower bounds. O(n^2 log p) time, O(n p) extra space.
MatrixProfileWithLb ComputeMatrixProfileWithLb(
    std::span<const double> series, const PrefixStats& stats, Index len,
    Index p, const Deadline& deadline = Deadline());

}  // namespace valmod

#endif  // VALMOD_CORE_COMPUTE_MATRIX_PROFILE_H_
