#include "core/valmod.h"

#include <algorithm>

#include "core/compute_matrix_profile.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "signal/znorm.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {
namespace {

/// Derives the motif pair of one length from a certified SubMpResult.
MotifPair MotifFromSubMp(const SubMpResult& sub, Index len) {
  MotifPair motif;
  motif.length = len;
  if (sub.min_owner != kNoNeighbor && sub.min_dist_abs != kInf) {
    motif.a = std::min(sub.min_owner, sub.min_neighbor);
    motif.b = std::max(sub.min_owner, sub.min_neighbor);
    motif.distance = sub.min_dist_abs;
  }
  return motif;
}

}  // namespace

MotifPair ValmodResult::BestOverall() const {
  MotifPair best;
  double best_norm = kInf;
  for (const MotifPair& m : per_length_motifs) {
    if (!m.valid()) continue;
    const double norm = LengthNormalize(m.distance, m.length);
    if (norm < best_norm) {
      best_norm = norm;
      best = m;
    }
  }
  return best;
}

ValmodResult RunValmod(std::span<const double> series,
                       const ValmodOptions& options) {
  const obs::TraceSpan span("valmod_run");
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(options.len_min >= 4);
  VALMOD_CHECK(options.len_max >= options.len_min);
  VALMOD_CHECK_MSG(n >= options.len_max + ExclusionZone(options.len_max),
                   "series too short for len_max");
  VALMOD_CHECK(options.p >= 1);

  // Center the input: a semantic no-op for z-normalized distances that
  // prevents catastrophic cancellation when the data has a large offset.
  const Series centered = CenterSeries(series);
  series = std::span<const double>(centered);
  const PrefixStats stats(series);
  ValmodResult result;
  result.valmp = Valmp(NumSubsequences(n, options.len_min));

  // Length l_min: full matrix profile + listDP harvest (Algorithm 3).
  WallTimer timer;
  MatrixProfileWithLb base = ComputeMatrixProfileWithLb(
      series, stats, options.len_min, options.p, options.deadline);
  ++result.full_mp_computations;
  if (base.dnf) {
    result.dnf = true;
    return result;
  }
  result.list_dp = std::move(base.list_dp);
  UpdateValmp(result.valmp, base.profile.distances, base.profile.indices,
              options.len_min);
  result.per_length_motifs.push_back(MotifFromProfile(base.profile));
  LengthStats base_stats;
  base_stats.length = options.len_min;
  base_stats.n_profiles = base.profile.size();
  base_stats.valid_count = base.profile.size();
  base_stats.used_full_recompute = true;
  base_stats.heap_updates = base.heap_updates;
  base_stats.seconds = timer.Seconds();
  result.length_stats.push_back(base_stats);
  if (options.emit_per_length_profiles) {
    result.per_length_profiles.push_back(base.profile);
  }

  // Lengths l_min+1 .. l_max (Algorithm 1 lines 7-16).
  for (Index len = options.len_min + 1; len <= options.len_max; ++len) {
    timer.Reset();
    if (options.deadline.Expired()) {
      result.dnf = true;
      break;
    }
    if (options.emit_per_length_profiles) {
      // Future-work extension: the caller wants the complete profile at
      // every length, so the partial shortcut is not applicable.
      MatrixProfileWithLb full = ComputeMatrixProfileWithLb(
          series, stats, len, options.p, options.deadline);
      ++result.full_mp_computations;
      if (full.dnf) {
        result.dnf = true;
        break;
      }
      result.list_dp = std::move(full.list_dp);
      UpdateValmp(result.valmp, full.profile.distances, full.profile.indices,
                  len);
      result.per_length_motifs.push_back(MotifFromProfile(full.profile));
      result.per_length_profiles.push_back(std::move(full.profile));
      LengthStats full_stats;
      full_stats.length = len;
      full_stats.n_profiles = NumSubsequences(n, len);
      full_stats.valid_count = full_stats.n_profiles;
      full_stats.used_full_recompute = true;
      full_stats.heap_updates = full.heap_updates;
      full_stats.seconds = timer.Seconds();
      result.length_stats.push_back(full_stats);
      continue;
    }

    SubMpResult sub =
        ComputeSubMp(series, stats, result.list_dp, len, options.p,
                     options.sub_mp, options.deadline);
    if (sub.dnf) {
      result.dnf = true;
      break;
    }
    LengthStats ls;
    ls.length = len;
    ls.n_profiles = NumSubsequences(n, len);
    ls.valid_count = sub.valid_count;
    ls.selective_recomputes = sub.recomputed_count;
    ls.min_dist_abs = sub.min_dist_abs;
    ls.min_lb_abs = sub.min_lb_abs;
    ls.heap_updates = sub.heap_updates;
    if (sub.best_motif_found) {
      UpdateValmp(result.valmp, sub.sub_mp, sub.ip, len);
      result.per_length_motifs.push_back(MotifFromSubMp(sub, len));
    } else {
      // Rare: the bounds could not certify the motif; recompute the full
      // matrix profile for this length and re-base listDP (line 13).
      const obs::TraceSpan fallback_span("valmod_full_fallback");
      obs::Counters::RecordValmodFallback();
      MatrixProfileWithLb full = ComputeMatrixProfileWithLb(
          series, stats, len, options.p, options.deadline);
      ++result.full_mp_computations;
      if (full.dnf) {
        result.dnf = true;
        break;
      }
      result.list_dp = std::move(full.list_dp);
      UpdateValmp(result.valmp, full.profile.distances, full.profile.indices,
                  len);
      result.per_length_motifs.push_back(MotifFromProfile(full.profile));
      ls.used_full_recompute = true;
      ls.valid_count = ls.n_profiles;
      ls.heap_updates += full.heap_updates;
    }
    ls.seconds = timer.Seconds();
    result.length_stats.push_back(ls);
  }
  return result;
}

}  // namespace valmod
