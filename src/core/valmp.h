#ifndef VALMOD_CORE_VALMP_H_
#define VALMOD_CORE_VALMP_H_

#include <functional>
#include <span>
#include <vector>

#include "mp/matrix_profile.h"
#include "util/common.h"

namespace valmod {

/// The Variable-Length Matrix Profile (VALMP), the output of VALMOD
/// (Algorithm 1). The i-th slot describes the best pair anchored at offset
/// i over all processed lengths, under the sqrt(1/l) length-normalized
/// distance of Section 3.
struct Valmp {
  /// Straight z-normalized Euclidean distance of the winning pair.
  std::vector<double> distances;
  /// Length-normalized distance (distances[i] * sqrt(1/lengths[i])); this is
  /// the field the update rule compares on.
  std::vector<double> norm_distances;
  /// Subsequence length of the winning pair.
  std::vector<Index> lengths;
  /// Offset of the winning pair's other subsequence.
  std::vector<Index> indices;

  /// Creates an empty VALMP with `n_slots` unset entries.
  explicit Valmp(Index n_slots = 0);

  /// Number of offset slots (one per subsequence of the shortest length).
  Index size() const { return static_cast<Index>(distances.size()); }

  /// True when slot `i` has been set at least once.
  bool IsSet(Index i) const {
    return indices[static_cast<std::size_t>(i)] != kNoNeighbor;
  }
};

/// Callback invoked by UpdateValmp whenever a slot improves; Algorithm 5
/// hooks the best-K pair heap in here. Arguments: offset, neighbor, length,
/// straight distance, length-normalized distance.
using ValmpImprovementHook =
    std::function<void(Index, Index, Index, double, double)>;

/// Algorithm 2 (updateVALMP): folds a (possibly partial) matrix profile for
/// subsequence length `len` into `valmp`. `mp_new[i]` may be kInf to mean
/// "unknown for this length" (the ⊥ of Algorithm 4's SubMP); such slots are
/// skipped. A slot is overwritten when the new length-normalized distance
/// beats the stored one (the paper's line 3 compares the straight distance
/// field against a normalized value — an evident typo; we compare
/// like-for-like on normalized distances, matching the accompanying text).
void UpdateValmp(Valmp& valmp, std::span<const double> mp_new,
                 std::span<const Index> ip, Index len,
                 const ValmpImprovementHook& hook = nullptr);

}  // namespace valmod

#endif  // VALMOD_CORE_VALMP_H_
