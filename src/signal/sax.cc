#include "signal/sax.h"

#include <algorithm>
#include <cmath>

#include "signal/paa.h"
#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {
namespace {

// Equiprobable N(0,1) breakpoints for alphabets 2..10 (standard SAX
// tables); row a holds the a-1 cuts for alphabet size a.
constexpr double kBreakpoints[][9] = {
    /* a=2  */ {0.0},
    /* a=3  */ {-0.43, 0.43},
    /* a=4  */ {-0.67, 0.0, 0.67},
    /* a=5  */ {-0.84, -0.25, 0.25, 0.84},
    /* a=6  */ {-0.97, -0.43, 0.0, 0.43, 0.97},
    /* a=7  */ {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
    /* a=8  */ {-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15},
    /* a=9  */ {-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22},
    /* a=10 */ {-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28},
};

}  // namespace

std::span<const double> SaxBreakpoints(Index alphabet) {
  VALMOD_CHECK(alphabet >= 2 && alphabet <= 10);
  return std::span<const double>(
      kBreakpoints[static_cast<std::size_t>(alphabet - 2)],
      static_cast<std::size_t>(alphabet - 1));
}

std::vector<std::uint8_t> SaxWord(std::span<const double> window,
                                  const SaxParams& params) {
  VALMOD_CHECK(params.word_len >= 1 &&
               params.word_len <= static_cast<Index>(window.size()));
  const std::vector<double> z = ZNormalize(window);
  const std::vector<double> paa = Paa(z, params.word_len);
  const std::span<const double> cuts = SaxBreakpoints(params.alphabet);
  std::vector<std::uint8_t> word(static_cast<std::size_t>(params.word_len));
  for (std::size_t s = 0; s < word.size(); ++s) {
    // Symbol = number of breakpoints below the segment mean.
    const auto it = std::upper_bound(cuts.begin(), cuts.end(), paa[s]);
    word[s] = static_cast<std::uint8_t>(it - cuts.begin());
  }
  return word;
}

double SaxMinDist(std::span<const std::uint8_t> word_a,
                  std::span<const std::uint8_t> word_b, Index len,
                  const SaxParams& params) {
  VALMOD_CHECK(word_a.size() == word_b.size());
  VALMOD_CHECK(static_cast<Index>(word_a.size()) == params.word_len);
  const std::span<const double> cuts = SaxBreakpoints(params.alphabet);
  double acc = 0.0;
  for (std::size_t s = 0; s < word_a.size(); ++s) {
    const int a = word_a[s];
    const int b = word_b[s];
    if (std::abs(a - b) <= 1) continue;  // Adjacent symbols: gap 0.
    const int hi = std::max(a, b);
    const int lo = std::min(a, b);
    const double gap = cuts[static_cast<std::size_t>(hi - 1)] -
                       cuts[static_cast<std::size_t>(lo)];
    acc += gap * gap;
  }
  return std::sqrt(static_cast<double>(len) /
                   static_cast<double>(params.word_len)) *
         std::sqrt(acc);
}

}  // namespace valmod
