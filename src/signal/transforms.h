#ifndef VALMOD_SIGNAL_TRANSFORMS_H_
#define VALMOD_SIGNAL_TRANSFORMS_H_

#include <cstdint>
#include <span>

#include "util/common.h"

namespace valmod {

/// Preprocessing utilities a motif-discovery user reaches for before
/// running the algorithms: smoothing, detrending, decimation, and noise
/// injection (for robustness experiments). All are pure functions that
/// return a new series.

/// Centered moving average with window `window` (odd or even; the window is
/// truncated at the edges so the output has the same length as the input).
Series MovingAverage(std::span<const double> series, Index window);

/// Removes the least-squares straight line from the series (linear
/// detrending). A constant series detrends to all zeros.
Series DetrendLinear(std::span<const double> series);

/// Keeps every `factor`-th sample (simple decimation). The caller is
/// responsible for pre-smoothing if aliasing matters; pair with
/// MovingAverage for a crude low-pass decimator.
Series Downsample(std::span<const double> series, Index factor);

/// Adds i.i.d. Gaussian noise with standard deviation `sigma` (seeded).
Series AddGaussianNoise(std::span<const double> series, double sigma,
                        std::uint64_t seed);

/// First difference: out[i] = in[i+1] - in[i] (length n-1). Turns a
/// random-walk-like series into its increments; useful because z-normalized
/// matching on smooth walks is degenerate (see docs/DATASETS.md).
Series Difference(std::span<const double> series);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_TRANSFORMS_H_
