#include "signal/resample.h"

#include <cmath>

#include "util/check.h"

namespace valmod {

std::vector<double> ResampleLinear(std::span<const double> values,
                                   Index target_len) {
  const Index n = static_cast<Index>(values.size());
  VALMOD_CHECK(n >= 2 && target_len >= 2);
  std::vector<double> out(static_cast<std::size_t>(target_len));
  const double step = static_cast<double>(n - 1) /
                      static_cast<double>(target_len - 1);
  for (Index i = 0; i < target_len; ++i) {
    const double pos = static_cast<double>(i) * step;
    Index lo = static_cast<Index>(std::floor(pos));
    if (lo >= n - 1) lo = n - 2;
    const double frac = pos - static_cast<double>(lo);
    out[static_cast<std::size_t>(i)] =
        values[static_cast<std::size_t>(lo)] * (1.0 - frac) +
        values[static_cast<std::size_t>(lo + 1)] * frac;
  }
  return out;
}

}  // namespace valmod
