#include "signal/paa.h"

#include <cmath>

#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

std::vector<double> Paa(std::span<const double> values, Index segments) {
  const Index n = static_cast<Index>(values.size());
  VALMOD_CHECK(segments >= 1 && n >= 1);
  std::vector<double> out(static_cast<std::size_t>(segments), 0.0);
  if (n % segments == 0) {
    const Index w = n / segments;
    for (Index s = 0; s < segments; ++s) {
      double acc = 0.0;
      for (Index k = 0; k < w; ++k) {
        acc += values[static_cast<std::size_t>(s * w + k)];
      }
      out[static_cast<std::size_t>(s)] = acc / static_cast<double>(w);
    }
    return out;
  }
  // General case: each sample i contributes to segment floor(i*segments/n)
  // with fractional splitting at frame boundaries.
  const double w = static_cast<double>(n) / static_cast<double>(segments);
  for (Index s = 0; s < segments; ++s) {
    const double lo = static_cast<double>(s) * w;
    const double hi = lo + w;
    double acc = 0.0;
    for (Index i = static_cast<Index>(std::floor(lo));
         i < static_cast<Index>(std::ceil(hi)) && i < n; ++i) {
      const double left = std::max(lo, static_cast<double>(i));
      const double right = std::min(hi, static_cast<double>(i + 1));
      if (right > left) acc += values[static_cast<std::size_t>(i)] * (right - left);
    }
    out[static_cast<std::size_t>(s)] = acc / w;
  }
  return out;
}

double PaaLowerBound(std::span<const double> paa_a,
                     std::span<const double> paa_b, Index len) {
  VALMOD_CHECK(paa_a.size() == paa_b.size() && !paa_a.empty());
  const double scale = std::sqrt(static_cast<double>(len) /
                                 static_cast<double>(paa_a.size()));
  return scale * EuclideanDistance(paa_a, paa_b);
}

}  // namespace valmod
