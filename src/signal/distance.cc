#include "signal/distance.h"

#include <algorithm>
#include <cmath>

#include "signal/znorm.h"
#include "util/check.h"

namespace valmod {

double CorrelationFromDotProduct(double qt, Index len, const MeanStd& a,
                                 const MeanStd& b) {
  const double l = static_cast<double>(len);
  const bool flat_a = IsFlatWindow(a.mean, a.std);
  const bool flat_b = IsFlatWindow(b.mean, b.std);
  if (flat_a || flat_b) {
    // Z-normalization maps a flat window to all zeros: two flat windows are
    // identical (corr 1), a flat and a non-flat window have distance
    // sqrt(sum zb^2) = sqrt(len), i.e. corr 1 - 1/2 = 0.5.
    return (flat_a && flat_b) ? 1.0 : 0.5;
  }
  const double corr = (qt - l * a.mean * b.mean) / (l * a.std * b.std);
  return std::clamp(corr, -1.0, 1.0);
}

double DistanceFromCorrelation(double corr, Index len) {
  const double v = 2.0 * static_cast<double>(len) * (1.0 - corr);
  return std::sqrt(std::max(0.0, v));
}

double CorrelationFromDistance(double dist, Index len) {
  return 1.0 - dist * dist / (2.0 * static_cast<double>(len));
}

double ZNormalizedDistanceFromDotProduct(double qt, Index len,
                                         const MeanStd& a, const MeanStd& b) {
  return DistanceFromCorrelation(CorrelationFromDotProduct(qt, len, a, b),
                                 len);
}

double SubsequenceDotProduct(std::span<const double> series, Index i, Index j,
                             Index len) {
  VALMOD_DCHECK(i >= 0 && j >= 0 &&
                static_cast<std::size_t>(std::max(i, j) + len) <=
                    series.size());
  double acc = 0.0;
  for (Index k = 0; k < len; ++k) {
    acc += series[static_cast<std::size_t>(i + k)] *
           series[static_cast<std::size_t>(j + k)];
  }
  return acc;
}

double SubsequenceDistance(std::span<const double> series,
                           const PrefixStats& stats, Index i, Index j,
                           Index len) {
  const double qt = SubsequenceDotProduct(series, i, j, len);
  return ZNormalizedDistanceFromDotProduct(qt, len, stats.Stats(i, len),
                                           stats.Stats(j, len));
}

}  // namespace valmod
