#ifndef VALMOD_SIGNAL_SLIDING_DOT_H_
#define VALMOD_SIGNAL_SLIDING_DOT_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Sliding dot product QT of a query against every subsequence of a series
/// (the `SlidingDotProduct` primitive of Algorithm 3, from MASS):
/// result[j] = dot(query, series[j .. j + |query|)), for
/// j in [0, |series| - |query|]. Computed in O(n log n) via FFT convolution.
std::vector<double> SlidingDotProduct(std::span<const double> query,
                                      std::span<const double> series);

/// Naive O(n * m) reference used by tests and for very short queries where
/// the FFT constant factor does not pay off.
std::vector<double> SlidingDotProductNaive(std::span<const double> query,
                                           std::span<const double> series);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_SLIDING_DOT_H_
