#include "signal/fft.h"

#include <cmath>

#include "util/check.h"

namespace valmod {

Index NextPowerOfTwo(Index n) {
  VALMOD_CHECK(n >= 1);
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

Index ConvolutionFftSize(Index a, Index b) {
  return NextPowerOfTwo(a + b - 1);
}

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  VALMOD_CHECK(n > 0 && (n & (n - 1)) == 0);
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies, doubling block length each pass.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

std::vector<double> FftConvolve(std::span<const double> a,
                                std::span<const double> b) {
  VALMOD_CHECK(!a.empty() && !b.empty());
  const Index out_size = static_cast<Index>(a.size() + b.size()) - 1;
  const std::size_t fft_size = static_cast<std::size_t>(
      ConvolutionFftSize(static_cast<Index>(a.size()),
                         static_cast<Index>(b.size())));
  // Pack both real inputs into one complex transform: fa = a + i*b. The
  // spectra are then separated using conjugate symmetry, saving one FFT.
  std::vector<std::complex<double>> fa(fft_size, {0.0, 0.0});
  for (std::size_t i = 0; i < a.size(); ++i) fa[i].real(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) fa[i].imag(b[i]);
  Fft(fa, /*inverse=*/false);
  std::vector<std::complex<double>> prod(fft_size);
  for (std::size_t k = 0; k < fft_size; ++k) {
    const std::size_t kc = (fft_size - k) & (fft_size - 1);
    const std::complex<double> x = fa[k];
    const std::complex<double> y = std::conj(fa[kc]);
    // A[k] = (x + y)/2, B[k] = (x - y)/(2i); product A[k]*B[k].
    const std::complex<double> A = 0.5 * (x + y);
    const std::complex<double> B = std::complex<double>(0.0, -0.5) * (x - y);
    prod[k] = A * B;
  }
  Fft(prod, /*inverse=*/true);
  std::vector<double> out(static_cast<std::size_t>(out_size));
  for (Index i = 0; i < out_size; ++i) {
    out[static_cast<std::size_t>(i)] = prod[static_cast<std::size_t>(i)].real();
  }
  return out;
}

}  // namespace valmod
