#include "signal/transforms.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace valmod {

Series MovingAverage(std::span<const double> series, Index window) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(window >= 1 && n >= 1);
  Series out(static_cast<std::size_t>(n));
  // Sliding-sum implementation: O(n) regardless of window size.
  const Index half_left = (window - 1) / 2;
  const Index half_right = window / 2;
  double acc = 0.0;
  Index lo = 0;
  Index hi = -1;  // Current window is [lo, hi].
  for (Index i = 0; i < n; ++i) {
    const Index want_lo = std::max<Index>(0, i - half_left);
    const Index want_hi = std::min<Index>(n - 1, i + half_right);
    while (hi < want_hi) acc += series[static_cast<std::size_t>(++hi)];
    while (lo < want_lo) acc -= series[static_cast<std::size_t>(lo++)];
    out[static_cast<std::size_t>(i)] =
        acc / static_cast<double>(want_hi - want_lo + 1);
  }
  return out;
}

Series DetrendLinear(std::span<const double> series) {
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(n >= 1);
  if (n == 1) return Series{0.0};
  // Least squares fit y = a + b*x with x = 0..n-1.
  const double nx = static_cast<double>(n);
  const double sum_x = nx * (nx - 1.0) / 2.0;
  const double sum_xx = nx * (nx - 1.0) * (2.0 * nx - 1.0) / 6.0;
  double sum_y = 0.0;
  double sum_xy = 0.0;
  for (Index i = 0; i < n; ++i) {
    sum_y += series[static_cast<std::size_t>(i)];
    sum_xy += static_cast<double>(i) * series[static_cast<std::size_t>(i)];
  }
  const double denom = nx * sum_xx - sum_x * sum_x;
  const double b = denom != 0.0 ? (nx * sum_xy - sum_x * sum_y) / denom : 0.0;
  const double a = (sum_y - b * sum_x) / nx;
  Series out(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] =
        series[static_cast<std::size_t>(i)] - (a + b * static_cast<double>(i));
  }
  return out;
}

Series Downsample(std::span<const double> series, Index factor) {
  VALMOD_CHECK(factor >= 1 && !series.empty());
  Series out;
  out.reserve(series.size() / static_cast<std::size_t>(factor) + 1);
  for (std::size_t i = 0; i < series.size();
       i += static_cast<std::size_t>(factor)) {
    out.push_back(series[i]);
  }
  return out;
}

Series AddGaussianNoise(std::span<const double> series, double sigma,
                        std::uint64_t seed) {
  VALMOD_CHECK(sigma >= 0.0);
  Rng rng(seed);
  Series out(series.begin(), series.end());
  for (double& v : out) v += rng.Gaussian(0.0, sigma);
  return out;
}

Series Difference(std::span<const double> series) {
  VALMOD_CHECK(series.size() >= 2);
  Series out(series.size() - 1);
  for (std::size_t i = 0; i + 1 < series.size(); ++i) {
    out[i] = series[i + 1] - series[i];
  }
  return out;
}

}  // namespace valmod
