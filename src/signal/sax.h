#ifndef VALMOD_SIGNAL_SAX_H_
#define VALMOD_SIGNAL_SAX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Symbolic Aggregate approXimation (Lin et al. 2003): a z-normalized
/// subsequence is PAA-reduced to `word_len` segments and each segment mean
/// is mapped to one of `alphabet` symbols via equiprobable Gaussian
/// breakpoints. The substrate of PROJECTION (the first motif-discovery
/// algorithm, which the paper's related work contrasts VALMOD against) and
/// of the iSAX indexing line.
struct SaxParams {
  Index word_len = 8;
  /// Alphabet size; supported range [2, 10].
  Index alphabet = 4;
};

/// The Gaussian breakpoints for an alphabet of size `alphabet`: a vector of
/// `alphabet - 1` ascending cut points splitting N(0,1) into equiprobable
/// regions.
std::span<const double> SaxBreakpoints(Index alphabet);

/// SAX word of a raw (not yet normalized) window: z-normalizes, PAA-reduces,
/// digitizes. Symbols are 0-based (0 = lowest region).
std::vector<std::uint8_t> SaxWord(std::span<const double> window,
                                  const SaxParams& params);

/// MINDIST lower bound between two SAX words of windows of length `len`
/// (Lin et al.): sqrt(len / word_len) * sqrt(sum_i cell(a_i, b_i)^2), where
/// cell() is the breakpoint gap between non-adjacent symbols. Lower-bounds
/// the true Euclidean distance between the *z-normalized* windows.
double SaxMinDist(std::span<const std::uint8_t> word_a,
                  std::span<const std::uint8_t> word_b, Index len,
                  const SaxParams& params);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_SAX_H_
