#ifndef VALMOD_SIGNAL_RESAMPLE_H_
#define VALMOD_SIGNAL_RESAMPLE_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Linearly resamples `values` to `target_len` points (the down-sampling the
/// paper uses in Figure 2 to produce "the same signature at various speeds").
/// Endpoint-preserving: output[0] == values.front(),
/// output[target_len-1] == values.back().
std::vector<double> ResampleLinear(std::span<const double> values,
                                   Index target_len);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_RESAMPLE_H_
