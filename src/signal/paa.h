#ifndef VALMOD_SIGNAL_PAA_H_
#define VALMOD_SIGNAL_PAA_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Piecewise Aggregate Approximation: the input is divided into `segments`
/// equal-width frames and each frame is replaced by its mean. When the
/// length is not divisible by `segments`, fractional frame boundaries are
/// handled by weighting boundary samples (the standard PAA generalization),
/// so the summary is exact for any length.
///
/// PAA is the summarization QUICK MOTIF prunes with: for z-normalized
/// subsequences, sqrt(len / segments) * ED(paa_a, paa_b) lower-bounds the
/// true Euclidean distance.
std::vector<double> Paa(std::span<const double> values, Index segments);

/// Lower bound on the Euclidean distance of two length-`len` vectors given
/// their `segments`-dimensional PAA summaries:
/// sqrt(len / segments) * ED(a, b).
double PaaLowerBound(std::span<const double> paa_a,
                     std::span<const double> paa_b, Index len);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_PAA_H_
