#include "signal/znorm.h"

#include <cmath>

#include "mp/simd/simd.h"
#include "util/check.h"
#include "util/prefix_stats.h"

namespace valmod {

std::vector<double> ZNormalize(std::span<const double> values) {
  VALMOD_CHECK(!values.empty());
  const MeanStd ms = ExactMeanStd(values, 0, static_cast<Index>(values.size()));
  std::vector<double> out(values.size());
  // Two-pass moments are cancellation-free: a scaled absolute epsilon
  // suffices (an exactly constant window has std exactly 0).
  if (ms.std <= kFlatStdEpsilon * (1.0 + std::abs(ms.mean))) {
    return out;  // Constant window -> zeros.
  }
  simd::CurrentKernels().znormalize(values.data(),
                                    static_cast<Index>(values.size()),
                                    ms.mean, ms.std, out.data());
  return out;
}

std::vector<double> ZNormalizeSubsequence(std::span<const double> series,
                                          Index offset, Index len) {
  VALMOD_CHECK(offset >= 0 && len >= 1 &&
               static_cast<std::size_t>(offset + len) <= series.size());
  return ZNormalize(series.subspan(static_cast<std::size_t>(offset),
                                   static_cast<std::size_t>(len)));
}

double EuclideanDistance(std::span<const double> a,
                         std::span<const double> b) {
  VALMOD_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double ZNormalizedDistanceDirect(std::span<const double> a,
                                 std::span<const double> b) {
  const std::vector<double> za = ZNormalize(a);
  const std::vector<double> zb = ZNormalize(b);
  return EuclideanDistance(za, zb);
}

double LengthNormalize(double dist, Index len) {
  VALMOD_CHECK(len >= 1);
  return dist * std::sqrt(1.0 / static_cast<double>(len));
}

Series CenterSeries(std::span<const double> series) {
  VALMOD_CHECK(!series.empty());
  long double sum = 0.0L;
  for (double v : series) sum += v;
  const double mean =
      static_cast<double>(sum / static_cast<long double>(series.size()));
  Series out(series.begin(), series.end());
  for (double& v : out) v -= mean;
  return out;
}

}  // namespace valmod
