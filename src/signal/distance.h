#ifndef VALMOD_SIGNAL_DISTANCE_H_
#define VALMOD_SIGNAL_DISTANCE_H_

#include <span>

#include "util/common.h"
#include "util/prefix_stats.h"

namespace valmod {

/// Pearson correlation between two subsequences of length `len` given their
/// dot product `qt` and their window statistics; the `q_{i,j}` of Eq. 2.
/// Result clamped into [-1, 1] to absorb floating-point drift. Windows with
/// (near-)zero standard deviation are treated as uncorrelated with everything
/// except other flat windows (correlation 1 between two flat windows).
double CorrelationFromDotProduct(double qt, Index len, const MeanStd& a,
                                 const MeanStd& b);

/// Z-normalized Euclidean distance from the dot product (Eq. 3):
/// dist = sqrt(2 * len * (1 - (QT - len*mu_a*mu_b) / (len*sigma_a*sigma_b))).
double ZNormalizedDistanceFromDotProduct(double qt, Index len,
                                         const MeanStd& a, const MeanStd& b);

/// Distance as a function of correlation: sqrt(2 * len * (1 - corr)).
double DistanceFromCorrelation(double corr, Index len);

/// Correlation as a function of distance: 1 - dist^2 / (2 * len).
double CorrelationFromDistance(double dist, Index len);

/// O(len) exact z-normalized distance between the subsequences of `series`
/// at `i` and `j`, both of length `len`. Convenience wrapper used by the
/// motif-set stage and by tests.
double SubsequenceDistance(std::span<const double> series,
                           const PrefixStats& stats, Index i, Index j,
                           Index len);

/// O(len) dot product between the subsequences at `i` and `j` of `series`.
double SubsequenceDotProduct(std::span<const double> series, Index i, Index j,
                             Index len);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_DISTANCE_H_
