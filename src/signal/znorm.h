#ifndef VALMOD_SIGNAL_ZNORM_H_
#define VALMOD_SIGNAL_ZNORM_H_

#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// Standard-deviation floor below which a window is treated as constant;
/// z-normalizing a constant window is undefined, so such windows map to the
/// all-zeros vector and pairwise distances fall back to a meaningful value.
inline constexpr double kFlatStdEpsilon = 1e-13;

/// Relative flatness threshold: a window whose standard deviation is below
/// this fraction of its RMS is numerically constant — its variance sits
/// within the cancellation noise of the prefix-sum formula
/// (var = ss/l - mu^2), so treating it as structured would amplify rounding
/// garbage by 1/std. Chosen above the long-double prefix-sum noise floor
/// (~1e-7 relative std at 10^7 points) and far below any meaningful signal.
inline constexpr double kFlatRelEpsilon = 1e-6;

/// Flatness test for moments that came out of the *prefix-sum* formula
/// (var = ss/l - mu^2): a window whose variance is within cancellation
/// noise of its mean square is numerically constant. The exact two-pass
/// path (ZNormalize / ExactMeanStd) has no cancellation and uses the
/// absolute kFlatStdEpsilon scaled by the mean instead. The two paths
/// agree on centered data (all algorithm entry points center their input);
/// the divergence on an exactly-constant plateau was found by
/// tools/fuzz_differential.
inline bool IsFlatWindow(double mean, double std) {
  // std <= rel * rms(mean, std), plus an absolute floor for all-zero data.
  const double rms_sq = mean * mean + std * std;
  return std * std <= kFlatRelEpsilon * kFlatRelEpsilon * rms_sq + 1e-26;
}

/// Returns the z-normalized copy of `values` ((x - mean) / std). A constant
/// input returns all zeros.
std::vector<double> ZNormalize(std::span<const double> values);

/// Z-normalizes the subsequence [offset, offset+len) of `series`.
std::vector<double> ZNormalizeSubsequence(std::span<const double> series,
                                          Index offset, Index len);

/// Plain (non-normalized) Euclidean distance between equal-length vectors.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// Z-normalized Euclidean distance computed the direct way: normalize both
/// inputs, then take the Euclidean distance. O(len); the test oracle for all
/// the O(1) distance formulas in the library.
double ZNormalizedDistanceDirect(std::span<const double> a,
                                 std::span<const double> b);

/// The paper's Section 3 length-normalization: dist * sqrt(1 / len).
/// Makes motifs of different lengths comparable (Figure 2).
double LengthNormalize(double dist, Index len);

/// Returns a copy of `series` shifted to zero global mean. Z-normalized
/// distances are exactly invariant to a global shift, so centering is
/// semantically a no-op — but it removes the catastrophic cancellation in
/// the dot-product/mean formulas (Eq. 3) when the data rides on a large
/// offset (e.g. raw sensor counts around 1e9). Every top-level algorithm
/// entry point centers its input through this helper.
Series CenterSeries(std::span<const double> series);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_ZNORM_H_
