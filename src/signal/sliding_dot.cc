#include "signal/sliding_dot.h"

#include <algorithm>

#include "mp/simd/simd.h"
#include "signal/fft.h"
#include "util/check.h"

namespace valmod {
namespace {

// Below this query length the naive loop beats the FFT pipeline.
constexpr Index kNaiveCutoff = 32;

}  // namespace

std::vector<double> SlidingDotProductNaive(std::span<const double> query,
                                           std::span<const double> series) {
  const Index m = static_cast<Index>(query.size());
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(m >= 1 && n >= m);
  std::vector<double> out(static_cast<std::size_t>(n - m + 1));
  simd::CurrentKernels().sliding_dot(query.data(), m, series.data(), n,
                                     out.data());
  return out;
}

std::vector<double> SlidingDotProduct(std::span<const double> query,
                                      std::span<const double> series) {
  const Index m = static_cast<Index>(query.size());
  const Index n = static_cast<Index>(series.size());
  VALMOD_CHECK(m >= 1 && n >= m);
  if (m < kNaiveCutoff) return SlidingDotProductNaive(query, series);
  // Correlation as convolution with the reversed query: the full linear
  // convolution conv[k] = sum_i rev_q[i] * series[k - i] yields
  // conv[m - 1 + j] = dot(query, series[j .. j + m)).
  std::vector<double> reversed(query.rbegin(), query.rend());
  const std::vector<double> conv = FftConvolve(reversed, series);
  std::vector<double> out(static_cast<std::size_t>(n - m + 1));
  for (Index j = 0; j + m <= n; ++j) {
    out[static_cast<std::size_t>(j)] = conv[static_cast<std::size_t>(m - 1 + j)];
  }
  return out;
}

}  // namespace valmod
