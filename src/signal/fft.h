#ifndef VALMOD_SIGNAL_FFT_H_
#define VALMOD_SIGNAL_FFT_H_

#include <complex>
#include <span>
#include <vector>

#include "util/common.h"

namespace valmod {

/// In-place iterative radix-2 Cooley-Tukey FFT.
///
/// `data.size()` must be a power of two. `inverse` selects the inverse
/// transform (including the 1/n scaling), so `Ifft(Fft(x)) == x` up to
/// floating-point error. This is the only transform the library needs:
/// convolution callers zero-pad to the next power of two.
void Fft(std::vector<std::complex<double>>& data, bool inverse);

/// Smallest power of two >= n (n >= 1).
Index NextPowerOfTwo(Index n);

/// Circular convolution length needed for a linear convolution of sizes
/// `a` and `b`, rounded to the next power of two.
Index ConvolutionFftSize(Index a, Index b);

/// Linear convolution of two real sequences via FFT:
/// result[k] = sum_i a[i] * b[k - i], size a.size() + b.size() - 1.
std::vector<double> FftConvolve(std::span<const double> a,
                                std::span<const double> b);

}  // namespace valmod

#endif  // VALMOD_SIGNAL_FFT_H_
