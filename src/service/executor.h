#ifndef VALMOD_SERVICE_EXECUTOR_H_
#define VALMOD_SERVICE_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "service/job_queue.h"
#include "util/common.h"
#include "util/status.h"
#include "util/timer.h"

namespace valmod {

/// A fixed worker pool draining a bounded priority JobQueue. Submission is
/// the service's admission-control point (backpressure instead of
/// unbounded growth); Drain() is its graceful-shutdown point (every
/// admitted job still runs, then the workers exit).
class Executor {
 public:
  /// `workers <= 0` picks std::thread::hardware_concurrency();
  /// `queue_capacity` bounds the number of admitted-but-not-yet-running
  /// jobs.
  Executor(int workers, Index queue_capacity);

  /// Drains on destruction if Drain() was not called explicitly.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Admits a job. Returns kResourceExhausted (backpressure) when the
  /// queue is full or draining; Ok otherwise. `run(expired)` is then
  /// invoked exactly once on a worker thread, with `expired == true` when
  /// `deadline` lapsed before the job reached a worker.
  Status Submit(int priority, const Deadline& deadline,
                std::function<void(bool expired)> run);

  /// Stops admission, runs every already-admitted job to completion, and
  /// joins the workers. Idempotent; afterwards Submit rejects.
  void Drain();

  /// Number of admitted-but-not-yet-running jobs.
  Index queue_depth() const { return queue_.size(); }

  /// The queue's capacity bound.
  Index queue_capacity() const { return queue_.capacity(); }

  /// Worker-thread count.
  int workers() const { return static_cast<int>(workers_.size()); }

  /// Jobs handed to `run` with expired == false.
  std::int64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Jobs whose deadline passed while they sat in the queue (still handed
  /// to `run`, with expired == true, so callers get an answer).
  std::int64_t expired_in_queue() const {
    return expired_.load(std::memory_order_relaxed);
  }

 private:
  /// Pops and runs jobs until the queue is closed and drained.
  void WorkerLoop();

  JobQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<std::int64_t> executed_{0};
  std::atomic<std::int64_t> expired_{0};
  std::atomic<bool> drained_{false};
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_EXECUTOR_H_
