#ifndef VALMOD_SERVICE_JSON_H_
#define VALMOD_SERVICE_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace valmod {

/// Minimal self-contained JSON document model used by the query-service
/// protocol (docs/SERVICE.md). Deliberately tiny: objects are ordered maps
/// (deterministic serialization, so identical responses are byte-identical),
/// numbers are either 64-bit integers or doubles, and non-finite doubles —
/// which standard JSON cannot represent but matrix profiles produce (kInf
/// sentinels) — are round-tripped as the strings "inf", "-inf", "nan".
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  /// Constructs null.
  JsonValue() : kind_(Kind::kNull) {}
  /// Constructs a boolean.
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  /// Constructs an integer number (serialized without a decimal point).
  explicit JsonValue(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  /// Constructs a double; non-finite values become the strings
  /// "inf"/"-inf"/"nan" so they survive serialization.
  explicit JsonValue(double d);
  /// Constructs a string.
  explicit JsonValue(std::string s);
  /// Constructs an array.
  explicit JsonValue(Array a);
  /// Constructs an object.
  explicit JsonValue(Object o);

  /// True when this value is null.
  bool is_null() const { return kind_ == Kind::kNull; }
  /// True when this value is a boolean.
  bool is_bool() const { return kind_ == Kind::kBool; }
  /// True when this value is an integer.
  bool is_int() const { return kind_ == Kind::kInt; }
  /// True when this value is a double.
  bool is_double() const { return kind_ == Kind::kDouble; }
  /// True when this value is an integer or a double.
  bool is_number() const { return is_int() || is_double(); }
  /// True when this value is a string.
  bool is_string() const { return kind_ == Kind::kString; }
  /// True when this value is an array.
  bool is_array() const { return kind_ == Kind::kArray; }
  /// True when this value is an object.
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Boolean value, or `def` when this is not a boolean.
  bool AsBool(bool def = false) const;
  /// Integer value (truncating a double), or `def` when not a number.
  std::int64_t AsInt(std::int64_t def = 0) const;
  /// Double value; accepts integers and the non-finite marker strings
  /// "inf"/"-inf"/"nan"; `def` otherwise.
  double AsDouble(double def = 0.0) const;
  /// String value, or `def` when this is not a string.
  const std::string& AsString(const std::string& def = EmptyString()) const;
  /// Array contents (empty for non-arrays).
  const Array& AsArray() const;
  /// Object contents (empty for non-objects).
  const Object& AsObject() const;

  /// Object lookup; returns nullptr when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;
  /// Inserts/overwrites `key` (turns this value into an object if needed).
  void Set(const std::string& key, JsonValue value);
  /// Appends to the array (turns this value into an array if needed).
  void Append(JsonValue value);

  /// Compact single-line serialization. Doubles use shortest-round-trip
  /// formatting, so Parse(Serialize(v)) reproduces every bit.
  std::string Serialize() const;
  /// Appends the serialization to `out` (the building block of Serialize).
  void SerializeTo(std::string* out) const;

  /// Parses a complete JSON document. Trailing non-whitespace, exceeding
  /// `kMaxParseDepth` nesting, or any syntax error yields InvalidArgument
  /// and leaves `*out` untouched.
  static Status Parse(std::string_view text, JsonValue* out);

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  /// Shared empty-string sentinel for AsString's default argument.
  static const std::string& EmptyString();

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Maximum nesting depth accepted by JsonValue::Parse; the protocol needs
/// 4, the guard stops stack exhaustion from adversarial frames.
inline constexpr int kMaxParseDepth = 32;

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
std::string JsonEscape(std::string_view s);

}  // namespace valmod

#endif  // VALMOD_SERVICE_JSON_H_
