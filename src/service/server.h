#ifndef VALMOD_SERVICE_SERVER_H_
#define VALMOD_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/engine.h"
#include "service/http.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace valmod {

/// Tuning knobs of a Server.
struct ServerOptions {
  /// Listen address; loopback by default (the service speaks a trusted
  /// in-cluster protocol, not the open internet).
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Connections beyond this are answered with one RESOURCE_EXHAUSTED
  /// frame and closed — the connection-level admission control.
  int max_connections = 64;
  /// Per-connection idle timeout: a client with no request in flight that
  /// sends nothing for this long is disconnected (protects the connection
  /// table from dead peers).
  double read_timeout_s = 30.0;
  /// Port of the observability HTTP gateway (GET /metrics, /healthz,
  /// /trace/start, /trace/stop): 0 picks an ephemeral port (read it back
  /// via metrics_port()), a negative value disables the gateway.
  int metrics_port = 0;
  /// Engine configuration (queue, cache, catalog, executor).
  QueryEngineOptions engine;
};

/// The TCP face of the query engine: a single poll()-based I/O event loop
/// multiplexing every connection (bounded by max_connections), with all
/// compute on the engine's executor workers via ExecuteAsync. The loop
/// shuffles length-prefixed newline-JSON frames; workers hand finished
/// responses back through a completion queue and a self-pipe wake-up, so
/// no thread ever blocks on a socket and no thread is parked per
/// connection. Graceful drain — Shutdown() stops accepting, lets every
/// in-flight request finish and flush its response, then joins the loop.
/// valmod_serve wires Shutdown() to SIGINT.
class Server {
 public:
  /// Stores the options and builds the embedded engine; nothing listens
  /// until Start().
  explicit Server(const ServerOptions& options);

  /// Calls Shutdown() if the owner did not.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop. InvalidArgument/IoError
  /// on bad addresses or an occupied port.
  Status Start();

  /// The actually bound port (valid after Start(); useful with port 0).
  int port() const { return port_; }

  /// The bound port of the observability HTTP gateway (valid after
  /// Start(); 0 when the gateway is disabled).
  int metrics_port() const;

  /// True between Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain: stop accepting connections and requests, finish every
  /// in-flight job, flush responses, join the loop. Idempotent and safe to
  /// call from any thread (including a signal-watcher thread).
  void Shutdown();

  /// The embedded engine (metrics, cache — mostly for tests).
  QueryEngine& engine() { return engine_; }

  /// Connections accepted since Start().
  std::int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections refused over max_connections (each got an error frame).
  std::int64_t connections_refused() const {
    return connections_refused_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-connection state, owned exclusively by the event-loop thread.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    /// Bytes received but not yet consumed as frames. Bounded: reads stop
    /// while a request is in flight, and a parsed frame body is capped at
    /// kMaxFrameBytes, so at most ~one frame plus pipelined slack sits
    /// here.
    std::string in;
    /// Serialized response bytes not yet flushed to the socket.
    std::string out;
    /// Prefix of `out` already sent.
    std::size_t out_sent = 0;
    /// One request executing on the engine; further frames wait in `in`
    /// (preserving the old per-connection serial semantics).
    bool in_flight = false;
    /// Flush `out`, then close — framing errors and admission refusals.
    bool close_after_flush = false;
    /// Peer closed its sending side; stop reading, finish what's queued.
    bool peer_closed = false;
    /// True for over-capacity connections (not counted as active).
    bool refused = false;
    /// Socket failed or finished; the loop's close sweep reaps it.
    bool dead = false;
    /// Time since the last byte read or response queued (idle timeout).
    WallTimer idle;
  };

  /// The I/O loop: poll() over the listener, the wake pipe, and every
  /// connection socket; dispatch parsed requests to the engine.
  void EventLoop();
  /// Accepts until the backlog is drained; over-capacity connections get a
  /// queued RESOURCE_EXHAUSTED frame and close_after_flush.
  void AcceptPending();
  /// Non-blocking read into conn.in until EAGAIN/EOF, then frame parsing.
  void HandleReadable(Conn& conn);
  /// Consumes at most one complete frame from conn.in and dispatches it.
  void ParseAndDispatch(Conn& conn);
  /// Non-blocking flush of conn.out; closes on error or completed
  /// close_after_flush.
  void FlushWrites(Conn& conn);
  /// Worker-side completion: queues the serialized response frame for the
  /// loop and wakes it through the pipe. Runs on executor workers (or the
  /// loop thread itself for synchronous ExecuteAsync completions).
  void OnResponse(std::uint64_t conn_id, std::string frame);
  /// Moves queued completions into their connections' out buffers.
  void DrainCompletions();
  /// Closes and forgets the connection (loop thread only).
  void CloseConn(std::uint64_t conn_id);

  /// Builds the HTTP response for one gateway path.
  HttpResponse HandleHttp(const std::string& path);

  ServerOptions options_;      // unguarded: written only before Start()
  QueryEngine engine_;         // unguarded: internally synchronized
  /// unguarded: created in Start() before the loop thread exists,
  /// destroyed in Shutdown() after it is joined.
  std::unique_ptr<HttpGateway> http_gateway_;
  int listen_fd_ = -1;         // unguarded: written in Start()/Shutdown() only
  int port_ = 0;               // unguarded: written in Start() before threads
  /// Self-pipe: workers write a byte to wake the loop's poll().
  /// unguarded: created in Start() before the loop thread exists.
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;     // unguarded: see wake_read_fd_
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// unguarded: joined/assigned by Start()/Shutdown() only, never
  /// concurrently.
  std::thread loop_thread_;
  /// Live connections keyed by id.
  /// unguarded: touched only by the loop thread (workers reference
  /// connections by id through completions_).
  std::unordered_map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_id_ = 1;  // unguarded: loop thread only
  Mutex completions_mu_;
  /// Finished (conn id, serialized frame) pairs awaiting the loop.
  /// Bounded: at most one in-flight request per live connection.
  std::vector<std::pair<std::uint64_t, std::string>> completions_
      GUARDED_BY(completions_mu_);
  /// Requests dispatched to the engine whose completion has not yet been
  /// queued; the drain loop exits only at zero.
  std::atomic<int> jobs_in_flight_{0};
  std::atomic<int> active_connections_{0};
  std::atomic<std::int64_t> connections_accepted_{0};
  std::atomic<std::int64_t> connections_refused_{0};
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_SERVER_H_
