#ifndef VALMOD_SERVICE_SERVER_H_
#define VALMOD_SERVICE_SERVER_H_

#include <atomic>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "service/engine.h"
#include "service/http.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace valmod {

/// Tuning knobs of a Server.
struct ServerOptions {
  /// Listen address; loopback by default (the service speaks a trusted
  /// in-cluster protocol, not the open internet).
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Connections beyond this are answered with one RESOURCE_EXHAUSTED
  /// frame and closed — the connection-level admission control.
  int max_connections = 64;
  /// Per-connection idle read timeout: a client that sends nothing for
  /// this long is disconnected (protects the handler pool from dead
  /// peers).
  double read_timeout_s = 30.0;
  /// Port of the observability HTTP gateway (GET /metrics, /healthz,
  /// /trace/start, /trace/stop): 0 picks an ephemeral port (read it back
  /// via metrics_port()), a negative value disables the gateway.
  int metrics_port = 0;
  /// Engine configuration (queue, cache, executor).
  QueryEngineOptions engine;
};

/// The TCP face of the query engine: an accept loop, one handler thread
/// per live connection (bounded by max_connections), length-prefixed
/// newline-JSON frames in and out, and graceful drain — Shutdown() stops
/// accepting, lets every in-flight request finish and flush its response,
/// then joins every thread. valmod_serve wires Shutdown() to SIGINT.
class Server {
 public:
  /// Stores the options and builds the embedded engine; nothing listens
  /// until Start().
  explicit Server(const ServerOptions& options);

  /// Calls Shutdown() if the owner did not.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. InvalidArgument/IoError
  /// on bad addresses or an occupied port.
  Status Start();

  /// The actually bound port (valid after Start(); useful with port 0).
  int port() const { return port_; }

  /// The bound port of the observability HTTP gateway (valid after
  /// Start(); 0 when the gateway is disabled).
  int metrics_port() const;

  /// True between Start() and Shutdown().
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain: stop accepting connections and requests, finish every
  /// in-flight job, flush responses, join all threads. Idempotent and
  /// safe to call from any thread (including a signal-watcher thread).
  void Shutdown();

  /// The embedded engine (metrics, cache — mostly for tests).
  QueryEngine& engine() { return engine_; }

  /// Connections accepted since Start().
  std::int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections refused over max_connections (each got an error frame).
  std::int64_t connections_refused() const {
    return connections_refused_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Accepts connections until stopping_; over-capacity ones get a
  /// RESOURCE_EXHAUSTED frame and are closed without a handler thread.
  void AcceptLoop();
  /// Per-connection loop: read frame, execute, write frame, until EOF,
  /// timeout, a malformed frame, or shutdown.
  void HandleConnection(int fd);
  /// Joins finished handler threads (all of them when `join_all`).
  void ReapFinished(bool join_all) EXCLUDES(connections_mu_);

  /// Builds the HTTP response for one gateway path.
  HttpResponse HandleHttp(const std::string& path);

  ServerOptions options_;      // unguarded: written only before Start()
  QueryEngine engine_;         // unguarded: internally synchronized
  /// unguarded: created in Start() before the accept thread exists,
  /// destroyed in Shutdown() after every thread is joined.
  std::unique_ptr<HttpGateway> http_gateway_;
  int listen_fd_ = -1;         // unguarded: written in Start()/Shutdown() only
  int port_ = 0;               // unguarded: written in Start() before threads
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// unguarded: joined/assigned by Start()/Shutdown() only, never
  /// concurrently.
  std::thread accept_thread_;
  Mutex connections_mu_;
  /// Bounded by options_.max_connections live entries (finished handlers
  /// are reaped on every accept).
  std::list<std::unique_ptr<Connection>> connections_
      GUARDED_BY(connections_mu_);
  std::atomic<int> active_connections_{0};
  std::atomic<std::int64_t> connections_accepted_{0};
  std::atomic<std::int64_t> connections_refused_{0};
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_SERVER_H_
