#include "service/executor.h"

#include <utility>

namespace valmod {

Executor::Executor(int workers, Index queue_capacity)
    : queue_(queue_capacity) {
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Drain(); }

Status Executor::Submit(int priority, const Deadline& deadline,
                        std::function<void(bool expired)> run) {
  Job job;
  job.priority = priority;
  job.deadline = deadline;
  job.run = std::move(run);
  return queue_.Push(std::move(job));
}

void Executor::Drain() {
  if (drained_.exchange(true)) return;
  queue_.Close();  // rejects new work; Pop hands out what was admitted
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void Executor::WorkerLoop() {
  Job job;
  while (queue_.Pop(&job)) {
    const bool expired = job.deadline.Expired();
    if (expired) {
      expired_.fetch_add(1, std::memory_order_relaxed);
    } else {
      executed_.fetch_add(1, std::memory_order_relaxed);
    }
    job.run(expired);
    job.run = nullptr;  // release captures before blocking on the queue
  }
}

}  // namespace valmod
