#ifndef VALMOD_SERVICE_FINGERPRINT_H_
#define VALMOD_SERVICE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/common.h"

namespace valmod {

/// FNV-1a 64 over a byte range: the same hash the streaming checkpoint
/// trailer uses, here keying the result cache. Not cryptographic — a client
/// that *wants* to collide can — but with 64 bits accidental collisions
/// across a cache of even millions of series are negligible, and a
/// collision only ever returns a stale-but-well-formed answer.
std::uint64_t Fnv1a64(const void* data, std::size_t size);

/// Cache fingerprint of a series: FNV-1a 64 over the length followed by the
/// raw little-endian IEEE-754 bytes, so any single-bit change of any value
/// (or a length change) re-keys. Two bit-identical series always collide —
/// which is the point: repeat queries hit the cache.
std::uint64_t SeriesFingerprint(std::span<const double> series);

/// Fixed-width lowercase-hex rendering of a fingerprint; used on the wire
/// (JSON numbers lose precision past 2^53, a 16-char string does not).
std::string FingerprintHex(std::uint64_t fingerprint);

}  // namespace valmod

#endif  // VALMOD_SERVICE_FINGERPRINT_H_
