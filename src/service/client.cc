#include "service/client.h"

#include "service/json.h"
#include "service/net.h"

namespace valmod {

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, int port, double timeout_s) {
  Close();
  timeout_s_ = timeout_s;
  return net::Connect(host, port, timeout_s, &fd_);
}

Status Client::Query(const Request& request, Response* out) {
  if (!connected()) return Status::IoError("client is not connected");
  Status status =
      net::WriteFramePayload(fd_, request.ToJson().Serialize());
  if (!status.ok()) {
    Close();
    return status;
  }
  std::string payload;
  status = net::ReadFramePayload(fd_, timeout_s_, nullptr, &payload);
  if (!status.ok()) {
    Close();
    if (status.code() == StatusCode::kNotFound)
      return Status::IoError("server closed the connection");
    return status;
  }
  JsonValue json;
  status = JsonValue::Parse(payload, &json);
  if (!status.ok()) return status;
  Response response;
  status = response.FromJson(json);
  if (!status.ok()) return status;
  *out = std::move(response);
  return Status::Ok();
}

Status Client::Stats(std::string* out_text) {
  Request request;
  request.type = QueryType::kStats;
  Response response;
  Status status = Query(request, &response);
  if (!status.ok()) return status;
  if (!response.ok) return response.ToStatus();
  *out_text = response.stats_text;
  return Status::Ok();
}

void Client::Close() {
  net::CloseFd(fd_);
  fd_ = -1;
}

}  // namespace valmod
