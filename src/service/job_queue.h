#ifndef VALMOD_SERVICE_JOB_QUEUE_H_
#define VALMOD_SERVICE_JOB_QUEUE_H_

#include <array>
#include <deque>
#include <functional>

#include "util/common.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace valmod {

/// Scheduling priorities of the query service, best first. The admission
/// queue drains strictly by priority (FIFO within a lane), so a saturated
/// server keeps serving high-priority traffic at the expense of low.
inline constexpr int kPriorityHigh = 0;
inline constexpr int kPriorityNormal = 1;
inline constexpr int kPriorityLow = 2;
inline constexpr int kNumPriorities = 3;

/// One queued unit of work. `run(expired)` is invoked exactly once by an
/// executor worker — with `expired == true` when `deadline` lapsed while
/// the job was still queued, so the job can fail fast (DEADLINE_EXCEEDED)
/// instead of computing an answer nobody is waiting for.
struct Job {
  int priority = kPriorityNormal;
  Deadline deadline;
  std::function<void(bool expired)> run;
};

/// A bounded, priority-ordered MPMC job queue: the admission-control point
/// of the query service. Push never blocks and never grows the queue past
/// its capacity — when full (or draining) it returns kResourceExhausted,
/// the protocol's explicit backpressure signal, rather than queueing
/// unbounded work (docs/SERVICE.md, "Backpressure").
class JobQueue {
 public:
  /// `capacity` bounds the total occupancy across all priority lanes;
  /// clamped to >= 1.
  explicit JobQueue(Index capacity);

  /// Enqueues `job`. Returns kResourceExhausted when the queue is at
  /// capacity or Close() has been called; Ok otherwise. Never blocks.
  Status Push(Job job) EXCLUDES(mu_);

  /// Blocks until a job is available or the queue is closed *and* empty.
  /// Returns false only in the latter case — jobs queued before Close()
  /// are always handed out, which is what graceful drain relies on.
  bool Pop(Job* out) EXCLUDES(mu_);

  /// Closes the queue: subsequent Push calls are rejected, Pop drains the
  /// remaining jobs then returns false. Idempotent.
  void Close() EXCLUDES(mu_);

  /// Current total occupancy.
  Index size() const EXCLUDES(mu_);

  /// The capacity bound.
  Index capacity() const { return capacity_; }

  /// True once Close() has been called.
  bool closed() const EXCLUDES(mu_);

 private:
  /// Moves the best-priority queued job into `*out`. The caller holds mu_
  /// and has checked size_ > 0.
  bool PopLocked(Job* out) REQUIRES(mu_);

  const Index capacity_;
  mutable Mutex mu_;
  CondVar cv_;  // unguarded: sync primitive paired with mu_
  /// One FIFO lane per priority; total occupancy across the lanes is
  /// bounded by capacity_ (enforced in Push).
  std::array<std::deque<Job>, kNumPriorities> lanes_ GUARDED_BY(mu_);
  Index size_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_JOB_QUEUE_H_
