#ifndef VALMOD_SERVICE_PROTOCOL_H_
#define VALMOD_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/ranking.h"
#include "mp/matrix_profile.h"
#include "service/json.h"
#include "util/common.h"
#include "util/status.h"

namespace valmod {

/// Wire protocol of the motif query service (full spec: docs/SERVICE.md).
///
/// Framing: every message — request or response — is one frame:
///
///     VALMOD/<version> <payload-bytes>\n
///     <payload-bytes of JSON, newline-terminated>
///
/// The byte count includes the payload's trailing newline, so a frame can
/// be both streamed (read header, then exactly N bytes) and eyeballed
/// (`nc` output stays line-oriented). Readers reject foreign magic,
/// version mismatches, and oversized counts *before* buffering a payload.

/// Version in the frame header. Readers reject other versions.
inline constexpr int kProtocolVersion = 1;

/// Frame-header magic, including the version and trailing space.
inline constexpr std::string_view kFrameMagic = "VALMOD/1 ";

/// Upper bound on a single frame payload; a header announcing more is
/// rejected without allocation (a 4M-point inline series fits comfortably).
inline constexpr std::size_t kMaxFrameBytes = 256u << 20;

/// The query types the service answers. All but kStats are projections of
/// one shared computed artifact (per-length profiles over [len_min,
/// len_max]), which is what makes the cross-type result cache pay off.
enum class QueryType {
  kMotif,    // Best motif pair per length + length-normalized best overall.
  kTopK,     // Top-K disjoint motif pairs per length.
  kDiscord,  // Top discord per length + length-normalized best overall.
  kProfile,  // Per-length profile summaries (min/mean/max + all of the above).
  kStats,    // Metrics-registry text exposition; never queued or cached.
};

/// Wire name of a query type, e.g. "motif".
const char* QueryTypeName(QueryType type);

/// Parses a wire name (case-sensitive). Returns InvalidArgument on unknown
/// names.
Status ParseQueryType(const std::string& name, QueryType* out);

/// A client request. The series is given either inline (`series`) or as a
/// named registry dataset (`dataset` + `n`, generated server-side with the
/// registry's default seed); inline wins when both are present.
struct Request {
  QueryType type = QueryType::kStats;
  /// Client correlation id, echoed verbatim in the response.
  std::int64_t id = 0;
  /// Inline series values (bit-exact on the wire).
  Series series;
  /// Named dataset alternative to `series`, e.g. "ECG" or "PLANTED".
  std::string dataset;
  /// Number of points to generate for `dataset`.
  Index n = 0;
  /// Length range [len_min, len_max] and the VALMOD parameters. `p` and `k`
  /// participate in the cache key; `k` bounds the per-length top-K list.
  Index len_min = 0;
  Index len_max = 0;
  Index p = 10;
  Index k = 3;
  /// Wall-clock budget in milliseconds; 0 means unlimited. Covers queue
  /// wait plus execution.
  double deadline_ms = 0.0;
  /// Scheduling priority: 0 = high, 1 = normal (default), 2 = low.
  int priority = 1;
  /// Skip the cache lookup (the result is still stored); used by the
  /// benchmark harness to measure cold latency.
  bool no_cache = false;
  /// Skip the artifact-catalog lookup (write-through still happens); used
  /// by the benchmark harness to isolate true cold compute from
  /// catalog-warm serving.
  bool no_catalog = false;

  /// Serializes to the request JSON object.
  JsonValue ToJson() const;
  /// Parses a request JSON object; unknown fields are ignored (forward
  /// compatibility), missing ones keep their defaults. Type errors and an
  /// unknown `type` yield InvalidArgument.
  Status FromJson(const JsonValue& json);
};

/// Everything the service can say about one subsequence length. The `has_*`
/// flags say which sections are populated: the cache stores entries with
/// every flag set, a response projects down to the sections its query type
/// asked for.
struct LengthResult {
  Index length = 0;
  bool has_motif = false;
  bool has_top_k = false;
  bool has_discord = false;
  bool has_profile = false;
  /// Best motif pair at this length (Definition 2.3).
  MotifPair motif;
  /// Top-k disjoint motif pairs at this length, best first.
  std::vector<MotifPair> top_k;
  /// Top discord at this length.
  Discord discord;
  /// Matrix-profile summary over the finite entries.
  double profile_min = kInf;
  double profile_mean = kInf;
  double profile_max = -kInf;

  /// Serializes the populated sections.
  JsonValue ToJson() const;
  /// Parses a length-result object, deriving the `has_*` flags from which
  /// sections are present.
  Status FromJson(const JsonValue& json);
};

/// A server response. `ok == false` carries only `error_*` (plus the echoed
/// id); `ok == true` carries the projection of the computed artifact that
/// the query type selects.
struct Response {
  std::int64_t id = 0;
  QueryType type = QueryType::kStats;
  bool ok = false;
  /// StatusCodeName of the failure, e.g. "RESOURCE_EXHAUSTED" — the
  /// admission-control backpressure signal clients must handle.
  std::string error_code;
  std::string error_message;
  /// True when the answer came from the result cache.
  bool cached = false;
  /// Server-side wall time for this request, microseconds.
  double elapsed_us = 0.0;
  /// Hex fingerprint of the resolved series (cache-key component).
  std::string fingerprint;
  /// Per-length sections, ascending length.
  std::vector<LengthResult> lengths;
  /// Best motif pair across lengths by length-normalized distance.
  bool has_best_motif = false;
  RankedPair best_motif;
  /// Best discord across lengths by length-normalized distance.
  bool has_best_discord = false;
  Discord best_discord;
  double best_discord_norm = -kInf;
  /// Metrics text exposition (kStats responses only).
  std::string stats_text;

  /// Builds a failure response echoing `request`'s id and type.
  static Response Error(const Request& request, const Status& status);

  /// Serializes to the response JSON object.
  JsonValue ToJson() const;
  /// Parses a response JSON object (the client half).
  Status FromJson(const JsonValue& json);

  /// The response's Status: Ok when `ok`, else the reconstructed error.
  Status ToStatus() const;
};

/// Wraps a JSON payload into one wire frame (header + payload + newline).
std::string EncodeFrame(std::string_view json);

/// Parses a frame-header line (without its trailing newline) into the
/// payload byte count. Rejects foreign magic, other protocol versions, and
/// counts above kMaxFrameBytes, each with a distinct message.
Status ParseFrameHeader(std::string_view header_line, std::size_t* out_bytes);

/// Maps a StatusCodeName() string back to its StatusCode; kIoError for
/// names this build does not know (a newer server's codes still fail
/// closed).
StatusCode StatusCodeFromName(const std::string& name);

}  // namespace valmod

#endif  // VALMOD_SERVICE_PROTOCOL_H_
