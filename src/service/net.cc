#include "service/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "service/protocol.h"
#include "util/timer.h"

namespace valmod {
namespace net {
namespace {

/// Poll slice: the granularity at which blocked reads re-check the stop
/// flag. Short enough that drain feels immediate, long enough to be noise
/// in syscall terms.
constexpr int kPollSliceMs = 50;

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Waits until `fd` is readable. DeadlineExceeded on timeout or when
/// `*stop` turns true; Ok when readable.
Status WaitReadable(int fd, double timeout_s, const std::atomic<bool>* stop) {
  const Deadline deadline = Deadline::After(timeout_s);
  while (true) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed))
      return Status::DeadlineExceeded("stopped");
    if (deadline.Expired()) return Status::DeadlineExceeded("read timeout");
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = poll(&pfd, 1, kPollSliceMs);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (r > 0) return Status::Ok();
  }
}

/// Reads exactly `want` bytes into `*out` (appending), polling between
/// chunks. `eof_ok_at_start` maps immediate EOF to NotFound (clean close).
Status ReadExact(int fd, std::size_t want, double timeout_s,
                 const std::atomic<bool>* stop, bool eof_ok_at_start,
                 std::string* out) {
  std::size_t got = 0;
  char buf[4096];
  while (got < want) {
    Status status = WaitReadable(fd, timeout_s, stop);
    if (!status.ok()) return status;
    const std::size_t chunk =
        want - got < sizeof(buf) ? want - got : sizeof(buf);
    const ssize_t r = recv(fd, buf, chunk, 0);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (eof_ok_at_start && got == 0)
        return Status::NotFound("connection closed");
      return Status::IoError("connection closed mid-frame");
    }
    out->append(buf, static_cast<std::size_t>(r));
    got += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

}  // namespace

Status Listen(const std::string& host, int port, int backlog, int* out_fd,
              int* out_port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Errno("bind " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return status;
  }
  if (listen(fd, backlog) < 0) {
    const Status status = Errno("listen");
    CloseFd(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    const Status status = Errno("getsockname");
    CloseFd(fd);
    return status;
  }
  *out_fd = fd;
  *out_port = static_cast<int>(ntohs(addr.sin_port));
  return Status::Ok();
}

Status Accept(int listen_fd, double timeout_s, int* out_fd) {
  Status status = WaitReadable(listen_fd, timeout_s, nullptr);
  if (!status.ok()) return status;
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return Errno("accept");
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::Ok();
}

Status Connect(const std::string& host, int port, double timeout_s,
               int* out_fd) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(fd);
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  // Loopback connects complete immediately or fail; a blocking connect
  // with a socket-level timeout keeps this simple and portable.
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout_s);
  tv.tv_usec = static_cast<suseconds_t>((timeout_s - static_cast<double>(
                                                         tv.tv_sec)) *
                                        1e6);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status =
        Errno("connect " + host + ":" + std::to_string(port));
    CloseFd(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::Ok();
}

Status SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t r = send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

Status ReadFramePayload(int fd, double timeout_s,
                        const std::atomic<bool>* stop, std::string* payload) {
  // Header: read byte-wise up to the newline. Headers are ~16 bytes, so
  // the per-byte recv cost is invisible next to the payload that follows.
  std::string header;
  while (true) {
    Status status = ReadExact(fd, 1, timeout_s, stop, header.empty(), &header);
    if (!status.ok()) return status;
    if (header.back() == '\n') {
      header.pop_back();
      break;
    }
    if (header.size() > 64)
      return Status::InvalidArgument("frame header too long");
  }
  std::size_t bytes = 0;
  Status status = ParseFrameHeader(header, &bytes);
  if (!status.ok()) return status;
  std::string body;
  body.reserve(bytes);
  status = ReadExact(fd, bytes, timeout_s, stop, false, &body);
  if (!status.ok()) return status;
  if (body.empty() || body.back() != '\n')
    return Status::InvalidArgument("frame payload must end with a newline");
  body.pop_back();
  *payload = std::move(body);
  return Status::Ok();
}

Status WriteFramePayload(int fd, const std::string& json) {
  return SendAll(fd, EncodeFrame(json));
}

Status ReadHttpHead(int fd, double timeout_s, const std::atomic<bool>* stop,
                    std::size_t max_bytes, std::string* head) {
  // Byte-wise like the frame-header read: request heads are a few hundred
  // bytes, so simplicity beats buffering here too.
  std::string data;
  while (true) {
    Status status = ReadExact(fd, 1, timeout_s, stop, data.empty(), &data);
    if (!status.ok()) return status;
    const std::size_t size = data.size();
    if ((size >= 4 && data.compare(size - 4, 4, "\r\n\r\n") == 0) ||
        (size >= 2 && data.compare(size - 2, 2, "\n\n") == 0)) {
      *head = std::move(data);
      return Status::Ok();
    }
    if (size > max_bytes)
      return Status::InvalidArgument("http request head too long");
  }
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    return Errno("fcntl(F_SETFL)");
  return Status::Ok();
}

Status MakePipe(int* out_read_fd, int* out_write_fd) {
  int fds[2];
  if (pipe(fds) < 0) return Errno("pipe");
  for (const int fd : fds) {
    const Status status = SetNonBlocking(fd);
    if (!status.ok()) {
      CloseFd(fds[0]);
      CloseFd(fds[1]);
      return status;
    }
  }
  *out_read_fd = fds[0];
  *out_write_fd = fds[1];
  return Status::Ok();
}

Status AcceptNonBlocking(int listen_fd, int* out_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Status::DeadlineExceeded("no pending connection");
    }
    return Errno("accept");
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out_fd = fd;
  return Status::Ok();
}

void CloseFd(int fd) {
  if (fd >= 0) close(fd);
}

}  // namespace net
}  // namespace valmod
