#ifndef VALMOD_SERVICE_CLIENT_H_
#define VALMOD_SERVICE_CLIENT_H_

#include <string>

#include "service/protocol.h"
#include "util/status.h"

namespace valmod {

/// Blocking client for the motif query service: one TCP connection, one
/// request/response in flight at a time. Not thread-safe — use one Client
/// per thread (connections are cheap; the server pools the real work).
class Client {
 public:
  Client() = default;

  /// Closes the connection if still open.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to a server. `timeout_s` bounds the connect itself and every
  /// subsequent per-read wait.
  Status Connect(const std::string& host, int port, double timeout_s = 5.0);

  /// Sends one request and blocks for its response. Transport failures
  /// (connection lost, malformed frame) come back as the Status; an
  /// application-level failure arrives as a Response with `ok == false`
  /// while Query itself returns Ok.
  Status Query(const Request& request, Response* out);

  /// Convenience wrapper: issues a STATS request and returns the metrics
  /// text exposition.
  Status Stats(std::string* out_text);

  /// Closes the connection (idempotent).
  void Close();

  /// True while the connection is open.
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  double timeout_s_ = 5.0;
};

}  // namespace valmod

#endif  // VALMOD_SERVICE_CLIENT_H_
