#include "service/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>
#include <utility>

#include "util/common.h"

namespace valmod {
namespace {

/// Shortest decimal rendering of a finite double that parses back to the
/// identical bit pattern (std::to_chars shortest form); the protocol's
/// bit-exactness guarantee rests on this.
void AppendDouble(double d, std::string* out) {
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), d);
  out->append(buf, static_cast<std::size_t>(r.ptr - buf));
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }
  char Peek() const { return text[pos]; }

  void SkipSpace() {
    while (!AtEnd()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos));
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth >= kMaxParseDepth) return Fail("nesting too deep");
    SkipSpace();
    if (AtEnd()) return Fail("unexpected end of input");
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = JsonValue(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", JsonValue(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, JsonValue value, JsonValue* out) {
    if (text.substr(pos, lit.size()) != lit) return Fail("bad literal");
    pos += lit.size();
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos;  // opening quote
    std::string s;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      char c = text[pos++];
      if (c == '"') break;
      if (c != '\\') {
        s.push_back(c);
        continue;
      }
      if (AtEnd()) return Fail("unterminated escape");
      c = text[pos++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          s.push_back(c);
          break;
        case 'b':
          s.push_back('\b');
          break;
        case 'f':
          s.push_back('\f');
          break;
        case 'n':
          s.push_back('\n');
          break;
        case 'r':
          s.push_back('\r');
          break;
        case 't':
          s.push_back('\t');
          break;
        case 'u': {
          if (pos + 4 > text.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // The protocol only ships ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            s.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            s.push_back(static_cast<char>(0xC0 | (code >> 6)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            s.push_back(static_cast<char>(0xE0 | (code >> 12)));
            s.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            s.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    *out = std::move(s);
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos;
    if (!AtEnd() && (Peek() == '-' || Peek() == '+')) ++pos;
    bool integral = true;
    while (!AtEnd()) {
      const char c = Peek();
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos;
      } else {
        break;
      }
    }
    const std::string_view token = text.substr(start, pos - start);
    if (token.empty()) return Fail("expected a value");
    if (integral) {
      std::int64_t i = 0;
      const std::from_chars_result r =
          std::from_chars(token.data(), token.data() + token.size(), i);
      if (r.ec == std::errc() && r.ptr == token.data() + token.size()) {
        *out = JsonValue(i);
        return Status::Ok();
      }
      // Fall through: out-of-range integers degrade to double.
    }
    double d = 0.0;
    const std::from_chars_result r =
        std::from_chars(token.data(), token.data() + token.size(), d);
    if (r.ec != std::errc() || r.ptr != token.data() + token.size()) {
      return Fail("bad number '" + std::string(token) + "'");
    }
    *out = JsonValue(d);
    return Status::Ok();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos;  // '['
    JsonValue::Array items;
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++pos;
      *out = JsonValue(std::move(items));
      return Status::Ok();
    }
    while (true) {
      JsonValue item;
      Status status = ParseValue(&item, depth + 1);
      if (!status.ok()) return status;
      items.push_back(std::move(item));
      SkipSpace();
      if (AtEnd()) return Fail("unterminated array");
      const char c = text[pos++];
      if (c == ']') break;
      if (c != ',') return Fail("expected ',' or ']'");
    }
    *out = JsonValue(std::move(items));
    return Status::Ok();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos;  // '{'
    JsonValue::Object members;
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++pos;
      *out = JsonValue(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      if (AtEnd() || Peek() != '"') return Fail("expected object key");
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipSpace();
      if (AtEnd() || text[pos++] != ':') return Fail("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      members[std::move(key)] = std::move(value);
      SkipSpace();
      if (AtEnd()) return Fail("unterminated object");
      const char c = text[pos++];
      if (c == '}') break;
      if (c != ',') return Fail("expected ',' or '}'");
    }
    *out = JsonValue(std::move(members));
    return Status::Ok();
  }
};

}  // namespace

JsonValue::JsonValue(double d) {
  if (std::isfinite(d)) {
    kind_ = Kind::kDouble;
    double_ = d;
  } else {
    kind_ = Kind::kString;
    string_ = std::isnan(d) ? "nan" : (d > 0 ? "inf" : "-inf");
  }
}

JsonValue::JsonValue(std::string s)
    : kind_(Kind::kString), string_(std::move(s)) {}

JsonValue::JsonValue(Array a) : kind_(Kind::kArray), array_(std::move(a)) {}

JsonValue::JsonValue(Object o) : kind_(Kind::kObject), object_(std::move(o)) {}

const std::string& JsonValue::EmptyString() {
  static const std::string empty;
  return empty;
}

bool JsonValue::AsBool(bool def) const { return is_bool() ? bool_ : def; }

std::int64_t JsonValue::AsInt(std::int64_t def) const {
  if (is_int()) return int_;
  if (is_double()) return static_cast<std::int64_t>(double_);
  return def;
}

double JsonValue::AsDouble(double def) const {
  if (is_double()) return double_;
  if (is_int()) return static_cast<double>(int_);
  if (is_string()) {
    if (string_ == "inf") return kInf;
    if (string_ == "-inf") return -kInf;
    if (string_ == "nan") return std::nan("");
  }
  return def;
}

const std::string& JsonValue::AsString(const std::string& def) const {
  return is_string() ? string_ : def;
}

const JsonValue::Array& JsonValue::AsArray() const {
  static const Array empty;
  return is_array() ? array_ : empty;
}

const JsonValue::Object& JsonValue::AsObject() const {
  static const Object empty;
  return is_object() ? object_ : empty;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (!is_object()) {
    kind_ = Kind::kObject;
    object_.clear();
  }
  object_[key] = std::move(value);
}

void JsonValue::Append(JsonValue value) {
  if (!is_array()) {
    kind_ = Kind::kArray;
    array_.clear();
  }
  array_.push_back(std::move(value));
}

void JsonValue::SerializeTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      break;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      out->append(std::to_string(int_));
      break;
    case Kind::kDouble:
      AppendDouble(double_, out);
      break;
    case Kind::kString:
      out->push_back('"');
      out->append(JsonEscape(string_));
      out->push_back('"');
      break;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        value.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

Status JsonValue::Parse(std::string_view text, JsonValue* out) {
  Parser parser{text};
  JsonValue value;
  Status status = parser.ParseValue(&value, 0);
  if (!status.ok()) return status;
  parser.SkipSpace();
  if (!parser.AtEnd()) return parser.Fail("trailing garbage");
  *out = std::move(value);
  return Status::Ok();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buf);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace valmod
