#include "service/engine.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "catalog/artifact.h"
#include "catalog/builder.h"
#include "datasets/registry.h"
#include "obs/counters.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "service/fingerprint.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace valmod {

// Everything one request carries across its thread hops. The calling
// thread fills it in, the executor worker reads and finishes it; each hop
// publishes through a mutex (the executor queue, the singleflight table,
// or the blocking-Execute handshake), so the plain members never race.
struct QueryEngine::Pending {
  Request request;
  ResponseCallback done;
  /// Wall clock of the whole request, started at ExecuteAsync entry.
  WallTimer timer;
  /// Stage sink shared by the calling thread and the worker (sequenced by
  /// the hand-off mutexes; never written concurrently).
  obs::StageRecorder stages;
  /// Owns generated dataset points; `series` views this or the request.
  Series storage;
  std::span<const double> series;
  std::uint64_t fingerprint = 0;
  catalog::ArtifactKey artifact_key;
  CacheKey cache_key;
  Deadline deadline;
  std::string type_name;
  /// Submit-to-start gap of the executor job (the queue_wait stage).
  WallTimer queue_timer;
  /// True once this request has paid (or been refused) its own compute
  /// attempt. Coalesced followers start false so a failed leader grants
  /// them exactly one retry; leaders and no_cache jobs start true.
  bool retried = false;
};

QueryEngine::QueryEngine(const QueryEngineOptions& options)
    : options_(options),
      slow_log_(options.slow_query_ms),
      cache_(options.cache_bytes, options.cache_shards),
      executor_(options.workers, options.queue_capacity) {
  if (!options_.catalog_dir.empty()) {
    catalog::CatalogOptions copts;
    copts.root = options_.catalog_dir;
    copts.shards = options_.catalog_shards;
    copts.resident_bytes = options_.catalog_resident_bytes;
    auto cat = std::make_unique<catalog::Catalog>(copts);
    const Status status = cat->Open();
    if (status.ok()) {
      catalog_ = std::move(cat);
    } else {
      // A broken catalog degrades to compute-only serving, never an abort.
      obs::LogEvent(obs::LogLevel::kWarn, "catalog_open_failed")
          .Str("root", options_.catalog_dir)
          .Str("error", status.message());
    }
  }
  metrics_.SetGauge("cache_bytes",
                    [this] { return static_cast<std::int64_t>(cache_.bytes()); });
  metrics_.SetGauge("cache_entries", [this] { return cache_.entries(); });
  metrics_.SetGauge("cache_hits", [this] { return cache_.hits(); });
  metrics_.SetGauge("cache_misses", [this] { return cache_.misses(); });
  metrics_.SetGauge("cache_evictions", [this] { return cache_.evictions(); });
  metrics_.SetGauge("cache_oversize_rejects",
                    [this] { return cache_.oversize_rejects(); });
  metrics_.SetGauge("queue_depth", [this] { return executor_.queue_depth(); });
  // Artifact-catalog and coalescer gauges are instance-backed (unlike the
  // process-wide algorithm counters below) so each engine reports its own
  // catalog; they exist even with the catalog disabled so the exposition
  // schema is stable.
  metrics_.SetGauge("catalog_hits_total",
                    [this] { return catalog_ ? catalog_->hits() : 0; });
  metrics_.SetGauge("catalog_misses_total",
                    [this] { return catalog_ ? catalog_->misses() : 0; });
  metrics_.SetGauge("catalog_evictions_total",
                    [this] { return catalog_ ? catalog_->evictions() : 0; });
  metrics_.SetGauge("catalog_resident_bytes_total", [this] {
    return catalog_ ? static_cast<std::int64_t>(catalog_->resident_bytes())
                    : 0;
  });
  metrics_.SetGauge("catalog_coalesced_jobs_total",
                    [this] { return flight_.coalesced(); });
  // The process-wide algorithm counters (obs::Counters) surface as gauges
  // so both the STATS exposition and GET /metrics always carry the pruning
  // statistics of Algorithms 3/4.
  metrics_.SetGauge("mp_profiles_full_stomp", [] {
    return obs::Counters::Snapshot().mp_profiles_full_stomp;
  });
  metrics_.SetGauge("submp_profiles_certified", [] {
    return obs::Counters::Snapshot().submp_profiles_certified;
  });
  metrics_.SetGauge("submp_profiles_recomputed", [] {
    return obs::Counters::Snapshot().submp_profiles_recomputed;
  });
  metrics_.SetGauge("submp_profiles_uncertified", [] {
    return obs::Counters::Snapshot().submp_profiles_uncertified;
  });
  metrics_.SetGauge("submp_lengths_certified", [] {
    return obs::Counters::Snapshot().submp_lengths_certified;
  });
  metrics_.SetGauge("submp_lengths_total", [] {
    return obs::Counters::Snapshot().submp_lengths_total;
  });
  metrics_.SetGauge("full_stomp_fallbacks", [] {
    return obs::Counters::Snapshot().valmod_full_fallbacks;
  });
  metrics_.SetGauge("listdp_heap_updates", [] {
    return obs::Counters::Snapshot().listdp_heap_updates;
  });
  metrics_.SetGauge("stomp_rows",
                    [] { return obs::Counters::Snapshot().stomp_rows; });
  metrics_.SetGauge("stomp_chunks",
                    [] { return obs::Counters::Snapshot().stomp_chunks; });
  metrics_.SetGauge("lb_tightness_mean_ppm", [] {
    return static_cast<std::int64_t>(
        obs::Counters::Snapshot().MeanLbTightness() * 1e6);
  });
}

QueryEngine::~QueryEngine() { Drain(); }

void QueryEngine::Drain() { executor_.Drain(); }

Status QueryEngine::ResolveSeries(const Request& request, Series* storage,
                                  std::span<const double>* out) const {
  if (!request.series.empty()) {
    if (static_cast<Index>(request.series.size()) >
        options_.max_series_points) {
      return Status::OutOfRange(
          "inline series exceeds max_series_points (" +
          std::to_string(options_.max_series_points) + ")");
    }
    *out = request.series;
    return Status::Ok();
  }
  if (request.dataset.empty())
    return Status::InvalidArgument("request needs 'series' or 'dataset'");
  if (request.n <= 0 || request.n > options_.max_series_points) {
    return Status::InvalidArgument(
        "dataset request needs 0 < n <= " +
        std::to_string(options_.max_series_points));
  }
  Status status = GenerateByName(request.dataset, request.n, storage);
  if (!status.ok()) return status;
  *out = *storage;
  return Status::Ok();
}

Status QueryEngine::ValidateRequest(const Request& request, Index n) const {
  if (request.len_min < 4)
    return Status::InvalidArgument("len_min must be >= 4");
  if (request.len_max < request.len_min)
    return Status::InvalidArgument("len_max must be >= len_min");
  if (request.len_max - request.len_min + 1 > options_.max_lengths) {
    return Status::OutOfRange("length range wider than max_lengths (" +
                              std::to_string(options_.max_lengths) + ")");
  }
  if (n < request.len_max + ExclusionZone(request.len_max)) {
    return Status::InvalidArgument(
        "series of " + std::to_string(n) +
        " points is too short for len_max " +
        std::to_string(request.len_max) +
        " (need len_max + ExclusionZone(len_max) points)");
  }
  if (request.p < 1) return Status::InvalidArgument("p must be >= 1");
  if (request.k < 1 || request.k > options_.max_k) {
    return Status::InvalidArgument("k must be in [1, " +
                                   std::to_string(options_.max_k) + "]");
  }
  return Status::Ok();
}

Response QueryEngine::Execute(const Request& request) {
  // The blocking face parks on the async one. (GUARDED_BY does not apply
  // to locals; the callback runs at most once, so the references stay
  // valid until `done` flips.)
  Mutex mu;
  CondVar cv;
  bool done = false;
  Response out;
  ExecuteAsync(request, [&](Response response) {
    const MutexLock lock(&mu);
    out = std::move(response);
    done = true;
    cv.NotifyOne();
  });
  const MutexLock lock(&mu);
  while (!done) cv.Wait(mu);
  return out;
}

void QueryEngine::ExecuteAsync(const Request& request, ResponseCallback done) {
  metrics_.GetCounter("requests_total")->Increment();
  const std::string type_name = QueryTypeName(request.type);
  metrics_.GetCounter("requests_" + type_name)->Increment();

  if (request.type == QueryType::kStats) {
    WallTimer timer;
    Response response;
    response.id = request.id;
    response.type = request.type;
    response.ok = true;
    response.stats_text = metrics_.Exposition();
    response.elapsed_us = timer.Seconds() * 1e6;
    done(std::move(response));
    return;
  }

  auto state = std::make_shared<Pending>();
  state->request = request;
  state->done = std::move(done);
  state->type_name = type_name;

  Response response;
  bool terminal = false;
  bool observe_latency = false;
  {
    // The inline leg of the request: spans completing here land in the
    // state's recorder. The sink and the service_execute span must close
    // before the executor hand-off — the worker writes to the same
    // recorder, and only the submission mutex orders the two.
    const obs::ScopedStageSink sink(&state->stages);
    const obs::TraceSpan span("service_execute");

    Status status;
    {
      const obs::TraceSpan resolve_span("resolve_series");
      status = ResolveSeries(state->request, &state->storage, &state->series);
      if (status.ok()) {
        status = ValidateRequest(state->request,
                                 static_cast<Index>(state->series.size()));
      }
    }
    if (!status.ok()) {
      metrics_.GetCounter("requests_invalid")->Increment();
      response = Response::Error(state->request, status);
      terminal = true;
    } else {
      state->fingerprint = SeriesFingerprint(state->series);
      state->artifact_key =
          catalog::ArtifactKey{state->fingerprint, request.len_min,
                               request.len_max, request.p};
      state->cache_key = CacheKey{state->fingerprint, request.len_min,
                                  request.len_max, request.p, request.k};
      state->deadline = request.deadline_ms > 0
                            ? Deadline::After(request.deadline_ms / 1e3)
                            : Deadline();

      CachedArtifact artifact;
      bool hit = false;
      {
        const obs::TraceSpan cache_span("cache_lookup");
        hit = !request.no_cache && cache_.Get(state->cache_key, &artifact);
      }
      if (hit) {
        const obs::TraceSpan build_span("build_cached_response");
        response = BuildResponse(state->request, artifact, /*cached=*/true,
                                 state->fingerprint);
        terminal = true;
        observe_latency = true;
      }
    }
  }
  if (terminal) {
    FinishResponse(state, std::move(response), observe_latency);
    return;
  }
  StartColdPath(state);
}

void QueryEngine::StartColdPath(const std::shared_ptr<Pending>& state) {
  if (state->request.no_cache) {
    // no_cache opts out of every shared answer, including an in-flight
    // one: the benchmark and backpressure tests rely on each such request
    // paying its own way through the queue.
    SubmitCompute(state, /*leader=*/false);
    return;
  }
  const bool leads = flight_.JoinOrLead(
      state->artifact_key,
      [this, state](const std::shared_ptr<const catalog::MotifArtifact>&
                        artifact,
                    const Status& status) {
        DeliverArtifact(state, artifact, status);
      });
  if (leads) SubmitCompute(state, /*leader=*/true);
}

void QueryEngine::SubmitCompute(const std::shared_ptr<Pending>& state,
                                bool leader) {
  // This request now owns a compute attempt; its own failure is final.
  state->retried = true;
  state->queue_timer.Reset();
  const Status status = executor_.Submit(
      state->request.priority, state->deadline,
      [this, state, leader](bool expired) {
        std::shared_ptr<const catalog::MotifArtifact> artifact;
        Status job_status;
        {
          // The worker leg mirrors its spans into the request's recorder;
          // `queue_wait` is the submit-to-start gap. Close the sink before
          // delivery: followers' recorders are distinct, and the leader's
          // own delivery re-installs it.
          const obs::ScopedStageSink worker_sink(&state->stages);
          state->stages.Add("queue_wait",
                            state->queue_timer.Seconds() * 1e6, 1);
          const obs::TraceSpan compute_span("compute_artifact");
          if (expired) {
            job_status = Status::DeadlineExceeded(
                "deadline expired while the request was queued");
          } else {
            if (catalog_ && !state->request.no_catalog) {
              std::shared_ptr<const catalog::MotifArtifact> persisted;
              const Status catalog_status =
                  catalog_->Get(state->artifact_key, &persisted);
              // Any non-hit (absent, corrupt, or stored too shallow for
              // this k) falls through to a rebuild, which heals the
              // catalog via the write-through below.
              if (catalog_status.ok() &&
                  persisted->stored_k >= state->request.k) {
                artifact = std::move(persisted);
              }
            }
            if (!artifact) {
              catalog::BuildOptions build_options;
              build_options.len_min = state->request.len_min;
              build_options.len_max = state->request.len_max;
              build_options.p = state->request.p;
              // Store top-K lists max_k deep so every admissible k is a
              // prefix truncation of this one artifact.
              build_options.stored_k = options_.max_k;
              build_options.stomp_threads = options_.stomp_threads;
              auto built = std::make_shared<catalog::MotifArtifact>();
              job_status =
                  catalog::BuildArtifact(state->series, state->fingerprint,
                                         build_options, state->deadline,
                                         built.get());
              if (job_status.ok()) {
                if (catalog_ && options_.catalog_write) {
                  const Status put_status = catalog_->Put(*built);
                  if (!put_status.ok()) {
                    // Persistence is best-effort; serving goes on.
                    obs::LogEvent(obs::LogLevel::kWarn, "catalog_put_failed")
                        .Str("error", put_status.message());
                  }
                }
                artifact = std::move(built);
              }
            }
          }
        }
        if (leader) {
          flight_.Complete(state->artifact_key, artifact, job_status);
        } else {
          DeliverArtifact(state, artifact, job_status);
        }
      });
  if (!status.ok()) {
    // Admission refused. A led flight must still complete so coalesced
    // followers hear about it (and take their retry).
    if (leader) {
      flight_.Complete(state->artifact_key, nullptr, status);
    } else {
      DeliverArtifact(state, nullptr, status);
    }
  }
}

void QueryEngine::DeliverArtifact(
    const std::shared_ptr<Pending>& state,
    const std::shared_ptr<const catalog::MotifArtifact>& artifact,
    const Status& status) {
  if (!status.ok() || artifact == nullptr) {
    const Status error =
        status.ok() ? Status::IoError("flight completed without an artifact")
                    : status;
    if (!state->retried) {
      // A coalesced follower inherited its leader's failure without ever
      // getting its own shot at the queue; grant exactly one.
      state->retried = true;
      StartColdPath(state);
      return;
    }
    metrics_
        .GetCounter(error.code() == StatusCode::kResourceExhausted
                        ? "rejected_queue_full"
                        : "rejected_deadline")
        ->Increment();
    FinishResponse(state, Response::Error(state->request, error), false);
    return;
  }
  // Terminal success leg; may run on the leader's worker for coalesced
  // followers. Their recorders are idle by now (followers' inline legs
  // closed before joining the flight), so installing the sink is safe.
  const obs::ScopedStageSink sink(&state->stages);
  const CachedArtifact projected =
      ProjectArtifact(*artifact, state->request.k);
  // Even no_cache requests store their answer (they skip only lookups).
  cache_.Put(state->cache_key, projected);
  Response response;
  {
    const obs::TraceSpan build_span("build_response");
    response = BuildResponse(state->request, projected, /*cached=*/false,
                             state->fingerprint);
  }
  FinishResponse(state, std::move(response), true);
}

CachedArtifact QueryEngine::ProjectArtifact(
    const catalog::MotifArtifact& artifact, Index k) const {
  CachedArtifact projected;
  projected.lengths.reserve(artifact.lengths.size());
  for (const catalog::ArtifactLength& al : artifact.lengths) {
    LengthResult lr;
    lr.length = al.length;
    lr.has_motif = lr.has_top_k = lr.has_discord = lr.has_profile = true;
    lr.motif = al.motif;
    // Top-K prefix truncation: TopMotifsFromProfile's greedy selection
    // makes the k-deep answer an exact prefix of the stored_k-deep one,
    // so this slice is bit-identical to computing with this k directly.
    const std::size_t keep =
        std::min(static_cast<std::size_t>(k), al.top_k.size());
    lr.top_k.assign(al.top_k.begin(),
                    al.top_k.begin() + static_cast<std::ptrdiff_t>(keep));
    lr.discord = al.discord;
    lr.profile_min = al.profile_min;
    lr.profile_mean = al.profile_mean;
    lr.profile_max = al.profile_max;
    projected.lengths.push_back(std::move(lr));
  }
  projected.has_best_motif = artifact.has_best_motif;
  projected.best_motif = artifact.best_motif;
  projected.has_best_discord = artifact.has_best_discord;
  projected.best_discord = artifact.best_discord;
  projected.best_discord_norm = artifact.best_discord_norm;
  return projected;
}

Response QueryEngine::BuildResponse(const Request& request,
                                    const CachedArtifact& artifact,
                                    bool cached,
                                    std::uint64_t fingerprint) const {
  Response response;
  response.id = request.id;
  response.type = request.type;
  response.ok = true;
  response.cached = cached;
  response.fingerprint = FingerprintHex(fingerprint);
  response.lengths = artifact.lengths;
  // Project each per-length entry down to the sections this query type
  // asked for; the projection depends only on (type, artifact), so cached
  // and freshly computed answers serialize identically.
  const bool want_motif = request.type == QueryType::kMotif ||
                          request.type == QueryType::kProfile;
  const bool want_top_k = request.type == QueryType::kTopK ||
                          request.type == QueryType::kProfile;
  const bool want_discord = request.type == QueryType::kDiscord ||
                            request.type == QueryType::kProfile;
  const bool want_profile = request.type == QueryType::kProfile;
  for (LengthResult& lr : response.lengths) {
    lr.has_motif = want_motif;
    lr.has_top_k = want_top_k;
    lr.has_discord = want_discord;
    lr.has_profile = want_profile;
    if (!want_top_k) lr.top_k.clear();
  }
  if ((want_motif || want_top_k) && artifact.has_best_motif) {
    response.has_best_motif = true;
    response.best_motif = artifact.best_motif;
  }
  if ((want_discord || want_profile) && artifact.has_best_discord) {
    response.has_best_discord = true;
    response.best_discord = artifact.best_discord;
    response.best_discord_norm = artifact.best_discord_norm;
  }
  return response;
}

void QueryEngine::FinishResponse(const std::shared_ptr<Pending>& state,
                                 Response response, bool observe_latency) {
  response.elapsed_us = state->timer.Seconds() * 1e6;
  if (observe_latency) {
    metrics_.GetHistogram("latency_" + state->type_name)
        ->Observe(response.elapsed_us);
  }
  LogIfSlow(state->request, response, state->stages);
  state->done(std::move(response));
}

void QueryEngine::LogIfSlow(const Request& request, const Response& response,
                            const obs::StageRecorder& stages) {
  if (slow_log_.disabled()) return;
  obs::SlowQueryRecord record;
  record.query_type = QueryTypeName(request.type);
  record.dataset = request.dataset;
  record.n = request.series.empty()
                 ? request.n
                 : static_cast<Index>(request.series.size());
  record.len_min = request.len_min;
  record.len_max = request.len_max;
  record.p = request.p;
  record.k = request.k;
  record.priority = request.priority;
  record.cached = response.cached;
  record.ok = response.ok;
  record.error_code = response.error_code;
  record.elapsed_us = response.elapsed_us;
  if (slow_log_.MaybeLog(record, stages)) {
    metrics_.GetCounter("slow_queries_total")->Increment();
  }
}

}  // namespace valmod
