#include "service/engine.h"

#include <cmath>
#include <utility>

#include "core/ranking.h"
#include "datasets/registry.h"
#include "mp/parallel_stomp.h"
#include "obs/counters.h"
#include "obs/trace.h"
#include "service/fingerprint.h"
#include "signal/znorm.h"
#include "util/mutex.h"
#include "util/prefix_stats.h"
#include "util/timer.h"

namespace valmod {

QueryEngine::QueryEngine(const QueryEngineOptions& options)
    : options_(options),
      slow_log_(options.slow_query_ms),
      cache_(options.cache_bytes, options.cache_shards),
      executor_(options.workers, options.queue_capacity) {
  metrics_.SetGauge("cache_bytes",
                    [this] { return static_cast<std::int64_t>(cache_.bytes()); });
  metrics_.SetGauge("cache_entries", [this] { return cache_.entries(); });
  metrics_.SetGauge("cache_hits", [this] { return cache_.hits(); });
  metrics_.SetGauge("cache_misses", [this] { return cache_.misses(); });
  metrics_.SetGauge("cache_evictions", [this] { return cache_.evictions(); });
  metrics_.SetGauge("cache_oversize_rejects",
                    [this] { return cache_.oversize_rejects(); });
  metrics_.SetGauge("queue_depth", [this] { return executor_.queue_depth(); });
  // The process-wide algorithm counters (obs::Counters) surface as gauges
  // so both the STATS exposition and GET /metrics always carry the pruning
  // statistics of Algorithms 3/4.
  metrics_.SetGauge("mp_profiles_full_stomp", [] {
    return obs::Counters::Snapshot().mp_profiles_full_stomp;
  });
  metrics_.SetGauge("submp_profiles_certified", [] {
    return obs::Counters::Snapshot().submp_profiles_certified;
  });
  metrics_.SetGauge("submp_profiles_recomputed", [] {
    return obs::Counters::Snapshot().submp_profiles_recomputed;
  });
  metrics_.SetGauge("submp_profiles_uncertified", [] {
    return obs::Counters::Snapshot().submp_profiles_uncertified;
  });
  metrics_.SetGauge("submp_lengths_certified", [] {
    return obs::Counters::Snapshot().submp_lengths_certified;
  });
  metrics_.SetGauge("submp_lengths_total", [] {
    return obs::Counters::Snapshot().submp_lengths_total;
  });
  metrics_.SetGauge("full_stomp_fallbacks", [] {
    return obs::Counters::Snapshot().valmod_full_fallbacks;
  });
  metrics_.SetGauge("listdp_heap_updates", [] {
    return obs::Counters::Snapshot().listdp_heap_updates;
  });
  metrics_.SetGauge("stomp_rows",
                    [] { return obs::Counters::Snapshot().stomp_rows; });
  metrics_.SetGauge("stomp_chunks",
                    [] { return obs::Counters::Snapshot().stomp_chunks; });
  metrics_.SetGauge("lb_tightness_mean_ppm", [] {
    return static_cast<std::int64_t>(
        obs::Counters::Snapshot().MeanLbTightness() * 1e6);
  });
}

QueryEngine::~QueryEngine() { Drain(); }

void QueryEngine::Drain() { executor_.Drain(); }

Status QueryEngine::ResolveSeries(const Request& request, Series* storage,
                                  std::span<const double>* out) const {
  if (!request.series.empty()) {
    if (static_cast<Index>(request.series.size()) >
        options_.max_series_points) {
      return Status::OutOfRange(
          "inline series exceeds max_series_points (" +
          std::to_string(options_.max_series_points) + ")");
    }
    *out = request.series;
    return Status::Ok();
  }
  if (request.dataset.empty())
    return Status::InvalidArgument("request needs 'series' or 'dataset'");
  if (request.n <= 0 || request.n > options_.max_series_points) {
    return Status::InvalidArgument(
        "dataset request needs 0 < n <= " +
        std::to_string(options_.max_series_points));
  }
  Status status = GenerateByName(request.dataset, request.n, storage);
  if (!status.ok()) return status;
  *out = *storage;
  return Status::Ok();
}

Status QueryEngine::ValidateRequest(const Request& request, Index n) const {
  if (request.len_min < 4)
    return Status::InvalidArgument("len_min must be >= 4");
  if (request.len_max < request.len_min)
    return Status::InvalidArgument("len_max must be >= len_min");
  if (request.len_max - request.len_min + 1 > options_.max_lengths) {
    return Status::OutOfRange("length range wider than max_lengths (" +
                              std::to_string(options_.max_lengths) + ")");
  }
  if (n < request.len_max + ExclusionZone(request.len_max)) {
    return Status::InvalidArgument(
        "series of " + std::to_string(n) +
        " points is too short for len_max " +
        std::to_string(request.len_max) +
        " (need len_max + ExclusionZone(len_max) points)");
  }
  if (request.p < 1) return Status::InvalidArgument("p must be >= 1");
  if (request.k < 1 || request.k > options_.max_k) {
    return Status::InvalidArgument("k must be in [1, " +
                                   std::to_string(options_.max_k) + "]");
  }
  return Status::Ok();
}

CachedArtifact QueryEngine::ComputeArtifact(std::span<const double> series,
                                            const Request& request,
                                            const Deadline& deadline,
                                            bool* dnf) const {
  // Mirror the ParallelStomp convenience overload — center once, share one
  // PrefixStats across lengths — so every answer is bit-identical to a
  // direct per-length ParallelStomp(series, len) library call.
  const Series centered = CenterSeries(series);
  const PrefixStats stats(centered);
  CachedArtifact artifact;
  std::vector<MotifPair> per_length_motifs;
  for (Index len = request.len_min; len <= request.len_max; ++len) {
    if (deadline.Expired()) {
      *dnf = true;
      return artifact;
    }
    const MatrixProfile profile =
        ParallelStomp(centered, stats, len, options_.stomp_threads);
    LengthResult lr;
    lr.length = len;
    lr.has_motif = lr.has_top_k = lr.has_discord = lr.has_profile = true;
    lr.motif = MotifFromProfile(profile);
    lr.top_k = TopMotifsFromProfile(profile, request.k);
    lr.discord = DiscordFromProfile(profile);
    double sum = 0.0;
    Index finite = 0;
    for (const double d : profile.distances) {
      if (d == kInf) continue;
      lr.profile_min = d < lr.profile_min ? d : lr.profile_min;
      lr.profile_max = d > lr.profile_max ? d : lr.profile_max;
      sum += d;
      ++finite;
    }
    lr.profile_mean = finite > 0 ? sum / static_cast<double>(finite) : kInf;
    per_length_motifs.push_back(lr.motif);
    const double norm = std::sqrt(1.0 / static_cast<double>(len));
    if (lr.discord.valid() &&
        lr.discord.distance * norm > artifact.best_discord_norm) {
      artifact.best_discord = lr.discord;
      artifact.best_discord_norm = lr.discord.distance * norm;
      artifact.has_best_discord = true;
    }
    artifact.lengths.push_back(std::move(lr));
  }
  const std::vector<RankedPair> ranked =
      RankMotifsByNormalizedDistance(per_length_motifs);
  if (!ranked.empty()) {
    artifact.best_motif = ranked.front();
    artifact.has_best_motif = true;
  }
  return artifact;
}

Response QueryEngine::BuildResponse(const Request& request,
                                    const CachedArtifact& artifact,
                                    bool cached,
                                    std::uint64_t fingerprint) const {
  Response response;
  response.id = request.id;
  response.type = request.type;
  response.ok = true;
  response.cached = cached;
  response.fingerprint = FingerprintHex(fingerprint);
  response.lengths = artifact.lengths;
  // Project each per-length entry down to the sections this query type
  // asked for; the projection depends only on (type, artifact), so cached
  // and freshly computed answers serialize identically.
  const bool want_motif = request.type == QueryType::kMotif ||
                          request.type == QueryType::kProfile;
  const bool want_top_k = request.type == QueryType::kTopK ||
                          request.type == QueryType::kProfile;
  const bool want_discord = request.type == QueryType::kDiscord ||
                            request.type == QueryType::kProfile;
  const bool want_profile = request.type == QueryType::kProfile;
  for (LengthResult& lr : response.lengths) {
    lr.has_motif = want_motif;
    lr.has_top_k = want_top_k;
    lr.has_discord = want_discord;
    lr.has_profile = want_profile;
    if (!want_top_k) lr.top_k.clear();
  }
  if ((want_motif || want_top_k) && artifact.has_best_motif) {
    response.has_best_motif = true;
    response.best_motif = artifact.best_motif;
  }
  if ((want_discord || want_profile) && artifact.has_best_discord) {
    response.has_best_discord = true;
    response.best_discord = artifact.best_discord;
    response.best_discord_norm = artifact.best_discord_norm;
  }
  return response;
}

Response QueryEngine::Execute(const Request& request) {
  WallTimer timer;
  metrics_.GetCounter("requests_total")->Increment();
  const std::string type_name = QueryTypeName(request.type);
  metrics_.GetCounter("requests_" + type_name)->Increment();

  if (request.type == QueryType::kStats) {
    Response response;
    response.id = request.id;
    response.type = request.type;
    response.ok = true;
    response.stats_text = metrics_.Exposition();
    response.elapsed_us = timer.Seconds() * 1e6;
    return response;
  }

  // Per-request stage capture: spans completing on this thread (and on the
  // executor worker, which installs its own sink onto the same recorder)
  // land in `stages` and feed the slow-query log. The worker's writes are
  // published to this thread by the job mutex/cv handshake below.
  obs::StageRecorder stages;
  const obs::ScopedStageSink sink(&stages);
  Response response;
  {
    const obs::TraceSpan span("service_execute");

    Series storage;
    std::span<const double> series;
    Status status;
    {
      const obs::TraceSpan resolve_span("resolve_series");
      status = ResolveSeries(request, &storage, &series);
      if (status.ok())
        status = ValidateRequest(request, static_cast<Index>(series.size()));
    }
    if (!status.ok()) {
      metrics_.GetCounter("requests_invalid")->Increment();
      response = Response::Error(request, status);
      response.elapsed_us = timer.Seconds() * 1e6;
      LogIfSlow(request, response, stages);
      return response;
    }

    const std::uint64_t fingerprint = SeriesFingerprint(series);
    const CacheKey key{fingerprint, request.len_min, request.len_max,
                       request.p, request.k};
    const Deadline deadline = request.deadline_ms > 0
                                  ? Deadline::After(request.deadline_ms / 1e3)
                                  : Deadline();

    CachedArtifact artifact;
    bool cached = false;
    bool hit = false;
    {
      const obs::TraceSpan cache_span("cache_lookup");
      hit = !request.no_cache && cache_.Get(key, &artifact);
    }
    if (hit) {
      cached = true;
    } else {
      // Execute() blocks until the job completes, so the locals captured by
      // reference below outlive the worker's use of them. (GUARDED_BY does
      // not apply to locals; the annotated wrappers still document and —
      // via the scoped types — enforce the acquire/release pairing.)
      Mutex mu;
      CondVar cv;
      bool done = false;
      Status job_status;
      WallTimer queue_timer;
      status = executor_.Submit(
          request.priority, deadline, [&](bool expired) {
            Status result_status;
            CachedArtifact result;
            {
              // The worker thread mirrors its spans into the same
              // recorder; `queue_wait` is the submit-to-start gap.
              const obs::ScopedStageSink worker_sink(&stages);
              stages.Add("queue_wait", queue_timer.Seconds() * 1e6, 1);
              const obs::TraceSpan compute_span("compute_artifact");
              if (expired) {
                result_status = Status::DeadlineExceeded(
                    "deadline expired while the request was queued");
              } else {
                bool dnf = false;
                result = ComputeArtifact(series, request, deadline, &dnf);
                if (dnf) {
                  result_status = Status::DeadlineExceeded(
                      "deadline expired during computation");
                }
              }
            }
            const MutexLock lock(&mu);
            job_status = std::move(result_status);
            artifact = std::move(result);
            done = true;
            cv.NotifyOne();
          });
      if (!status.ok()) {
        metrics_.GetCounter("rejected_queue_full")->Increment();
        response = Response::Error(request, status);
        response.elapsed_us = timer.Seconds() * 1e6;
        LogIfSlow(request, response, stages);
        return response;
      }
      {
        const MutexLock lock(&mu);
        while (!done) cv.Wait(mu);
      }
      if (!job_status.ok()) {
        metrics_.GetCounter("rejected_deadline")->Increment();
        response = Response::Error(request, job_status);
        response.elapsed_us = timer.Seconds() * 1e6;
        LogIfSlow(request, response, stages);
        return response;
      }
      cache_.Put(key, artifact);
    }

    {
      const obs::TraceSpan build_span("build_response");
      response = BuildResponse(request, artifact, cached, fingerprint);
    }
  }
  response.elapsed_us = timer.Seconds() * 1e6;
  metrics_.GetHistogram("latency_" + type_name)
      ->Observe(response.elapsed_us);
  LogIfSlow(request, response, stages);
  return response;
}

void QueryEngine::LogIfSlow(const Request& request, const Response& response,
                            const obs::StageRecorder& stages) {
  if (slow_log_.disabled()) return;
  obs::SlowQueryRecord record;
  record.query_type = QueryTypeName(request.type);
  record.dataset = request.dataset;
  record.n = request.series.empty()
                 ? request.n
                 : static_cast<Index>(request.series.size());
  record.len_min = request.len_min;
  record.len_max = request.len_max;
  record.p = request.p;
  record.k = request.k;
  record.priority = request.priority;
  record.cached = response.cached;
  record.ok = response.ok;
  record.error_code = response.error_code;
  record.elapsed_us = response.elapsed_us;
  if (slow_log_.MaybeLog(record, stages)) {
    metrics_.GetCounter("slow_queries_total")->Increment();
  }
}

}  // namespace valmod
