#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string_view>
#include <utility>

#include "obs/trace.h"
#include "service/net.h"
#include "service/protocol.h"

namespace valmod {
namespace {

/// Poll slice of the event loop: the idle-timeout sweep granularity. The
/// wake pipe makes response delivery immediate regardless.
constexpr int kLoopSliceMs = 50;

/// Longest accepted frame-header line (magic + decimal byte count).
constexpr std::size_t kMaxHeaderBytes = 64;

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), engine_(options.engine) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire))
    return Status::InvalidArgument("server already started");
  Status status =
      net::Listen(options_.host, options_.port, /*backlog=*/128, &listen_fd_,
                  &port_);
  if (!status.ok()) return status;
  status = net::SetNonBlocking(listen_fd_);
  if (status.ok()) status = net::MakePipe(&wake_read_fd_, &wake_write_fd_);
  if (!status.ok()) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (options_.metrics_port >= 0) {
    HttpGatewayOptions http_options;
    http_options.host = options_.host;
    http_options.port = options_.metrics_port;
    http_gateway_ = std::make_unique<HttpGateway>(
        http_options, [this](const std::string& path) {
          return HandleHttp(path);
        });
    status = http_gateway_->Start();
    if (!status.ok()) {
      http_gateway_.reset();
      net::CloseFd(listen_fd_);
      listen_fd_ = -1;
      net::CloseFd(wake_read_fd_);
      net::CloseFd(wake_write_fd_);
      wake_read_fd_ = wake_write_fd_ = -1;
      return status;
    }
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

int Server::metrics_port() const {
  return http_gateway_ ? http_gateway_->port() : 0;
}

HttpResponse Server::HandleHttp(const std::string& path) {
  HttpResponse response;
  if (path == "/healthz") {
    response.body = "ok\n";
  } else if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = engine_.metrics().PrometheusText();
  } else if (path == "/trace/start") {
    obs::TraceSession::Global().Start();
    response.body = "tracing started\n";
  } else if (path == "/trace/stop") {
    response.content_type = "application/json; charset=utf-8";
    response.body = obs::TraceSession::Global().StopAndExportJson();
  } else {
    response.status = 404;
    response.body = "unknown path (try /metrics, /healthz, /trace/start, "
                    "/trace/stop)\n";
  }
  return response;
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Phase 1: tell the loop to wind down — it stops accepting and parsing,
  // finishes every in-flight request, and flushes every response.
  stopping_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 'w';
    (void)!write(wake_write_fd_, &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  net::CloseFd(wake_read_fd_);
  net::CloseFd(wake_write_fd_);
  wake_read_fd_ = wake_write_fd_ = -1;
  // Phase 2: drain the engine (the loop is gone, nothing submits work).
  engine_.Drain();
  // Phase 3: stop the observability gateway (kept alive through the drain
  // so a scraper can watch the shutdown).
  if (http_gateway_) {
    http_gateway_->Shutdown();
    http_gateway_.reset();
  }
}

void Server::EventLoop() {
  std::vector<struct pollfd> pfds;
  std::vector<std::uint64_t> conn_ids;  // parallel to pfds; 0 = not a conn
  std::vector<std::uint64_t> doomed;
  while (true) {
    DrainCompletions();

    const bool stopping = stopping_.load(std::memory_order_acquire);
    pfds.clear();
    conn_ids.clear();
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    conn_ids.push_back(0);
    if (!stopping) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      conn_ids.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      // No POLLIN while a request is in flight: the kernel socket buffer
      // applies natural backpressure to pipelining clients, exactly like
      // the old one-thread-per-connection read loop.
      if (!conn.in_flight && !conn.peer_closed && !conn.close_after_flush &&
          !stopping) {
        events |= POLLIN;
      }
      if (conn.out_sent < conn.out.size()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({conn.fd, events, 0});
      conn_ids.push_back(id);
    }

    const int ready = poll(pfds.data(), pfds.size(), kLoopSliceMs);
    if (ready < 0 && errno != EINTR && errno != EAGAIN) break;  // loop fd died

    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    std::size_t index = 1;
    if (!stopping) {
      if ((pfds[index].revents & POLLIN) != 0) AcceptPending();
      ++index;
    }
    for (; index < pfds.size(); ++index) {
      const auto it = conns_.find(conn_ids[index]);
      if (it == conns_.end()) continue;
      Conn& conn = it->second;
      if ((pfds[index].revents & (POLLIN | POLLHUP | POLLERR)) != 0)
        HandleReadable(conn);
      if ((pfds[index].revents & POLLOUT) != 0) FlushWrites(conn);
    }
    DrainCompletions();

    // Close sweep: reap dead sockets, flushed close_after_flush
    // connections, cleanly closed peers with nothing left, and idle peers.
    doomed.clear();
    for (auto& [id, conn] : conns_) {
      if (conn.dead) {
        doomed.push_back(id);
        continue;
      }
      const bool flushed = conn.out_sent >= conn.out.size();
      if (conn.close_after_flush && flushed) {
        doomed.push_back(id);
        continue;
      }
      if (conn.peer_closed && !conn.in_flight && flushed) {
        // A pipelined frame may still be buffered; serve it before closing
        // (the old handler drained buffered frames up to the EOF too).
        if (!stopping) ParseAndDispatch(conn);
        if (!conn.in_flight && !conn.close_after_flush &&
            conn.out_sent >= conn.out.size()) {
          doomed.push_back(id);
        }
        continue;
      }
      if (!conn.in_flight && conn.out.empty() && !conn.close_after_flush &&
          conn.idle.Seconds() > options_.read_timeout_s) {
        doomed.push_back(id);
      }
    }
    for (const std::uint64_t id : doomed) CloseConn(id);

    if (stopping) {
      // Exit once every dispatched job has completed and every response
      // byte is out the door. Reading jobs_in_flight_ before the drain
      // guarantees the drain sees every completion counted as done.
      const bool no_jobs =
          jobs_in_flight_.load(std::memory_order_acquire) == 0;
      DrainCompletions();
      bool pending = false;
      for (auto& [id, conn] : conns_) {
        FlushWrites(conn);
        if (conn.in_flight ||
            (!conn.dead && conn.out_sent < conn.out.size())) {
          pending = true;
        }
      }
      if (no_jobs && !pending) break;
    }
  }
  for (auto& [id, conn] : conns_) net::CloseFd(conn.fd);
  conns_.clear();
  active_connections_.store(0, std::memory_order_release);
}

void Server::AcceptPending() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = -1;
    const Status status = net::AcceptNonBlocking(listen_fd_, &fd);
    if (!status.ok()) return;  // backlog drained (or listener gone)
    if (!net::SetNonBlocking(fd).ok()) {
      net::CloseFd(fd);
      continue;
    }
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    if (active_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      const Response refusal = Response::Error(
          Request{}, Status::ResourceExhausted(
                         "connection limit (" +
                         std::to_string(options_.max_connections) +
                         ") reached; retry later"));
      conn.out = EncodeFrame(refusal.ToJson().Serialize());
      conn.close_after_flush = true;
      conn.refused = true;
    } else {
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      active_connections_.fetch_add(1, std::memory_order_acq_rel);
    }
    const std::uint64_t id = conn.id;
    auto [it, inserted] = conns_.emplace(id, std::move(conn));
    FlushWrites(it->second);  // refusals usually fit the socket buffer
  }
}

void Server::HandleReadable(Conn& conn) {
  if (conn.dead || conn.peer_closed) return;
  char buf[4096];
  while (true) {
    const ssize_t r = recv(conn.fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn.in.append(buf, static_cast<std::size_t>(r));
      conn.idle.Reset();
      if (conn.in_flight) break;  // enough; resume after the response
      continue;
    }
    if (r == 0) {
      conn.peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    return;
  }
  ParseAndDispatch(conn);
}

void Server::ParseAndDispatch(Conn& conn) {
  while (!conn.in_flight && !conn.close_after_flush && !conn.dead &&
         !stopping_.load(std::memory_order_acquire)) {
    const std::size_t newline = conn.in.find('\n');
    if (newline == std::string::npos) {
      if (conn.in.size() > kMaxHeaderBytes) {
        // Framing errors get one answer, then the stream is untrusted.
        const Response error = Response::Error(
            Request{}, Status::InvalidArgument("frame header too long"));
        conn.out += EncodeFrame(error.ToJson().Serialize());
        conn.close_after_flush = true;
      }
      return;  // wait for more header bytes
    }
    std::size_t body_bytes = 0;
    Status status = ParseFrameHeader(
        std::string_view(conn.in).substr(0, newline), &body_bytes);
    if (!status.ok()) {
      const Response error = Response::Error(Request{}, status);
      conn.out += EncodeFrame(error.ToJson().Serialize());
      conn.close_after_flush = true;
      return;
    }
    if (conn.in.size() < newline + 1 + body_bytes) return;  // wait for body
    std::string payload = conn.in.substr(newline + 1, body_bytes);
    conn.in.erase(0, newline + 1 + body_bytes);
    if (payload.empty() || payload.back() != '\n') {
      const Response error = Response::Error(
          Request{},
          Status::InvalidArgument("frame payload must end with a newline"));
      conn.out += EncodeFrame(error.ToJson().Serialize());
      conn.close_after_flush = true;
      return;
    }
    payload.pop_back();

    const obs::TraceSpan span("connection_frame");
    JsonValue json;
    status = JsonValue::Parse(payload, &json);
    Request request;
    if (status.ok()) status = request.FromJson(json);
    if (!status.ok()) {
      // Malformed JSON inside a well-formed frame: answer it and keep the
      // connection — the framing is still trustworthy.
      const Response error = Response::Error(request, status);
      conn.out += EncodeFrame(error.ToJson().Serialize());
      conn.idle.Reset();
      continue;
    }
    conn.in_flight = true;
    jobs_in_flight_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t id = conn.id;
    // The callback may run synchronously (cache hits) or on an executor
    // worker; either way the response travels through the completion
    // queue, so the loop thread stays the only toucher of Conn state.
    engine_.ExecuteAsync(request, [this, id](Response response) {
      OnResponse(id, EncodeFrame(response.ToJson().Serialize()));
    });
    return;
  }
}

void Server::FlushWrites(Conn& conn) {
  if (conn.dead) return;
  while (conn.out_sent < conn.out.size()) {
    const ssize_t r = send(conn.fd, conn.out.data() + conn.out_sent,
                           conn.out.size() - conn.out_sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      conn.dead = true;  // peer went away mid-response
      return;
    }
    conn.out_sent += static_cast<std::size_t>(r);
  }
  conn.out.clear();
  conn.out_sent = 0;
}

void Server::OnResponse(std::uint64_t conn_id, std::string frame) {
  {
    const MutexLock lock(&completions_mu_);
    completions_.emplace_back(conn_id, std::move(frame));
  }
  // Decrement after queueing: once the loop reads zero, a final drain is
  // guaranteed to see every completion.
  jobs_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (wake_write_fd_ >= 0) {
    const char byte = 'r';
    (void)!write(wake_write_fd_, &byte, 1);
  }
}

void Server::DrainCompletions() {
  std::vector<std::pair<std::uint64_t, std::string>> done;
  {
    const MutexLock lock(&completions_mu_);
    done.swap(completions_);
  }
  for (auto& [id, frame] : done) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;  // connection died while computing
    Conn& conn = it->second;
    conn.in_flight = false;
    conn.out += frame;
    conn.idle.Reset();
    // A pipelining client may have the next frame buffered already.
    ParseAndDispatch(conn);
    FlushWrites(conn);
  }
}

void Server::CloseConn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  net::CloseFd(it->second.fd);
  if (!it->second.refused)
    active_connections_.fetch_sub(1, std::memory_order_acq_rel);
  conns_.erase(it);
}

}  // namespace valmod
