#include "service/server.h"

#include <utility>

#include "obs/trace.h"
#include "service/net.h"
#include "service/protocol.h"

namespace valmod {

Server::Server(const ServerOptions& options)
    : options_(options), engine_(options.engine) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire))
    return Status::InvalidArgument("server already started");
  Status status =
      net::Listen(options_.host, options_.port, /*backlog=*/128, &listen_fd_,
                  &port_);
  if (!status.ok()) return status;
  if (options_.metrics_port >= 0) {
    HttpGatewayOptions http_options;
    http_options.host = options_.host;
    http_options.port = options_.metrics_port;
    http_gateway_ = std::make_unique<HttpGateway>(
        http_options, [this](const std::string& path) {
          return HandleHttp(path);
        });
    status = http_gateway_->Start();
    if (!status.ok()) {
      http_gateway_.reset();
      net::CloseFd(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

int Server::metrics_port() const {
  return http_gateway_ ? http_gateway_->port() : 0;
}

HttpResponse Server::HandleHttp(const std::string& path) {
  HttpResponse response;
  if (path == "/healthz") {
    response.body = "ok\n";
  } else if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = engine_.metrics().PrometheusText();
  } else if (path == "/trace/start") {
    obs::TraceSession::Global().Start();
    response.body = "tracing started\n";
  } else if (path == "/trace/stop") {
    response.content_type = "application/json; charset=utf-8";
    response.body = obs::TraceSession::Global().StopAndExportJson();
  } else {
    response.status = 404;
    response.body = "unknown path (try /metrics, /healthz, /trace/start, "
                    "/trace/stop)\n";
  }
  return response;
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Phase 1: stop taking new connections and tell handlers to wind down.
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
  // Phase 2: handlers poll stopping_ between frames, so each finishes the
  // request it is serving (the executor runs it to completion), writes the
  // response, and exits; join them all.
  ReapFinished(/*join_all=*/true);
  // Phase 3: drain the engine (no handler threads remain to submit work).
  engine_.Drain();
  // Phase 4: stop the observability gateway (kept alive through the drain
  // so a scraper can watch the shutdown).
  if (http_gateway_) {
    http_gateway_->Shutdown();
    http_gateway_.reset();
  }
}

void Server::ReapFinished(bool join_all) {
  const MutexLock lock(&connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (join_all || (*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = -1;
    const Status status = net::Accept(listen_fd_, /*timeout_s=*/0.1, &fd);
    if (!status.ok()) {
      // Timeout: re-check stopping_. Anything else on a healthy listener
      // is transient (e.g. the peer vanished between accept readiness and
      // the syscall); keep serving.
      continue;
    }
    ReapFinished(/*join_all=*/false);
    if (active_connections_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      connections_refused_.fetch_add(1, std::memory_order_relaxed);
      const Response refusal = Response::Error(
          Request{}, Status::ResourceExhausted(
                         "connection limit (" +
                         std::to_string(options_.max_connections) +
                         ") reached; retry later"));
      net::WriteFramePayload(fd, refusal.ToJson().Serialize());
      net::CloseFd(fd);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    {
      const MutexLock lock(&connections_mu_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, fd, raw] {
      HandleConnection(fd);
      active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void Server::HandleConnection(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::string payload;
    Status status = net::ReadFramePayload(fd, options_.read_timeout_s,
                                          &stopping_, &payload);
    if (status.code() == StatusCode::kNotFound) break;  // clean client close
    if (status.code() == StatusCode::kDeadlineExceeded) break;  // idle/stop
    if (!status.ok()) {
      // Malformed frame: answer once with the parse error, then close —
      // after a framing error the byte stream cannot be trusted.
      const Response error = Response::Error(Request{}, status);
      net::WriteFramePayload(fd, error.ToJson().Serialize());
      break;
    }
    const obs::TraceSpan span("connection_frame");
    JsonValue json;
    status = JsonValue::Parse(payload, &json);
    Request request;
    if (status.ok()) status = request.FromJson(json);
    Response response;
    if (!status.ok()) {
      response = Response::Error(request, status);
    } else {
      response = engine_.Execute(request);
    }
    status = net::WriteFramePayload(fd, response.ToJson().Serialize());
    if (!status.ok()) break;  // peer went away mid-response
  }
  net::CloseFd(fd);
}

}  // namespace valmod
