#ifndef VALMOD_SERVICE_NET_H_
#define VALMOD_SERVICE_NET_H_

#include <atomic>
#include <string>

#include "util/status.h"

namespace valmod {
namespace net {

/// Thin POSIX TCP wrappers shared by the query-service server and client.
/// Everything is blocking-with-timeout: reads poll in short slices so a
/// caller-supplied stop flag (the server's drain signal) interrupts an
/// idle connection within ~a slice rather than hanging on recv().

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port). On success fills `*out_fd` and the actually bound
/// `*out_port`.
Status Listen(const std::string& host, int port, int backlog, int* out_fd,
              int* out_port);

/// Accepts one connection, waiting at most `timeout_s`. DeadlineExceeded
/// on timeout (so the accept loop can poll its stop flag), IoError when
/// the listener is closed.
Status Accept(int listen_fd, double timeout_s, int* out_fd);

/// Connects to host:port, waiting at most `timeout_s`.
Status Connect(const std::string& host, int port, double timeout_s,
               int* out_fd);

/// Writes all of `data`, retrying short writes.
Status SendAll(int fd, const std::string& data);

/// Reads one protocol frame (service/protocol.h) and returns its JSON
/// payload (trailing newline stripped). Waits at most `timeout_s` between
/// arriving bytes; aborts early with DeadlineExceeded when `*stop` (when
/// non-null) becomes true. NotFound signals clean EOF before any byte of
/// the next frame — the peer simply closed the connection.
Status ReadFramePayload(int fd, double timeout_s,
                        const std::atomic<bool>* stop, std::string* payload);

/// Encodes `json` into a frame and sends it.
Status WriteFramePayload(int fd, const std::string& json);

/// Reads an HTTP/1.x request head: everything through the first blank line
/// (CRLFCRLF, or LFLF from sloppy clients), at most `max_bytes`
/// (InvalidArgument beyond that). Same timeout/stop semantics as
/// ReadFramePayload. Used by the observability HTTP gateway, which only
/// serves bodyless GETs.
Status ReadHttpHead(int fd, double timeout_s, const std::atomic<bool>* stop,
                    std::size_t max_bytes, std::string* head);

/// Puts `fd` into non-blocking mode (the server's event loop runs every
/// connection socket non-blocking).
Status SetNonBlocking(int fd);

/// Creates a non-blocking self-pipe: worker threads write one byte to
/// `*out_write_fd` to wake a poll() sleeping on `*out_read_fd`.
Status MakePipe(int* out_read_fd, int* out_write_fd);

/// Accepts one pending connection without waiting. DeadlineExceeded when
/// none is pending (the event loop treats it as "accept queue drained"),
/// IoError on a dead listener. The accepted socket has TCP_NODELAY set but
/// is still blocking; callers opt in via SetNonBlocking.
Status AcceptNonBlocking(int listen_fd, int* out_fd);

/// Closes a file descriptor (no-op for fd < 0).
void CloseFd(int fd);

}  // namespace net
}  // namespace valmod

#endif  // VALMOD_SERVICE_NET_H_
