#include "service/protocol.h"

#include <charconv>
#include <system_error>
#include <utility>

namespace valmod {
namespace {

JsonValue MotifPairToJson(const MotifPair& pair) {
  JsonValue v;
  v.Set("a", JsonValue(static_cast<std::int64_t>(pair.a)));
  v.Set("b", JsonValue(static_cast<std::int64_t>(pair.b)));
  v.Set("distance", JsonValue(pair.distance));
  return v;
}

MotifPair MotifPairFromJson(const JsonValue& v, Index length) {
  MotifPair pair;
  pair.length = length;
  if (const JsonValue* a = v.Find("a")) pair.a = a->AsInt(kNoNeighbor);
  if (const JsonValue* b = v.Find("b")) pair.b = b->AsInt(kNoNeighbor);
  if (const JsonValue* d = v.Find("distance")) pair.distance = d->AsDouble();
  return pair;
}

JsonValue DiscordToJson(const Discord& discord) {
  JsonValue v;
  v.Set("offset", JsonValue(static_cast<std::int64_t>(discord.offset)));
  v.Set("distance", JsonValue(discord.distance));
  return v;
}

Discord DiscordFromJson(const JsonValue& v, Index length) {
  Discord discord;
  discord.length = length;
  if (const JsonValue* o = v.Find("offset"))
    discord.offset = o->AsInt(kNoNeighbor);
  if (const JsonValue* d = v.Find("distance"))
    discord.distance = d->AsDouble(-1.0);
  return discord;
}

}  // namespace

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kMotif:
      return "motif";
    case QueryType::kTopK:
      return "topk";
    case QueryType::kDiscord:
      return "discord";
    case QueryType::kProfile:
      return "profile";
    case QueryType::kStats:
      return "stats";
  }
  return "unknown";
}

Status ParseQueryType(const std::string& name, QueryType* out) {
  for (const QueryType type :
       {QueryType::kMotif, QueryType::kTopK, QueryType::kDiscord,
        QueryType::kProfile, QueryType::kStats}) {
    if (name == QueryTypeName(type)) {
      *out = type;
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown query type '" + name + "'");
}

JsonValue Request::ToJson() const {
  JsonValue v;
  v.Set("v", JsonValue(static_cast<std::int64_t>(kProtocolVersion)));
  v.Set("type", JsonValue(std::string(QueryTypeName(type))));
  v.Set("id", JsonValue(id));
  if (!series.empty()) {
    JsonValue values;
    for (const double x : series) values.Append(JsonValue(x));
    v.Set("series", std::move(values));
  }
  if (!dataset.empty()) {
    v.Set("dataset", JsonValue(dataset));
    v.Set("n", JsonValue(static_cast<std::int64_t>(n)));
  }
  v.Set("len_min", JsonValue(static_cast<std::int64_t>(len_min)));
  v.Set("len_max", JsonValue(static_cast<std::int64_t>(len_max)));
  v.Set("p", JsonValue(static_cast<std::int64_t>(p)));
  v.Set("k", JsonValue(static_cast<std::int64_t>(k)));
  if (deadline_ms > 0) v.Set("deadline_ms", JsonValue(deadline_ms));
  v.Set("priority", JsonValue(static_cast<std::int64_t>(priority)));
  if (no_cache) v.Set("no_cache", JsonValue(true));
  if (no_catalog) v.Set("no_catalog", JsonValue(true));
  return v;
}

Status Request::FromJson(const JsonValue& json) {
  if (!json.is_object())
    return Status::InvalidArgument("request must be a JSON object");
  const JsonValue* type_field = json.Find("type");
  if (type_field == nullptr || !type_field->is_string())
    return Status::InvalidArgument("request is missing the 'type' string");
  Status status = ParseQueryType(type_field->AsString(), &type);
  if (!status.ok()) return status;
  if (const JsonValue* f = json.Find("id")) id = f->AsInt();
  series.clear();
  if (const JsonValue* f = json.Find("series")) {
    if (!f->is_array())
      return Status::InvalidArgument("'series' must be an array");
    series.reserve(f->AsArray().size());
    for (const JsonValue& x : f->AsArray()) {
      if (!x.is_number())
        return Status::InvalidArgument("'series' must contain only numbers");
      series.push_back(x.AsDouble());
    }
  }
  dataset.clear();
  if (const JsonValue* f = json.Find("dataset")) dataset = f->AsString();
  if (const JsonValue* f = json.Find("n")) n = f->AsInt();
  if (const JsonValue* f = json.Find("len_min")) len_min = f->AsInt();
  if (const JsonValue* f = json.Find("len_max")) len_max = f->AsInt();
  if (const JsonValue* f = json.Find("p")) p = f->AsInt(p);
  if (const JsonValue* f = json.Find("k")) k = f->AsInt(k);
  if (const JsonValue* f = json.Find("deadline_ms"))
    deadline_ms = f->AsDouble();
  if (const JsonValue* f = json.Find("priority"))
    priority = static_cast<int>(f->AsInt(priority));
  if (const JsonValue* f = json.Find("no_cache")) no_cache = f->AsBool();
  if (const JsonValue* f = json.Find("no_catalog")) no_catalog = f->AsBool();
  return Status::Ok();
}

JsonValue LengthResult::ToJson() const {
  JsonValue v;
  v.Set("length", JsonValue(static_cast<std::int64_t>(length)));
  if (has_motif) v.Set("motif", MotifPairToJson(motif));
  if (has_top_k) {
    JsonValue list;
    for (const MotifPair& pair : top_k) list.Append(MotifPairToJson(pair));
    v.Set("top_k", std::move(list));
  }
  if (has_discord) v.Set("discord", DiscordToJson(discord));
  if (has_profile) {
    JsonValue profile;
    profile.Set("min", JsonValue(profile_min));
    profile.Set("mean", JsonValue(profile_mean));
    profile.Set("max", JsonValue(profile_max));
    v.Set("profile", std::move(profile));
  }
  return v;
}

Status LengthResult::FromJson(const JsonValue& json) {
  if (!json.is_object())
    return Status::InvalidArgument("length result must be an object");
  const JsonValue* len_field = json.Find("length");
  if (len_field == nullptr)
    return Status::InvalidArgument("length result is missing 'length'");
  length = len_field->AsInt();
  has_motif = has_top_k = has_discord = has_profile = false;
  if (const JsonValue* f = json.Find("motif")) {
    has_motif = true;
    motif = MotifPairFromJson(*f, length);
  }
  if (const JsonValue* f = json.Find("top_k")) {
    has_top_k = true;
    top_k.clear();
    for (const JsonValue& pair : f->AsArray())
      top_k.push_back(MotifPairFromJson(pair, length));
  }
  if (const JsonValue* f = json.Find("discord")) {
    has_discord = true;
    discord = DiscordFromJson(*f, length);
  }
  if (const JsonValue* f = json.Find("profile")) {
    has_profile = true;
    if (const JsonValue* x = f->Find("min")) profile_min = x->AsDouble();
    if (const JsonValue* x = f->Find("mean")) profile_mean = x->AsDouble();
    if (const JsonValue* x = f->Find("max")) profile_max = x->AsDouble();
  }
  return Status::Ok();
}

Response Response::Error(const Request& request, const Status& status) {
  Response response;
  response.id = request.id;
  response.type = request.type;
  response.ok = false;
  response.error_code = StatusCodeName(status.code());
  response.error_message = status.message();
  return response;
}

JsonValue Response::ToJson() const {
  JsonValue v;
  v.Set("v", JsonValue(static_cast<std::int64_t>(kProtocolVersion)));
  v.Set("id", JsonValue(id));
  v.Set("type", JsonValue(std::string(QueryTypeName(type))));
  v.Set("ok", JsonValue(ok));
  if (!ok) {
    JsonValue error;
    error.Set("code", JsonValue(error_code));
    error.Set("message", JsonValue(error_message));
    v.Set("error", std::move(error));
    return v;
  }
  v.Set("cached", JsonValue(cached));
  v.Set("elapsed_us", JsonValue(elapsed_us));
  if (!fingerprint.empty()) v.Set("fingerprint", JsonValue(fingerprint));
  if (!lengths.empty()) {
    JsonValue list;
    for (const LengthResult& lr : lengths) list.Append(lr.ToJson());
    v.Set("lengths", std::move(list));
  }
  if (has_best_motif) {
    JsonValue best;
    best.Set("a", JsonValue(static_cast<std::int64_t>(best_motif.off1)));
    best.Set("b", JsonValue(static_cast<std::int64_t>(best_motif.off2)));
    best.Set("length", JsonValue(static_cast<std::int64_t>(best_motif.length)));
    best.Set("distance", JsonValue(best_motif.distance));
    best.Set("norm_distance", JsonValue(best_motif.norm_distance));
    v.Set("best_motif", std::move(best));
  }
  if (has_best_discord) {
    JsonValue best;
    best.Set("offset",
             JsonValue(static_cast<std::int64_t>(best_discord.offset)));
    best.Set("length",
             JsonValue(static_cast<std::int64_t>(best_discord.length)));
    best.Set("distance", JsonValue(best_discord.distance));
    best.Set("norm_distance", JsonValue(best_discord_norm));
    v.Set("best_discord", std::move(best));
  }
  if (!stats_text.empty()) v.Set("stats_text", JsonValue(stats_text));
  return v;
}

Status Response::FromJson(const JsonValue& json) {
  if (!json.is_object())
    return Status::InvalidArgument("response must be a JSON object");
  if (const JsonValue* f = json.Find("v")) {
    if (f->AsInt() != kProtocolVersion)
      return Status::InvalidArgument("response protocol version mismatch");
  }
  if (const JsonValue* f = json.Find("id")) id = f->AsInt();
  if (const JsonValue* f = json.Find("type")) {
    Status status = ParseQueryType(f->AsString(), &type);
    if (!status.ok()) return status;
  }
  ok = false;
  if (const JsonValue* f = json.Find("ok")) ok = f->AsBool();
  if (!ok) {
    if (const JsonValue* error = json.Find("error")) {
      if (const JsonValue* f = error->Find("code"))
        error_code = f->AsString();
      if (const JsonValue* f = error->Find("message"))
        error_message = f->AsString();
    }
    return Status::Ok();
  }
  if (const JsonValue* f = json.Find("cached")) cached = f->AsBool();
  if (const JsonValue* f = json.Find("elapsed_us"))
    elapsed_us = f->AsDouble();
  if (const JsonValue* f = json.Find("fingerprint"))
    fingerprint = f->AsString();
  lengths.clear();
  if (const JsonValue* f = json.Find("lengths")) {
    for (const JsonValue& item : f->AsArray()) {
      LengthResult lr;
      Status status = lr.FromJson(item);
      if (!status.ok()) return status;
      lengths.push_back(std::move(lr));
    }
  }
  has_best_motif = false;
  if (const JsonValue* f = json.Find("best_motif")) {
    has_best_motif = true;
    if (const JsonValue* x = f->Find("a")) best_motif.off1 = x->AsInt();
    if (const JsonValue* x = f->Find("b")) best_motif.off2 = x->AsInt();
    if (const JsonValue* x = f->Find("length")) best_motif.length = x->AsInt();
    if (const JsonValue* x = f->Find("distance"))
      best_motif.distance = x->AsDouble();
    if (const JsonValue* x = f->Find("norm_distance"))
      best_motif.norm_distance = x->AsDouble();
  }
  has_best_discord = false;
  if (const JsonValue* f = json.Find("best_discord")) {
    has_best_discord = true;
    if (const JsonValue* x = f->Find("offset"))
      best_discord.offset = x->AsInt();
    if (const JsonValue* x = f->Find("length"))
      best_discord.length = x->AsInt();
    if (const JsonValue* x = f->Find("distance"))
      best_discord.distance = x->AsDouble();
    if (const JsonValue* x = f->Find("norm_distance"))
      best_discord_norm = x->AsDouble();
  }
  if (const JsonValue* f = json.Find("stats_text")) stats_text = f->AsString();
  return Status::Ok();
}

Status Response::ToStatus() const {
  if (ok) return Status::Ok();
  return Status(StatusCodeFromName(error_code), error_message);
}

std::string EncodeFrame(std::string_view json) {
  std::string frame;
  frame.reserve(json.size() + 32);
  frame.append(kFrameMagic);
  frame.append(std::to_string(json.size() + 1));  // +1: payload newline
  frame.push_back('\n');
  frame.append(json);
  frame.push_back('\n');
  return frame;
}

Status ParseFrameHeader(std::string_view header_line,
                        std::size_t* out_bytes) {
  if (header_line.substr(0, kFrameMagic.size()) != kFrameMagic) {
    if (header_line.substr(0, 7) == "VALMOD/")
      return Status::InvalidArgument(
          "protocol version mismatch (expected VALMOD/" +
          std::to_string(kProtocolVersion) + ")");
    return Status::InvalidArgument("bad frame magic");
  }
  const std::string_view count = header_line.substr(kFrameMagic.size());
  std::size_t bytes = 0;
  const std::from_chars_result r =
      std::from_chars(count.data(), count.data() + count.size(), bytes);
  if (r.ec != std::errc() || r.ptr != count.data() + count.size() ||
      bytes == 0) {
    return Status::InvalidArgument("bad frame byte count");
  }
  if (bytes > kMaxFrameBytes)
    return Status::OutOfRange("frame of " + std::to_string(bytes) +
                              " bytes exceeds the " +
                              std::to_string(kMaxFrameBytes) + "-byte cap");
  *out_bytes = bytes;
  return Status::Ok();
}

StatusCode StatusCodeFromName(const std::string& name) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kIoError, StatusCode::kOutOfRange,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted}) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kIoError;
}

}  // namespace valmod
